"""Ablation: bit-parallel hashing (§4 "Optimizations" / §7.1).

The paper computes one 32-bit hash value and partitions it into bit groups
instead of evaluating one hash function per iteration.  This bench
quantifies that choice: the same configuration with a power-of-two d (bit
groups from one evaluation) versus a non-power-of-two d of similar size
(one evaluation + modulo per iteration).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker
from repro.workloads.kv import sum_workload


def _make(label: str):
    cfg = SumCheckConfig.parse(label)
    checker = SumAggregationChecker(cfg, seed=0xAB17)
    keys, values = sum_workload(200_000, seed=1)
    return checker, keys, values


def test_bitparallel_pow2_buckets(benchmark):
    """8 iterations × 16 buckets — one hash evaluation, 8 bit groups."""
    checker, keys, values = _make("8x16 Tab64 m15")
    assert checker.assigner.num_hash_evaluations == 1
    benchmark(checker.local_tables, keys, values)


def test_general_buckets_mod_d(benchmark):
    """8 iterations × 17 buckets — d not a power of two: 8 evaluations."""
    checker, keys, values = _make("8x17 Tab64 m15")
    assert checker.assigner.num_hash_evaluations == 8
    benchmark(checker.local_tables, keys, values)


def test_bitparallel_detection_unchanged(benchmark):
    """Bit groups are as good as independent hashes for detection.

    Sanity-check the accuracy is not degraded: a single-key fault must be
    detected at a rate consistent with 1 − δ for both bucket schemes.
    Runs through the batched verdict kernel (one call per scheme instead
    of 300 checker constructions); ``sum_delta_verdicts`` is asserted
    trial-identical to per-trial ``detects_delta`` by the engine tests.
    """
    from repro.experiments.engine import sum_delta_verdicts
    from repro.faults.manipulators import KVManipulationBatch

    def run():
        trials = 300
        seeds = np.arange(trials, dtype=np.uint64) * np.uint64(7) + np.uint64(1)
        delta = KVManipulationBatch(
            owner=np.repeat(np.arange(trials, dtype=np.intp), 2),
            delta_keys=np.tile(np.array([123, 124], dtype=np.uint64), trials),
            delta_values=np.tile(np.array([5, -5], dtype=np.int64), trials),
            trials=trials,
        )
        misses = {}
        for label in ("8x16 Tab64 m15", "8x17 Tab64 m15"):
            cfg = SumCheckConfig.parse(label)
            detected = sum_delta_verdicts(cfg, seeds, delta)
            misses[label] = int(trials - detected.sum())
        return misses, trials

    misses, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, missed in misses.items():
        delta = SumCheckConfig.parse(label).failure_bound
        # δ ≈ 6e-10 here: any miss at 300 trials would be a red flag.
        assert missed <= max(1, 10 * delta * trials), (label, missed)

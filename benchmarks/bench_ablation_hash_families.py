"""Ablation: hash-family cost inside the sum checker's local kernel.

The paper's Table 5 spans CRC and tabulation configurations; this bench
isolates the hash family at a fixed configuration shape so the family's
constant is visible (software CRC pays one table lookup per byte; Tab64
pays 8 lookups; the SplitMix ideal-model mixer pays 6 arithmetic passes;
multiply-shift pays 1 multiply — but is only 2-universal, hence
ablation-only).
"""

from __future__ import annotations

import pytest

from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker
from repro.workloads.kv import sum_workload

_N = 200_000


@pytest.fixture(scope="module")
def workload():
    return sum_workload(_N, seed=2)


@pytest.mark.parametrize("family", ["CRC", "CRC4", "Tab", "Tab64", "Mix", "MShift"])
def test_hash_family_kernel_cost(benchmark, family, workload):
    keys, values = workload
    cfg = SumCheckConfig(iterations=8, d=16, rhat=1 << 15, hash_family=family)
    checker = SumAggregationChecker(cfg, seed=3)
    table = benchmark(checker.local_tables, keys, values)
    assert table.shape == (8, 16)
    benchmark.extra_info["ns_per_element"] = (
        benchmark.stats.stats.min / _N * 1e9 if benchmark.stats else None
    )

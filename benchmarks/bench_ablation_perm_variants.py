"""Ablation: the three permutation-fingerprint variants of §5.

* hash-sum (Lemma 4) — one hash + wide sum per element; needs a trusted
  hash function;
* polynomial over F_r (Lemma 5) — one modular multiply per element; needs
  no randomness beyond the evaluation point;
* GF(2^64) (§5 remark) — carry-less multiplies (hardware: PCLMULQDQ; here:
  two-lane numpy emulation, so this variant is *expected* to lose big —
  the bench documents the gap).
"""

from __future__ import annotations

import numpy as np

from repro.core.permutation_checker import (
    check_permutation_gf64,
    check_permutation_hashsum,
    check_permutation_polynomial,
)
from repro.workloads.uniform import uniform_integers

_N = 100_000


def _data():
    e = uniform_integers(_N, seed=3)
    return e, np.sort(e)


def test_perm_variant_hashsum(benchmark):
    e, o = _data()
    result = benchmark(
        lambda: check_permutation_hashsum(e, o, iterations=2, seed=11)
    )
    assert result.accepted


def test_perm_variant_polynomial(benchmark):
    e, o = _data()
    result = benchmark(
        lambda: check_permutation_polynomial(
            e, o, delta=2.0**-20, universe=10**8, seed=11
        )
    )
    assert result.accepted


def test_perm_variant_gf64(benchmark):
    e, o = _data()
    result = benchmark(
        lambda: check_permutation_gf64(e, o, iterations=1, seed=11)
    )
    assert result.accepted

"""Batched accuracy engine vs the per-trial reference loop.

Times one Fig 3 cell (``8x16 Tab m15`` × Bitflip) and one Fig 5 cell
(``Tab4`` × Increment) on both execution paths, asserts the engine's
verdict counts are identical to the reference loop's, and emits a
``BENCH_accuracy_engine.json`` artifact at the repo root so future PRs can
track the throughput trajectory.

Scale knobs: ``REPRO_BENCH_TRIALS`` sets the *batched* trial count
(floored at 10 000 here so the artifact always reflects a paper-relevant
batch); the reference loop runs ``min(batched, 10 000)`` trials to keep
the comparison honest but bounded.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import run_once, smoke_mode, write_artifact

from repro.core.params import PermCheckConfig, SumCheckConfig
from repro.experiments.accuracy import perm_checker_accuracy, sum_checker_accuracy

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_accuracy_engine.json"
_EQUIVALENCE_TRIALS = 1_000
_MIN_SPEEDUP = 20.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_accuracy_engine_speedup(benchmark, accuracy_trials):
    if smoke_mode():
        batched_trials = reference_trials = accuracy_trials
    else:
        batched_trials = max(accuracy_trials, 10_000)
        reference_trials = min(batched_trials, 10_000)
    sum_cfg = SumCheckConfig.parse("8x16 m15").with_hash("Tab")
    perm_cfg = PermCheckConfig(log_h=4, hash_family="Tab")

    # Equivalence gate: identical failure counts on a 1000-trial cell.
    for kind, fn in (
        ("sum", lambda mode: sum_checker_accuracy(
            sum_cfg, "Bitflip", _EQUIVALENCE_TRIALS, seed=0xF163, mode=mode
        )),
        ("perm", lambda mode: perm_checker_accuracy(
            perm_cfg, "Increment", _EQUIVALENCE_TRIALS, seed=0xF165, mode=mode
        )),
    ):
        assert fn("batched") == fn("reference"), f"{kind} paths diverged"

    sum_ref, sum_ref_s = _timed(
        lambda: sum_checker_accuracy(
            sum_cfg, "Bitflip", reference_trials, seed=0xF163, mode="reference"
        )
    )
    sum_bat, sum_bat_s = _timed(
        lambda: run_once(
            benchmark,
            lambda: sum_checker_accuracy(
                sum_cfg, "Bitflip", batched_trials, seed=0xF163, mode="batched"
            ),
        )
    )
    perm_ref, perm_ref_s = _timed(
        lambda: perm_checker_accuracy(
            perm_cfg, "Increment", reference_trials, seed=0xF165, mode="reference"
        )
    )
    perm_bat, perm_bat_s = _timed(
        lambda: perm_checker_accuracy(
            perm_cfg, "Increment", batched_trials, seed=0xF165, mode="batched"
        )
    )
    if batched_trials == reference_trials:
        assert sum_bat.failures == sum_ref.failures
        assert perm_bat.failures == perm_ref.failures

    sum_speedup = (sum_ref_s / reference_trials) / (sum_bat_s / batched_trials)
    perm_speedup = (perm_ref_s / reference_trials) / (perm_bat_s / batched_trials)
    report = {
        "sum_cell": {
            "config": sum_cfg.label(),
            "manipulator": "Bitflip",
            "reference_trials": reference_trials,
            "reference_seconds": sum_ref_s,
            "reference_us_per_trial": sum_ref_s / reference_trials * 1e6,
            "batched_trials": batched_trials,
            "batched_seconds": sum_bat_s,
            "batched_us_per_trial": sum_bat_s / batched_trials * 1e6,
            "speedup": sum_speedup,
            "failures": sum_bat.failures,
        },
        "perm_cell": {
            "config": perm_cfg.label(),
            "manipulator": "Increment",
            "reference_trials": reference_trials,
            "reference_seconds": perm_ref_s,
            "reference_us_per_trial": perm_ref_s / reference_trials * 1e6,
            "batched_trials": batched_trials,
            "batched_seconds": perm_bat_s,
            "batched_us_per_trial": perm_bat_s / batched_trials * 1e6,
            "speedup": perm_speedup,
            "failures": perm_bat.failures,
        },
        "equivalence_trials": _EQUIVALENCE_TRIALS,
        "min_required_speedup": _MIN_SPEEDUP,
    }
    write_artifact(_ARTIFACT, report)
    benchmark.extra_info.update(
        sum_speedup=sum_speedup, perm_speedup=perm_speedup, artifact=str(_ARTIFACT)
    )
    print(f"\nsum {sum_speedup:.1f}x, perm {perm_speedup:.1f}x -> {_ARTIFACT.name}")
    if not smoke_mode():
        assert sum_speedup >= _MIN_SPEEDUP, f"sum engine only {sum_speedup:.1f}x"
        assert perm_speedup >= _MIN_SPEEDUP, f"perm engine only {perm_speedup:.1f}x"

"""Execution-backend weak scaling: thread mailboxes vs shared-memory processes.

Measured (not modeled) wall times for three distributed checker paths at
p ∈ {1, 2, 4, 8} with the per-rank input size held constant (weak
scaling), on both the thread-mailbox oracle backend and the
``multiprocessing.shared_memory`` process backend:

* ``sum-settle`` — the CPU-bound multi-seed sum settle
  (:meth:`MultiSeedSumChecker.check_distributed_condensed`: per-rank
  condense + table build, one packed reduction + verdict broadcast);
* ``perm-settle`` — the hash-sum permutation fingerprint settle
  (:class:`HashSumPermutationChecker` with a distributed λ reduction);
* ``windowed-pipeline`` — the windowed streaming
  ``reduce_by_key_checked`` pipeline (exchange + per-window settles).

Every cell asserts cross-backend *verdict parity* — the process run must
be bit-identical to the thread oracle.  That holds in smoke mode too:
correctness is free, only the timings are thrown away.

Gates (skipped in smoke mode):

* wire volume — on the p = 4 process sum-settle row, the cost model's
  predicted payload bytes (``TrafficMeter.bytes_sent``) must agree with
  the actual serialized frame bytes (``wire_bytes_sent``) within 10%;
* speedup — the process backend must beat the thread backend on the
  CPU-bound sum-settle row at p = 4 **when the machine has ≥ 2 cores**.
  On a single-core machine real parallel speedup is physically
  impossible (there is nothing to run the extra processes on), so the
  artifact records ``cpu_count`` and the gate degrades to a bounded
  fork/IPC-overhead check (processes ≤ ``single_core_max_overhead`` ×
  threads).  The recorded numbers stay honest either way — the artifact
  says which gate was enforced.

Written to ``BENCH_backends.json``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from conftest import best_of, run_once, smoke_mode, write_artifact

from repro.comm.context import Context
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.core.permutation_checker import HashSumPermutationChecker
from repro.dataflow.streaming import StreamingKeyValueDIA
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"
_CONFIG = SumCheckConfig.parse("8x16 m15")
_NUM_SEEDS = 8
_BACKENDS = ("threads", "processes")
_REPEATS = 3
_WIRE_TOLERANCE = 0.10
_SINGLE_CORE_MAX_OVERHEAD = 3.0
_PERM_ITERATIONS = 4
_CHUNKS_PER_WINDOW = 2


def _pes() -> tuple[int, ...]:
    # Smoke keeps the fork fan-out small; the parity suite already covers
    # p = 4 on every push.
    return (1, 2) if smoke_mode() else (1, 2, 4, 8)


def _scale() -> dict:
    if smoke_mode():
        return {"sum": 2_000, "perm": 4_000, "pipeline": 1_600, "chunk": 400}
    return {"sum": 60_000, "perm": 200_000, "pipeline": 24_000, "chunk": 3_000}


# -- SPMD jobs (module-level: fork-safe, no shared closures) ----------------


def _sum_settle_job(comm, keys, values, out_k, out_v, seeds):
    multi = MultiSeedSumChecker(_CONFIG, seeds)
    res = multi.check_distributed_condensed(
        comm, condense_kv(keys, values), condense_kv(out_k, out_v)
    )
    return bool(res.accepted), list(res.details["per_seed_accepted"])


def _perm_settle_job(comm, e_share, o_share, seed):
    checker = HashSumPermutationChecker(
        iterations=_PERM_ITERATIONS, seed=seed
    )
    res = checker.check(e_share, o_share, comm=comm)
    return bool(res.accepted), list(res.details["detecting_iterations"])


def _pipeline_job(comm, keys, values, chunk, seed):
    chunks = [
        (keys[i : i + chunk], values[i : i + chunk])
        for i in range(0, keys.size, chunk)
    ]
    run = StreamingKeyValueDIA.from_chunks(comm, chunks).reduce_by_key_checked(
        _CONFIG, seed=seed, chunks_per_window=_CHUNKS_PER_WINDOW
    )
    verdicts = [
        (r.window, r.accepted, int(r.seed), r.quarantined)
        for r in run.window_history
    ]
    digests = [(int(ov.sum()), int(ok.size)) for ok, ov in run.outputs]
    return bool(run.accepted), verdicts, digests


# -- per-section argument builders (weak scaling: n per rank constant) ------


def _sum_args(ctx: Context, n_per_rank: int):
    total = n_per_rank * ctx.num_pes
    keys, values = sum_workload(total, seed=derive_seed(0xBAC0, "sum-wl"))
    out_k, out_v = aggregate_reference(keys, values)
    seeds = derive_seed_array(
        0xBAC0, "sum-seeds", np.arange(_NUM_SEEDS, dtype=np.uint64)
    )
    args = list(
        zip(ctx.split(keys), ctx.split(values), ctx.split(out_k), ctx.split(out_v))
    )
    return args, (seeds,)


def _perm_args(ctx: Context, n_per_rank: int):
    total = n_per_rank * ctx.num_pes
    rng = np.random.default_rng(derive_seed(0xBAC0, "perm-wl"))
    data = rng.integers(0, 2**63, total, dtype=np.uint64)
    permuted = data[::-1].copy()
    args = list(zip(ctx.split(data), ctx.split(permuted)))
    return args, (int(derive_seed(0xBAC0, "perm-seed")),)


def _pipeline_args(ctx: Context, n_per_rank: int, chunk: int):
    total = n_per_rank * ctx.num_pes
    keys, values = sum_workload(
        total, num_keys=max(64, total // 50), seed=derive_seed(0xBAC0, "pipe-wl")
    )
    args = list(zip(ctx.split(keys), ctx.split(values)))
    return args, (chunk, int(derive_seed(0xBAC0, "pipe-seed")))


# -- measurement -------------------------------------------------------------


def _measure_section(name, job, build_args, pes) -> list[dict]:
    rows = []
    for p in pes:
        results = {}
        for backend in _BACKENDS:
            ctx = Context(p, backend=backend)
            per_rank, common = build_args(ctx)
            run = lambda: ctx.run(  # noqa: E731
                job, per_rank_args=per_rank, common_args=common
            )
            results[backend] = run()  # warm-up + parity sample
            seconds = best_of(run, _REPEATS)
            meters = ctx.meters
            row = {
                "section": name,
                "p": p,
                "backend": backend,
                "seconds": seconds,
                "modeled_bytes_sent": int(sum(m.bytes_sent for m in meters)),
                "messages": int(sum(m.messages_sent for m in meters)),
            }
            if backend == "processes":
                row["wire_bytes_sent"] = int(
                    sum(m.wire_bytes_sent for m in meters)
                )
            rows.append(row)
            assert results[backend][0], f"{name} rejected at p={p} ({backend})"
        # Bit-identical verdicts across backends, always (smoke included).
        assert results["processes"] == results["threads"], (
            f"{name} p={p}: process backend diverged from thread oracle"
        )
    return rows


def _row(rows, section, p, backend):
    return next(
        r
        for r in rows
        if r["section"] == section and r["p"] == p and r["backend"] == backend
    )


def test_backend_weak_scaling(benchmark):
    scale = _scale()
    pes = _pes()

    def measure():
        rows = []
        rows += _measure_section(
            "sum-settle",
            _sum_settle_job,
            lambda ctx: _sum_args(ctx, scale["sum"]),
            pes,
        )
        rows += _measure_section(
            "perm-settle",
            _perm_settle_job,
            lambda ctx: _perm_args(ctx, scale["perm"]),
            pes,
        )
        rows += _measure_section(
            "windowed-pipeline",
            _pipeline_job,
            lambda ctx: _pipeline_args(ctx, scale["pipeline"], scale["chunk"]),
            pes,
        )
        return rows

    rows = run_once(benchmark, measure)
    cpu_count = os.cpu_count() or 1

    gates: dict = {
        "wire_tolerance": _WIRE_TOLERANCE,
        "single_core_max_overhead": _SINGLE_CORE_MAX_OVERHEAD,
        "speedup_gate": "p4-speedup" if cpu_count >= 2 else "p4-overhead-bound",
    }
    gate_p = 4 if 4 in pes else max(pes)
    proc = _row(rows, "sum-settle", gate_p, "processes")
    thr = _row(rows, "sum-settle", gate_p, "threads")
    gates["sum_settle_p"] = gate_p
    gates["process_over_threads"] = proc["seconds"] / thr["seconds"]
    if proc["modeled_bytes_sent"]:
        gates["wire_over_modeled"] = (
            proc["wire_bytes_sent"] / proc["modeled_bytes_sent"]
        )

    payload = {
        "config": _CONFIG.label(),
        "num_seeds": _NUM_SEEDS,
        "perm_iterations": _PERM_ITERATIONS,
        "cpu_count": cpu_count,
        "pes": list(pes),
        "per_rank_elements": {
            "sum-settle": scale["sum"],
            "perm-settle": scale["perm"],
            "windowed-pipeline": scale["pipeline"],
        },
        "chunk": scale["chunk"],
        "chunks_per_window": _CHUNKS_PER_WINDOW,
        "repeats": 1 if smoke_mode() else _REPEATS,
        "gates": gates,
        "rows": rows,
    }
    write_artifact(_ARTIFACT, payload)
    benchmark.extra_info.update(cpu_count=cpu_count, artifact=str(_ARTIFACT))

    print()
    for section in ("sum-settle", "perm-settle", "windowed-pipeline"):
        for p in pes:
            t = _row(rows, section, p, "threads")["seconds"]
            q = _row(rows, section, p, "processes")["seconds"]
            print(
                f"{section} p={p}: threads {t * 1e3:.1f}ms, "
                f"processes {q * 1e3:.1f}ms ({q / t:.2f}x)"
            )
    print(
        f"sum-settle p={gate_p}: wire/modeled = "
        f"{gates.get('wire_over_modeled', float('nan')):.4f}, "
        f"processes/threads = {gates['process_over_threads']:.2f} "
        f"(cpu_count={cpu_count}, gate={gates['speedup_gate']})"
    )

    if smoke_mode():
        return

    # Gate 1: the α–β model's predicted payload volume must track the
    # actual serialized frame bytes on the sum-settle row.
    ratio = gates["wire_over_modeled"]
    assert abs(ratio - 1.0) <= _WIRE_TOLERANCE, (
        f"modeled wire volume off by {abs(ratio - 1.0):.1%} "
        f"(allowed {_WIRE_TOLERANCE:.0%}) on sum-settle p={gate_p}"
    )

    # Gate 2: real parallelism must pay for itself on the CPU-bound
    # settle — or, on a single core, at least stay within a bounded
    # fork/IPC overhead of the thread oracle.
    over = gates["process_over_threads"]
    if cpu_count >= 2:
        assert over < 1.0, (
            f"process backend {over:.2f}x threads on sum-settle p={gate_p} "
            f"with {cpu_count} cores — real parallelism must win"
        )
    else:
        assert over <= _SINGLE_CORE_MAX_OVERHEAD, (
            f"process backend {over:.2f}x threads on a single core "
            f"(allowed {_SINGLE_CORE_MAX_OVERHEAD}x)"
        )

"""CRC affinity lanes vs the per-seed kernel loop, plus derived rows.

Three sections, all written to ``BENCH_crc_affinity.json``:

1. **Lane level** (the ≥3× gate): generate all ``T = 32 × iterations``
   CRC bucket lanes over 10^6 unique keys through
   :func:`~repro.hashing.bitgroups.iter_bucket_blocks`, once with the
   affinity kernel (``crc_s(x) = crc_0(x) ⊕ c(s)`` — ONE table-lookup
   pass total) and once through a CRC family clone without it (one pass
   per seed block, today's per-seed kernel path).  Outputs are asserted
   bit-identical.
2. **Checker level**: ``MultiSeedSumChecker`` end-to-end on the CRC
   config against the ``T``-instance loop, for continuity with
   ``BENCH_multiseed.json`` (whose CRC row the affinity kernel now
   accelerates for free).
3. **Derived rows**: the multi-seed average/median checkers against
   ``T`` independent single-seed calls — the amortization the derived
   layer inherits from the shared sum core.

``REPRO_BENCH_SMOKE=1`` shrinks everything and skips the artifact/gate.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from conftest import best_of, run_once, smoke_mode, write_artifact

from repro.core.average_checker import (
    check_average_aggregation,
    check_average_aggregation_multiseed,
)
from repro.core.median_checker import (
    check_median_aggregation,
    check_median_aggregation_multiseed,
)
from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker
from repro.hashing.bitgroups import iter_bucket_blocks
from repro.hashing.families import HashFamily, _CRCHash, _crc_batch_kernel, get_family
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_crc_affinity.json"
_NUM_SEEDS = 32
_MIN_LANE_SPEEDUP = 3.0
_CONFIG = "8x16 CRC m15"

#: The pre-affinity execution path: same CRC batch kernel, no multiseed
#: kernel, so ``iter_bucket_blocks`` hashes every seed block separately.
_CRC_PLAIN = HashFamily(
    "CRCplain",
    _CRCHash,
    32,
    "CRC-32C without the affinity kernel (per-seed baseline)",
    batch_kernel=_crc_batch_kernel(8),
)


def _consume_lanes(family, d, iterations, seeds, keys):
    checksum = 0
    for _, _, buckets in iter_bucket_blocks(
        family, d, iterations, seeds, keys, 1 << 18
    ):
        checksum ^= int(buckets[0, 0])
    return checksum


def _lane_cell(cfg: SumCheckConfig, seeds, keys, benchmark) -> dict:
    crc = get_family("CRC")
    args = (cfg.d, cfg.iterations, seeds, keys)

    # Equivalence gate: the affinity lanes are bit-identical to the
    # per-seed kernel lanes, block for block (doubles as warm-up).
    for (s_a, c_a, b_a), (s_p, c_p, b_p) in zip(
        iter_bucket_blocks(crc, *args, 1 << 18),
        iter_bucket_blocks(_CRC_PLAIN, *args, 1 << 18),
    ):
        assert (s_a, c_a) == (s_p, c_p)
        assert np.array_equal(b_a, b_p), "affinity lanes diverged"

    plain_s = best_of(lambda: _consume_lanes(_CRC_PLAIN, *args), 2)
    if benchmark is not None:
        t0 = time.perf_counter()
        run_once(benchmark, lambda: _consume_lanes(crc, *args))
        affinity_s = min(
            time.perf_counter() - t0,
            best_of(lambda: _consume_lanes(crc, *args), 2),
        )
    else:
        affinity_s = best_of(lambda: _consume_lanes(crc, *args), 3)
    lanes = seeds.size * cfg.iterations
    return {
        "section": "lanes",
        "config": cfg.label(),
        "num_seeds": int(seeds.size),
        "elements": int(keys.size),
        "lanes": int(lanes),
        "per_seed_kernel_seconds": plain_s,
        "affinity_seconds": affinity_s,
        "per_seed_kernel_ns_per_lane_element": plain_s / (lanes * keys.size) * 1e9,
        "affinity_ns_per_lane_element": affinity_s / (lanes * keys.size) * 1e9,
        "speedup": plain_s / affinity_s,
    }


def _checker_cell(cfg: SumCheckConfig, seeds, keys, values) -> dict:
    multi = MultiSeedSumChecker(cfg, seeds)

    def instance_loop():
        return [
            SumAggregationChecker(cfg, int(s)).local_tables(keys, values)
            for s in seeds
        ]

    reference = instance_loop()
    tables = multi.local_tables(keys, values)
    for t in range(seeds.size):
        assert np.array_equal(tables[t], reference[t]), f"seed {t}"

    loop_s = best_of(instance_loop, 2)
    multi_s = best_of(lambda: multi.local_tables(keys, values), 3)
    return {
        "section": "checker",
        "config": cfg.label(),
        "num_seeds": int(seeds.size),
        "elements": int(keys.size),
        "instance_loop_seconds": loop_s,
        "multiseed_seconds": multi_s,
        "speedup": loop_s / multi_s,
    }


def _derived_cells(cfg: SumCheckConfig, seeds, keys, values) -> list[dict]:
    out_k, out_v = aggregate_reference(keys, values)
    counts = aggregate_reference(keys, np.ones(keys.size, dtype=np.int64))[1]
    den = np.ones(out_k.size, dtype=np.int64)
    # Exact rational averages with denominator = count: num/den = sum/count.
    avg_args = (out_k, out_v, counts, counts)

    med_num = out_v  # deliberately wrong medians are unnecessary: timing only
    cells = []

    def avg_loop():
        return [
            check_average_aggregation(
                (keys, values), *avg_args, config=cfg, seed=int(s)
            ).accepted
            for s in seeds
        ]

    def avg_multi():
        return check_average_aggregation_multiseed(
            (keys, values), *avg_args, seeds, config=cfg
        )

    multi_res = avg_multi()
    assert multi_res.details["per_seed_accepted"] == avg_loop()
    cells.append(
        {
            "section": "derived",
            "checker": "average",
            "config": cfg.label(),
            "num_seeds": int(seeds.size),
            "elements": int(keys.size),
            "instance_loop_seconds": best_of(avg_loop, 2),
            "multiseed_seconds": best_of(avg_multi, 2),
        }
    )

    def med_loop():
        return [
            check_median_aggregation(
                keys, values, out_k, med_num, den, config=cfg, seed=int(s)
            ).accepted
            for s in seeds
        ]

    def med_multi():
        return check_median_aggregation_multiseed(
            keys, values, out_k, med_num, den, seeds, config=cfg
        )

    multi_res = med_multi()
    assert multi_res.details["per_seed_accepted"] == med_loop()
    cells.append(
        {
            "section": "derived",
            "checker": "median",
            "config": cfg.label(),
            "num_seeds": int(seeds.size),
            "elements": int(keys.size),
            "instance_loop_seconds": best_of(med_loop, 2),
            "multiseed_seconds": best_of(med_multi, 2),
        }
    )
    for cell in cells:
        cell["speedup"] = (
            cell["instance_loop_seconds"] / cell["multiseed_seconds"]
        )
    return cells


def test_crc_affinity_speedup(benchmark, overhead_elements):
    n = overhead_elements if smoke_mode() else max(overhead_elements, 10**6)
    cfg = SumCheckConfig.parse(_CONFIG)
    seeds = derive_seed_array(
        0xAF1, "checker", np.arange(_NUM_SEEDS, dtype=np.uint64)
    )
    keys, values = sum_workload(n, seed=derive_seed(0xAF1, "wl"))
    # The lane benchmark hashes *unique* keys — exactly what the checker's
    # condensation feeds the hash layer.
    unique_keys = np.unique(keys)

    lane = _lane_cell(cfg, seeds, unique_keys, benchmark)
    checker = _checker_cell(cfg, seeds, keys, values)
    derived_n = min(n, 200_000)  # instance loops over T=32 are pricey
    derived = _derived_cells(
        SumCheckConfig.parse("8x16 m15"), seeds,
        keys[:derived_n], values[:derived_n],
    )

    cells = [lane, checker, *derived]
    write_artifact(
        _ARTIFACT,
        {
            "primary": "lanes " + _CONFIG,
            "min_required_lane_speedup": _MIN_LANE_SPEEDUP,
            "cells": cells,
        },
    )
    benchmark.extra_info.update(
        lane_speedup=lane["speedup"], artifact=str(_ARTIFACT)
    )
    print()
    for cell in cells:
        label = cell.get("checker", cell["section"])
        print(f"{label} ({cell['config']}): {cell['speedup']:.2f}x")
    if not smoke_mode():
        assert lane["speedup"] >= _MIN_LANE_SPEEDUP, (
            f"CRC affinity lanes only {lane['speedup']:.2f}x over the "
            f"per-seed kernel loop (required {_MIN_LANE_SPEEDUP}x)"
        )

"""Fig 3: accuracy of the sum-aggregation checker per manipulator × config.

Paper setup: 50 000 power-law elements over 10^6 possible values, 4 PEs,
100 000 trials per cell, 16 configurations (Table 3 accuracy block × {CRC,
Tab}) × 6 manipulators (Table 4).  The y axis is failure rate / δ.

Expected shape (paper §7.1):
* ratios ≤ 1 throughout — Lemma 2 generally *overestimates* the modulus
  contribution;
* CRC behaves well on subtle manipulations but shows an **elevated ratio on
  IncDec1** (low-bit linearity);
* tabulation is uniformly consistent with the ideal analysis.

Trial counts scale via ``REPRO_BENCH_TRIALS`` (default 400 per cell; the
batched engine makes the paper's 100 000 routine — set
``REPRO_BENCH_ACCURACY_MODE=reference`` for the per-trial oracle loop,
which produces identical verdicts).
"""

from __future__ import annotations

from conftest import run_once

from repro.core.params import PAPER_TABLE3_ACCURACY, SumCheckConfig
from repro.experiments.accuracy import sum_checker_accuracy
from repro.experiments.report import format_table
from repro.faults.manipulators import SUM_MANIPULATORS

_HASHES = ("CRC", "Tab")


def test_fig3_sum_checker_accuracy(benchmark, accuracy_trials, accuracy_mode):
    def experiment():
        rows = []
        for manipulator in SUM_MANIPULATORS:
            for label in PAPER_TABLE3_ACCURACY:
                for hash_family in _HASHES:
                    cfg = SumCheckConfig.parse(label).with_hash(hash_family)
                    cell = sum_checker_accuracy(
                        cfg,
                        manipulator,
                        trials=accuracy_trials,
                        seed=0xF163,
                        mode=accuracy_mode,
                    )
                    rows.append(cell)
        return rows

    cells = run_once(benchmark, experiment)
    benchmark.extra_info["accuracy_mode"] = accuracy_mode
    print()
    print(
        format_table(
            ["manipulator", "config", "fail rate", "δ", "ratio", "±σ"],
            [
                (
                    c.manipulator,
                    c.config,
                    f"{c.failure_rate:.4f}",
                    f"{c.expected_delta:.2e}",
                    f"{c.ratio:.3f}",
                    f"{c.stderr / c.expected_delta:.3f}",
                )
                for c in cells
            ],
        )
    )
    benchmark.extra_info["cells"] = len(cells)
    benchmark.extra_info["trials_per_cell"] = accuracy_trials

    # Shape assertions (only where the trial count gives statistical power:
    # expected failures >= ~10).  Ratio <= 1 within noise — except CRC on
    # the key-increment manipulators (IncKey, IncDec): those exercise
    # crc(k) vs crc(k+1), whose low output bits "change in similar ways for
    # different inputs" (§7.1) — the documented CRC anomaly, reported but
    # not bounded.  Tabulation must meet the bound on *every* manipulator.
    for c in cells:
        expected_failures = c.expected_delta * c.trials
        if expected_failures < 10:
            continue
        if "CRC" in c.config and c.manipulator in (
            "IncKey",
            "IncDec1",
            "IncDec2",
        ):
            continue
        slack = 5 * c.stderr / c.expected_delta if c.stderr else 0.5
        assert c.ratio <= 1.0 + max(slack, 0.25), (
            f"{c.manipulator} {c.config}: ratio {c.ratio:.2f} "
            f"exceeds δ beyond noise"
        )
    # The anomaly itself must be visible somewhere (as in the paper's plot).
    elevated = [
        c.ratio
        for c in cells
        if "CRC" in c.config
        and c.manipulator in ("IncKey", "IncDec1", "IncDec2")
        and c.expected_delta * c.trials >= 10
    ]
    benchmark.extra_info["crc_incdec_max_ratio"] = max(elevated, default=0.0)
    assert max(elevated, default=0.0) > 1.2, (
        "expected the paper's CRC low-bit anomaly on IncDec/IncKey"
    )

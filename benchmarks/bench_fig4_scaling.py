"""Fig 4: weak-scaling overhead of the checked reduction pipeline.

Paper: 125 000 Zipf items per PE, p = 32..4096 cores of bwUniCluster,
time(with checker)/time(without checker) ≈ 1.01–1.12 and essentially flat —
"the overhead introduced by the checkers is within the fluctuations
introduced by the network"; average overhead 1.1 % beyond one node, 2.4 %
for the most accurate configuration.

Substitution (DESIGN.md): measured thread-backed ratios for small p (real
local work, shared-memory messages — an *upper bound* on the ratio because
our simulated network is nearly free while the checker's numpy local work
is ~15x more expensive per element than the paper's SIMD C++), plus the
paper's own α–β model with measured local constants for the full p range.
Shape assertions: the modeled ratio stays modest and does not grow with p.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.params import SumCheckConfig
from repro.experiments.report import format_table
from repro.experiments.scaling import measured_weak_scaling, modeled_weak_scaling

_CONFIGS = ("5x16 CRC m5", "4x256 CRC m15", "16x16 Tab64 m15")


def test_fig4_weak_scaling(benchmark, overhead_elements):
    items_per_pe = max(10_000, overhead_elements // 10)

    def experiment():
        measured = {
            label: measured_weak_scaling(
                SumCheckConfig.parse(label),
                items_per_pe=items_per_pe,
                pes=(1, 2, 4, 8),
                repeats=3,
                num_keys=10**5,
                seed=0xF164,
            )
            for label in _CONFIGS
        }
        modeled = {
            label: modeled_weak_scaling(
                SumCheckConfig.parse(label),
                items_per_pe=125_000,
                pes=(32, 64, 128, 256, 512, 1024, 2048, 4096),
                num_keys=10**6,
                measure_elements=max(100_000, overhead_elements // 3),
                seed=0xF164,
            )
            for label in _CONFIGS
        }
        return measured, modeled

    measured, modeled = run_once(benchmark, experiment)
    print()
    rows = []
    for label, points in measured.items():
        for pt in points:
            rows.append((label, "measured (threads)", pt.p, f"{pt.ratio:.3f}"))
    for label, points in modeled.items():
        for pt in points:
            rows.append((label, "α–β model", pt.p, f"{pt.ratio:.3f}"))
    print(format_table(["configuration", "mode", "p", "time ratio"], rows))

    for label, points in modeled.items():
        ratios = [pt.ratio for pt in points]
        benchmark.extra_info[f"model_ratio_{label}"] = ratios[-1]
        # Shape: overhead does not blow up with p (flat or declining as the
        # exchange starts to dominate — the paper's central observation).
        assert ratios[-1] <= ratios[0] * 1.05, (label, ratios)
        assert ratios[-1] < 1.5, (label, ratios)

"""Fig 5 (Appendix A): permutation/sort checker accuracy.

Paper setup: 10^6 elements uniform over 0..10^8−1, 4 PEs, 100 000 trials,
hash ∈ {CRC, Tab} × logH ∈ {1, 2, 3, 4, 6, 8, 12}, manipulators of Table 6.

Expected shape: ratios ≈ 1 for tabulation on every manipulator; **CRC fails
on Increment** (ratios far above 1 at several logH values, the paper plots
up to 6) because CRC's low output bits respond linearly to +1; CRC is fine
on the other manipulators.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.params import PAPER_FIG5_LOG_H, PermCheckConfig
from repro.experiments.accuracy import perm_checker_accuracy
from repro.experiments.report import format_table
from repro.faults.manipulators import PERM_MANIPULATORS

_HASHES = ("CRC", "Tab")


def test_fig5_permutation_checker_accuracy(benchmark, accuracy_trials, accuracy_mode):
    def experiment():
        rows = []
        for manipulator in PERM_MANIPULATORS:
            for hash_family in _HASHES:
                for log_h in PAPER_FIG5_LOG_H:
                    cfg = PermCheckConfig(log_h=log_h, hash_family=hash_family)
                    cell = perm_checker_accuracy(
                        cfg,
                        manipulator,
                        trials=accuracy_trials,
                        seed=0xF165,
                        mode=accuracy_mode,
                    )
                    rows.append(cell)
        return rows

    cells = run_once(benchmark, experiment)
    benchmark.extra_info["accuracy_mode"] = accuracy_mode
    print()
    print(
        format_table(
            ["manipulator", "config", "fail rate", "δ", "ratio"],
            [
                (
                    c.manipulator,
                    c.config,
                    f"{c.failure_rate:.4f}",
                    f"{c.expected_delta:.2e}",
                    f"{c.ratio:.3f}",
                )
                for c in cells
            ],
        )
    )
    benchmark.extra_info["cells"] = len(cells)

    # Shape assertion 1: tabulation matches the ideal bound everywhere
    # (within noise, where measurable).
    for c in cells:
        if not c.config.startswith("Tab"):
            continue
        if c.expected_delta * c.trials < 10:
            continue
        slack = 5 * c.stderr / c.expected_delta
        assert c.ratio <= 1.0 + max(slack, 0.25), (
            f"Tab {c.config} {c.manipulator}: ratio {c.ratio:.2f}"
        )
    # Shape assertion 2: CRC shows the Increment anomaly at some logH.
    crc_increment = [
        c
        for c in cells
        if c.config.startswith("CRC") and c.manipulator == "Increment"
    ]
    max_ratio = max(c.ratio for c in crc_increment)
    benchmark.extra_info["crc_increment_max_ratio"] = max_ratio
    assert max_ratio > 1.5, (
        f"expected the paper's CRC/Increment anomaly (ratio >> 1), "
        f"got max ratio {max_ratio:.2f}"
    )

"""Kernel-tier comparison: numpy oracle vs the optional numba backend.

Times every kernel in :data:`repro.kernels.dispatch.KERNEL_NAMES` on both
tiers (when the numba tier is importable and self-check-clean) over
checker-shaped inputs, plus the fused-vs-condensing multi-seed streaming
comparison the tier exists to accelerate.  Written to
``BENCH_kernel_tiers.json``.

Gates (skipped in smoke mode):

* parity — every kernel's numba output is asserted bit-identical to the
  numpy oracle on the bench inputs (always checked when numba is
  available, even in smoke mode: correctness is free);
* when numba is available, no kernel may run slower than 1.5× the numpy
  oracle (the tier must never be a de-optimization — the dispatch would
  otherwise pick it under ``auto``).

On numba-free machines the artifact records the numpy timings alone with
``numba_available: false`` — the bench never installs anything.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from conftest import best_of, run_once, smoke_mode, write_artifact

from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.streams import MultiSeedSumCheckerStream
from repro.kernels import get_kernels, numba_available
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_kernel_tiers.json"
_CONFIG = SumCheckConfig.parse("8x16 Tab64 m15")
_CHUNK = 1 << 16
_NUM_SEEDS = 8
_MAX_NUMBA_REGRESSION = 1.5


def _kernel_inputs(n, rng):
    """Checker-shaped inputs for every kernel signature."""
    T = _NUM_SEEDS
    keys = rng.integers(0, 2**64, n, dtype=np.uint64)
    seeds = rng.integers(0, 2**64, T, dtype=np.uint64)
    tables = rng.integers(0, 2**64, (8, T, 256), dtype=np.uint64)
    byte_idx = rng.integers(0, 256, (8, n)).astype(np.intp)
    buckets = rng.integers(0, 16, n).astype(np.intp)
    r = (1 << 15) - 19
    mod_vals = rng.integers(0, r, n, dtype=np.int64)
    weights = rng.integers(-(2**30), 2**30, n).astype(np.float64)
    ka = np.unique(rng.integers(0, 2 * n, n, dtype=np.uint64))
    kb = np.unique(rng.integers(n, 3 * n, n, dtype=np.uint64))
    va = rng.integers(-(2**40), 2**40, ka.size, dtype=np.int64)
    vb = rng.integers(-(2**40), 2**40, kb.size, dtype=np.int64)
    mask = np.uint64((1 << 15) - 1)

    # Every callable allocates its own outputs and *returns* them, so the
    # same closure serves both the timing loop and the parity assertion
    # (allocation cost is identical across tiers).
    def tab_gather(k):
        out = np.empty((T, n), dtype=np.uint64)
        k.tab_gather(tables, byte_idx, out, np.empty_like(out))
        return out

    def scatter_add_mod(k):
        table = np.zeros(16, dtype=np.int64)
        k.scatter_add_mod(table, buckets, mod_vals, r)
        return table

    def mix_lanes(k):
        out = np.empty((T, n), dtype=np.uint64)
        k.mix_lanes(seeds, keys, mask, out)
        return out

    def mshift_lanes(k):
        out = np.empty((T, n), dtype=np.uint64)
        k.mshift_lanes(seeds | np.uint64(1), keys, np.uint64(32), out)
        return out

    return {
        "tab_gather": tab_gather,
        "scatter_add_mod": scatter_add_mod,
        "weighted_bincount": lambda k: k.weighted_bincount(
            buckets, weights, 16
        ),
        "mix_lanes": mix_lanes,
        "mshift_lanes": mshift_lanes,
        "merge_sorted_unique_sum": lambda k: k.merge_sorted_unique_sum(
            ka, va, kb, vb
        ),
        "merge_sorted_unique_xor": lambda k: k.merge_sorted_unique_xor(
            ka, va.view(np.uint64), kb, vb.view(np.uint64)
        ),
    }


def _kernel_parity(name, call):
    """Bit-identity of the numba kernel vs the numpy oracle on bench inputs."""
    a = call(get_kernels("numpy"))
    b = call(get_kernels("numba"))
    if isinstance(a, tuple):
        assert all(np.array_equal(x, y) for x, y in zip(a, b)), name
    else:
        assert np.array_equal(a, b), name


def _stream_cell(n) -> dict:
    keys, values = sum_workload(n, seed=derive_seed(0x7133, "wl"))
    out_k, out_v = aggregate_reference(keys, values)
    seeds = derive_seed_array(
        0x7133, "ms", np.arange(_NUM_SEEDS, dtype=np.uint64)
    )
    checker = MultiSeedSumChecker(_CONFIG, seeds)
    chunks = [
        (keys[i : i + _CHUNK], values[i : i + _CHUNK])
        for i in range(0, n, _CHUNK)
    ]

    def stream_once(fused):
        stream = MultiSeedSumCheckerStream(checker, fused=fused)
        for k, v in chunks:
            stream.feed_input(k, v)
        stream.feed_output(out_k, out_v)
        return stream.settle()

    auto = stream_once("auto")
    fused = stream_once(True)
    unfused = stream_once(False)
    assert (
        auto.details["per_seed_accepted"]
        == fused.details["per_seed_accepted"]
        == unfused.details["per_seed_accepted"]
    )
    auto_s = best_of(lambda: stream_once("auto"), 2)
    fused_s = best_of(lambda: stream_once(True), 2)
    unfused_s = best_of(lambda: stream_once(False), 2)
    return {
        "section": "fused-vs-condense-multiseed-stream",
        "config": _CONFIG.label(),
        "num_seeds": _NUM_SEEDS,
        "elements": int(n),
        "chunk": _CHUNK,
        "auto_seconds": auto_s,
        "fused_seconds": fused_s,
        "condense_seconds": unfused_s,
        "auto_over_condense": auto_s / unfused_s,
        "fused_over_condense": fused_s / unfused_s,
    }


def test_kernel_tier_throughput(benchmark, overhead_elements):
    n = overhead_elements
    rng = np.random.default_rng(0xBEEF)
    calls = _kernel_inputs(n, rng)
    have_numba = numba_available()

    kernels = {}
    for name, call in calls.items():
        if have_numba:
            _kernel_parity(name, call)
        row = {
            "elements": int(n),
            "numpy_seconds": best_of(lambda c=call: c(get_kernels("numpy")), 3),
        }
        if have_numba:
            nb = get_kernels("numba")
            call(nb)  # JIT warm-up outside the timed region
            row["numba_seconds"] = best_of(lambda c=call: c(nb), 3)
            row["numba_over_numpy"] = (
                row["numba_seconds"] / row["numpy_seconds"]
            )
        kernels[name] = row

    stream = run_once(benchmark, lambda: _stream_cell(n))
    report = {
        "numba_available": have_numba,
        "max_allowed_numba_over_numpy": _MAX_NUMBA_REGRESSION,
        "kernels": kernels,
        "cells": [stream],
    }
    write_artifact(_ARTIFACT, report)
    benchmark.extra_info.update(
        numba_available=have_numba, artifact=str(_ARTIFACT)
    )
    print()
    for name, row in kernels.items():
        extra = (
            f", numba {row['numba_seconds'] * 1e3:.2f}ms "
            f"({row['numba_over_numpy']:.2f}x)"
            if "numba_seconds" in row
            else ""
        )
        print(f"{name}: numpy {row['numpy_seconds'] * 1e3:.2f}ms{extra}")
    print(
        f"stream fused/condense = {stream['fused_over_condense']:.3f}, "
        f"auto/condense = {stream['auto_over_condense']:.3f}"
    )
    if not smoke_mode() and have_numba:
        for name, row in kernels.items():
            assert row["numba_over_numpy"] <= _MAX_NUMBA_REGRESSION, (
                f"{name}: numba tier {row['numba_over_numpy']:.2f}x slower "
                f"than numpy (allowed {_MAX_NUMBA_REGRESSION}x)"
            )

"""Localization precision, repair fidelity, and the bisection cost gate.

Acceptance gates for the localization-and-repair subsystem, written to
``BENCH_localization.json``:

1. **Window accuracy** (gated ≥95%): inject every Table 4 manipulator
   into known windows of multi-window runs
   (:func:`repro.experiments.localization.run_localization_trials`);
   the per-window check must reject exactly the corrupted window and
   the repaired window must re-settle ACCEPT with aggregates
   bit-identical to the clean run (gated: every repaired trial).
2. **Cost** (gated ≤0.25×): at n = 10^6, localizing a single injected
   fault from the retained condensations must cost at most a quarter of
   the original multi-seed check — bisection is logarithmic in the key
   population, not a second full pass.

``REPRO_BENCH_SMOKE=1`` shrinks trial counts and element sizes and skips
the artifact/gates, so CI executes every code path cheaply.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from conftest import best_of, run_once, smoke_mode, write_artifact

from repro.core.localize import localize_fault
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.experiments.localization import (
    DEFAULT_MANIPULATORS,
    run_localization_trials,
    summarize_trials,
)
from repro.faults.manipulators import get_kv_manipulator
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_localization.json"
_CONFIG = SumCheckConfig.parse("8x16 m15")
_NUM_SEEDS = 2
_MIN_EXACT_WINDOW_RATE = 0.95
_MAX_LOCALIZE_OVER_CHECK = 0.25


def _accuracy_cell(trials: int) -> dict:
    batch = run_localization_trials(
        _CONFIG,
        trials,
        windows=3,
        elements_per_window=2048 if smoke_mode() else 8192,
        key_domain=256 if smoke_mode() else 2048,
        num_seeds=_NUM_SEEDS,
        seed=0xF417,
    )
    s = summarize_trials(batch)
    repaired = [t for t in batch if t.repaired]
    return {
        "section": "window-accuracy",
        "config": _CONFIG.label(),
        "manipulators": list(DEFAULT_MANIPULATORS),
        "trials": s.trials,
        "windows": 3,
        "exact_window_rate": s.exact_window_rate,
        "localized_rate": s.localized_rate,
        "key_cover_rate": s.key_cover_rate,
        "repair_rate": s.repair_rate,
        "bit_identical_rate": s.bit_identical_rate,
        "repaired_all_bit_identical": all(t.bit_identical for t in repaired),
        "mean_bisection_rounds": s.mean_bisection_rounds,
        "mean_range_count": s.mean_range_count,
        "mean_repair_attempts": sum(t.repair_attempts for t in batch)
        / len(batch),
    }


def _cost_cell(n: int) -> dict:
    keys, values = sum_workload(n, seed=derive_seed(0xF417, "cost-wl"))
    out_k, out_v = aggregate_reference(keys, values)
    man = get_kv_manipulator("Bitflip", rng=derive_seed(0xF417, "cost-fault"))
    effect = man.apply(None, keys, values)
    bad_k, bad_v = aggregate_reference(effect.keys, effect.values)
    seeds = derive_seed_array(
        derive_seed(0xF417, "cost-check"),
        "seed",
        np.arange(_NUM_SEEDS, dtype=np.uint64),
    )
    checker = MultiSeedSumChecker(_CONFIG, seeds)
    cin = condense_kv(keys, values)
    cbad = condense_kv(bad_k, bad_v)
    assert not checker.check_local_condensed(cin, cbad).accepted
    # What a caller retains from the failed check: the condensed sides
    # and the per-seed ⊕-difference tensor.  Localization starts there.
    diff = checker.difference(
        checker.local_tables_condensed(cin),
        checker.local_tables_condensed(cbad),
    )

    check_s = best_of(
        lambda: checker.check_local((keys, values), (bad_k, bad_v)), 3
    )
    report = localize_fault(cin, cbad, _CONFIG, seeds, diff=diff)
    assert report.localized
    loc_s = best_of(
        lambda: localize_fault(cin, cbad, _CONFIG, seeds, diff=diff), 3
    )
    recompute_s = best_of(lambda: localize_fault(cin, cbad, _CONFIG, seeds), 3)
    return {
        "section": "cost",
        "config": _CONFIG.label(),
        "elements": int(n),
        "unique_keys": int(cin.unique_keys.size),
        "check_seconds": check_s,
        "localize_seconds": loc_s,
        "localize_recompute_seconds": recompute_s,
        "localize_over_check": loc_s / check_s,
        "bisection_rounds": report.bisection_rounds,
        "key_ranges": [[int(a), int(b)] for a, b in report.key_ranges],
    }


def test_localization(benchmark, overhead_elements):
    trials = 12 if smoke_mode() else 120
    n = overhead_elements if smoke_mode() else max(overhead_elements, 10**6)

    t0 = time.perf_counter()
    acc = run_once(benchmark, lambda: _accuracy_cell(trials))
    cost = _cost_cell(n)
    cells = [acc, cost]

    write_artifact(
        _ARTIFACT,
        {
            "primary": "window-accuracy",
            "min_exact_window_rate": _MIN_EXACT_WINDOW_RATE,
            "max_localize_over_check": _MAX_LOCALIZE_OVER_CHECK,
            "total_seconds": time.perf_counter() - t0,
            "cells": cells,
        },
    )
    benchmark.extra_info.update(
        exact_window_rate=acc["exact_window_rate"],
        localize_over_check=cost["localize_over_check"],
        artifact=str(_ARTIFACT),
    )
    print()
    print(
        f"window-accuracy: exact={acc['exact_window_rate']:.3f} "
        f"repair={acc['repair_rate']:.3f} "
        f"bit-identical={acc['bit_identical_rate']:.3f} over "
        f"{acc['trials']} trials"
    )
    print(
        f"cost: localize/check = {cost['localize_over_check']:.3f} "
        f"({cost['bisection_rounds']} rounds at n={n})"
    )
    if not smoke_mode():
        assert acc["exact_window_rate"] >= _MIN_EXACT_WINDOW_RATE, (
            f"only {acc['exact_window_rate']:.1%} of single-window faults "
            f"localized to the exact window "
            f"(gate {_MIN_EXACT_WINDOW_RATE:.0%})"
        )
        assert acc["repaired_all_bit_identical"], (
            "a repaired window re-settled with aggregates differing from "
            "the clean run"
        )
        ratio = cost["localize_over_check"]
        assert ratio <= _MAX_LOCALIZE_OVER_CHECK, (
            f"localization costs {ratio:.2f}x the original check at n={n} "
            f"(allowed {_MAX_LOCALIZE_OVER_CHECK}x)"
        )

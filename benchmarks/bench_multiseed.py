"""Multi-seed batched checking vs the per-seed instance loop.

Times ``T = 32`` independent sum checkers over a 10^6-element Zipf
workload on both execution paths — a loop of
:class:`~repro.core.sum_checker.SumAggregationChecker` instances versus one
:class:`~repro.core.multiseed.MultiSeedSumChecker` pass — asserts the
multi-seed tables are bit-identical per seed, and emits a
``BENCH_multiseed.json`` artifact at the repo root so future PRs can track
the amortization trajectory.

The primary configuration (``8x16 CRC m15``, a Table 3 scaling row) gates
the ≥5× speedup requirement; the broadcast-lane rows (Mix and MShift,
rewritten to one cache-blocked pass over the keys with hoisted per-seed
constants) each gate ≥10×; Tab/Tab64 are reported alongside.
``REPRO_BENCH_ELEMENTS`` scales the workload but the artifact floors it at
the paper's 10^6 so the recorded numbers stay comparable across PRs.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from conftest import best_of as _best_of
from conftest import run_once, smoke_mode, write_artifact

from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_multiseed.json"
_NUM_SEEDS = 32
_MIN_SPEEDUP = 5.0
_PRIMARY = "8x16 CRC m15"
_FAMILIES = (
    "8x16 CRC m15",
    "8x16 Mix m15",
    "8x16 MShift m15",
    "8x16 Tab m15",
    "8x16 Tab64 m15",
)
# The broadcast-lane families (one blocked pass, hoisted per-seed
# constants) carry their own, stricter gate.
_BROADCAST_MIN_SPEEDUP = 10.0
_BROADCAST_GATED = ("8x16 Mix m15", "8x16 MShift m15")


def _measure_cell(label: str, keys, values, seeds, benchmark=None) -> dict:
    cfg = SumCheckConfig.parse(label)
    n = keys.size

    def instance_loop():
        return [
            SumAggregationChecker(cfg, int(s)).local_tables(keys, values)
            for s in seeds
        ]

    multi = MultiSeedSumChecker(cfg, seeds)

    def batched():
        return multi.local_tables(keys, values)

    # Equivalence gate: every seed's table is bit-identical.
    reference = instance_loop()  # doubles as the loop warm-up
    tables = batched()  # multi-seed warm-up
    for t in range(seeds.size):
        assert np.array_equal(tables[t], reference[t]), f"{label}: seed {t}"

    loop_s = _best_of(instance_loop, 2)
    if benchmark is not None:
        t0 = time.perf_counter()
        run_once(benchmark, batched)
        multi_s = min(time.perf_counter() - t0, _best_of(batched, 2))
    else:
        multi_s = _best_of(batched, 3)
    per_seed_elems = n * seeds.size
    return {
        "config": label,
        "num_seeds": int(seeds.size),
        "elements": int(n),
        "instance_loop_seconds": loop_s,
        "multiseed_seconds": multi_s,
        "instance_loop_ns_per_element_seed": loop_s / per_seed_elems * 1e9,
        "multiseed_ns_per_element_seed": multi_s / per_seed_elems * 1e9,
        "speedup": loop_s / multi_s,
    }


def test_multiseed_speedup(benchmark, overhead_elements):
    n = overhead_elements if smoke_mode() else max(overhead_elements, 10**6)
    keys, values = sum_workload(n, seed=derive_seed(0x5EED, "wl"))
    seeds = derive_seed_array(
        0x5EED, "checker", np.arange(_NUM_SEEDS, dtype=np.uint64)
    )

    cells = [
        _measure_cell(
            label, keys, values, seeds,
            benchmark=benchmark if label == _PRIMARY else None,
        )
        for label in _FAMILIES
    ]
    report = {
        "primary": _PRIMARY,
        "min_required_speedup": _MIN_SPEEDUP,
        "broadcast_gated": list(_BROADCAST_GATED),
        "broadcast_min_required_speedup": _BROADCAST_MIN_SPEEDUP,
        "cells": cells,
    }
    write_artifact(_ARTIFACT, report)

    by_label = {c["config"]: c for c in cells}
    primary = by_label[_PRIMARY]
    benchmark.extra_info.update(
        speedup=primary["speedup"], artifact=str(_ARTIFACT)
    )
    print()
    for cell in cells:
        print(
            f"{cell['config']}: loop {cell['instance_loop_seconds']:.2f}s, "
            f"multi-seed {cell['multiseed_seconds']:.2f}s "
            f"-> {cell['speedup']:.1f}x"
        )
    if not smoke_mode():
        assert primary["speedup"] >= _MIN_SPEEDUP, (
            f"multi-seed path only {primary['speedup']:.1f}x over the "
            f"instance loop (required {_MIN_SPEEDUP}x)"
        )
        for label in _BROADCAST_GATED:
            speedup = by_label[label]["speedup"]
            assert speedup >= _BROADCAST_MIN_SPEEDUP, (
                f"{label}: broadcast lanes only {speedup:.1f}x over the "
                f"instance loop (required {_BROADCAST_MIN_SPEEDUP}x)"
            )

"""Chaos soak of the checked streaming service: detection and isolation.

Acceptance gates for the always-on service, written to ``BENCH_soak.json``:

1. **Detection** (gated, asserted even in smoke): a multi-tenant soak
   (≥8 tenants cycling reduce/sum/zip/count) with randomized Table 4 /
   Table 6 fault injection must leave **zero undetected corruptions
   beyond the analytic allowance**
   (:func:`repro.experiments.accuracy.detection_allowance` of the
   Fig 3 / Fig 5 failure bounds), every healed window **bit-identical**
   to the clean ground truth, and every tenant's worker alive.
2. **Isolation** (latency gate full-scale only): re-running the same
   8 base tenants next to always-faulting, fully persistent chaos
   tenants must (a) leave the base tenants' audited outcomes exactly
   unchanged and (b) keep their worst per-tenant p50 settle latency
   within ``_MAX_STALL_FACTOR`` of the chaos-free baseline (plus a
   small absolute slack for scheduler noise) — a quarantined tenant
   never stalls a healthy tenant's windows.

``REPRO_BENCH_SMOKE=1`` shrinks windows and chunk sizes and skips the
artifact/latency gate; the correctness gates always run.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path

from conftest import run_once, smoke_mode, write_artifact

from repro.service import SoakConfig, run_soak

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_soak.json"
_MAX_STALL_FACTOR = 5.0
_STALL_SLACK_S = 0.05
_EXTRA_CHAOS = 4


def _detection_config() -> SoakConfig:
    smoke = smoke_mode()
    return SoakConfig(
        tenants=8,
        windows_per_tenant=2 if smoke else 6,
        chunks_per_window=2 if smoke else 4,
        chunk_size=128 if smoke else 1024,
        key_domain=64 if smoke else 256,
        fault_rate=0.5,
        persistent_share=0.3,
        seed=0x50AC,
    )


def _isolation_config() -> SoakConfig:
    smoke = smoke_mode()
    return SoakConfig(
        tenants=8,
        windows_per_tenant=2 if smoke else 4,
        chunks_per_window=2 if smoke else 4,
        chunk_size=128 if smoke else 1024,
        key_domain=64 if smoke else 256,
        fault_rate=0.15,
        persistent_share=0.25,
        seed=0x150A,
    )


def _logical(report, names):
    drop = {"rsp_avg", "rsp_max"}
    return {
        t.name: {k: v for k, v in t.to_payload().items() if k not in drop}
        for t in report.tenants
        if t.name in names
    }


def _assert_detection(report) -> None:
    assert report.injected > 0, "the soak injected nothing — dead harness"
    for t in report.tenants:
        assert t.error is None, f"tenant {t.name} worker died: {t.error}"
        assert t.detected + t.benign_no_ops + t.undetected == t.injected
        assert t.undetected <= t.allowance, (
            f"tenant {t.name} ({t.op.value}): {t.undetected} undetected "
            f"corruptions exceed the analytic allowance {t.allowance} "
            f"(delta={t.delta:.3g} over {t.injected} injections)"
        )
    assert report.repairs_bit_identical, (
        "a repaired window's output differs from the clean ground truth"
    )


def _detection_cell(report, cfg) -> dict:
    return {
        "section": "detection",
        "tenants": cfg.tenants,
        "windows": report.windows,
        "injected": report.injected,
        "detected": report.detected,
        "repaired": report.repaired,
        "quarantined": report.quarantined,
        "undetected": report.undetected,
        "within_allowance": report.within_allowance,
        "repairs_bit_identical": report.repairs_bit_identical,
        "elapsed_seconds": report.elapsed_seconds,
        "per_tenant": [t.to_payload() for t in report.tenants],
    }


def test_soak(benchmark):
    t0 = time.perf_counter()

    det_cfg = _detection_config()
    det = run_once(benchmark, lambda: run_soak(det_cfg))
    _assert_detection(det)

    iso_cfg = _isolation_config()
    base = run_soak(iso_cfg)
    mixed = run_soak(replace(iso_cfg, extra_chaos_tenants=_EXTRA_CHAOS))
    _assert_detection(base)
    _assert_detection(mixed)
    base_names = {t.name for t in base.tenants}
    # Hard isolation: chaos neighbors change nothing about the base
    # tenants' audited outcomes (same seeds → same windows, verdicts,
    # repairs), only — boundedly — their latency.
    assert _logical(base, base_names) == _logical(mixed, base_names), (
        "chaos tenants changed a base tenant's audited outcome"
    )
    p50_base = max(
        base.service_report[n]["latency_p50"] for n in sorted(base_names)
    )
    p50_mixed = max(
        mixed.service_report[n]["latency_p50"] for n in sorted(base_names)
    )
    stall_bound = _MAX_STALL_FACTOR * p50_base + _STALL_SLACK_S

    cells = [
        _detection_cell(det, det_cfg),
        {
            "section": "isolation",
            "tenants": iso_cfg.tenants,
            "extra_chaos_tenants": _EXTRA_CHAOS,
            "base_worst_p50_seconds": p50_base,
            "mixed_worst_p50_seconds": p50_mixed,
            "stall_bound_seconds": stall_bound,
            "stall_factor_gate": _MAX_STALL_FACTOR,
            "base_outcomes_unchanged": True,
            "mixed_quarantined": mixed.quarantined,
        },
    ]
    write_artifact(
        _ARTIFACT,
        {
            "primary": "detection",
            "total_seconds": time.perf_counter() - t0,
            "cells": cells,
        },
    )
    benchmark.extra_info.update(
        injected=det.injected,
        undetected=det.undetected,
        mixed_worst_p50=p50_mixed,
        artifact=str(_ARTIFACT),
    )
    print()
    print(
        f"detection: {det.injected} injected / {det.detected} detected / "
        f"{det.repaired} repaired / {det.quarantined} quarantined / "
        f"{det.undetected} undetected over {det.windows} windows "
        f"({det_cfg.tenants} tenants)"
    )
    print(
        f"isolation: worst base-tenant p50 {p50_base * 1e3:.1f}ms alone vs "
        f"{p50_mixed * 1e3:.1f}ms beside {_EXTRA_CHAOS} chaos tenants "
        f"(bound {stall_bound * 1e3:.1f}ms)"
    )
    if not smoke_mode():
        assert p50_mixed <= stall_bound, (
            f"chaos neighbors stalled healthy tenants: worst p50 "
            f"{p50_mixed:.3f}s vs bound {stall_bound:.3f}s"
        )

"""§7.2 running time: sort-checker local processing per element.

Paper: 2.0 ns/element with (hardware) CRC-32C, 2.8 ns with 32-bit
tabulation hashing — roughly 3.5 % of total sorting time at 100 000
elements — and *independent of how many output bits are used* because
truncation happens after the hash evaluation.

Our CRC is table-driven software (the hardware instruction is a ~50x
constant), so absolute numbers shift; the reproduced shapes (asserted):

* per-element cost does not depend on logH;
* the checker is a small fraction of the distributed sort pipeline's time
  (measured over the thread-backed runtime, like the paper's pipeline).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once

from repro.comm.context import Context
from repro.core.permutation_checker import HashSumPermutationChecker
from repro.core.sort_checker import check_globally_sorted
from repro.dataflow.ops.sort import sample_sort
from repro.experiments.overhead import sort_checker_overhead_ns
from repro.experiments.report import format_table
from repro.workloads.uniform import uniform_integers


def _pipeline_fraction(n_total: int, p: int = 4) -> tuple[float, float]:
    """(pipeline seconds, checker-local seconds) of a distributed sort.

    The checker share is its *local fingerprint work* (the n/p term, which
    is what the paper's 3.5 % measures); the collectives contribute one
    machine word per PE and, on the thread runtime, mostly scheduler
    latency that would mis-attribute synchronisation noise to the checker.
    """
    ctx = Context(p)
    data = uniform_integers(n_total, seed=7)

    def program(comm, chunk):
        checker = HashSumPermutationChecker(
            iterations=1, hash_family="Mix", log_h=32, seed=3
        )
        t0 = time.perf_counter()
        out = sample_sort(comm, chunk)
        t1 = time.perf_counter()
        lambdas = checker.lambda_values(chunk, out)
        t_fingerprint = time.perf_counter() - t1
        total = comm.allreduce(
            lambdas, op=lambda a, b: [x + y for x, y in zip(a, b)]
        )
        sorted_ok = check_globally_sorted(out, comm=comm)
        assert all(v == 0 for v in total) and sorted_ok.accepted
        return time.perf_counter() - t0, t_fingerprint

    stats = ctx.run(program, per_rank_args=ctx.split(data))
    return max(s[0] for s in stats), max(s[1] for s in stats)


def test_sort_checker_overhead(benchmark, overhead_elements):
    def experiment():
        rows = [
            sort_checker_overhead_ns(fam, n_elements=overhead_elements)
            for fam in ("CRC4", "Tab", "Mix")
        ]
        # logH independence: one iteration at several truncations.
        data = uniform_integers(overhead_elements, seed=1)
        out = np.sort(data)
        per_logh = []
        for log_h in (1, 8, 32):
            checker = HashSumPermutationChecker(
                iterations=1, hash_family="CRC4", log_h=log_h, seed=2
            )
            checker.lambda_values(data, out)  # warm-up
            t0 = time.perf_counter()
            checker.lambda_values(data, out)
            per_logh.append(
                (log_h, (time.perf_counter() - t0) / (2 * overhead_elements) * 1e9)
            )
        total_s, chk_s = _pipeline_fraction(max(overhead_elements, 200_000))
        return rows, per_logh, total_s, chk_s

    rows, per_logh, total_s, chk_s = run_once(benchmark, experiment)
    fraction = chk_s / total_s
    print()
    print(
        format_table(
            ["measurement", "ns/element", "paper"],
            [
                (r.label, f"{r.ns_per_element:.1f}", p)
                for r, p in zip(rows, (2.0, 2.8, "(ideal model)"))
            ]
            + [
                (f"CRC4 logH={lh}", f"{ns:.1f}", "config-independent")
                for lh, ns in per_logh
            ]
            + [
                (
                    "checker share of distributed sort",
                    f"{fraction * 100:.1f} %",
                    "~3.5 %",
                )
            ],
        )
    )
    benchmark.extra_info["pipeline_checker_fraction"] = fraction

    # Shape: truncation width does not change the cost materially.
    ns_values = [ns for _, ns in per_logh]
    assert max(ns_values) < 2.5 * min(ns_values), per_logh
    # The paper's 3.5 % share rests on a 1-cycle hardware CRC; our 4-pass
    # numpy hash costs the same order as numpy's sort itself, so the share
    # lands far higher here (documented in EXPERIMENTS.md).  The preserved
    # qualitative claim: the checker costs O(n/p) local work — a small
    # constant number of extra passes — and never dominates the pipeline.
    assert fraction < 0.85, f"checker consumed {fraction:.0%} of the pipeline"

"""Streaming checker path vs the batch path — the chunked-feed price.

The PR's acceptance gate: feeding the §4 checker 64k-element chunks
through :class:`~repro.core.streams.SumCheckerStream` (condensed
accumulation, one settle) must stay within 1.5× of the batch checker's
per-element cost at n = 10^6.  Three sections, written to
``BENCH_streaming.json``:

1. **Sum stream** (gated ≤1.5×): ``SumCheckerStream`` fed ``n / 64k``
   input chunks + the asserted output, settled once, vs
   ``SumAggregationChecker.check_local`` on the materialized arrays.
   Verdicts asserted identical.
2. **Multi-seed stream** (gated ≤1.15×): the same comparison at T = 8
   seeds through ``MultiSeedSumCheckerStream`` (default ``fused="auto"``
   — each side picks chunk-at-a-time table folding or condensed
   aggregates from its observed duplicate ratio) vs the batched
   multi-seed checker; the forced ``fused=True`` time is reported
   alongside so the adaptive choice stays observable.
3. **Windowed DIA** (reported): ``StreamingKeyValueDIA.
   reduce_by_key_checked`` (whole pipeline, chunked, windowed settle)
   vs ``checked_reduce_by_key`` on the materialized input.
4. **All-unique StreamedKV** (reported): the adaptive-compaction
   micro-bench — folding disjoint-key chunks must defer merges instead
   of re-copying every element O(log chunks) times.

``REPRO_BENCH_SMOKE=1`` shrinks everything and skips the artifact/gate.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from conftest import best_of, run_once, smoke_mode, write_artifact

from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.streams import (
    MultiSeedSumCheckerStream,
    StreamedKV,
    SumCheckerStream,
)
from repro.core.sum_checker import SumAggregationChecker
from repro.dataflow.pipeline import checked_reduce_by_key
from repro.dataflow.streaming import StreamingKeyValueDIA
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
_CONFIG = SumCheckConfig.parse("8x16 Tab64 m15")
_CHUNK = 1 << 16
_NUM_SEEDS = 8
_MAX_STREAM_RATIO = 1.5
_MAX_MULTISEED_RATIO = 1.15


def _chunks(keys, values, chunk):
    return [
        (keys[i : i + chunk], values[i : i + chunk])
        for i in range(0, keys.size, chunk)
    ]


def _stream_once(stream_cls, checker, chunks, out_k, out_v):
    stream = stream_cls(checker)
    for k, v in chunks:
        stream.feed_input(k, v)
    stream.feed_output(out_k, out_v)
    return stream.settle()


def _sum_cell(keys, values, out_k, out_v, chunks, benchmark=None) -> dict:
    checker = SumAggregationChecker(_CONFIG, seed=11)
    batch = checker.check_local((keys, values), (out_k, out_v))
    streamed = _stream_once(SumCheckerStream, checker, chunks, out_k, out_v)
    assert batch.accepted == streamed.accepted is True

    batch_s = best_of(
        lambda: checker.check_local((keys, values), (out_k, out_v)), 3
    )
    run = lambda: _stream_once(  # noqa: E731
        SumCheckerStream, checker, chunks, out_k, out_v
    )
    if benchmark is not None:
        import time

        t0 = time.perf_counter()
        run_once(benchmark, run)
        stream_s = min(time.perf_counter() - t0, best_of(run, 2))
    else:
        stream_s = best_of(run, 3)
    n = keys.size
    return {
        "section": "sum-stream",
        "config": _CONFIG.label(),
        "elements": int(n),
        "chunk": _CHUNK,
        "chunks": len(chunks),
        "batch_seconds": batch_s,
        "stream_seconds": stream_s,
        "batch_ns_per_element": batch_s / n * 1e9,
        "stream_ns_per_element": stream_s / n * 1e9,
        "stream_over_batch": stream_s / batch_s,
    }


def _multiseed_cell(keys, values, out_k, out_v, chunks) -> dict:
    seeds = derive_seed_array(0x57E, "ms", np.arange(_NUM_SEEDS, dtype=np.uint64))
    checker = MultiSeedSumChecker(_CONFIG, seeds)
    batch = checker.check_local((keys, values), (out_k, out_v))

    def stream_once(fused):
        stream = MultiSeedSumCheckerStream(checker, fused=fused)
        for k, v in chunks:
            stream.feed_input(k, v)
        stream.feed_output(out_k, out_v)
        return stream

    for fused in ("auto", True, False):
        settled = stream_once(fused).settle()
        assert (
            batch.details["per_seed_accepted"]
            == settled.details["per_seed_accepted"]
        ), f"fused={fused}"
    probe = stream_once("auto")
    modes = {"input": probe._input.mode, "output": probe._output.mode}

    batch_s = best_of(
        lambda: checker.check_local((keys, values), (out_k, out_v)), 3
    )
    stream_s = best_of(lambda: stream_once("auto").settle(), 3)
    fused_s = best_of(lambda: stream_once(True).settle(), 2)
    n = keys.size
    return {
        "section": "multiseed-stream",
        "config": _CONFIG.label(),
        "num_seeds": _NUM_SEEDS,
        "elements": int(n),
        "chunk": _CHUNK,
        "auto_modes": modes,
        "batch_seconds": batch_s,
        "stream_seconds": stream_s,
        "fused_stream_seconds": fused_s,
        "stream_over_batch": stream_s / batch_s,
        "fused_over_batch": fused_s / batch_s,
    }


def _streamed_kv_cell(n) -> dict:
    """All-unique feed micro-bench: adaptive compaction must defer merges."""
    keys = np.arange(n, dtype=np.uint64)
    values = np.ones(n, dtype=np.int64)
    chunks = _chunks(keys, values, _CHUNK)

    def feed():
        kv = StreamedKV()
        for k, v in chunks:
            kv.fold(k, v)
        return kv

    kv = feed()
    feed_s = best_of(lambda: feed(), 2)
    settle_s = best_of(lambda: feed().merged(), 2)
    return {
        "section": "streamedkv-all-unique",
        "elements": int(n),
        "chunk": _CHUNK,
        "chunks": len(chunks),
        "feed_seconds": feed_s,
        "feed_plus_merge_seconds": settle_s,
        "compactions": kv.compactions,
        "deferred_segments": len(kv._segments),
        "final_merge_factor": kv._merge_factor,
        "feed_ns_per_element": feed_s / n * 1e9,
    }


def _windowed_cell(keys, values, chunks) -> dict:
    def windowed():
        dia = StreamingKeyValueDIA.from_chunks(None, chunks)
        return dia.reduce_by_key_checked(
            _CONFIG, seed=7, chunks_per_window=4
        )

    run = windowed()
    assert run.accepted and run.stats.windows == -(-len(chunks) // 4)
    batch_s = best_of(
        lambda: checked_reduce_by_key(None, keys, values, _CONFIG, seed=7), 2
    )
    stream_s = best_of(windowed, 2)
    n = keys.size
    return {
        "section": "windowed-dia",
        "config": _CONFIG.label(),
        "elements": int(n),
        "chunk": _CHUNK,
        "chunks_per_window": 4,
        "windows": run.stats.windows,
        "elements_fed": run.stats.elements_fed,
        "merged_overhead_ratio": run.stats.overhead_ratio,
        "batch_pipeline_seconds": batch_s,
        "stream_pipeline_seconds": stream_s,
        "stream_over_batch": stream_s / batch_s,
    }


def test_streaming_throughput(benchmark, overhead_elements):
    n = overhead_elements if smoke_mode() else max(overhead_elements, 10**6)
    keys, values = sum_workload(n, seed=derive_seed(0x57E, "wl"))
    out_k, out_v = aggregate_reference(keys, values)
    chunks = _chunks(keys, values, _CHUNK)

    cells = [
        _sum_cell(keys, values, out_k, out_v, chunks, benchmark=benchmark),
        _multiseed_cell(keys, values, out_k, out_v, chunks),
        _windowed_cell(keys, values, chunks),
        _streamed_kv_cell(n),
    ]

    write_artifact(
        _ARTIFACT,
        {
            "primary": "sum-stream",
            "max_allowed_stream_over_batch": _MAX_STREAM_RATIO,
            "max_allowed_multiseed_stream_over_batch": _MAX_MULTISEED_RATIO,
            "cells": cells,
        },
    )
    benchmark.extra_info.update(
        stream_over_batch=cells[0]["stream_over_batch"],
        artifact=str(_ARTIFACT),
    )
    print()
    for cell in cells:
        if "stream_over_batch" in cell:
            print(
                f"{cell['section']}: stream/batch = "
                f"{cell['stream_over_batch']:.3f}"
            )
        else:
            print(
                f"{cell['section']}: {cell['feed_ns_per_element']:.0f} "
                f"ns/element, {cell['compactions']} compactions"
            )
    if not smoke_mode():
        ratio = cells[0]["stream_over_batch"]
        assert ratio <= _MAX_STREAM_RATIO, (
            f"streaming sum checker costs {ratio:.2f}x the batch path per "
            f"element (allowed {_MAX_STREAM_RATIO}x at n={n}, chunk={_CHUNK})"
        )
        ms_ratio = cells[1]["stream_over_batch"]
        assert ms_ratio <= _MAX_MULTISEED_RATIO, (
            f"multi-seed stream costs {ms_ratio:.2f}x the batch path per "
            f"element (allowed {_MAX_MULTISEED_RATIO}x at n={n}, "
            f"chunk={_CHUNK}, T={_NUM_SEEDS})"
        )

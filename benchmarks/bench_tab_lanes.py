"""Stacked tabulation lanes vs the per-seed kernel loop, plus Mix rows.

The Tab/Tab64 analog of ``bench_crc_affinity.py``.  Three sections, all
written to ``BENCH_tab_lanes.json``:

1. **Lane level** (the ≥3× gate, for Tab AND Tab64): the full
   ``T = 32 × 10^6`` lane matrix through :func:`hash_lanes`, once with
   the stacked kernel (byte indices extracted once, ``num_tables``
   cache-blocked gathers per seed block) and once through a family clone
   without a multiseed kernel (the chunked tiled fallback — one
   byte-extraction + gather pass *per seed*, today's per-seed kernel
   path).  Outputs are asserted bit-identical.
2. **Bucket-block level**: the same comparison end-to-end through
   :func:`~repro.hashing.bitgroups.iter_bucket_blocks` on the Tab64
   checker configuration, i.e. including bit-group extraction — what
   ``MultiSeedSumChecker.local_tables`` actually consumes.
3. **Mix row** (reported, not gated): the broadcast lane kernel against
   the tiled fallback.

``REPRO_BENCH_SMOKE=1`` shrinks everything and skips the artifact/gate.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from conftest import best_of, run_once, smoke_mode, write_artifact

from repro.core.params import SumCheckConfig
from repro.hashing.bitgroups import iter_bucket_blocks
from repro.hashing.families import HashFamily, get_family, hash_lanes
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import sum_workload

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_tab_lanes.json"
_NUM_SEEDS = 32
_MIN_LANE_SPEEDUP = 3.0
_MIN_FUSED_SPEEDUP = 1.3
_GATED = ("Tab", "Tab64")
_CONFIG = "8x16 Tab64 m15"


def _plain_clone(name: str) -> HashFamily:
    """The pre-stacked execution path: same batch kernel, no lane hasher,
    so every consumer pays one hash pass per seed."""
    src = get_family(name)
    return HashFamily(
        name + "plain",
        src._factory,
        src.bits,
        f"{name} without the lane kernel (per-seed baseline)",
        batch_kernel=src._batch_kernel,
    )


class _LanesOnlyHasher:
    """A StackedLaneHasher stripped of ``bucket_lanes``: consumers fall
    back to materializing the full lane matrix and re-extracting groups
    from it — the pre-fusion execution path."""

    def __init__(self, hasher):
        self._hasher = hasher

    def lanes(self, seeds):
        return self._hasher.lanes(seeds)


class _UnfusedClone:
    """Family facade whose lane hasher hides the fused bucket kernel."""

    def __init__(self, name: str):
        src = get_family(name)
        self.bits = src.bits
        self._src = src

    def multiseed_hasher(self, keys):
        return _LanesOnlyHasher(self._src.multiseed_hasher(keys))


def _lane_cell(name: str, seeds, keys, benchmark=None) -> dict:
    fam = get_family(name)
    plain = _plain_clone(name)

    # Equivalence gate: stacked lanes are bit-identical to the per-seed
    # kernel lanes (doubles as warm-up for both paths).
    stacked = hash_lanes(fam, seeds, keys)
    assert np.array_equal(stacked, hash_lanes(plain, seeds, keys)), name

    plain_s = best_of(lambda: hash_lanes(plain, seeds, keys), 2)
    if benchmark is not None:
        t0 = time.perf_counter()
        run_once(benchmark, lambda: hash_lanes(fam, seeds, keys))
        stacked_s = min(
            time.perf_counter() - t0,
            best_of(lambda: hash_lanes(fam, seeds, keys), 2),
        )
    else:
        stacked_s = best_of(lambda: hash_lanes(fam, seeds, keys), 3)
    lane_elems = seeds.size * keys.size
    return {
        "section": "lanes",
        "family": name,
        "num_seeds": int(seeds.size),
        "elements": int(keys.size),
        "per_seed_kernel_seconds": plain_s,
        "stacked_seconds": stacked_s,
        "per_seed_kernel_ns_per_lane_element": plain_s / lane_elems * 1e9,
        "stacked_ns_per_lane_element": stacked_s / lane_elems * 1e9,
        "speedup": plain_s / stacked_s,
    }


def _consume_blocks(family, d, iterations, seeds, keys):
    checksum = 0
    for _, _, buckets in iter_bucket_blocks(
        family, d, iterations, seeds, keys, 1 << 18
    ):
        checksum ^= int(buckets[0, 0])
    return checksum


def _bucket_cell(cfg: SumCheckConfig, seeds, keys) -> dict:
    fam = get_family(cfg.hash_family)
    plain = _plain_clone(cfg.hash_family)
    args = (cfg.d, cfg.iterations, seeds, keys)

    for (s_a, c_a, b_a), (s_p, c_p, b_p) in zip(
        iter_bucket_blocks(fam, *args, 1 << 18),
        iter_bucket_blocks(plain, *args, 1 << 18),
    ):
        assert (s_a, c_a) == (s_p, c_p)
        assert np.array_equal(b_a, b_p), "stacked bucket lanes diverged"

    plain_s = best_of(lambda: _consume_blocks(plain, *args), 2)
    stacked_s = best_of(lambda: _consume_blocks(fam, *args), 3)
    lanes = seeds.size * cfg.iterations
    return {
        "section": "bucket-blocks",
        "config": cfg.label(),
        "num_seeds": int(seeds.size),
        "elements": int(keys.size),
        "lanes": int(lanes),
        "per_seed_kernel_seconds": plain_s,
        "stacked_seconds": stacked_s,
        "speedup": plain_s / stacked_s,
    }


def _fused_cell(name: str, cfg: SumCheckConfig, seeds, keys) -> dict:
    """Fused gather+extraction vs lanes-then-extract, same stacked tables.

    Isolates the PR's fusion win from the stacked-vs-per-seed win: both
    paths share the byte-extraction and stacked gathers; only the bucket
    bit-group step differs (in-cache during the gather loop vs a second
    pass over the materialized lane matrix).
    """
    fam = get_family(name)
    unfused = _UnfusedClone(name)
    args = (cfg.d, cfg.iterations, seeds, keys)

    for (s_a, c_a, b_a), (s_p, c_p, b_p) in zip(
        iter_bucket_blocks(fam, *args, 1 << 18),
        iter_bucket_blocks(unfused, *args, 1 << 18),
    ):
        assert (s_a, c_a) == (s_p, c_p)
        assert np.array_equal(b_a, b_p), "fused bucket lanes diverged"

    unfused_s = best_of(lambda: _consume_blocks(unfused, *args), 2)
    fused_s = best_of(lambda: _consume_blocks(fam, *args), 3)
    return {
        "section": "bucket-fused",
        "family": name,
        "config": cfg.label(),
        "num_seeds": int(seeds.size),
        "elements": int(keys.size),
        "unfused_seconds": unfused_s,
        "fused_seconds": fused_s,
        "speedup": unfused_s / fused_s,
    }


def test_tab_lane_speedup(benchmark, overhead_elements):
    n = overhead_elements if smoke_mode() else max(overhead_elements, 10**6)
    seeds = derive_seed_array(
        0x7AB, "checker", np.arange(_NUM_SEEDS, dtype=np.uint64)
    )
    keys = np.unique(sum_workload(n, seed=derive_seed(0x7AB, "wl"))[0])

    cells = [
        _lane_cell(
            name, seeds, keys,
            benchmark=benchmark if name == "Tab64" else None,
        )
        for name in (*_GATED, "Mix")
    ]
    cfg = SumCheckConfig.parse(_CONFIG)
    cells.append(_bucket_cell(cfg, seeds, keys))
    cells.append(_fused_cell("Tab64", cfg, seeds, keys))
    cells.append(
        _fused_cell("Tab", SumCheckConfig.parse("8x16 Tab m15"), seeds, keys)
    )

    write_artifact(
        _ARTIFACT,
        {
            "primary": "lanes Tab64",
            "min_required_lane_speedup": _MIN_LANE_SPEEDUP,
            "min_required_fused_speedup": _MIN_FUSED_SPEEDUP,
            "gated_families": list(_GATED),
            "cells": cells,
        },
    )
    by_family = {
        c["family"]: c for c in cells if c["section"] == "lanes"
    }
    benchmark.extra_info.update(
        tab64_lane_speedup=by_family["Tab64"]["speedup"],
        artifact=str(_ARTIFACT),
    )
    print()
    for cell in cells:
        label = cell.get("family", cell.get("config"))
        print(f"{cell['section']} {label}: {cell['speedup']:.2f}x")
    if not smoke_mode():
        for name in _GATED:
            assert by_family[name]["speedup"] >= _MIN_LANE_SPEEDUP, (
                f"{name} stacked lanes only {by_family[name]['speedup']:.2f}x "
                f"over the per-seed kernel loop (required {_MIN_LANE_SPEEDUP}x)"
            )
        fused64 = next(
            c for c in cells
            if c["section"] == "bucket-fused" and c["family"] == "Tab64"
        )
        assert fused64["speedup"] >= _MIN_FUSED_SPEEDUP, (
            f"fused Tab64 bucket extraction only {fused64['speedup']:.2f}x "
            f"over lanes-then-extract (required {_MIN_FUSED_SPEEDUP}x)"
        )

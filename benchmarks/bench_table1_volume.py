"""Table 1: the checkers' communication volume is sublinear in n.

Table 1's running times contain communication terms independent of the
input size (sum/average/median: β·d·w per iteration; permutation family:
β·w per iteration) and only O(log p) messages.  The simulated network
meters every byte, so this bench *measures* the checker-phase bottleneck
communication volume while n grows 100-fold and asserts it stays flat.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.volume import checker_volume_table


def test_table1_checker_communication_volume(benchmark):
    def experiment():
        return checker_volume_table(
            checkers=("sum", "permutation", "sort", "zip", "median"),
            ns=(1_000, 10_000, 100_000),
            p=4,
            seed=0x7AB1,
        )

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["checker", "n", "p", "bottleneck bytes/PE", "max msgs/PE"],
            [
                (r.checker, r.n, r.p, r.bottleneck_bytes, r.max_messages_per_pe)
                for r in rows
            ],
        )
    )

    by_checker: dict[str, list] = {}
    for r in rows:
        by_checker.setdefault(r.checker, []).append(r)
    for checker, series in by_checker.items():
        series.sort(key=lambda r: r.n)
        volumes = [r.bottleneck_bytes for r in series]
        benchmark.extra_info[checker] = volumes[-1]
        # Sublinear (in fact constant) in n: 100x more data, same bytes.
        assert volumes[-1] <= volumes[0] * 1.5, (checker, volumes)
        # Polylogarithmic number of messages.
        assert all(r.max_messages_per_pe <= 64 for r in series), checker

"""Table 2: numerically determined optimal (d, r̂, #iterations) per (b, δ).

Regenerates every row of the paper's Table 2 with
:func:`repro.core.params.optimize_parameters` and prints paper-vs-computed
side by side.  This reproduction is exact (digit-for-digit) — asserted, not
just printed.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.params import PAPER_TABLE2_ROWS, optimize_parameters
from repro.experiments.report import format_table


def test_table2_parameter_optimization(benchmark):
    def experiment():
        rows = []
        for row in PAPER_TABLE2_ROWS:
            cfg = optimize_parameters(row["b"], row["delta"])
            rows.append(
                (
                    row["b"],
                    f"{row['delta']:.0e}",
                    cfg.d,
                    (cfg.rhat - 1).bit_length(),
                    cfg.iterations,
                    f"{cfg.failure_bound:.1e}",
                    row["d"],
                    row["log_rhat"],
                    row["its"],
                    f"{row['achieved']:.1e}",
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            [
                "b", "δ target",
                "d", "log r̂", "#its", "achieved δ",
                "d(paper)", "log r̂(paper)", "#its(paper)", "δ(paper)",
            ],
            rows,
        )
    )
    mismatches = [
        r for r in rows if (r[2], r[3], r[4]) != (r[6], r[7], r[8])
    ]
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["mismatches"] = len(mismatches)
    assert not mismatches, f"Table 2 mismatch: {mismatches}"

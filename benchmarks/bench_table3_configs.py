"""Table 3: the tested checker configurations and their failure bounds δ.

The δ column of Table 3 is the analytic bound (1/r̂ + 1/d)^#its and the
"table size" column is #its · d · ⌈log2 2r̂⌉ bits; both are regenerated from
the configuration labels and checked against the paper's values.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.params import (
    PAPER_TABLE3_ACCURACY,
    PAPER_TABLE3_SCALING,
    SumCheckConfig,
)
from repro.experiments.report import format_table

# Paper Table 3: label -> (table bits, δ).  (The 8x256 m15 row's size is
# printed as 32769 in the paper — a typo for 8·256·16 = 32768.)
_PAPER_VALUES = {
    "1x2 m31": (64, 5e-1),
    "1x4 m31": (128, 2.5e-1),
    "4x2 m4": (40, 1e-1),
    "4x4 m3": (64, 2e-2),
    "4x4 m5": (96, 6e-3),
    "4x8 m3": (128, 3.9e-3),
    "4x8 m5": (192, 6e-4),
    "4x8 m7": (256, 3.1e-4),
    "5x16 CRC m5": (480, 7.2e-6),
    "6x32 CRC m9": (1920, 1.3e-9),
    "8x16 CRC m15": (2048, 2.3e-10),
    "4x256 CRC m15": (16384, 2.4e-10),
    "5x128 Tab64 m11": (7680, 3.9e-11),
    "8x256 Tab64 m15": (32768, 5.8e-20),
    "16x16 Tab64 m15": (4096, 5.4e-20),
}


def test_table3_configurations(benchmark):
    def experiment():
        rows = []
        for label in PAPER_TABLE3_ACCURACY + PAPER_TABLE3_SCALING:
            cfg = SumCheckConfig.parse(label)
            paper_bits, paper_delta = _PAPER_VALUES[label]
            rows.append(
                (
                    label,
                    cfg.table_bits,
                    paper_bits,
                    f"{cfg.failure_bound:.1e}",
                    f"{paper_delta:.1e}",
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["configuration", "bits", "bits(paper)", "δ", "δ(paper)"], rows
        )
    )
    for label, bits, paper_bits, delta, paper_delta in rows:
        assert bits == paper_bits, f"{label}: size {bits} != paper {paper_bits}"
        # δ matches to the paper's displayed precision (2 significant digits).
        assert (
            abs(float(delta) - float(paper_delta)) / float(paper_delta) < 0.12
        ), f"{label}: δ {delta} vs paper {paper_delta}"
    benchmark.extra_info["configs"] = len(rows)

"""Table 5: sequential overhead of the sum-aggregation checker.

Paper: local input processing of 10^6 pairs of 64-bit integers on a 3.6 GHz
machine — 3.8 to 10.0 ns per element depending on configuration, versus
~88 ns per element for the main reduce operation.

Absolute numbers here are numpy-scale, not SIMD-C++-scale; the reproduced
*shape* is (asserted below):
* the checker's per-element cost is below the reduce baseline for every
  scaling configuration except the deliberately local-work-heavy 16x16;
* "4x256 CRC m15" (few iterations, many buckets) is cheaper per element
  than "16x16 Tab64 m15" (many iterations) — the paper's trade-off between
  local work and table size.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.params import PAPER_TABLE3_SCALING
from repro.experiments.overhead import OverheadEngine
from repro.experiments.report import format_table

_PAPER_NS = {
    "5x16 CRC m5": 4.5,
    "6x32 CRC m9": 4.6,
    "8x16 CRC m15": 5.1,
    "4x256 CRC m15": 3.8,
    "5x128 Tab64 m11": 4.7,
    "8x256 Tab64 m15": 7.3,
    "16x16 Tab64 m15": 10.0,
}


def test_table5_sum_checker_overhead(benchmark, overhead_elements):
    def experiment():
        # The batched engine: one shared workload, every configuration and
        # the reduce baseline timed in a single interleaved sweep.
        engine = OverheadEngine(n_elements=overhead_elements, seed=0x1AB5)
        all_rows = engine.measure_table5(PAPER_TABLE3_SCALING)
        return all_rows[:-1], all_rows[-1]

    rows, baseline = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["configuration", "ns/element", "ns/element (paper)"],
            [
                (r.label, f"{r.ns_per_element:.1f}", _PAPER_NS.get(r.label, "-"))
                for r in rows
            ]
            + [(baseline.label, f"{baseline.ns_per_element:.1f}", 88.0)],
        )
    )
    benchmark.extra_info["baseline_ns"] = baseline.ns_per_element

    by_label = {r.label: r.ns_per_element for r in rows}
    # The many-iterations config pays the most local work (paper row order).
    assert by_label["16x16 Tab64 m15"] == max(by_label.values())
    # Every CRC scaling config beats the reduce baseline per element.
    for label in ("5x16 CRC m5", "6x32 CRC m9", "8x16 CRC m15", "4x256 CRC m15"):
        assert by_label[label] < baseline.ns_per_element, (
            f"{label}: {by_label[label]:.1f} ns/elt not below reduce "
            f"baseline {baseline.ns_per_element:.1f}"
        )

"""Shared benchmark configuration.

Trial counts scale with the environment:

* ``REPRO_BENCH_TRIALS`` — accuracy trials per cell (default 400; the paper
  uses 100 000 — set it that high for a paper-scale run, the batched
  engine affords it).
* ``REPRO_BENCH_ELEMENTS`` — element count for overhead measurements
  (default 300 000; paper: 10^6).
* ``REPRO_BENCH_ACCURACY_MODE`` — ``batched`` (default, vectorized engine)
  or ``reference`` (per-trial oracle loop; identical verdicts).
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def accuracy_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 400)


@pytest.fixture(scope="session")
def overhead_elements() -> int:
    return _env_int("REPRO_BENCH_ELEMENTS", 300_000)


@pytest.fixture(scope="session")
def accuracy_mode() -> str:
    mode = os.environ.get("REPRO_BENCH_ACCURACY_MODE", "batched")
    if mode not in ("batched", "reference"):
        raise ValueError(f"REPRO_BENCH_ACCURACY_MODE={mode!r}")
    return mode


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def best_of(fn, repeats):
    """Minimum wall time of ``fn`` over ``repeats`` runs (noise-robust)."""
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best

"""Shared benchmark configuration.

Trial counts scale with the environment:

* ``REPRO_BENCH_TRIALS`` — accuracy trials per cell (default 400; the paper
  uses 100 000 — set it that high for a paper-scale run, the batched
  engine affords it).
* ``REPRO_BENCH_ELEMENTS`` — element count for overhead measurements
  (default 300 000; paper: 10^6).
* ``REPRO_BENCH_ACCURACY_MODE`` — ``batched`` (default, vectorized engine)
  or ``reference`` (per-trial oracle loop; identical verdicts).
* ``REPRO_BENCH_SMOKE=1`` — CI smoke mode: tiny inputs, single repetition,
  no artifact writes, no speedup gates.  Exists so the benchmark files are
  *executed* on every push (they can't silently rot) without asking a
  shared runner for stable timings.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def smoke_mode() -> bool:
    """True under ``REPRO_BENCH_SMOKE=1`` (correctness-only bench runs)."""
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.fixture(scope="session")
def bench_smoke() -> bool:
    return smoke_mode()


def write_artifact(path: Path, payload: dict) -> None:
    """Persist a BENCH_*.json artifact.

    In smoke mode the repo-root copy is never touched (a tiny CI run must
    not overwrite the recorded full-scale numbers); instead, when
    ``REPRO_BENCH_ARTIFACT_DIR`` is set, the payload lands there under the
    same filename — the CI bench-smoke job uploads that directory (plus
    the committed full-scale artifacts) so every run's perf record is
    inspectable from the workflow page.
    """
    if smoke_mode():
        art_dir = os.environ.get("REPRO_BENCH_ARTIFACT_DIR")
        if not art_dir:
            return
        path = Path(art_dir) / path.name
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def accuracy_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 24 if smoke_mode() else 400)


@pytest.fixture(scope="session")
def overhead_elements() -> int:
    return _env_int(
        "REPRO_BENCH_ELEMENTS", 20_000 if smoke_mode() else 300_000
    )


@pytest.fixture(scope="session")
def accuracy_mode() -> str:
    mode = os.environ.get("REPRO_BENCH_ACCURACY_MODE", "batched")
    if mode not in ("batched", "reference"):
        raise ValueError(f"REPRO_BENCH_ACCURACY_MODE={mode!r}")
    return mode


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def best_of(fn, repeats):
    """Minimum wall time of ``fn`` over ``repeats`` runs (noise-robust).

    Smoke mode clamps to a single repetition — the timing is thrown away
    there anyway.
    """
    import time

    best = float("inf")
    for _ in range(1 if smoke_mode() else repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best

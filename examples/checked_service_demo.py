#!/usr/bin/env python3
"""Checked streaming service demo: multi-tenant soak under live faults.

Runs the always-on daemon with ten tenants (reduce/sum/zip/count plus two
always-faulting chaos tenants), injects the paper's Table 4/6 manipulators
into live windows, and prints the per-tenant report: injected faults are
detected by the checkers, transient ones healed in place bit-identically,
persistent ones quarantined — while clean tenants sail through untouched.

    python examples/checked_service_demo.py
"""

from repro.service import SoakConfig, run_soak


def main() -> None:
    cfg = SoakConfig(
        tenants=8,
        windows_per_tenant=4,
        chunks_per_window=4,
        chunk_size=512,
        fault_rate=0.4,
        persistent_share=0.3,
        seed=0xD140,
        extra_chaos_tenants=2,
    )
    print(
        f"soaking {cfg.tenants} tenants (+{cfg.extra_chaos_tenants} chaos) "
        f"x {cfg.windows_per_tenant} windows "
        f"of {cfg.chunks_per_window} x {cfg.chunk_size} elements, "
        f"fault rate {cfg.fault_rate:.0%} "
        f"({cfg.persistent_share:.0%} persistent)...\n"
    )
    report = run_soak(cfg)
    print(report.table())
    print()
    verdicts = [
        ("every injection detected or provably benign",
         all(t.detected + t.benign_no_ops == t.injected for t in report.tenants)),
        ("undetected corruptions within analytic allowance",
         report.within_allowance),
        ("healed windows bit-identical to clean run",
         report.repairs_bit_identical),
        ("no tenant worker crashed",
         all(t.error is None for t in report.tenants)),
    ]
    for label, ok in verdicts:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault-injection tour: every Table 4 and Table 6 manipulator vs checker.

Reproduces the flavour of the paper's accuracy experiments (Figs 3/5) at
demo scale: each manipulator attacks its operation 200 times against a weak
and a strong checker configuration; the weak one misses at roughly its
analytic δ, the strong one never misses.

    python examples/fault_injection_demo.py
"""

from repro.core.params import PermCheckConfig, SumCheckConfig
from repro.experiments.accuracy import perm_checker_accuracy, sum_checker_accuracy
from repro.experiments.report import format_table
from repro.faults.manipulators import PERM_MANIPULATORS, SUM_MANIPULATORS

TRIALS = 200


def main() -> None:
    print("=== sum-aggregation checker vs Table 4 manipulators ===")
    weak = SumCheckConfig.parse("1x4 m31").with_hash("Tab")
    strong = SumCheckConfig.parse("8x16 m15").with_hash("Tab64")
    rows = []
    for name in SUM_MANIPULATORS:
        for config in (weak, strong):
            cell = sum_checker_accuracy(config, name, trials=TRIALS, seed=1)
            rows.append(
                (
                    name,
                    config.label(),
                    f"{cell.failure_rate:.3f}",
                    f"{cell.expected_delta:.1e}",
                )
            )
    print(format_table(["manipulator", "config", "miss rate", "δ bound"], rows))

    print("\n=== permutation checker vs Table 6 manipulators ===")
    rows = []
    for name in PERM_MANIPULATORS:
        for log_h in (2, 32):
            cfg = PermCheckConfig(log_h=log_h, hash_family="Tab")
            cell = perm_checker_accuracy(cfg, name, trials=TRIALS, seed=2)
            rows.append(
                (
                    name,
                    cfg.label(),
                    f"{cell.failure_rate:.3f}",
                    f"{cell.expected_delta:.1e}",
                )
            )
    print(format_table(["manipulator", "config", "miss rate", "δ bound"], rows))

    print(
        "\nNote the weak configs missing at ≈ their δ bound and the strong"
        "\nconfigs never missing — the paper's one-sided-error trade-off."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""MPI backend smoke: run the distributed checkers under real MPI ranks.

Launch under an MPI runner with the world size matching the context:

    mpiexec -n 4 python examples/mpi_backend_smoke.py

Every rank executes the same SPMD programs twice — once through the
mpi4py backend (native ``Allreduce``/``Exscan``/``Alltoallv`` fast paths
where the payload qualifies, tree collectives over ``Send``/``Recv``
otherwise) and once through the in-process thread-mailbox oracle — and
asserts the results are bit-identical.  Exercises point-to-point,
``sendrecv``, the integer-array fast paths, a pickled-payload collective,
and a full multi-seed sum settle.

Exits non-zero on any divergence; prints one OK line per rank otherwise.
"""

import sys

import numpy as np

from repro.comm import Context, ops
from repro.comm.mpi_backend import mpi_available, mpi_unavailable_reason
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.util.rng import derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

CONFIG = SumCheckConfig.parse("4x16 m15")


def program(comm, chunk, keys, values, out_k, out_v, seeds):
    total = comm.allreduce(chunk, op=ops.SUM)  # native Allreduce path
    offset = comm.exscan(int(chunk.sum()), op=ops.SUM, identity=0)
    swapped = comm.sendrecv(comm.rank ^ 1, chunk[:3])
    shares = comm.alltoall([chunk[:2] + r for r in range(comm.size)])
    tags = comm.allgather(("rank", comm.rank))  # pickled payloads
    settle = MultiSeedSumChecker(CONFIG, seeds).check_distributed_condensed(
        comm, condense_kv(keys, values), condense_kv(out_k, out_v)
    )
    comm.barrier()
    return (
        total.tolist(),
        offset,
        swapped.tolist(),
        [s.tolist() for s in shares],
        tags,
        settle.accepted,
        settle.details["per_seed_accepted"],
    )


def main() -> int:
    if not mpi_available():
        print(f"mpi4py unavailable ({mpi_unavailable_reason()}); skipping")
        return 0
    from mpi4py import MPI

    p = MPI.COMM_WORLD.Get_size()
    data = np.arange(64 * p, dtype=np.int64)
    keys, values = sum_workload(5_000 * p, seed=11)
    out_k, out_v = aggregate_reference(keys, values)
    seeds = derive_seed_array(0x51, "mpi-smoke", np.arange(4, dtype=np.uint64))

    def run(backend):
        ctx = Context(p, backend=backend)
        args = list(
            zip(
                ctx.split(data),
                ctx.split(keys),
                ctx.split(values),
                ctx.split(out_k),
                ctx.split(out_v),
            )
        )
        return ctx.run(program, per_rank_args=args, common_args=(seeds,))

    over_mpi = run("mpi")
    oracle = run("threads")  # in-process oracle, replayed on every rank
    if over_mpi != oracle:
        print(f"rank {MPI.COMM_WORLD.Get_rank()}: MPI != thread oracle")
        return 1
    if not over_mpi[0][5]:
        print(f"rank {MPI.COMM_WORLD.Get_rank()}: settle rejected clean data")
        return 1
    print(f"rank {MPI.COMM_WORLD.Get_rank()}/{p}: OK (bit-identical to oracle)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

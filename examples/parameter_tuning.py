#!/usr/bin/env python3
"""Parameter tuning: pick (d, r̂, iterations) for your network and δ.

Reproduces the paper's Table 2 workflow: given the effective minimum
message size b of an interconnect (sending fewer than b bits is not
measurably faster) and a target failure probability δ, numerically find the
configuration minimising checker iterations.

    python examples/parameter_tuning.py
"""

from repro.core.params import optimize_parameters
from repro.experiments.report import format_table


def main() -> None:
    rows = []
    for b in (1024, 4096, 16384, 65536):
        for delta in (1e-6, 1e-10, 1e-20):
            cfg = optimize_parameters(b, delta)
            rows.append(
                (
                    b,
                    f"{delta:.0e}",
                    cfg.d,
                    f"2^{(cfg.rhat - 1).bit_length()}",
                    cfg.iterations,
                    f"{cfg.failure_bound:.1e}",
                    cfg.table_bits,
                )
            )
    print(
        format_table(
            ["b (bits)", "δ target", "d", "r̂", "#its", "achieved δ", "table bits"],
            rows,
        )
    )
    print(
        "\nReading: for a 1 KiB effective message, δ = 1e-10 needs 10"
        "\niterations over 14 buckets — one extra input pass and 980 bits of"
        "\ncommunication buy near-certainty about a terabyte-scale reduction."
    )


if __name__ == "__main__":
    main()

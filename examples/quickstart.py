#!/usr/bin/env python3
"""Quickstart: check a distributed sum aggregation in ~30 lines.

Runs a ReduceByKey over 4 simulated PEs, verifies it with the paper's §4
checker, then plants a silent fault inside the reduction and watches the
checker catch it.

    python examples/quickstart.py
"""

import numpy as np

from repro import Context
from repro.core import SumCheckConfig, check_sum_aggregation
from repro.dataflow import reduce_by_key
from repro.faults import get_kv_manipulator
from repro.workloads import sum_workload

# A checker configuration from the paper's Table 3: 8 iterations x 16
# buckets, moduli near 2^15 -> failure probability below 2.3e-10 while the
# checker ships only 2048 bits over the network.
CONFIG = SumCheckConfig.parse("8x16 m15")


def main() -> None:
    keys, values = sum_workload(100_000, num_keys=10_000, seed=7)
    ctx = Context(num_pes=4)

    # --- a clean run -------------------------------------------------------
    def clean(comm, k, v):
        out_k, out_v = reduce_by_key(comm, k, v)  # the operation (black box)
        comm.meter.mark("checker")  # meter the checker phase separately
        verdict = check_sum_aggregation(
            (k, v), (out_k, out_v), CONFIG, seed=1, comm=comm
        )
        checker_traffic = comm.meter.since("checker")
        return verdict.accepted, checker_traffic["bytes_sent"]

    outs = ctx.run(
        clean, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
    )
    print(f"clean run:        checker says {[o[0] for o in outs]} "
          f"(expect all True)")
    print(f"checker traffic:  {max(o[1] for o in outs)} bytes sent/PE — "
          f"independent of the 100k-element input")

    # --- a corrupted run ---------------------------------------------------
    manipulator = get_kv_manipulator("IncKey")  # moves one value to key+1

    def corrupted(comm, k, v):
        op_k, op_v = k, v
        if comm.rank == 2:  # a single soft error on one PE
            fault = manipulator.apply(np.random.default_rng(99), k, v)
            op_k, op_v = fault.keys, fault.values
        out_k, out_v = reduce_by_key(comm, op_k, op_v)
        # The checker taps the *original* stream (its view of the input).
        verdict = check_sum_aggregation(
            (k, v), (out_k, out_v), CONFIG, seed=1, comm=comm
        )
        return verdict.accepted

    verdicts = ctx.run(
        corrupted,
        per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
    )
    print(f"corrupted run:    checker says {verdicts} (expect all False)")


if __name__ == "__main__":
    main()

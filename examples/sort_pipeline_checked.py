#!/usr/bin/env python3
"""Checked distributed sorting with all three permutation fingerprints.

Sample-sorts 10^6 uniform integers over 4 PEs and verifies the result with
Theorem 7's sort checker, comparing the three §5 fingerprint variants:
hash-sum (Lemma 4), polynomial over F_r (Lemma 5) and GF(2^64).

    python examples/sort_pipeline_checked.py
"""

import time

import numpy as np

from repro import Context
from repro.core import check_sort
from repro.dataflow import sample_sort
from repro.workloads import uniform_integers


def main() -> None:
    data = uniform_integers(1_000_000, universe=10**8, seed=5)
    ctx = Context(num_pes=4)

    def job(comm, chunk, method):
        t0 = time.perf_counter()
        out = sample_sort(comm, chunk)
        t_sort = time.perf_counter() - t0
        t0 = time.perf_counter()
        verdict = check_sort(
            chunk, out, method=method, universe=10**8, seed=11, comm=comm
        )
        t_check = time.perf_counter() - t0
        return out.size, verdict.accepted, t_sort, t_check

    for method in ("hashsum", "polynomial", "gf64"):
        outs = ctx.run(
            job,
            per_rank_args=ctx.split(data),
            common_args=(method,),
        )
        assert all(o[1] for o in outs)
        n_out = sum(o[0] for o in outs)
        t_sort = max(o[2] for o in outs)
        t_check = max(o[3] for o in outs)
        traffic = ctx.traffic_summary()
        print(
            f"{method:>10}: sorted {n_out} elements in {t_sort * 1e3:7.1f} ms, "
            f"checked in {t_check * 1e3:7.1f} ms, verdict ACCEPT "
            f"(bottleneck {traffic['bottleneck_bytes']} B/PE)"
        )

    # Now a silently corrupted sort: one element altered in transit.
    def corrupted(comm, chunk):
        out = sample_sort(comm, chunk)
        if comm.rank == 1 and out.size:
            out = out.copy()
            out[0] += 1  # bit rot after sorting — stays sorted, wrong data
        verdict = check_sort(chunk, out, seed=11, comm=comm)
        return verdict.accepted

    verdicts = ctx.run(corrupted, per_rank_args=ctx.split(data))
    print(f"corrupted sort: checker says {verdicts} (expect all False)")


if __name__ == "__main__":
    main()

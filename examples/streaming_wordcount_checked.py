#!/usr/bin/env python3
"""Streaming checked wordcount — chunked feeds, windowed settlement.

The streaming sibling of ``wordcount_checked.py``: the corpus arrives as
a sequence of chunks (think log shipper or socket reader), nothing is
materialized beyond the current window, and every window of chunks runs
one distributed count-reduce whose verdict settles in a single packed
collective — with adaptive multi-seed escalation standing by on the
window's already-condensed aggregates.

    python examples/streaming_wordcount_checked.py
"""

from collections import Counter

import numpy as np

from repro import Context
from repro.core import SumCheckConfig
from repro.dataflow import StreamingKeyValueDIA
from repro.dataflow.pipeline import AdaptiveCheckPolicy
from repro.workloads import synthetic_corpus, word_to_key

CONFIG = SumCheckConfig.parse("8x16 m15")
CHUNK = 10_000
CHUNKS_PER_WINDOW = 4


def main() -> None:
    corpus = synthetic_corpus(200_000, vocabulary=20_000, seed=3)
    print(f"corpus: {len(corpus)} words, e.g. {corpus[:6]} ...")

    key_of = {}
    keys = np.array(
        [key_of.setdefault(w, word_to_key(w)) for w in corpus], dtype=np.uint64
    )
    ctx = Context(num_pes=4)

    def job(comm, local_keys):
        def chunk_feed():
            # A generator, not a list: chunks could just as well be read
            # off a socket — the window loop pulls them lazily.
            for start in range(0, local_keys.size, CHUNK):
                chunk = local_keys[start : start + CHUNK]
                yield chunk, np.ones(chunk.size, dtype=np.int64)

        dia = StreamingKeyValueDIA.from_generator(comm, chunk_feed)
        run = dia.reduce_by_key_checked(
            CONFIG,
            seed=17,
            chunks_per_window=CHUNKS_PER_WINDOW,
            policy=AdaptiveCheckPolicy(escalation_seeds=8),
        )
        return run

    runs = ctx.run(job, per_rank_args=ctx.split(keys))
    assert all(r.accepted for r in runs), "checker rejected a correct count!"

    # Windows partition the stream: summing all windows' outputs gives the
    # exact global wordcount.
    counted: Counter = Counter()
    for run in runs:
        for out_k, out_v in run.outputs:
            for k, c in zip(out_k.tolist(), out_v.tolist()):
                counted[k] += c

    truth = Counter(corpus)
    word_by_key = {v: w for w, v in key_of.items()}
    top = counted.most_common(8)
    print(f"{'word':<12}{'count':<10}{'sequential':<10}")
    for key, count in top:
        word = word_by_key[key]
        print(f"{word:<12}{count:<10}{truth[word]:<10}")
        assert truth[word] == count

    stats = runs[0].stats
    print(
        f"\nstream: {stats.windows} windows, "
        f"{stats.elements_fed} elements fed, "
        f"operation {stats.operation_seconds * 1e3:.1f} ms, "
        f"checker {stats.checker_seconds * 1e3:.1f} ms, "
        f"merged overhead ratio {stats.overhead_ratio:.2f} "
        f"(one {CONFIG.table_bits}-bit settle per window)"
    )


if __name__ == "__main__":
    main()

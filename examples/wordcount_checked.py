#!/usr/bin/env python3
"""Checked wordcount — the paper's motivating workload.

Counts word frequencies of a synthetic Zipf-distributed corpus with a
distributed ReduceByKey whose result is certified by the §4 count checker,
inside one reduce-check pipeline (as integrated into Thrill in §7).

    python examples/wordcount_checked.py
"""

from collections import Counter

import numpy as np

from repro import Context
from repro.core import SumCheckConfig
from repro.dataflow import checked_reduce_by_key
from repro.workloads import synthetic_corpus, word_to_key

CONFIG = SumCheckConfig.parse("8x16 m15")


def main() -> None:
    corpus = synthetic_corpus(200_000, vocabulary=20_000, seed=3)
    print(f"corpus: {len(corpus)} words, e.g. {corpus[:6]} ...")

    key_of = {}
    keys = np.array(
        [key_of.setdefault(w, word_to_key(w)) for w in corpus], dtype=np.uint64
    )
    ones = np.ones(keys.size, dtype=np.int64)

    ctx = Context(num_pes=4)

    def job(comm, k, v):
        out_k, out_v, verdict, stats = checked_reduce_by_key(
            comm, k, v, CONFIG, seed=17
        )
        return out_k, out_v, verdict.accepted, stats

    outs = ctx.run(
        job, per_rank_args=list(zip(ctx.split(keys), ctx.split(ones)))
    )
    assert all(o[2] for o in outs), "checker rejected a correct wordcount!"

    counted: dict[int, int] = {}
    for out_k, out_v, _, _ in outs:
        counted.update(zip(out_k.tolist(), out_v.tolist()))

    # Cross-check the top words against a trusted sequential count.
    truth = Counter(corpus)
    word_by_key = {v: w for w, v in key_of.items()}
    top = sorted(counted.items(), key=lambda kv: -kv[1])[:8]
    print(f"{'word':<12}{'count':<10}{'sequential':<10}")
    for key, count in top:
        word = word_by_key[key]
        print(f"{word:<12}{count:<10}{truth[word]:<10}")
        assert truth[word] == count

    total_check = sum(o[3].checker_seconds for o in outs) / len(outs)
    total_op = sum(o[3].operation_seconds for o in outs) / len(outs)
    print(
        f"\npipeline: operation {total_op * 1e3:.1f} ms, "
        f"checker {total_check * 1e3:.1f} ms "
        f"(δ ≤ {CONFIG.failure_bound:.1e}, "
        f"{CONFIG.table_bits} bits on the wire)"
    )


if __name__ == "__main__":
    main()

"""repro — communication-efficient checkers for big-data operations.

A from-scratch Python reproduction of Hübschle-Schneider & Sanders,
*Communication Efficient Checking of Big Data Operations* (IPDPS 2018):
probabilistic result checkers for the collective operations of data-parallel
frameworks (sum/average/min/median aggregation, sorting, permutation, union,
merge, zip, group-by and join redistribution), together with the distributed
substrate they run on (a simulated message-passing runtime and a mini-Thrill
dataflow layer), fault-injection manipulators, and the paper's full
experiment suite.

See ``examples/quickstart.py`` for a guided tour.
"""

__version__ = "1.0.0"

from repro.comm import Comm, Context, CostModel, SPMDError

__all__ = [
    "Comm",
    "Context",
    "CostModel",
    "SPMDError",
    "__version__",
]

"""Static analysis for the repro codebase (``python -m repro.analysis``).

An AST-based rule engine that checks the invariants the runtime cannot:
collective lockstep across PEs, CheckerStream protocol conformance,
kernel-backend parity, seeded-randomness discipline, and int64 overflow
discipline.  See :mod:`repro.analysis.rules` for the catalogue and
:mod:`repro.analysis.engine` for suppression syntax.
"""

from repro.analysis.engine import (
    Finding,
    Module,
    Project,
    Rule,
    findings_to_json,
    run_rules,
)
from repro.analysis.rules import ALL_RULES, default_rules, rule_names

__all__ = [
    "ALL_RULES",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "default_rules",
    "findings_to_json",
    "rule_names",
    "run_rules",
]

"""CLI: ``python -m repro.analysis src/ [--strict] [--format json] ...``.

Exit status: 0 when no *unsuppressed* findings (always 0 without
``--strict``, so exploratory runs can page through output), 1 when
``--strict`` and at least one unsuppressed finding, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import Project, findings_to_json, run_rules
from repro.analysis.rules import default_rules, rule_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis of repro invariants (see README).",
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to analyze"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any unsuppressed finding remains",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write JSON findings to this file (for CI artifacts)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="NAME[,NAME...]",
        help=f"run only these rules (known: {', '.join(rule_names())})",
    )
    args = parser.parse_args(argv)

    only = None
    if args.rules:
        only = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only - set(rule_names())
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")

    try:
        project = Project.from_paths(args.paths)
    except (ValueError, OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = run_rules(project, default_rules(), only=only)
    unsuppressed = [f for f in findings if not f.suppressed]

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(findings_to_json(findings))

    if args.format == "json":
        sys.stdout.write(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding.format())
        suppressed = len(findings) - len(unsuppressed)
        print(
            f"{len(project.modules)} modules, "
            f"{len(unsuppressed)} finding(s), {suppressed} suppressed"
        )

    if args.strict and unsuppressed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

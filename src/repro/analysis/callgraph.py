"""Collective-call summaries and replication (uniformity) analysis.

The lockstep rule needs two whole-program facts about every function:

* its **collective summary** — which collective operations the function may
  issue, directly (``comm.allreduce(...)``) or transitively through calls to
  other analyzed functions (``stream.settle(comm)``); and
* whether its **return value is replicated** across PEs — branching on a
  replicated value is lockstep-safe (all PEs take the same arm), branching
  on per-PE data is the bug class the rule exists to catch.

Both are computed here over the whole :class:`~repro.analysis.engine.Project`
with a conservative, name-based call resolution: bare calls resolve through
per-module import maps, ``self.method()`` through the enclosing class and
its (project-local) bases, and ``obj.method()`` through *every* analyzed
function of that name — over-approximation is the right failure mode for a
deadlock detector.

Replication is a three-level lattice:

* ``TRUE`` — provably replicated: constants, module-level names, results of
  replicated collectives (``allreduce``/``broadcast``/``allgather``), and
  ``x is None`` tests (argument *presence* is SPMD-uniform even when the
  argument's *contents* are per-PE).
* ``CONV`` — replicated by the SPMD calling convention: function parameters
  and ``self`` state.  Configuration objects really are passed identically
  to every PE; but anything that measures the *local data* hung off them —
  ``.size``/``.shape``/``len()``/``.rank``/``.local`` — drops to
  ``NONUNIFORM``, which is exactly how a per-PE chunk hidden behind a
  replicated parameter is caught.
* ``NONUNIFORM`` — everything else: per-PE quantities, and the results of
  non-replicated collectives (``exscan``/``scan``/``gather``/``reduce``/
  ``alltoall`` deliver rank-dependent values).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# -- collective vocabulary ---------------------------------------------------

#: Methods on a communicator handle that are collectives.
COMM_COLLECTIVES = {
    "allreduce",
    "reduce",
    "broadcast",
    "bcast",
    "allgather",
    "gather",
    "scan",
    "exscan",
    "alltoall",
    "alltoallv",
    "alltoall_hypercube",
    "barrier",
}

#: The subset whose result is identical on every PE.
REPLICATED_COLLECTIVES = {"allreduce", "broadcast", "bcast", "allgather", "barrier"}

#: Modules whose top-level functions named like collectives ARE the
#: collective primitives (they implement them from point-to-point sends,
#: so a textual scan of their bodies would not see any collective).
_PRIMITIVE_MODULE_SUFFIXES = (
    "comm.collectives",
    "comm.communicator",
    # Transport backends implement the same primitives over real fabrics
    # (shared-memory rings, MPI); their internal send/recv loops are the
    # primitives themselves, not call sites to check for lockstep.
    "comm.backend",
    "comm.proc_backend",
    "comm.mpi_backend",
)

_SHAPE_ATTRS = {"size", "shape", "ndim", "nbytes"}
_PER_PE_TOKENS = {"rank", "local"}

# Replication lattice.
NONUNIFORM = 0
CONV = 1
TRUE = 2


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty list when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_comm_like(node: ast.AST) -> bool:
    """Whether an expression denotes a communicator handle.

    Recognized: any name or attribute chain whose final component is
    ``comm`` or ends with ``comm`` (``comm``, ``self.comm``, ``subcomm``).
    """
    chain = _attr_chain(node)
    return bool(chain) and chain[-1].endswith("comm")


@dataclass
class FunctionInfo:
    """Static summary of one function or method."""

    module_path: str
    module_dotted: str
    qualname: str  # "Class.method" or "function"
    name: str
    class_name: str | None
    node: ast.FunctionDef
    #: (collective op, line) pairs issued directly in this body.
    direct: list[tuple[str, int]] = field(default_factory=list)
    #: unresolved call edges: (kind, name, receiver root) with kind in
    #: bare|self|attr; root is the leftmost name of an attribute chain
    #: (``np`` in ``np.sort``), used to rule out external modules.
    edges: list[tuple[str, str, str | None]] = field(default_factory=list)
    #: fixed point: every collective op reachable from this function.
    transitive: set[str] = field(default_factory=set)
    #: return-replication assuming per-PE parameters.  ``TRUE`` here means
    #: the return value is replicated *no matter what was passed* — it went
    #: through an ``allreduce``/``bcast`` on the distributed path.
    returns_worst: int = NONUNIFORM
    #: return-replication assuming replicated parameters (bounds the
    #: parametric case at call sites).
    returns_best: int = NONUNIFORM


@dataclass
class ClassInfo:
    module_dotted: str
    name: str
    bases: list[str]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class CallGraph:
    """Whole-project indexes + fixed-point collective summaries."""

    def __init__(self, project):
        self.project = project
        self.functions: list[FunctionInfo] = []
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.classes: dict[str, ClassInfo] = {}  # by bare class name
        self.imports: dict[str, dict[str, str]] = {}  # module -> name -> target
        self._index()
        self._fixed_point()
        self._returns_levels()

    # -- indexing ------------------------------------------------------------

    def _index(self) -> None:
        for module in self.project.modules:
            imports: dict[str, str] = {}
            self.imports[module.dotted] = imports
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        imports[alias.asname or alias.name] = alias.name
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, node, class_name=None)
                elif isinstance(node, ast.ClassDef):
                    info = ClassInfo(
                        module_dotted=module.dotted,
                        name=node.name,
                        bases=[
                            chain[-1]
                            for base in node.bases
                            if (chain := _attr_chain(base))
                        ],
                    )
                    self.classes.setdefault(node.name, info)
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            fn = self._add_function(
                                module, item, class_name=node.name
                            )
                            info.methods[item.name] = fn

    def _add_function(self, module, node, class_name) -> FunctionInfo:
        qual = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            module_path=module.path,
            module_dotted=module.dotted,
            qualname=qual,
            name=node.name,
            class_name=class_name,
            node=node,
        )
        # The comm layer's primitives ARE the collectives: seed them by name.
        if (
            module.dotted.endswith(_PRIMITIVE_MODULE_SUFFIXES)
            and node.name in COMM_COLLECTIVES
        ):
            info.direct.append((node.name, node.lineno))
        self._scan_body(info)
        self.functions.append(info)
        self.by_name.setdefault(node.name, []).append(info)
        return info

    def _scan_body(self, info: FunctionInfo) -> None:
        """Collect direct collective calls + unresolved edges (own body only,
        nested defs excluded — they are indexed separately)."""
        for call in self._own_calls(info.node):
            op = self.collective_op(call)
            if op is not None:
                info.direct.append((op, call.lineno))
                continue
            func = call.func
            if isinstance(func, ast.Name):
                info.edges.append(("bare", func.id, None))
            elif isinstance(func, ast.Attribute):
                chain = _attr_chain(func)
                if chain and chain[0] in ("self", "cls"):
                    info.edges.append(("self", func.attr, None))
                else:
                    info.edges.append(
                        ("attr", func.attr, chain[0] if chain else None)
                    )

    @staticmethod
    def _own_calls(fn_node: ast.AST):
        """Call nodes in a function body, not descending into nested defs."""
        stack = list(ast.iter_child_nodes(fn_node))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def collective_op(call: ast.Call) -> str | None:
        """The collective op name of a ``comm.<op>(...)`` call, else None."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in COMM_COLLECTIVES
            and _is_comm_like(func.value)
        ):
            return func.attr
        return None

    # -- call resolution -------------------------------------------------------

    def resolve_edge(
        self, info: FunctionInfo, kind: str, name: str, root: str | None = None
    ) -> list[FunctionInfo]:
        if kind == "attr" and root is not None:
            # `np.sort(...)` must not union with the project's own `sort`:
            # an attr call whose receiver root is an imported *external*
            # module is not a project call at all.
            target = self.imports.get(info.module_dotted, {}).get(root)
            if target is not None and not target.split(".")[0] == "repro":
                return []
        if kind == "bare":
            imports = self.imports.get(info.module_dotted, {})
            target = imports.get(name)
            if target is not None:
                dotted_mod, _, fn_name = target.rpartition(".")
                for candidate in self.by_name.get(fn_name or name, []):
                    if candidate.class_name is None and candidate.module_dotted == dotted_mod:
                        return [candidate]
                # Imported collective primitive referenced by bare name.
                if (
                    dotted_mod.endswith(_PRIMITIVE_MODULE_SUFFIXES)
                    and fn_name in COMM_COLLECTIVES
                ):
                    return []
            return [
                c
                for c in self.by_name.get(name, [])
                if c.class_name is None and c.module_dotted == info.module_dotted
            ]
        if kind == "self" and info.class_name is not None:
            targets = self._method_in_hierarchy(info.class_name, name)
            if targets:
                return targets
        # attr (and unresolved self): every analyzed function of that name.
        return self.by_name.get(name, [])

    def _method_in_hierarchy(self, class_name: str, method: str):
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return [cls.methods[method]]
            queue.extend(cls.bases)
        return []

    # -- fixed point -------------------------------------------------------------

    def _fixed_point(self) -> None:
        for info in self.functions:
            info.transitive = {op for op, _ in info.direct}
        changed = True
        while changed:
            changed = False
            for info in self.functions:
                for kind, name, root in info.edges:
                    for target in self.resolve_edge(info, kind, name, root):
                        if not target.transitive <= info.transitive:
                            info.transitive |= target.transitive
                            changed = True

    def issues_collectives(self, info: FunctionInfo) -> bool:
        return bool(info.transitive)

    # -- return-replication -------------------------------------------------------

    def _returns_levels(self) -> None:
        # Optimistic start (callees default TRUE), then tighten to a fixed
        # point — cycles settle downward, never upward.
        from repro.analysis.uniformity import compute_returns

        for info in self.functions:
            info.returns_worst = TRUE
            info.returns_best = TRUE
        for _ in range(4):
            changed = False
            for info in self.functions:
                worst, best = compute_returns(self, info)
                if (worst, best) != (info.returns_worst, info.returns_best):
                    info.returns_worst = worst
                    info.returns_best = best
                    changed = True
            if not changed:
                break


def get_callgraph(project) -> CallGraph:
    """The project's (cached) :class:`CallGraph`."""
    if project._callgraph is None:
        project._callgraph = CallGraph(project)
    return project._callgraph

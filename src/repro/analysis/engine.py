"""Analyzer engine: modules, findings, suppressions, and the rule runner.

The analyzer is purely static — it parses source with :mod:`ast` and never
imports the code under analysis (so e.g. the numba backend is analyzable on
a machine without numba).  A :class:`Project` is the unit of analysis: a set
of parsed modules plus the cross-module indexes rules need (built lazily by
:mod:`repro.analysis.callgraph`).

Suppressions
------------
Every finding can be silenced *at its line* with a justified pragma::

    risky_call()  # repro-lint: disable=collective-lockstep -- window loop is
                  # globally agreed via the _window_live allreduce

or on a comment line immediately above the flagged line.  A whole file can
opt out of one rule with::

    # repro-lint: disable-file=determinism -- exploratory notebook export

Suppressed findings are still collected (and reported in the machine-readable
output) so "how much is being suppressed" stays observable; ``--strict``
fails only on findings that are *not* suppressed.  There are deliberately no
directory- or project-level excludes: every silence is a visible, justified
comment next to the code it concerns.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Pragma grammar: ``# repro-lint: disable=rule1,rule2 -- justification``
#: and ``# repro-lint: disable-file=rule -- justification``.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+?)"
    r"\s*(?:--\s*(.*))?$"
)


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass
class _Pragmas:
    """Parsed suppression pragmas of one module."""

    #: line number -> {rule: justification}
    by_line: dict[int, dict[str, str | None]] = field(default_factory=dict)
    #: whole-file suppressions: rule -> justification
    by_file: dict[str, str | None] = field(default_factory=dict)

    def lookup(self, rule: str, line: int) -> tuple[bool, str | None]:
        at_line = self.by_line.get(line, {})
        if rule in at_line:
            return True, at_line[rule]
        if "all" in at_line:
            return True, at_line["all"]
        if rule in self.by_file:
            return True, self.by_file[rule]
        return False, None


def _parse_pragmas(lines: list[str]) -> _Pragmas:
    pragmas = _Pragmas()
    for idx, raw in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(raw)
        if not match:
            continue
        kind, rule_list, justification = match.groups()
        rules = {r.strip() for r in rule_list.split(",") if r.strip()}
        if kind == "disable-file":
            for rule in rules:
                pragmas.by_file[rule] = justification
            continue
        targets = [idx]
        # A comment-only pragma line also covers the next source line.
        if raw.lstrip().startswith("#"):
            targets.append(idx + 1)
        for target in targets:
            slot = pragmas.by_line.setdefault(target, {})
            for rule in rules:
                slot[rule] = justification
    return pragmas


@dataclass
class Module:
    """One parsed source file."""

    path: str  # as reported in findings (posix, relative when possible)
    source: str
    tree: ast.Module
    lines: list[str]
    dotted: str  # best-effort dotted module name, e.g. "repro.core.streams"
    pragmas: _Pragmas

    @classmethod
    def from_source(cls, path: str, source: str) -> "Module":
        posix = Path(path).as_posix()
        return cls(
            path=posix,
            source=source,
            tree=ast.parse(source, filename=posix),
            lines=source.splitlines(),
            dotted=_dotted_name(posix),
            pragmas=_parse_pragmas(source.splitlines()),
        )


def _dotted_name(posix_path: str) -> str:
    parts = list(Path(posix_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Strip any leading path up to and including a "src" component, so
    # "/abs/repo/src/repro/core/streams.py" -> "repro.core.streams".
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        for anchor in ("repro",):
            if anchor in parts:
                parts = parts[parts.index(anchor) :]
                break
    return ".".join(parts)


class Project:
    """A set of parsed modules, the unit every rule runs against."""

    def __init__(self, modules: list[Module]):
        self.modules = modules
        self.by_dotted = {m.dotted: m for m in modules}
        self._callgraph = None  # built lazily by callgraph.get_callgraph

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """Build from an in-memory ``{path: source}`` mapping (fixtures)."""
        return cls(
            [Module.from_source(path, text) for path, text in sources.items()]
        )

    @classmethod
    def from_paths(cls, paths: list[str | Path]) -> "Project":
        """Build from files and/or directories (``*.py`` walked recursively)."""
        files: list[Path] = []
        for entry in paths:
            p = Path(entry)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
            else:
                raise ValueError(f"not a Python file or directory: {entry}")
        modules = []
        for f in files:
            try:
                rel = f.relative_to(Path.cwd())
            except ValueError:
                rel = f
            modules.append(
                Module.from_source(rel.as_posix(), f.read_text())
            )
        return cls(modules)

    def module_for_path(self, finding_path: str) -> Module | None:
        for module in self.modules:
            if module.path == finding_path:
                return module
        return None


class Rule:
    """Base class: one named invariant checked across a :class:`Project`."""

    name: str = "abstract"
    rationale: str = ""

    def run(self, project: Project) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


def apply_suppressions(project: Project, findings: list[Finding]) -> None:
    """Mark findings silenced by a pragma at/above their line (in place)."""
    for finding in findings:
        module = project.module_for_path(finding.path)
        if module is None:
            continue
        suppressed, justification = module.pragmas.lookup(
            finding.rule, finding.line
        )
        if suppressed:
            finding.suppressed = True
            finding.justification = justification


def run_rules(
    project: Project, rules: list[Rule], only: set[str] | None = None
) -> list[Finding]:
    """Run ``rules`` (optionally restricted to ``only`` names) and return
    findings sorted by location, with suppressions applied."""
    findings: list[Finding] = []
    for rule in rules:
        if only is not None and rule.name not in only:
            continue
        findings.extend(rule.run(project))
    apply_suppressions(project, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def findings_to_json(findings: list[Finding]) -> str:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "unsuppressed": sum(1 for f in findings if not f.suppressed),
        "suppressed": sum(1 for f in findings if f.suppressed),
    }
    return json.dumps(payload, indent=2) + "\n"

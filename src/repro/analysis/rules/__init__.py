"""Rule catalogue: one module per rule, aggregated in :data:`ALL_RULES`."""

from __future__ import annotations

from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.kernel_parity import KernelParityRule
from repro.analysis.rules.lockstep import LockstepRule
from repro.analysis.rules.overflow import OverflowRule
from repro.analysis.rules.stream_protocol import StreamProtocolRule

#: Every shipped rule, in catalogue order.
ALL_RULES = [
    LockstepRule,
    StreamProtocolRule,
    KernelParityRule,
    DeterminismRule,
    OverflowRule,
]


def default_rules():
    """Fresh instances of every shipped rule."""
    return [cls() for cls in ALL_RULES]


def rule_names() -> list[str]:
    return [cls.name for cls in ALL_RULES]

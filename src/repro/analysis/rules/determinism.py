"""Rule ``determinism`` — all randomness flows through ``util/rng.py``.

Checker soundness is argued over *seeded* hash functions, and every test
and experiment in the repo reproduces bit-for-bit from a run seed.  A naked
``np.random.*`` / ``random.*`` call anywhere else introduces hidden global
state (or an OS-entropy seed) that silently breaks replay — and, worse,
per-PE divergence once the comm layer is real.  The sanctioned entry points
live in ``repro/util/rng.py`` (SplitMix64 streams plus the
``default_generator`` bridge to :class:`numpy.random.Generator`); that
module is the single allowed user of the underlying libraries.

Only *call sites* are flagged.  ``np.random.Generator`` used as a type
annotation, and method calls on a generator object someone passed in
(``rng.integers(...)``), are fine — the policy is about who *constructs*
randomness, not who consumes it.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Module, Project, Rule

_SANCTIONED_SUFFIXES = ("repro/util/rng.py",)


def _chain(node: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _random_imports(module: Module) -> tuple[set[str], set[str]]:
    """(aliases of the random/numpy.random modules, names imported from them)."""
    module_aliases: set[str] = set()
    member_names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("random", "numpy.random"):
                    module_aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("random", "numpy.random"):
                for alias in node.names:
                    member_names.add(alias.asname or alias.name)
    return module_aliases, member_names


class DeterminismRule(Rule):
    name = "determinism"
    rationale = (
        "runs must reproduce bit-for-bit from a seed; unseeded or "
        "global-state RNG breaks replay and diverges across PEs"
    )

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if not module.dotted.startswith("repro."):
                continue
            if module.path.endswith(_SANCTIONED_SUFFIXES):
                continue
            module_aliases, member_names = _random_imports(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                reason = None
                if isinstance(node.func, ast.Attribute):
                    chain = _chain(node.func)
                    if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
                        reason = ".".join(chain)
                    elif chain and chain[0] in module_aliases:
                        reason = ".".join(chain)
                elif isinstance(node.func, ast.Name):
                    if node.func.id in member_names:
                        reason = node.func.id
                if reason is not None:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"naked RNG call {reason}(...); route through "
                                "repro.util.rng (default_generator / "
                                "SplitMix64 streams) so runs replay from the "
                                "seed"
                            ),
                        )
                    )
        return findings

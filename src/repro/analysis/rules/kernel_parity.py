"""Rule ``kernel-parity`` — backends and dispatch table agree exactly.

``dispatch.get_kernels`` resolves kernels from whichever backend the tier
selects *by name*, so the numpy oracle and the numba implementation must
export the same kernel set with the same parameter lists, and
``KERNEL_NAMES`` must list exactly that set — a kernel missing from one
backend only fails at runtime on the machine where that tier happens to be
selected.  Checks:

* every ``KERNEL_NAMES`` entry is defined in both backends;
* matching kernels take identically-named parameters in the same order
  (annotations and defaults are representation, not interface);
* no *extra* public top-level function in either backend escapes the
  dispatch table (``self_check`` and underscore helpers are exempt — they
  are backend-internal, not dispatched).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Module, Project, Rule

_DISPATCH_SUFFIX = ".kernels.dispatch"
_BACKEND_SUFFIXES = (".kernels.numpy_backend", ".kernels.numba_backend")
_EXEMPT = {"self_check"}


def _top_level_functions(module: Module) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _param_names(fn: ast.FunctionDef) -> list[str]:
    args = fn.args
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


def _kernel_names(module: Module) -> tuple[list[str], int] | None:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "KERNEL_NAMES":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    return list(value), node.lineno
    return None


class KernelParityRule(Rule):
    name = "kernel-parity"
    rationale = (
        "kernels are resolved by name at tier-selection time; a backend/"
        "dispatch mismatch is invisible until the other tier runs"
    )

    def run(self, project: Project) -> list[Finding]:
        dispatch = None
        backends: dict[str, Module] = {}
        for module in project.modules:
            if module.dotted.endswith(_DISPATCH_SUFFIX):
                dispatch = module
            for suffix in _BACKEND_SUFFIXES:
                if module.dotted.endswith(suffix):
                    backends[suffix.rsplit(".", 1)[-1]] = module
        if dispatch is None or len(backends) < 2:
            return []  # kernel tier not part of this project (e.g. fixtures)

        findings: list[Finding] = []
        parsed = _kernel_names(dispatch)
        if parsed is None:
            return [
                Finding(
                    rule=self.name,
                    path=dispatch.path,
                    line=1,
                    message="dispatch module defines no literal KERNEL_NAMES table",
                )
            ]
        kernel_names, table_line = parsed
        funcs = {
            name: _top_level_functions(module)
            for name, module in backends.items()
        }

        for kernel in kernel_names:
            defs: dict[str, ast.FunctionDef] = {}
            for backend, module in backends.items():
                fn = funcs[backend].get(kernel)
                if fn is None:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=1,
                            message=(
                                f"kernel '{kernel}' is in KERNEL_NAMES but "
                                f"not defined in {backend}"
                            ),
                        )
                    )
                else:
                    defs[backend] = fn
            if len(defs) == 2:
                (b1, f1), (b2, f2) = sorted(defs.items())
                if _param_names(f1) != _param_names(f2):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=backends[b2].path,
                            line=f2.lineno,
                            message=(
                                f"kernel '{kernel}' signature mismatch: "
                                f"{b1}({', '.join(_param_names(f1))}) vs "
                                f"{b2}({', '.join(_param_names(f2))})"
                            ),
                        )
                    )

        for backend, module in backends.items():
            for name, fn in funcs[backend].items():
                if name.startswith("_") or name in _EXEMPT:
                    continue
                if name not in kernel_names:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=fn.lineno,
                            message=(
                                f"public kernel-like function '{name}' in "
                                f"{backend} is missing from KERNEL_NAMES "
                                f"(dispatch.py:{table_line})"
                            ),
                        )
                    )
        return findings

"""Rule ``collective-lockstep`` — collectives must be control-flow uniform.

The checkers' soundness argument (and, once ROADMAP item 1 lands, mpi4py's
liveness) requires every PE to issue the *same sequence* of collectives.
Three shapes break that:

* **diverging branch** — a collective reachable in only one arm (or with a
  different collective sequence per arm) of a branch whose condition is not
  replicated across PEs;
* **non-uniform loop** — collectives inside a loop whose iteration count
  depends on per-PE data (a ``for`` over a local container, a ``while``
  on a local predicate, or a ``while True`` whose ``break`` is guarded by
  a per-PE condition);
* **early return** — a ``return`` guarded by a non-replicated condition
  with collectives issued later in the function (the classic
  ``if values.size == 0: return`` fast path that deadlocks under MPI).

``raise`` paths are deliberately not flagged: input-validation raises are
programmer-error traps, expected to fire on every PE or none (the inputs
they validate are replicated configuration), and flagging them would bury
the real hazards in noise.

Replication of conditions comes from :mod:`repro.analysis.uniformity`;
whether a call issues collectives comes from the transitive summaries in
:mod:`repro.analysis.callgraph`.  Scope: ``repro.core``, ``repro.dataflow``
and ``repro.comm`` — minus the collective *implementations* themselves
(``comm/collectives.py``, ``comm/communicator.py``), whose internal rank
branching is the binomial tree, not a bug.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    NONUNIFORM,
    CONV,
    CallGraph,
    FunctionInfo,
    _PRIMITIVE_MODULE_SUFFIXES,
    get_callgraph,
)
from repro.analysis.engine import Finding, Project, Rule
from repro.analysis.uniformity import FlowWalker, comm_guard

_SCOPE_PREFIXES = ("repro.core", "repro.dataflow", "repro.comm")


class _LockstepWalker(FlowWalker):
    """FlowWalker subclass that emits lockstep findings while propagating
    replication levels."""

    def __init__(self, graph: CallGraph, info: FunctionInfo, findings: list):
        super().__init__(graph, info, CONV)
        self.findings = findings
        #: lines of returns guarded by a non-replicated condition, waiting
        #: to see whether any collective is issued later in the function.
        self._pending_returns: list[int] = []
        #: per enclosing loop: does it issue collectives?
        self._loop_stack: list[bool] = []
        self._emitted: set[tuple[int, str]] = set()

    # -- finding helpers -----------------------------------------------------

    def _emit(self, line: int, message: str) -> None:
        key = (line, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.findings.append(
            Finding(
                rule=LockstepRule.name,
                path=self.info.module_path,
                line=line,
                message=f"in {self.info.qualname}: {message}",
            )
        )

    def _markers(self, node: ast.AST) -> tuple[str, ...]:
        """Ordered collective markers issued in ``node``'s subtree.

        A marker is either a direct collective op (``"allreduce"``) or a
        call into an analyzed function with a non-empty transitive
        collective summary (``"settle→{allreduce,bcast}"``).  Nested
        function/class definitions are excluded.
        """
        out: list[str] = []

        def visit(n: ast.AST) -> None:
            if isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            if isinstance(n, ast.Call):
                op = CallGraph.collective_op(n)
                if op is not None:
                    out.append(op)
                else:
                    marker = self._call_marker(n)
                    if marker is not None:
                        out.append(marker)
            for child in ast.iter_child_nodes(n):
                visit(child)

        if isinstance(node, list):
            for item in node:
                visit(item)
        else:
            visit(node)
        return tuple(out)

    def _call_marker(self, call: ast.Call) -> str | None:
        func = call.func
        root = None
        if isinstance(func, ast.Name):
            name, kind = func.id, "bare"
        elif isinstance(func, ast.Attribute):
            name = func.attr
            n = func
            while isinstance(n, ast.Attribute):
                n = n.value
            if isinstance(n, ast.Name) and n.id in ("self", "cls"):
                kind = "self"
            else:
                kind = "attr"
                root = n.id if isinstance(n, ast.Name) else None
        else:
            return None
        ops: set[str] = set()
        for target in self.graph.resolve_edge(self.info, kind, name, root):
            ops |= target.transitive
        if not ops:
            return None
        return f"{name}→{{{','.join(sorted(ops))}}}"

    @staticmethod
    def _contains(node_or_block, kinds) -> bool:
        items = node_or_block if isinstance(node_or_block, list) else [node_or_block]
        stack = list(items)
        while stack:
            n = stack.pop()
            if isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(n, kinds):
                return True
            stack.extend(ast.iter_child_nodes(n))
        return False

    # -- walk hooks ----------------------------------------------------------

    def walk_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if self._pending_returns:
                markers = self._markers(stmt)
                if markers:
                    for ret_line in self._pending_returns:
                        self._emit(
                            ret_line,
                            "early return guarded by a non-replicated "
                            f"condition, but collectives follow at line "
                            f"{stmt.lineno} ({', '.join(markers)}); PEs "
                            "taking the fast path skip them",
                        )
                    self._pending_returns.clear()
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            level = self.level(stmt.iter)
            body_markers = self._markers(stmt.body)
            if level == NONUNIFORM and body_markers:
                self._emit(
                    stmt.lineno,
                    "for-loop over a non-replicated iterable issues "
                    f"collectives ({', '.join(body_markers)}); iteration "
                    "counts can differ across PEs",
                )
            self._loop_stack.append(bool(body_markers))
            try:
                super().walk_stmt(stmt)
            finally:
                self._loop_stack.pop()
            return
        if isinstance(stmt, ast.While):
            level = self.level(stmt.test)
            body_markers = self._markers(stmt.body)
            if level == NONUNIFORM and body_markers:
                self._emit(
                    stmt.lineno,
                    "while-loop with a non-replicated bound issues "
                    f"collectives ({', '.join(body_markers)}); PEs can "
                    "run different numbers of rounds",
                )
            self._loop_stack.append(bool(body_markers))
            try:
                super().walk_stmt(stmt)
            finally:
                self._loop_stack.pop()
            return
        super().walk_stmt(stmt)

    def _walk_if(self, stmt: ast.If) -> None:
        if comm_guard(stmt.test) is None:
            level = self.level(stmt.test)
            if level == NONUNIFORM:
                body_markers = self._markers(stmt.body)
                orelse_markers = self._markers(stmt.orelse)
                if body_markers != orelse_markers:
                    self._emit(
                        stmt.lineno,
                        "branch on a non-replicated condition with "
                        "diverging collective sequences: if-arm "
                        f"[{', '.join(body_markers) or 'none'}] vs else-arm "
                        f"[{', '.join(orelse_markers) or 'none'}]",
                    )
                if (
                    self._loop_stack
                    and self._loop_stack[-1]
                    and self._contains(stmt, (ast.Break,))
                ):
                    self._emit(
                        stmt.lineno,
                        "loop exit guarded by a non-replicated condition "
                        "inside a collective-issuing loop; PEs can leave "
                        "the loop in different rounds",
                    )
                if self._contains(stmt, (ast.Return,)):
                    self._pending_returns.append(stmt.lineno)
        super()._walk_if(stmt)


class LockstepRule(Rule):
    name = "collective-lockstep"
    rationale = (
        "every PE must issue the same collective sequence; data-dependent "
        "branches/loops/early-returns around collectives deadlock under MPI"
    )

    def run(self, project: Project) -> list[Finding]:
        graph = get_callgraph(project)
        findings: list[Finding] = []
        for info in graph.functions:
            if not info.module_dotted.startswith(_SCOPE_PREFIXES):
                continue
            if info.module_dotted.endswith(_PRIMITIVE_MODULE_SUFFIXES):
                continue
            walker = _LockstepWalker(graph, info, findings)
            walker.walk_function()
        return findings

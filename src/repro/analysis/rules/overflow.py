"""Rule ``overflow-discipline`` — int64 accumulation in ``core/`` is guarded.

The checkers fingerprint data by summing hashed int64 values.  NumPy sums
wrap silently at 2^63, and a wrapped fingerprint is exactly the kind of
"both sides computed the same wrong number" failure a checker cannot see.
``core/`` has three sanctioned disciplines, all of which this rule
recognizes as guards:

* **magnitude analysis** — bound the addends first (``_max_magnitude``)
  and pick an exact dtype (``sum_checker``);
* **32-bit splitting** — split into lo/hi halves (``<< 32`` / ``>> 32``)
  and accumulate in Python's unbounded ints (``wide_sum``);
* **modular reduction** — reduce mod a < 2^31 prime at (or immediately
  after) the summation, where wraparound is impossible or the arithmetic
  is intentionally modular.

A ``.sum()`` / ``np.sum`` / ``np.cumsum`` / ``np.dot`` in ``repro.core``
with none of these in reach — no ``dtype=`` promotion on the call, no
``%`` in the same statement, no later ``%`` applied to the assigned name,
and no magnitude/split guard in the enclosing function — is flagged.
Python's builtin ``sum`` is exempt (arbitrary precision).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Project, Rule

_SUM_ATTRS = {"sum", "cumsum", "dot"}
_GUARD_CALL_TOKENS = ("max_magnitude",)


def _is_sum_call(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SUM_ATTRS:
        return func.attr
    return None


def _has_dtype_promotion(node: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in node.keywords)


def _function_has_guard(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name and any(tok in name for tok in _GUARD_CALL_TOKENS):
                return True
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.LShift, ast.RShift))
            and isinstance(node.right, ast.Constant)
            and node.right.value == 32
        ):
            return True
    return False


def _stmt_has_mod(stmt: ast.stmt) -> bool:
    return any(
        isinstance(n, ast.BinOp) and isinstance(n.op, ast.Mod)
        for n in ast.walk(stmt)
    )


def _assigned_names(stmt: ast.stmt) -> set[str]:
    names: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _later_mod_on(fn: ast.AST, names: set[str]) -> bool:
    """Whether any Mod BinOp in the function mentions one of ``names``."""
    if not names:
        return False
    for node in ast.walk(fn):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in names:
                    return True
    return False


class OverflowRule(Rule):
    name = "overflow-discipline"
    rationale = (
        "int64 fingerprint sums wrap silently at 2^63; every accumulation "
        "needs a magnitude bound, a 32-bit split, or a modular reduction"
    )

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if not module.dotted.startswith("repro.core"):
                continue
            for fn in ast.walk(module.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _function_has_guard(fn):
                    continue
                for stmt in ast.walk(fn):
                    # Smallest enclosing simple statements only, so one
                    # call is judged (and reported) exactly once.
                    if not isinstance(
                        stmt,
                        (
                            ast.Assign,
                            ast.AugAssign,
                            ast.AnnAssign,
                            ast.Expr,
                            ast.Return,
                            ast.Assert,
                        ),
                    ):
                        continue
                    if _stmt_has_mod(stmt):
                        continue
                    assigned = _assigned_names(stmt)
                    for node in ast.walk(stmt):
                        if not isinstance(node, ast.Call):
                            continue
                        op = _is_sum_call(node)
                        if op is None or _has_dtype_promotion(node):
                            continue
                        if _later_mod_on(fn, assigned):
                            continue
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.path,
                                line=node.lineno,
                                message=(
                                    f"unguarded .{op}() accumulation: no "
                                    "dtype promotion, magnitude bound "
                                    "(_max_magnitude), 32-bit split, or "
                                    "modular reduction in reach — int64 "
                                    "wraparound corrupts the fingerprint "
                                    "silently"
                                ),
                            )
                        )
        return findings

"""Rule ``stream-protocol`` — ``CheckerStream`` subclasses obey the protocol.

The windowed settlement machinery (``dataflow/streaming.py``) drives every
stream through the same lifecycle: ``feed_input``/``feed_output`` while
open, exactly one ``settle``, and a uniform ``RuntimeError`` on use after
settling.  The base class centralizes the guard (``_ensure_open`` /
``_settled``); subclasses keep the invariant only if they actually route
through it.  Three checks:

* **missing-method** — a leaf subclass (no project-local subclasses of its
  own) must provide ``feed_input``, ``feed_output`` and a settlement hook
  (``_settle`` or a ``settle`` override) somewhere below the base class;
  inheriting the base's ``NotImplementedError`` stubs is not an
  implementation.
* **unguarded-feed** — a ``feed_input``/``feed_output`` override that
  mutates ``self`` state must call ``self._ensure_open()`` first; mutating
  before the guard means a settled stream still changes state even though
  the delegate it forwards to raises.
* **settle-override** — overriding ``settle`` itself (instead of the
  ``_settle`` hook) must preserve the base machinery: call
  ``self._ensure_open()`` and set ``self._settled``.  Anything else makes
  re-settle silently recompute — the double-settlement bug the uniform
  ``RuntimeError`` exists to catch.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import get_callgraph
from repro.analysis.engine import Finding, Project, Rule

_BASE = "CheckerStream"
_FEED_METHODS = ("feed_input", "feed_output")


def _calls_method(fn: ast.FunctionDef, method: str) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return True
    return False


def _mutates_self_before_guard(fn: ast.FunctionDef) -> int | None:
    """Line of the first ``self.x = ...`` / ``self.x += ...`` not preceded
    by ``self._ensure_open()``, walking top-level statements in order."""
    guarded = False
    for stmt in fn.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_ensure_open"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                guarded = True
        if guarded:
            return None
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return stmt.lineno
    return None


class StreamProtocolRule(Rule):
    name = "stream-protocol"
    rationale = (
        "CheckerStream subclasses must feed through the _ensure_open guard "
        "and settle through the base machinery, or settled streams mutate "
        "and re-settle silently"
    )

    def run(self, project: Project) -> list[Finding]:
        graph = get_callgraph(project)
        findings: list[Finding] = []

        # Subclass map over project-local classes.
        children: dict[str, list[str]] = {}
        for cls in graph.classes.values():
            for base in cls.bases:
                children.setdefault(base, []).append(cls.name)

        def is_stream(name: str) -> bool:
            seen: set[str] = set()
            queue = [name]
            while queue:
                current = queue.pop(0)
                if current in seen:
                    continue
                seen.add(current)
                cls = graph.classes.get(current)
                if cls is None:
                    continue
                if _BASE in cls.bases:
                    return True
                queue.extend(cls.bases)
            return False

        def methods_below_base(name: str) -> dict[str, ast.FunctionDef]:
            """Methods defined anywhere in the hierarchy strictly below
            the base class (nearest definition wins)."""
            out: dict[str, ast.FunctionDef] = {}
            queue = [name]
            seen: set[str] = set()
            while queue:
                current = queue.pop(0)
                if current in seen or current == _BASE:
                    continue
                seen.add(current)
                cls = graph.classes.get(current)
                if cls is None:
                    continue
                for mname, fn in cls.methods.items():
                    out.setdefault(mname, fn.node)
                queue.extend(cls.bases)
            return out

        for cls in graph.classes.values():
            if cls.name == _BASE or not is_stream(cls.name):
                continue
            module = project.by_dotted.get(cls.module_dotted)
            path = module.path if module else cls.module_dotted
            own = cls.methods
            line = next(iter(own.values())).node.lineno if own else 1

            # missing-method: leaves must implement the full protocol.
            if not children.get(cls.name):
                provided = methods_below_base(cls.name)
                for required in _FEED_METHODS:
                    if required not in provided:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=line,
                                message=(
                                    f"{cls.name}: CheckerStream subclass "
                                    f"does not implement {required}()"
                                ),
                            )
                        )
                if "_settle" not in provided and "settle" not in provided:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            line=line,
                            message=(
                                f"{cls.name}: CheckerStream subclass "
                                "implements neither _settle() nor settle()"
                            ),
                        )
                    )

            # unguarded-feed: own feed overrides must guard before mutating.
            for mname in _FEED_METHODS:
                fn = own.get(mname)
                if fn is None:
                    continue
                bad_line = _mutates_self_before_guard(fn.node)
                if bad_line is not None:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            line=bad_line,
                            message=(
                                f"{cls.name}.{mname} mutates stream state "
                                "without calling self._ensure_open() first; "
                                "a settled stream would still accumulate"
                            ),
                        )
                    )

            # settle-override: must keep the re-settle guard.
            fn = own.get("settle")
            if fn is not None:
                guards = _calls_method(fn.node, "_ensure_open")
                marks = any(
                    isinstance(t, ast.Attribute)
                    and t.attr == "_settled"
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for node in ast.walk(fn.node)
                    if isinstance(node, (ast.Assign, ast.AugAssign))
                    for t in (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                )
                if not (guards and marks):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            line=fn.node.lineno,
                            message=(
                                f"{cls.name}.settle overrides the base "
                                "settle() without _ensure_open() + "
                                "self._settled; re-settling would silently "
                                "recompute instead of raising the uniform "
                                "RuntimeError"
                            ),
                        )
                    )
        return findings

"""Replication-level dataflow over function bodies.

Implements the three-level lattice documented in
:mod:`repro.analysis.callgraph` (``TRUE`` > ``CONV`` > ``NONUNIFORM``) as a
single forward walk over a function's statements.  The same walker serves
two consumers:

* :func:`compute_returns` — a function's return-replication summary, used
  at call sites ("branching on ``stream.settle()`` is safe, it ends in a
  verdict broadcast");
* the collective-lockstep rule, which subclasses :class:`FlowWalker` and
  hooks statement entry to flag collectives guarded by non-replicated
  control flow.

Two deliberate domain conventions:

* ``comm is None`` tests select the *sequential* execution path.  The
  sequential arm is skipped entirely (there is no lockstep to violate with
  one PE) and the distributed arm is walked as if unconditional.
* Function parameters and ``self`` state are replicated **by convention**
  (SPMD programs pass the same configuration everywhere), but per-PE
  measurements of the data they carry — ``.size``/``.shape``/``len()``/
  ``.rank``/``.local`` — are not.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    CONV,
    NONUNIFORM,
    REPLICATED_COLLECTIVES,
    TRUE,
    CallGraph,
    FunctionInfo,
    _attr_chain,
    _is_comm_like,
    _SHAPE_ATTRS,
    _PER_PE_TOKENS,
)


def comm_guard(test: ast.expr) -> str | None:
    """Classify a branch test as a sequential/distributed comm guard.

    Returns ``"sequential-body"`` for ``<comm> is None`` (the body is the
    sequential arm), ``"distributed-body"`` for ``<comm> is not None``,
    and None for everything else.
    """
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
        and _is_comm_like(test.left)
    ):
        return (
            "sequential-body"
            if isinstance(test.ops[0], ast.Is)
            else "distributed-body"
        )
    return None


class FlowWalker:
    """Forward replication-level propagation over one function body."""

    def __init__(self, graph: CallGraph, info: FunctionInfo, param_level: int):
        self.graph = graph
        self.info = info
        self.module_names = self._module_level_names()
        self.env: dict[str, int] = {}
        args = info.node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.env[arg.arg] = param_level
        if info.class_name is not None:
            for name in ("self", "cls"):
                self.env.setdefault(name, param_level)
        self.return_levels: list[int] = []

    def _module_level_names(self) -> set[str]:
        names: set[str] = set()
        module = None
        for m in self.graph.project.modules:
            if m.path == self.info.module_path:
                module = m
                break
        if module is None:
            return names
        for node in module.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    # -- expression levels ---------------------------------------------------

    def level(self, expr: ast.expr | None) -> int:
        if expr is None:
            return TRUE
        method = getattr(self, f"_lvl_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        # Unknown expression kinds: conservative.
        return NONUNIFORM

    def _lvl_Constant(self, node) -> int:
        return TRUE

    def _lvl_Name(self, node) -> int:
        if node.id in self.env:
            return self.env[node.id]
        if node.id in self.module_names or node.id in _BUILTIN_NAMES:
            return TRUE
        return NONUNIFORM

    def _lvl_Attribute(self, node) -> int:
        chain = _attr_chain(node)
        if chain and set(chain) & _PER_PE_TOKENS:
            return NONUNIFORM
        base = self.level(node.value)
        if node.attr in _SHAPE_ATTRS:
            # `.size` on a communicator is the PE count — replicated by
            # definition, unlike `.size` on data (the local chunk length).
            if _is_comm_like(node.value):
                return base
            return TRUE if base == TRUE else NONUNIFORM
        return base

    def _lvl_Subscript(self, node) -> int:
        return min(self.level(node.value), self.level(node.slice))

    def _lvl_Slice(self, node) -> int:
        return min(
            self.level(node.lower), self.level(node.upper), self.level(node.step)
        )

    def _lvl_Call(self, node: ast.Call) -> int:
        op = CallGraph.collective_op(node)
        if op is not None:
            return TRUE if op in REPLICATED_COLLECTIVES else NONUNIFORM
        arg_levels = [self.level(a) for a in node.args] + [
            self.level(kw.value) for kw in node.keywords
        ]
        func = node.func
        targets: list[FunctionInfo] = []
        receiver_level = TRUE
        callee_name = None
        if isinstance(func, ast.Name):
            callee_name = func.id
            targets = self.graph.resolve_edge(self.info, "bare", func.id)
        elif isinstance(func, ast.Attribute):
            callee_name = func.attr
            chain = _attr_chain(func)
            if chain and set(chain) & _PER_PE_TOKENS:
                return NONUNIFORM
            kind = "self" if chain and chain[0] in ("self", "cls") else "attr"
            root = chain[0] if chain and kind == "attr" else None
            targets = self.graph.resolve_edge(self.info, kind, func.attr, root)
            receiver_level = self.level(func.value)
        if callee_name == "len":
            inner = min(arg_levels) if arg_levels else TRUE
            return TRUE if inner == TRUE else NONUNIFORM
        floor = min(arg_levels + [receiver_level]) if (arg_levels or targets) else receiver_level
        if targets:
            worst = min(t.returns_worst for t in targets)
            best = min(t.returns_best for t in targets)
            if worst == TRUE:
                # Return value forced replicated (e.g. ends in a verdict
                # broadcast) regardless of the arguments.
                return TRUE
            return min(best, floor)
        # Unanalyzed callee (numpy, stdlib): assume pure in its arguments.
        return floor

    def _lvl_BoolOp(self, node) -> int:
        return min(self.level(v) for v in node.values)

    def _lvl_BinOp(self, node) -> int:
        return min(self.level(node.left), self.level(node.right))

    def _lvl_UnaryOp(self, node) -> int:
        return self.level(node.operand)

    def _lvl_Compare(self, node) -> int:
        # Optional-argument presence is SPMD-uniform: `x is None` is the
        # idiom for "was this configured", not a data inspection.
        if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops) and all(
            isinstance(c, ast.Constant) and c.value is None
            for c in node.comparators
        ):
            return TRUE
        return min(
            [self.level(node.left)] + [self.level(c) for c in node.comparators]
        )

    def _lvl_IfExp(self, node) -> int:
        return min(
            self.level(node.test), self.level(node.body), self.level(node.orelse)
        )

    def _lvl_Tuple(self, node) -> int:
        return min((self.level(e) for e in node.elts), default=TRUE)

    _lvl_List = _lvl_Tuple
    _lvl_Set = _lvl_Tuple

    def _lvl_Dict(self, node) -> int:
        levels = [self.level(k) for k in node.keys if k is not None]
        levels += [self.level(v) for v in node.values]
        return min(levels, default=TRUE)

    def _lvl_JoinedStr(self, node) -> int:
        return min((self.level(v) for v in node.values), default=TRUE)

    def _lvl_FormattedValue(self, node) -> int:
        return self.level(node.value)

    def _lvl_Starred(self, node) -> int:
        return self.level(node.value)

    def _lvl_Await(self, node) -> int:
        return self.level(node.value)

    def _lvl_NamedExpr(self, node) -> int:
        lvl = self.level(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = lvl
        return lvl

    def _lvl_Lambda(self, node) -> int:
        return TRUE  # a function object is replicated; its results are judged at call sites

    def _comprehension_level(self, node) -> int:
        child_env = dict(self.env)
        try:
            for gen in node.generators:
                lvl = self.level(gen.iter)
                for name in _target_names(gen.target):
                    self.env[name] = lvl
            if isinstance(node, ast.DictComp):
                return min(self.level(node.key), self.level(node.value))
            return self.level(node.elt)
        finally:
            self.env = child_env

    _lvl_ListComp = _comprehension_level
    _lvl_SetComp = _comprehension_level
    _lvl_GeneratorExp = _comprehension_level
    _lvl_DictComp = _comprehension_level

    # -- statement walk ------------------------------------------------------

    def walk_function(self) -> None:
        self.walk_block(self.info.node.body)

    def walk_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        self.enter_stmt(stmt)
        if isinstance(stmt, ast.Assign):
            lvl = self.level(stmt.value)
            for target in stmt.targets:
                self._assign(target, lvl)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.level(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            lvl = self.level(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self.env.get(stmt.target.id, NONUNIFORM)
                self.env[stmt.target.id] = min(old, lvl)
        elif isinstance(stmt, ast.Return):
            self.return_levels.append(self.level(stmt.value))
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            lvl = self.level(stmt.iter)
            for name in _target_names(stmt.target):
                self.env[name] = lvl
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.level(stmt.test)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.walk_block(stmt.body)
            for handler in stmt.handlers:
                self.walk_block(handler.body)
            self.walk_block(stmt.orelse)
            self.walk_block(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                lvl = self.level(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, lvl)
            self.walk_block(stmt.body)
        elif isinstance(stmt, ast.Expr):
            self.level(stmt.value)
        # Raise / Pass / Break / Continue / nested defs: no level effects.

    def _walk_if(self, stmt: ast.If) -> None:
        guard = comm_guard(stmt.test)
        if guard == "sequential-body":
            # Only the distributed arm exists under lockstep analysis.
            if not _block_always_exits(stmt.body):
                self._walk_branch_merge(stmt, walk_body=False)
            else:
                self.walk_block(stmt.orelse)
            return
        if guard == "distributed-body":
            self.walk_block(stmt.body)
            return
        self.level(stmt.test)
        self._walk_branch_merge(stmt, walk_body=True)

    def _walk_branch_merge(self, stmt: ast.If, walk_body: bool) -> None:
        saved = dict(self.env)
        branch_envs = []
        if walk_body:
            self.env = dict(saved)
            self.walk_block(stmt.body)
            branch_envs.append(self.env)
        self.env = dict(saved)
        self.walk_block(stmt.orelse)
        branch_envs.append(self.env)
        merged = dict(saved)
        for env in branch_envs:
            for name, lvl in env.items():
                if name in merged:
                    merged[name] = min(merged[name], lvl)
                else:
                    merged[name] = lvl
        self.env = merged

    def _assign(self, target: ast.expr, lvl: int) -> None:
        for name in _target_names(target):
            self.env[name] = lvl

    def enter_stmt(self, stmt: ast.stmt) -> None:
        """Hook for subclasses (the lockstep rule); default: nothing."""


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _block_always_exits(stmts: list[ast.stmt]) -> bool:
    """Whether a block unconditionally returns/raises (its tail is dead)."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


import builtins as _builtins

#: Builtin names treated as replicated (function objects, not results).
_BUILTIN_NAMES = frozenset(dir(_builtins))


def compute_returns(graph: CallGraph, info: FunctionInfo) -> tuple[int, int]:
    """(worst, best) return-replication of ``info``.

    ``worst`` assumes every parameter is per-PE data; ``worst == TRUE``
    therefore proves the return value is replicated no matter what was
    passed (it went through an ``allreduce``/``bcast``).  ``best`` assumes
    replicated parameters and bounds the parametric case.
    """
    levels = []
    for param_level in (NONUNIFORM, TRUE):
        walker = FlowWalker(graph, info, param_level)
        walker.walk_function()
        if walker.return_levels:
            levels.append(min(walker.return_levels))
        else:
            levels.append(TRUE)  # implicit `return None`
    return levels[0], levels[1]


def function_returns_level(graph: CallGraph, info: FunctionInfo):
    """Back-compat shim used by the callgraph fixed point."""
    return compute_returns(graph, info)

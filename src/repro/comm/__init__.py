"""Simulated distributed-memory communication substrate.

The paper analyses algorithms in the single-ported, full-duplex α–β model
(§2): sending a message of m bits costs ``α + β·m``; collectives cost
``T_coll(k) = O(β·k + α·log p)``.  This package provides

* an in-process *network* of per-(src, dst) mailboxes with a thread-based
  SPMD runtime (:class:`repro.comm.context.Context`),
* per-PE *traffic meters* recording every byte and message — the paper's
  headline claim is about bottleneck communication volume, which is exactly
  countable here,
* *collectives* (broadcast, reduce, all-reduce, gather, all-gather, scan,
  all-to-all) built from real point-to-point messages with binomial-tree /
  hypercube schedules, so message counts match the textbook algorithms the
  paper cites [7, 8, 9].
"""

from repro.comm import ops
from repro.comm.backend import BACKEND_ENV, BACKENDS, resolve_backend
from repro.comm.cost import (
    CostModel,
    TrafficMeter,
    bottleneck_volume,
    payload_nbytes,
)
from repro.comm.network import Network, NetworkEndpoint
from repro.comm.communicator import Comm
from repro.comm.context import Context, SPMDError

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "CostModel",
    "TrafficMeter",
    "bottleneck_volume",
    "ops",
    "payload_nbytes",
    "resolve_backend",
    "Network",
    "NetworkEndpoint",
    "Comm",
    "Context",
    "SPMDError",
]

"""Pluggable execution backends: the endpoint protocol and wire format.

ROADMAP item 1.  Historically every PE was a thread over the in-process
mailbox :class:`~repro.comm.network.Network`.  This module makes the
transport pluggable: a :class:`CommBackend` endpoint is the *per-rank*
view of a fabric — send/recv/barrier plus optional native collective fast
paths — and :class:`~repro.comm.communicator.Comm` is written against it.
Three backends exist:

``threads``
    the original mailbox network (the *oracle*: every other backend must
    produce bit-identical verdicts),
``processes``
    :mod:`repro.comm.proc_backend` — real OS processes exchanging numpy
    payloads through ``multiprocessing.shared_memory`` rings,
``mpi``
    :mod:`repro.comm.mpi_backend` — optional mpi4py (lazy import, sticky
    fallback to ``threads`` when absent).

Bit-identity is guaranteed by routing all collectives through the same
tree schedules in :mod:`repro.comm.collectives` over backend
point-to-point; native fast paths are taken only where exactness is
provable (integer payloads, named ops — see :mod:`repro.comm.ops`).

Wire format (shared by the process and MPI backends)
----------------------------------------------------
Every message is one *frame*::

    [u32 kind][u32 meta_len][u64 payload_len][meta bytes][payload bytes]

``KIND_RAW`` carries a contiguous, non-object ndarray: meta is the pickled
``(dtype.str, shape)`` pair and the payload is the raw buffer (no pickle
overhead — the size :func:`repro.comm.cost.payload_nbytes` models).
``KIND_PICKLE`` is the fallback for everything else.  Frame length is what
the backend's meter records as *wire* bytes, so the α–β model's predicted
volume can be validated against actual serialized bytes
(``benchmarks/bench_backends.py``).
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Protocol, runtime_checkable

import numpy as np

from repro.comm.cost import TrafficMeter

BACKEND_THREADS = "threads"
BACKEND_PROCESSES = "processes"
BACKEND_MPI = "mpi"
BACKENDS = (BACKEND_THREADS, BACKEND_PROCESSES, BACKEND_MPI)

#: Environment knob: default backend for every :class:`Context` that does
#: not pass one explicitly (lets the whole suite re-run on real processes).
BACKEND_ENV = "REPRO_COMM_BACKEND"

#: Frame kinds.
KIND_RAW = 1
KIND_PICKLE = 2

#: ``[u32 kind][u32 meta_len][u64 payload_len]``
FRAME_HEADER = struct.Struct("<IIQ")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve the backend name: explicit arg > ``REPRO_COMM_BACKEND`` > threads."""
    name = backend or os.environ.get(BACKEND_ENV) or BACKEND_THREADS
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown comm backend {name!r}; expected one of {BACKENDS}"
        )
    return name


# -- wire format ------------------------------------------------------------

def encode_frame(payload) -> bytes:
    """Serialize ``payload`` into one wire frame (header + meta + body)."""
    if (
        isinstance(payload, np.ndarray)
        and payload.dtype != object
        and payload.flags.c_contiguous
    ):
        meta = pickle.dumps((payload.dtype.str, payload.shape), protocol=5)
        body = payload.data if payload.nbytes else b""
        return b"".join(
            (FRAME_HEADER.pack(KIND_RAW, len(meta), int(payload.nbytes)), meta, body)
        )
    body = pickle.dumps(payload, protocol=5)
    return FRAME_HEADER.pack(KIND_PICKLE, 0, len(body)) + body


def decode_frame(kind: int, meta: bytes, body) -> object:
    """Inverse of :func:`encode_frame`; ``body`` may be any buffer."""
    if kind == KIND_RAW:
        dtype_str, shape = pickle.loads(meta)
        arr = np.empty(shape, dtype=np.dtype(dtype_str))
        if arr.nbytes:
            arr.view(np.uint8).reshape(-1)[:] = np.frombuffer(body, dtype=np.uint8)
        return arr
    if kind == KIND_PICKLE:
        return pickle.loads(body)
    raise ValueError(f"corrupt frame: unknown kind {kind}")


@runtime_checkable
class CommBackend(Protocol):
    """Per-rank transport endpoint a :class:`Comm` drives.

    Required surface: ``rank``, ``size``, :meth:`send`, :meth:`recv`,
    :meth:`barrier` and a :attr:`meter`.  Optional capabilities are probed
    with ``getattr`` by :class:`~repro.comm.communicator.Comm`:

    ``exchange(partner, payload)``
        genuinely nonblocking pairwise swap (no infinite-buffering
        assumption — see ``Comm.sendrecv``),
    ``native_allreduce(value, op)`` / ``native_exscan(value, op, identity)``
        / ``native_alltoall(payloads)``
        hardware collectives returning ``(handled, result)``; a ``False``
        first element falls back to the shared tree schedules.
    """

    rank: int
    size: int

    def send(self, dst: int, payload) -> None: ...

    def recv(self, src: int): ...

    def barrier(self) -> None: ...

    @property
    def meter(self) -> TrafficMeter: ...

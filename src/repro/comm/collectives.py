"""Collective operations built from point-to-point messages.

All schedules are the textbook binomial-tree / recursive-doubling algorithms
the paper cites ([7] Bala et al., [8] Sanders–Speck–Träff, [9] Dietzfelbinger
et al.): broadcast and reduction take ``⌈log2 p⌉`` communication rounds, so a
collective on ``k`` bytes costs ``O(β·k + α·log p)`` — the ``T_coll`` of §2.
All-to-all is provided both with direct delivery (``O(β·k + α·p)``) and
hypercube indirect delivery (``O(β·k·log p + α·log p)``), matching
``T_all-to-all`` of §2.

Functions take the per-rank :class:`~repro.comm.communicator.Comm` handle;
every PE of the group must call the same collective in the same order.
"""

from __future__ import annotations

from typing import Callable, TypeVar

T = TypeVar("T")


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _actual(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def broadcast(comm, value: T, root: int = 0) -> T:
    """Binomial-tree broadcast of ``value`` from ``root`` to every PE."""
    p = comm.size
    if p == 1:
        return value
    v = _vrank(comm.rank, root, p)
    mask = 1
    while mask < p:
        if v < mask:
            partner = v + mask
            if partner < p:
                comm.send(_actual(partner, root, p), value)
        elif v < 2 * mask:
            value = comm.recv(_actual(v - mask, root, p))
        mask <<= 1
    return value


def reduce(comm, value: T, op: Callable[[T, T], T], root: int = 0) -> T | None:
    """Binomial-tree reduction; the combined value lands at ``root``.

    ``op`` must be associative and commutative (all reduce operators in this
    repository are).  Non-root PEs return ``None``.
    """
    p = comm.size
    if p == 1:
        return value
    v = _vrank(comm.rank, root, p)
    mask = 1
    while mask < p:
        if v & mask:
            comm.send(_actual(v - mask, root, p), value)
            return None
        partner = v + mask
        if partner < p:
            value = op(value, comm.recv(_actual(partner, root, p)))
        mask <<= 1
    return value


def allreduce(comm, value: T, op: Callable[[T, T], T]) -> T:
    """Reduction whose result is available at every PE (reduce + broadcast)."""
    result = reduce(comm, value, op, root=0)
    return broadcast(comm, result, root=0)


def gather(comm, value: T, root: int = 0) -> list[T] | None:
    """Binomial-tree gather; ``root`` returns ``[value_0, ..., value_{p-1}]``."""
    p = comm.size
    if p == 1:
        return [value]
    v = _vrank(comm.rank, root, p)
    acc: dict[int, T] = {comm.rank: value}
    mask = 1
    while mask < p:
        if v & mask:
            comm.send(_actual(v - mask, root, p), acc)
            return None
        partner = v + mask
        if partner < p:
            acc.update(comm.recv(_actual(partner, root, p)))
        mask <<= 1
    return [acc[i] for i in range(p)]


def allgather(comm, value: T) -> list[T]:
    """Gather at PE 0 followed by a broadcast of the assembled list."""
    gathered = gather(comm, value, root=0)
    return broadcast(comm, gathered, root=0)


def scan(comm, value: T, op: Callable[[T, T], T]) -> T:
    """Inclusive prefix reduction (Hillis–Steele distributed scan).

    PE i returns ``op(value_0, ..., value_i)`` in ``⌈log2 p⌉`` rounds.
    """
    p = comm.size
    partial = value
    distance = 1
    while distance < p:
        if comm.rank + distance < p:
            comm.send(comm.rank + distance, partial)
        if comm.rank - distance >= 0:
            received = comm.recv(comm.rank - distance)
            partial = op(received, partial)
        distance <<= 1
    return partial


def exscan(comm, value: T, op: Callable[[T, T], T], identity: T) -> T:
    """Exclusive prefix reduction: PE i gets ``op`` over ranks ``< i``."""
    inclusive = scan(comm, value, op)
    # Shift the inclusive prefixes one PE to the right.
    if comm.rank + 1 < comm.size:
        comm.send(comm.rank + 1, inclusive)
    if comm.rank == 0:
        return identity
    return comm.recv(comm.rank - 1)


def alltoall(comm, payloads: list) -> list:
    """Direct-delivery all-to-all: ``payloads[j]`` goes to PE ``j``.

    Returns the list of received payloads indexed by source PE.  Cost:
    ``p - 1`` messages per PE (the ``α·p`` regime of §2).
    """
    p = comm.size
    if len(payloads) != p:
        raise ValueError(
            f"alltoall needs exactly {p} payloads, got {len(payloads)}"
        )
    received: list = [None] * p
    received[comm.rank] = payloads[comm.rank]
    # Stagger the schedule so traffic spreads over partners round-robin.
    for offset in range(1, p):
        dst = (comm.rank + offset) % p
        comm.send(dst, payloads[dst])
    for offset in range(1, p):
        src = (comm.rank - offset) % p
        received[src] = comm.recv(src)
    return received


def alltoall_hypercube(comm, payloads: list) -> list:
    """Hypercube indirect all-to-all (``log p`` rounds, store-and-forward).

    Requires ``p`` to be a power of two.  Each round exchanges the items
    whose destination differs in the current bit: ``O(β·k·log p + α·log p)``.
    """
    p = comm.size
    if p & (p - 1):
        raise ValueError(f"hypercube all-to-all needs a power-of-two p, got {p}")
    if len(payloads) != p:
        raise ValueError(
            f"alltoall needs exactly {p} payloads, got {len(payloads)}"
        )
    # held[dst] = list of (src, payload) still travelling to dst.
    held: dict[int, list] = {dst: [(comm.rank, payloads[dst])] for dst in range(p)}
    bit = 1
    while bit < p:
        partner = comm.rank ^ bit
        outgoing = {
            dst: items for dst, items in held.items() if (dst ^ comm.rank) & bit
        }
        for dst in outgoing:
            del held[dst]
        comm.send(partner, outgoing)
        incoming = comm.recv(partner)
        for dst, items in incoming.items():
            held.setdefault(dst, []).extend(items)
        bit <<= 1
    received: list = [None] * p
    for src, payload in held[comm.rank]:
        received[src] = payload
    return received

"""Per-rank communicator handle — the mpi4py-flavoured SPMD API.

Lower-case method names communicate arbitrary Python payloads, as in mpi4py;
numpy arrays are metered by buffer size (the fast path a real implementation
would take).
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.comm import collectives
from repro.comm.network import Network

T = TypeVar("T")


class Comm:
    """Communication endpoint of one PE inside a :class:`Network`."""

    def __init__(self, rank: int, network: Network):
        self.rank = rank
        self.network = network
        self.size = network.size

    # -- point to point ----------------------------------------------------
    def send(self, dst: int, payload) -> None:
        """Send ``payload`` to PE ``dst`` (asynchronous, always succeeds)."""
        self.network.send(self.rank, dst, payload)

    def recv(self, src: int):
        """Blocking receive of the next message from PE ``src``."""
        return self.network.recv(self.rank, src)

    def sendrecv(self, partner: int, payload):
        """Exchange payloads with ``partner`` (deadlock-free)."""
        self.send(partner, payload)
        return self.recv(partner)

    def barrier(self) -> None:
        """Synchronize all PEs."""
        self.network.barrier()

    # -- collectives ---------------------------------------------------------
    def bcast(self, value: T, root: int = 0) -> T:
        return collectives.broadcast(self, value, root)

    def reduce(self, value: T, op: Callable[[T, T], T], root: int = 0):
        return collectives.reduce(self, value, op, root)

    def allreduce(self, value: T, op: Callable[[T, T], T]) -> T:
        return collectives.allreduce(self, value, op)

    def gather(self, value: T, root: int = 0):
        return collectives.gather(self, value, root)

    def allgather(self, value: T) -> list[T]:
        return collectives.allgather(self, value)

    def scan(self, value: T, op: Callable[[T, T], T]) -> T:
        return collectives.scan(self, value, op)

    def exscan(self, value: T, op: Callable[[T, T], T], identity: T) -> T:
        return collectives.exscan(self, value, op, identity)

    def alltoall(self, payloads: list) -> list:
        return collectives.alltoall(self, payloads)

    def alltoall_hypercube(self, payloads: list) -> list:
        return collectives.alltoall_hypercube(self, payloads)

    # -- accounting ----------------------------------------------------------
    @property
    def meter(self):
        """This PE's traffic meter."""
        return self.network.meters[self.rank]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Comm(rank={self.rank}, size={self.size})"

"""Per-rank communicator handle — the mpi4py-flavoured SPMD API.

Lower-case method names communicate arbitrary Python payloads, as in mpi4py;
numpy arrays are metered by buffer size (the fast path a real implementation
would take).

A :class:`Comm` is written against the :class:`~repro.comm.backend.CommBackend`
endpoint protocol, so the same SPMD program runs unchanged over the thread
mailbox network (the oracle), shared-memory processes, or mpi4py.  All
collectives route through the identical tree schedules in
:mod:`repro.comm.collectives`; when an endpoint offers a native fast path
(``native_allreduce`` etc.) it is consulted first and falls through to the
trees whenever it declines, which keeps verdicts bit-identical across
backends.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.comm import collectives
from repro.comm.network import Network, NetworkEndpoint

T = TypeVar("T")


class Comm:
    """Communication endpoint of one PE inside a backend fabric."""

    def __init__(self, rank: int, network: Network):
        # Back-compat constructor: wrap the mailbox network. New transports
        # come in through :meth:`from_endpoint`.
        self._endpoint = NetworkEndpoint(rank, network)
        self.rank = rank
        self.size = network.size
        self.network = network

    @classmethod
    def from_endpoint(cls, endpoint) -> "Comm":
        comm = cls.__new__(cls)
        comm._endpoint = endpoint
        comm.rank = endpoint.rank
        comm.size = endpoint.size
        comm.network = getattr(endpoint, "network", None)
        return comm

    @property
    def endpoint(self):
        """The transport endpoint this communicator drives."""
        return self._endpoint

    # -- point to point ----------------------------------------------------
    def send(self, dst: int, payload) -> None:
        """Send ``payload`` to PE ``dst`` (asynchronous, always succeeds)."""
        self._endpoint.send(dst, payload)

    def recv(self, src: int):
        """Blocking receive of the next message from PE ``src``."""
        return self._endpoint.recv(src)

    def sendrecv(self, partner: int, payload):
        """Exchange payloads with ``partner`` (deadlock-free).

        Contract: both PEs of the pair must call this at the same point of
        the program.  On the thread backend this is literally send-then-recv,
        which cannot deadlock *only because the mailbox network buffers
        infinitely* — the send deposits into an unbounded queue and returns.
        Real transports have finite buffering, so the process and MPI
        endpoints provide ``exchange``: a genuinely nonblocking pairwise
        swap in which the outgoing and incoming messages make interleaved
        progress.  Do not add a backend whose ``send`` can block without
        also implementing ``exchange``.
        """
        exchange = getattr(self._endpoint, "exchange", None)
        if exchange is not None:
            return exchange(partner, payload)
        self.send(partner, payload)
        return self.recv(partner)

    def barrier(self) -> None:
        """Synchronize all PEs."""
        self._endpoint.barrier()

    # -- collectives ---------------------------------------------------------
    def bcast(self, value: T, root: int = 0) -> T:
        return collectives.broadcast(self, value, root)

    def reduce(self, value: T, op: Callable[[T, T], T], root: int = 0):
        return collectives.reduce(self, value, op, root)

    def allreduce(self, value: T, op: Callable[[T, T], T]) -> T:
        native = getattr(self._endpoint, "native_allreduce", None)
        if native is not None:
            handled, result = native(value, op)
            if handled:
                return result
        return collectives.allreduce(self, value, op)

    def gather(self, value: T, root: int = 0):
        return collectives.gather(self, value, root)

    def allgather(self, value: T) -> list[T]:
        return collectives.allgather(self, value)

    def scan(self, value: T, op: Callable[[T, T], T]) -> T:
        return collectives.scan(self, value, op)

    def exscan(self, value: T, op: Callable[[T, T], T], identity: T) -> T:
        native = getattr(self._endpoint, "native_exscan", None)
        if native is not None:
            handled, result = native(value, op, identity)
            if handled:
                return result
        return collectives.exscan(self, value, op, identity)

    def alltoall(self, payloads: list) -> list:
        native = getattr(self._endpoint, "native_alltoall", None)
        if native is not None:
            handled, result = native(payloads)
            if handled:
                return result
        return collectives.alltoall(self, payloads)

    def alltoall_hypercube(self, payloads: list) -> list:
        return collectives.alltoall_hypercube(self, payloads)

    # -- accounting ----------------------------------------------------------
    @property
    def meter(self):
        """This PE's traffic meter."""
        return self._endpoint.meter

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Comm(rank={self.rank}, size={self.size})"

"""SPMD execution context: run the same function on ``p`` PEs.

The transport is pluggable (ROADMAP item 1): ``backend="threads"`` runs
each PE as a Python thread over the metered mailbox network (the default
oracle), ``"processes"`` forks real OS processes exchanging payloads
through shared-memory rings (:mod:`repro.comm.proc_backend`), and
``"mpi"`` uses mpi4py under ``mpiexec`` (:mod:`repro.comm.mpi_backend`,
optional — sticky fallback to threads when absent).  The environment
variable ``REPRO_COMM_BACKEND`` switches the default for every context
that does not pass ``backend`` explicitly, which is how the whole test
suite re-runs on real processes.  Programs written against this context
are genuine message-passing programs and produce bit-identical results on
every backend.

Usage::

    ctx = Context(num_pes=4)                      # or backend="processes"
    def program(comm, chunk):
        total = comm.allreduce(int(chunk.sum()), op=lambda a, b: a + b)
        return total
    results = ctx.run(program, per_rank_args=ctx.split(data))
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from repro.comm.backend import (
    BACKEND_MPI,
    BACKEND_PROCESSES,
    BACKEND_THREADS,
    resolve_backend,
)
from repro.comm.communicator import Comm
from repro.comm.cost import CostModel, TrafficMeter, bottleneck_volume
from repro.comm.network import Network


class SPMDError(RuntimeError):
    """Raised when one or more PEs raised inside an SPMD program."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        detail = "; ".join(
            f"PE {rank}: {type(exc).__name__}: {exc}"
            for rank, exc in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} PE(s) failed: {detail}")


class Context:
    """Runner for SPMD programs over a network of ``num_pes`` PEs."""

    def __init__(
        self,
        num_pes: int,
        cost_model: CostModel | None = None,
        backend: str | None = None,
    ):
        if num_pes < 1:
            raise ValueError(f"num_pes must be >= 1, got {num_pes}")
        self.num_pes = num_pes
        self.cost_model = cost_model or CostModel()
        self.backend = self._resolve(backend)
        self.last_network: Network | None = None
        self._last_meters: list[TrafficMeter] = []

    @staticmethod
    def _resolve(backend: str | None) -> str:
        name = resolve_backend(backend)
        if name == BACKEND_MPI:
            from repro.comm import mpi_backend

            if not mpi_backend.mpi_available():
                mpi_backend.warn_fallback_once()
                return BACKEND_THREADS
        return name

    # -- data distribution helpers -------------------------------------------
    def split(self, data: Sequence | np.ndarray) -> list:
        """Split ``data`` into ``num_pes`` nearly equal contiguous chunks.

        Mirrors the paper's input model: every PE holds O(n/p) elements.
        """
        if isinstance(data, np.ndarray):
            return [np.ascontiguousarray(c) for c in np.array_split(data, self.num_pes)]
        n = len(data)
        bounds = [round(i * n / self.num_pes) for i in range(self.num_pes + 1)]
        return [data[bounds[i] : bounds[i + 1]] for i in range(self.num_pes)]

    # -- execution -------------------------------------------------------------
    def run(
        self,
        fn: Callable,
        per_rank_args: Sequence | None = None,
        common_args: tuple = (),
    ) -> list:
        """Execute ``fn(comm, *args)`` on every PE; return per-rank results.

        ``per_rank_args`` may be ``None`` (no per-rank argument), a list of
        per-rank values, or a list of per-rank tuples (splatted).  Exceptions
        on any PE are collected and re-raised as :class:`SPMDError`.
        """
        if self.backend == BACKEND_PROCESSES and self.num_pes > 1:
            return self._run_processes(fn, per_rank_args, common_args)
        if self.backend == BACKEND_MPI and self.num_pes > 1:
            return self._run_mpi(fn, per_rank_args, common_args)
        return self._run_threads(fn, per_rank_args, common_args)

    def _run_threads(self, fn, per_rank_args, common_args) -> list:
        network = Network(self.num_pes, self.cost_model)
        self.last_network = network
        self._last_meters = network.meters
        results: list = [None] * self.num_pes
        failures: dict[int, BaseException] = {}

        def worker(rank: int) -> None:
            comm = Comm(rank, network)
            args: tuple = ()
            if per_rank_args is not None:
                arg = per_rank_args[rank]
                args = tuple(arg) if isinstance(arg, tuple) else (arg,)
            try:
                results[rank] = fn(comm, *args, *common_args)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                failures[rank] = exc

        if self.num_pes == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(rank,), daemon=True)
                for rank in range(self.num_pes)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if failures:
            raise SPMDError(failures)
        return results

    def _run_processes(self, fn, per_rank_args, common_args) -> list:
        from repro.comm import proc_backend

        self.last_network = None
        results, meters, failures = proc_backend.run_spmd(
            self.num_pes, fn, per_rank_args, common_args, self.cost_model
        )
        self._last_meters = meters
        if failures:
            raise SPMDError(failures)
        return results

    def _run_mpi(self, fn, per_rank_args, common_args) -> list:
        from repro.comm import mpi_backend

        self.last_network = None
        results, meters, failures = mpi_backend.run_under_mpi(
            self.num_pes, fn, per_rank_args, common_args, self.cost_model
        )
        self._last_meters = meters
        if failures:
            raise SPMDError(failures)
        return results

    # -- accounting ------------------------------------------------------------
    @property
    def meters(self) -> list[TrafficMeter]:
        """Traffic meters of the most recent :meth:`run`."""
        return list(self._last_meters)

    def traffic_summary(self) -> dict:
        """Aggregate communication statistics of the most recent run."""
        meters = self.meters
        return {
            "bottleneck_bytes": bottleneck_volume(meters),
            "total_bytes": sum(m.bytes_sent for m in meters),
            "total_messages": sum(m.messages_sent for m in meters),
            "max_messages_per_pe": max(
                (max(m.messages_sent, m.messages_received) for m in meters),
                default=0,
            ),
            "model_time": max((m.model_time for m in meters), default=0.0),
        }

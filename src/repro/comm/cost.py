"""The α–β communication cost model and per-PE traffic accounting.

§2 of the paper: *"sending a message of size m bits takes time α + βm, where
α is the time to initiate a connection and β the time to send a single bit"*.
The paper's optimization criterion is the **bottleneck communication
volume** — the maximum amount of data sent or received at any single PE —
because the slowest PE determines the running time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Iterable

import numpy as np


def payload_nbytes(obj) -> int:
    """Wire size in bytes of a message payload.

    Numpy arrays count their buffer; Python scalars count one machine word
    (w = 64 bits, as in the paper); containers count the sum of their
    elements.  This is the size an MPI implementation would put on the wire
    for typed data (no pickle overhead), which is what the paper's volume
    analysis assumes.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, np.bool_)):
        return 1
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    # Conservative fallback: a machine word.
    return 8


@dataclass
class CostModel:
    """Latency/bandwidth parameters of the simulated interconnect.

    Defaults are in seconds and loosely modelled on a commodity cluster
    (α ≈ 10 µs startup, β ≈ 1 ns/byte ≈ 8 Gbit/s effective); the scaling
    experiment sweeps them.
    """

    alpha: float = 1.0e-5
    beta_per_byte: float = 1.0e-9

    def message_time(self, nbytes: int) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        return self.alpha + self.beta_per_byte * nbytes

    def t_coll(self, nbytes: int, p: int) -> float:
        """Model time of a broadcast/(all-)reduction of ``nbytes`` (§2)."""
        if p <= 1:
            return 0.0
        return self.beta_per_byte * nbytes + self.alpha * ceil(log2(p))

    def t_all_to_all(self, nbytes: int, p: int, direct: bool = True) -> float:
        """Model time of an all-to-all exchange of ``nbytes`` per PE (§2)."""
        if p <= 1:
            return 0.0
        if direct:
            return self.beta_per_byte * nbytes + self.alpha * p
        rounds = ceil(log2(p))
        return self.beta_per_byte * nbytes * rounds + self.alpha * rounds


@dataclass
class TrafficMeter:
    """Per-PE communication accounting.

    ``model_time`` accumulates ``α + β·m`` for every message this PE sends
    *or* receives (single-ported assumption: both directions occupy the PE).
    """

    rank: int
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    send_time: float = 0.0
    recv_time: float = 0.0
    #: Actual serialized bytes on the wire (frame headers + pickle overhead
    #: included).  The thread backend has no wire, so these stay zero there;
    #: the process/MPI backends fill them in so the α–β model's predicted
    #: volume (``bytes_sent``) can be validated against reality.
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    _marks: dict = field(default_factory=dict)

    def record_send(self, nbytes: int, cost: CostModel, wire_nbytes: int | None = None) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.send_time += cost.message_time(nbytes)
        if wire_nbytes is not None:
            self.wire_bytes_sent += wire_nbytes

    def record_recv(self, nbytes: int, cost: CostModel, wire_nbytes: int | None = None) -> None:
        self.bytes_received += nbytes
        self.messages_received += 1
        self.recv_time += cost.message_time(nbytes)
        if wire_nbytes is not None:
            self.wire_bytes_received += wire_nbytes

    @property
    def volume(self) -> int:
        """max(sent, received): single-ported full-duplex bottleneck bytes."""
        return max(self.bytes_sent, self.bytes_received)

    @property
    def model_time(self) -> float:
        return max(self.send_time, self.recv_time)

    def mark(self, label: str) -> None:
        """Snapshot counters under ``label`` (used to meter one phase)."""
        self._marks[label] = (
            self.bytes_sent,
            self.bytes_received,
            self.messages_sent,
            self.messages_received,
        )

    def since(self, label: str) -> dict:
        """Traffic since :meth:`mark` was called with ``label``."""
        if label not in self._marks:
            raise KeyError(f"no mark named {label!r}")
        s0, r0, ms0, mr0 = self._marks[label]
        return {
            "bytes_sent": self.bytes_sent - s0,
            "bytes_received": self.bytes_received - r0,
            "messages_sent": self.messages_sent - ms0,
            "messages_received": self.messages_received - mr0,
        }


def bottleneck_volume(meters: Iterable[TrafficMeter]) -> int:
    """The paper's optimization target: max over PEs of bytes sent/received."""
    return max((m.volume for m in meters), default=0)

"""Optional mpi4py backend: real distributed-memory PEs under ``mpiexec``.

mpi4py is never a hard dependency.  The import is lazy and the outcome
sticky (mirroring the numba tier in :mod:`repro.kernels.dispatch`): when
``mpi4py`` is absent or ``MPI.Init`` fails, :func:`mpi_available` is False,
a once-per-process :class:`RuntimeWarning` fires if ``mpi`` was explicitly
requested, and the caller falls back to the thread oracle — importing this
module never raises.

Point-to-point messages reuse the shared wire format of
:mod:`repro.comm.backend` as single ``MPI.BYTE`` frames (``Probe`` +
``Get_count`` sizes the receive buffer), so verdicts stay bit-identical to
the other backends.  Native fast paths (``Allreduce``, ``Exscan``,
``Alltoallv``) are taken only for contiguous integer-typed arrays under a
named :class:`~repro.comm.ops.ReduceOp` — exactly the payloads for which
hardware reduction is bit-for-bit equal to the tree schedules; everything
else falls back to :mod:`repro.comm.collectives` over frame p2p.

Under ``Context.run(backend="mpi")`` the process must already be running
inside ``mpiexec -n <num_pes>``; every rank executes its own slice and the
per-rank results/meters are allgathered so all ranks return the full list,
keeping the SPMD scripts backend-agnostic (see
``examples/mpi_backend_smoke.py``).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from repro.comm.backend import FRAME_HEADER, decode_frame, encode_frame
from repro.comm.cost import CostModel, TrafficMeter, payload_nbytes
from repro.comm.ops import ReduceOp

_state = {
    "mpi": None,  # the imported-and-initialised mpi4py.MPI module
    "failed": False,  # sticky: import or init failed
    "error": None,
    "warned": False,
}
_lock = threading.Lock()

#: dtypes whose native reduction is exactly the tree reduction (integer
#: arithmetic is associative; float addition is not reassociable).
_EXACT_KINDS = ("i", "u", "b")


def _try_mpi():
    """The initialised ``mpi4py.MPI`` module, or None (result is sticky)."""
    if _state["mpi"] is not None:
        return _state["mpi"]
    if _state["failed"]:
        return None
    with _lock:
        if _state["mpi"] is not None or _state["failed"]:
            return _state["mpi"]
        try:
            from mpi4py import MPI
        except Exception as exc:  # pragma: no cover - env-specific
            _state["failed"] = True
            _state["error"] = f"{type(exc).__name__}: {exc}"
            return None
        _state["mpi"] = MPI
        return MPI


def mpi_available() -> bool:
    """Whether the mpi4py backend can be used in this process."""
    return _try_mpi() is not None


def mpi_unavailable_reason() -> str | None:
    """Why mpi4py could not be loaded (None when it can)."""
    _try_mpi()
    return _state["error"]


def warn_fallback_once() -> None:
    """Emit the once-per-process sticky-fallback warning."""
    if _state["warned"]:
        return
    _state["warned"] = True
    reason = _state["error"] or "mpi4py is not installed"
    warnings.warn(
        f"backend='mpi' requested but mpi4py is unavailable ({reason}); "
        f"falling back to the thread backend",
        RuntimeWarning,
        stacklevel=3,
    )


def _mpi_op(MPI, op):
    """Map a named ReduceOp to its MPI operator (None → no fast path)."""
    if not isinstance(op, ReduceOp):
        return None
    return {
        "sum": MPI.SUM,
        "max": MPI.MAX,
        "min": MPI.MIN,
        "bor": MPI.BOR,
        "band": MPI.BAND,
        "bxor": MPI.BXOR,
        "lor": MPI.LOR,
        "land": MPI.LAND,
    }.get(op.name)


def _exact_array(value) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype.kind in _EXACT_KINDS
        and value.flags.c_contiguous
    )


class MpiEndpoint:
    """Per-rank endpoint over an MPI communicator (CommBackend protocol)."""

    _TAG = 7  # single matched-order channel, like the mailbox network

    def __init__(self, mpi_comm, cost_model: CostModel | None = None):
        self._MPI = _try_mpi()
        if self._MPI is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("mpi4py is unavailable")
        self._comm = mpi_comm
        self.rank = mpi_comm.Get_rank()
        self.size = mpi_comm.Get_size()
        self._cost = cost_model or CostModel()
        self._meter = TrafficMeter(self.rank)

    @property
    def meter(self) -> TrafficMeter:
        return self._meter

    # -- point to point ----------------------------------------------------
    def send(self, dst: int, payload) -> None:
        frame = encode_frame(payload)
        self._meter.record_send(
            payload_nbytes(payload), self._cost, wire_nbytes=len(frame)
        )
        self._comm.Send([frame, self._MPI.BYTE], dest=dst, tag=self._TAG)

    def _recv_frame(self, src: int) -> bytes:
        status = self._MPI.Status()
        self._comm.Probe(source=src, tag=self._TAG, status=status)
        buf = bytearray(status.Get_count(self._MPI.BYTE))
        self._comm.Recv([buf, self._MPI.BYTE], source=src, tag=self._TAG)
        return bytes(buf)

    def _decode(self, frame: bytes):
        kind, meta_len, payload_len = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        meta_end = FRAME_HEADER.size + meta_len
        payload = decode_frame(kind, frame[FRAME_HEADER.size : meta_end], frame[meta_end:])
        self._meter.record_recv(
            payload_nbytes(payload), self._cost, wire_nbytes=len(frame)
        )
        return payload

    def recv(self, src: int):
        return self._decode(self._recv_frame(src))

    def exchange(self, partner: int, payload):
        """Nonblocking pairwise swap: ``Isend`` overlaps the receive."""
        frame = encode_frame(payload)
        self._meter.record_send(
            payload_nbytes(payload), self._cost, wire_nbytes=len(frame)
        )
        req = self._comm.Isend([frame, self._MPI.BYTE], dest=partner, tag=self._TAG)
        incoming = self._recv_frame(partner)
        req.Wait()
        return self._decode(incoming)

    def barrier(self) -> None:
        self._comm.Barrier()

    # -- native collective fast paths --------------------------------------
    def native_allreduce(self, value, op):
        mpi_op = _mpi_op(self._MPI, op)
        if mpi_op is None or not _exact_array(value):
            return False, None
        out = np.empty_like(value)
        self._comm.Allreduce(value, out, op=mpi_op)
        nbytes = int(value.nbytes)
        self._meter.record_send(nbytes, self._cost, wire_nbytes=nbytes)
        self._meter.record_recv(nbytes, self._cost, wire_nbytes=nbytes)
        return True, out

    def native_exscan(self, value, op, identity):
        mpi_op = _mpi_op(self._MPI, op)
        if mpi_op is None or not _exact_array(value):
            return False, None
        out = np.empty_like(value)
        self._comm.Exscan(value, out, op=mpi_op)
        if self.rank == 0:
            # MPI leaves rank 0's Exscan output undefined; the repo's
            # contract returns the identity there.
            out = np.broadcast_to(np.asarray(identity, dtype=value.dtype), value.shape).copy()
        nbytes = int(value.nbytes)
        self._meter.record_send(nbytes, self._cost, wire_nbytes=nbytes)
        self._meter.record_recv(nbytes, self._cost, wire_nbytes=nbytes)
        return True, out

    def native_alltoall(self, payloads):
        if len(payloads) != self.size:
            return False, None
        arrays = [np.asarray(p) if isinstance(p, np.ndarray) else None for p in payloads]
        if any(a is None or a.ndim != 1 or not a.flags.c_contiguous for a in arrays):
            return False, None
        dtype = arrays[0].dtype
        if dtype.kind not in _EXACT_KINDS + ("f",) or any(
            a.dtype != dtype for a in arrays
        ):
            # Alltoallv only moves bytes (no arithmetic), so floats are fine;
            # mixed dtypes are not expressible as one typed exchange.
            return False, None
        send_counts = np.array([len(a) for a in arrays], dtype=np.int64)
        recv_counts = np.empty(self.size, dtype=np.int64)
        self._comm.Alltoall(send_counts, recv_counts)
        send_buf = np.concatenate(arrays) if sum(send_counts) else np.empty(0, dtype=dtype)
        recv_buf = np.empty(int(recv_counts.sum()), dtype=dtype)
        sdispl = np.zeros(self.size, dtype=np.int64)
        rdispl = np.zeros(self.size, dtype=np.int64)
        np.cumsum(send_counts[:-1], out=sdispl[1:])
        np.cumsum(recv_counts[:-1], out=rdispl[1:])
        self._comm.Alltoallv(
            [send_buf, send_counts, sdispl, self._mpi_dtype(dtype)],
            [recv_buf, recv_counts, rdispl, self._mpi_dtype(dtype)],
        )
        item = dtype.itemsize
        self._meter.record_send(
            int(send_counts.sum()) * item, self._cost, wire_nbytes=int(send_counts.sum()) * item
        )
        self._meter.record_recv(
            int(recv_counts.sum()) * item, self._cost, wire_nbytes=int(recv_counts.sum()) * item
        )
        out = [
            recv_buf[rdispl[i] : rdispl[i] + recv_counts[i]].copy()
            for i in range(self.size)
        ]
        return True, out

    def _mpi_dtype(self, dtype: np.dtype):
        from mpi4py.util import dtlib

        return dtlib.from_numpy_dtype(dtype)


def run_under_mpi(num_pes: int, fn, per_rank_args, common_args, cost_model=None):
    """Execute ``fn`` on this rank and allgather all ranks' results.

    Must be called from inside an ``mpiexec`` launch whose world size is
    ``num_pes``.  Returns ``(results, meters, failures)`` like the process
    runner, identical on every rank.
    """
    MPI = _try_mpi()
    if MPI is None:
        raise RuntimeError(
            f"backend='mpi' needs mpi4py ({_state['error'] or 'not installed'})"
        )
    world = MPI.COMM_WORLD
    if world.Get_size() != num_pes:
        raise RuntimeError(
            f"Context(num_pes={num_pes}) under mpiexec with world size "
            f"{world.Get_size()}; launch with mpiexec -n {num_pes}"
        )
    comm_dup = world.Dup()
    try:
        from repro.comm.communicator import Comm

        endpoint = MpiEndpoint(comm_dup, cost_model)
        comm = Comm.from_endpoint(endpoint)
        rank = endpoint.rank
        args: tuple = ()
        if per_rank_args is not None:
            arg = per_rank_args[rank]
            args = tuple(arg) if isinstance(arg, tuple) else (arg,)
        try:
            outcome = (True, fn(comm, *args, *common_args))
        except BaseException as exc:  # noqa: BLE001 - gathered below
            outcome = (False, exc)
        gathered = comm_dup.allgather((outcome, endpoint.meter))
    finally:
        comm_dup.Free()
    results: list = [None] * num_pes
    meters: list[TrafficMeter] = []
    failures: dict[int, BaseException] = {}
    for r, ((ok, value), meter) in enumerate(gathered):
        meters.append(meter)
        if ok:
            results[r] = value
        else:
            failures[r] = value
    return results, meters, failures

"""In-process message-passing network.

One mailbox (FIFO queue) per ordered PE pair — matched sends/receives, no
tags needed because the SPMD programs in this repository communicate in a
statically known order (as the paper's collectives do).
"""

from __future__ import annotations

import queue
import threading

from repro.comm.cost import CostModel, TrafficMeter, payload_nbytes

#: Seconds before a blocking receive gives up and reports a likely deadlock.
_RECV_TIMEOUT = 120.0


class Network:
    """Mailbox fabric plus per-PE traffic meters for ``size`` PEs."""

    def __init__(self, size: int, cost_model: CostModel | None = None):
        if size < 1:
            raise ValueError(f"network needs at least one PE, got {size}")
        self.size = size
        self.cost_model = cost_model or CostModel()
        self._mailboxes: dict[tuple[int, int], queue.SimpleQueue] = {}
        for src in range(size):
            for dst in range(size):
                if src != dst:
                    self._mailboxes[(src, dst)] = queue.SimpleQueue()
        self.meters = [TrafficMeter(rank) for rank in range(size)]
        self._barrier = threading.Barrier(size) if size > 1 else None

    def _check_rank(self, name: str, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{name}={rank} out of range for {self.size} PEs")

    def send(self, src: int, dst: int, payload) -> None:
        """Deliver ``payload`` from PE ``src`` to PE ``dst`` (non-blocking)."""
        self._check_rank("src", src)
        self._check_rank("dst", dst)
        if src == dst:
            raise ValueError(f"PE {src} attempted to send to itself")
        nbytes = payload_nbytes(payload)
        self.meters[src].record_send(nbytes, self.cost_model)
        self._mailboxes[(src, dst)].put(payload)

    def recv(self, dst: int, src: int):
        """Blocking receive at PE ``dst`` of the next message from ``src``."""
        self._check_rank("src", src)
        self._check_rank("dst", dst)
        if src == dst:
            raise ValueError(f"PE {dst} attempted to receive from itself")
        try:
            payload = self._mailboxes[(src, dst)].get(timeout=_RECV_TIMEOUT)
        except queue.Empty:
            raise TimeoutError(
                f"PE {dst} timed out waiting for a message from PE {src} "
                f"(likely deadlock in the SPMD program)"
            ) from None
        self.meters[dst].record_recv(payload_nbytes(payload), self.cost_model)
        return payload

    def barrier(self) -> None:
        """Synchronize all PEs (not metered; used only for phase timing)."""
        if self._barrier is not None:
            self._barrier.wait(timeout=_RECV_TIMEOUT)


class NetworkEndpoint:
    """Per-rank CommBackend view of a :class:`Network` (the thread oracle).

    Sends deposit into unbounded queues and never block, so this endpoint
    needs no ``exchange`` capability and offers no native collectives — it
    is the reference the other backends must match bit for bit.
    """

    __slots__ = ("rank", "size", "network")

    def __init__(self, rank: int, network: Network):
        self.rank = rank
        self.size = network.size
        self.network = network

    def send(self, dst: int, payload) -> None:
        self.network.send(self.rank, dst, payload)

    def recv(self, src: int):
        return self.network.recv(self.rank, src)

    def barrier(self) -> None:
        self.network.barrier()

    @property
    def meter(self):
        return self.network.meters[self.rank]

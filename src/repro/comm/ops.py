"""Named reduce operators for the collective surface.

Every collective in this repository historically took an anonymous
``lambda a, b: a + b``.  That is fine for the generic tree schedules
(:mod:`repro.comm.collectives` folds any callable), but a *native*
backend — mpi4py's ``Allreduce``/``Exscan`` on a contiguous buffer —
can only map operators it can recognize.  A :class:`ReduceOp` is a plain
callable (drop-in for the lambdas, bit-identical results) that also
carries a stable name a backend may translate to its native operator
table.

Only operators whose result is independent of association order for the
payloads we put on the wire are defined here: integer addition, bitwise
and logical monoids, and min/max.  Floating-point addition is *not*
reassociable bit-for-bit, which is why backends must only take native
fast paths for integer-typed buffers (see
:meth:`repro.comm.mpi_backend.MpiEndpoint.native_allreduce`).
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

__all__ = [
    "BAND",
    "BOR",
    "BXOR",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "SUM",
    "ReduceOp",
]


class ReduceOp:
    """A named, associative, commutative reduce operator.

    Calling it is exactly calling ``fn`` — existing call sites can swap a
    lambda for a ``ReduceOp`` without any behavioural change.  ``name``
    is the backend-facing identity (``"sum"``, ``"bxor"``, ...).
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable):
        self.name = name
        self.fn = fn

    def __call__(self, a, b):
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReduceOp({self.name})"


def _max(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return a if a >= b else b


def _min(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return a if a <= b else b


#: Addition (exact for Python ints and integer arrays).
SUM = ReduceOp("sum", operator.add)
#: Bitwise or / and / xor (ints and integer arrays).
BOR = ReduceOp("bor", operator.or_)
BAND = ReduceOp("band", operator.and_)
BXOR = ReduceOp("bxor", operator.xor)
#: Logical and/or with Python short-circuit *value* semantics
#: (``a and b`` / ``a or b``), matching the lambdas they replace.
LAND = ReduceOp("land", lambda a, b: a and b)
LOR = ReduceOp("lor", lambda a, b: a or b)
#: Elementwise maximum / minimum.
MAX = ReduceOp("max", _max)
MIN = ReduceOp("min", _min)

"""Shared-memory multiprocessing backend: real PEs on one node.

Each PE is a forked OS process; messages travel through a single
``multiprocessing.shared_memory`` block laid out as one SPSC byte ring per
ordered ``(src, dst)`` pair.  Because every ring has exactly one writer
(``src``) and one reader (``dst``), no locks are needed: the writer owns
the ``head`` counter, the reader owns ``tail``, and both are monotonically
increasing 8-byte values whose aligned loads/stores are atomic on the
platforms CPython runs on (x86-64/aarch64 TSO-ish ordering; the
interpreter serialises the numpy copy before the counter store).

Ring layout (per pair)::

    [u64 head][u64 tail][capacity data bytes]      # data ring
    [u64 head][u64 tail][48 ctl bytes]             # barrier-token ring

``head``/``tail`` count total bytes ever written/read (never wrapped), so
``head - tail`` is the occupancy and ``head % capacity`` the write cursor.
Messages larger than the ring are streamed through it in chunks — the
writer blocks for free space, the reader drains concurrently — so the ring
capacity bounds memory, not message size.

Barrier tokens get their own tiny ring so a barrier can never mispair with
an in-flight data message.  The barrier itself is the dissemination
barrier: ``ceil(log2 p)`` rounds, round ``r`` sends one byte to
``(rank + 2**r) % p`` and waits for one from ``(rank - 2**r) % p``.
Token rings are FIFO, so a fast PE entering barrier ``k+1`` while a slow
one is still inside barrier ``k`` simply queues its token.

The runner forks (never spawns): SPMD programs in this repo routinely
close over lambdas and test fixtures, which ``fork`` inherits for free.
Results, exceptions and per-PE traffic meters travel back over an ordinary
``multiprocessing`` queue.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import weakref
from math import ceil, log2
from multiprocessing import shared_memory

import numpy as np

from repro.comm.backend import FRAME_HEADER, decode_frame, encode_frame
from repro.comm.cost import CostModel, TrafficMeter, payload_nbytes

#: Seconds before a blocked ring operation reports a likely deadlock
#: (mirrors ``repro.comm.network._RECV_TIMEOUT``).
_OP_TIMEOUT = 120.0

_HDR_BYTES = 16
_DEFAULT_DATA_CAP = 1 << 18  # 256 KiB per ordered pair
_CTL_CAP = 48


class _Ring:
    """One SPSC byte ring inside a shared-memory buffer."""

    __slots__ = ("_hdr", "_data", "capacity")

    def __init__(self, buf: memoryview, offset: int, capacity: int):
        self._hdr = np.frombuffer(buf, dtype=np.uint64, count=2, offset=offset)
        self._data = np.frombuffer(
            buf, dtype=np.uint8, count=capacity, offset=offset + _HDR_BYTES
        )
        self.capacity = capacity

    # Writer side ----------------------------------------------------------
    def try_write(self, src: np.ndarray, pos: int) -> int:
        """Copy as much of ``src[pos:]`` as fits; return the new position."""
        head = int(self._hdr[0])
        tail = int(self._hdr[1])
        free = self.capacity - (head - tail)
        n = min(free, len(src) - pos)
        if n <= 0:
            return pos
        start = head % self.capacity
        first = min(n, self.capacity - start)
        self._data[start : start + first] = src[pos : pos + first]
        if n > first:
            self._data[: n - first] = src[pos + first : pos + n]
        self._hdr[0] = head + n
        return pos + n

    # Reader side ----------------------------------------------------------
    def try_read(self, out: np.ndarray, pos: int) -> int:
        """Fill as much of ``out[pos:]`` as is available; return new position."""
        head = int(self._hdr[0])
        tail = int(self._hdr[1])
        avail = head - tail
        n = min(avail, len(out) - pos)
        if n <= 0:
            return pos
        start = tail % self.capacity
        first = min(n, self.capacity - start)
        out[pos : pos + first] = self._data[start : start + first]
        if n > first:
            out[pos + first : pos + n] = self._data[: n - first]
        self._hdr[1] = tail + n
        return pos + n


class _Backoff:
    """Escalating poll backoff: spin briefly, then yield, then sleep."""

    __slots__ = ("_spins", "_deadline", "_what")

    def __init__(self, what: str, timeout: float = _OP_TIMEOUT):
        self._spins = 0
        self._deadline = time.monotonic() + timeout
        self._what = what

    def wait(self) -> None:
        self._spins += 1
        if self._spins < 200:
            return
        if time.monotonic() > self._deadline:
            raise TimeoutError(
                f"shared-memory ring stalled for {_OP_TIMEOUT:.0f}s while "
                f"{self._what} (likely deadlock in the SPMD program)"
            )
        time.sleep(0 if self._spins < 2000 else 0.0002)


def _release_views(data_rings: dict, ctl_rings: dict, shm) -> None:
    """Drop numpy views into the mmap, then close it (GC-order safe)."""
    data_rings.clear()
    ctl_rings.clear()
    try:
        shm.close()
    except BufferError:  # pragma: no cover - stray exported view
        pass


class ShmFabric:
    """All rings of a ``size``-PE fabric inside one shared-memory block."""

    def __init__(self, size: int, shm: shared_memory.SharedMemory, data_cap: int):
        self.size = size
        self.data_cap = data_cap
        self._shm = shm
        self._data_rings: dict[tuple[int, int], _Ring] = {}
        self._ctl_rings: dict[tuple[int, int], _Ring] = {}
        pair_bytes = 2 * _HDR_BYTES + data_cap + _CTL_CAP
        buf = shm.buf
        index = 0
        for src in range(size):
            for dst in range(size):
                if src == dst:
                    continue
                off = index * pair_bytes
                self._data_rings[(src, dst)] = _Ring(buf, off, data_cap)
                self._ctl_rings[(src, dst)] = _Ring(
                    buf, off + _HDR_BYTES + data_cap, _CTL_CAP
                )
                index += 1
        # Without this, SharedMemory.__del__ hits BufferError: the ring
        # views must be dropped before the mmap closes.  Close only — the
        # segment itself is unlinked by destroy() (or, for a fabric leaked
        # without one, by the resource tracker at interpreter exit), never
        # by a forked child winding down.
        self._finalizer = weakref.finalize(
            self, _release_views, self._data_rings, self._ctl_rings, shm
        )

    @classmethod
    def create(cls, size: int, data_cap: int = _DEFAULT_DATA_CAP) -> "ShmFabric":
        pairs = size * (size - 1)
        pair_bytes = 2 * _HDR_BYTES + data_cap + _CTL_CAP
        nbytes = max(1, pairs * pair_bytes)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        # Freshly created blocks are zero-filled, so all head/tail counters
        # start at 0 — no further initialisation needed.
        return cls(size, shm, data_cap)

    def data_ring(self, src: int, dst: int) -> _Ring:
        return self._data_rings[(src, dst)]

    def ctl_ring(self, src: int, dst: int) -> _Ring:
        return self._ctl_rings[(src, dst)]

    def close(self) -> None:
        self._finalizer()

    def destroy(self) -> None:
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


_TOKEN = np.ones(1, dtype=np.uint8)


class ShmEndpoint:
    """Per-rank endpoint over a :class:`ShmFabric` (CommBackend protocol)."""

    def __init__(self, rank: int, fabric: ShmFabric, cost_model: CostModel | None = None):
        self.rank = rank
        self.size = fabric.size
        self._fabric = fabric
        self._cost = cost_model or CostModel()
        self._meter = TrafficMeter(rank)

    @property
    def meter(self) -> TrafficMeter:
        return self._meter

    # -- point to point ----------------------------------------------------
    def _write_all(self, ring: _Ring, frame: bytes, what: str) -> None:
        src = np.frombuffer(frame, dtype=np.uint8)
        pos = 0
        backoff = _Backoff(what)
        while pos < len(src):
            new = ring.try_write(src, pos)
            if new == pos:
                backoff.wait()
            pos = new

    def _read_all(self, ring: _Ring, nbytes: int, what: str) -> np.ndarray:
        out = np.empty(nbytes, dtype=np.uint8)
        pos = 0
        backoff = _Backoff(what)
        while pos < nbytes:
            new = ring.try_read(out, pos)
            if new == pos:
                backoff.wait()
            pos = new
        return out

    def send(self, dst: int, payload) -> None:
        frame = encode_frame(payload)
        self._meter.record_send(
            payload_nbytes(payload), self._cost, wire_nbytes=len(frame)
        )
        self._write_all(
            self._fabric.data_ring(self.rank, dst),
            frame,
            f"PE {self.rank} sending to PE {dst}",
        )

    def recv(self, src: int):
        ring = self._fabric.data_ring(src, self.rank)
        what = f"PE {self.rank} receiving from PE {src}"
        hdr = self._read_all(ring, FRAME_HEADER.size, what)
        kind, meta_len, payload_len = FRAME_HEADER.unpack(hdr.tobytes())
        rest = self._read_all(ring, meta_len + payload_len, what)
        payload = decode_frame(kind, rest[:meta_len].tobytes(), rest[meta_len:])
        self._meter.record_recv(
            payload_nbytes(payload),
            self._cost,
            wire_nbytes=FRAME_HEADER.size + meta_len + payload_len,
        )
        return payload

    def exchange(self, partner: int, payload):
        """Genuinely nonblocking pairwise swap.

        Outgoing and incoming frames make interleaved incremental progress,
        so the exchange completes even when both frames exceed the ring
        capacity — no infinite-buffering assumption (unlike the mailbox
        network's send-then-recv, which relies on unbounded queues).
        """
        frame = encode_frame(payload)
        self._meter.record_send(
            payload_nbytes(payload), self._cost, wire_nbytes=len(frame)
        )
        out_ring = self._fabric.data_ring(self.rank, partner)
        in_ring = self._fabric.data_ring(partner, self.rank)
        src = np.frombuffer(frame, dtype=np.uint8)
        sent = 0
        hdr = np.empty(FRAME_HEADER.size, dtype=np.uint8)
        hdr_got = 0
        body: np.ndarray | None = None
        body_got = 0
        meta_len = payload_len = kind = 0
        backoff = _Backoff(f"PE {self.rank} exchanging with PE {partner}")
        while True:
            progressed = False
            if sent < len(src):
                new = out_ring.try_write(src, sent)
                progressed |= new > sent
                sent = new
            if body is None:
                new = in_ring.try_read(hdr, hdr_got)
                progressed |= new > hdr_got
                hdr_got = new
                if hdr_got == FRAME_HEADER.size:
                    kind, meta_len, payload_len = FRAME_HEADER.unpack(hdr.tobytes())
                    body = np.empty(meta_len + payload_len, dtype=np.uint8)
            else:
                new = in_ring.try_read(body, body_got)
                progressed |= new > body_got
                body_got = new
            if sent == len(src) and body is not None and body_got == len(body):
                break
            if not progressed:
                backoff.wait()
        incoming = decode_frame(kind, body[:meta_len].tobytes(), body[meta_len:])
        self._meter.record_recv(
            payload_nbytes(incoming),
            self._cost,
            wire_nbytes=FRAME_HEADER.size + len(body),
        )
        return incoming

    # -- barrier -----------------------------------------------------------
    def barrier(self) -> None:
        """Dissemination barrier over the dedicated ctl rings (not metered)."""
        if self.size == 1:
            return
        token_in = np.empty(1, dtype=np.uint8)
        for r in range(ceil(log2(self.size))):
            dist = 1 << r
            to = (self.rank + dist) % self.size
            frm = (self.rank - dist) % self.size
            out_ring = self._fabric.ctl_ring(self.rank, to)
            backoff = _Backoff(f"PE {self.rank} barrier send to PE {to}")
            while out_ring.try_write(_TOKEN, 0) == 0:
                backoff.wait()
            in_ring = self._fabric.ctl_ring(frm, self.rank)
            backoff = _Backoff(f"PE {self.rank} barrier wait on PE {frm}")
            while in_ring.try_read(token_in, 0) == 0:
                backoff.wait()


# -- SPMD runner ------------------------------------------------------------

def _picklable_exc(exc: BaseException) -> BaseException:
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _child_main(rank, fabric, fn, args, common_args, cost_model, queue) -> None:
    endpoint = ShmEndpoint(rank, fabric, cost_model)
    from repro.comm.communicator import Comm

    comm = Comm.from_endpoint(endpoint)
    try:
        result = fn(comm, *args, *common_args)
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        queue.put((rank, False, _picklable_exc(exc), endpoint.meter))
    else:
        try:
            queue.put((rank, True, result, endpoint.meter))
        except Exception as exc:  # result not picklable
            queue.put((rank, False, _picklable_exc(exc), endpoint.meter))


def run_spmd(
    num_pes: int,
    fn,
    per_rank_args,
    common_args: tuple,
    cost_model: CostModel | None = None,
) -> tuple[list, list[TrafficMeter], dict[int, BaseException]]:
    """Fork ``num_pes`` workers over a fresh shared-memory fabric.

    Returns ``(results, meters, failures)`` indexed/keyed by rank; the
    caller (:class:`~repro.comm.context.Context`) raises ``SPMDError`` on
    non-empty failures, matching the thread backend.
    """
    mp = multiprocessing.get_context("fork")
    fabric = ShmFabric.create(num_pes)
    queue = mp.SimpleQueue()
    procs = []
    try:
        for rank in range(num_pes):
            args: tuple = ()
            if per_rank_args is not None:
                arg = per_rank_args[rank]
                args = tuple(arg) if isinstance(arg, tuple) else (arg,)
            p = mp.Process(
                target=_child_main,
                args=(rank, fabric, fn, args, common_args, cost_model, queue),
                daemon=True,
            )
            procs.append(p)
        for p in procs:
            p.start()

        results: list = [None] * num_pes
        meters: list = [TrafficMeter(rank) for rank in range(num_pes)]
        failures: dict[int, BaseException] = {}
        reported: set[int] = set()
        while len(reported) < num_pes:
            if not queue.empty():
                rank, ok, value, meter = queue.get()
                reported.add(rank)
                if meter is not None:
                    meters[rank] = meter
                if ok:
                    results[rank] = value
                else:
                    failures[rank] = value
                continue
            dead = [
                rank
                for rank, p in enumerate(procs)
                if rank not in reported and p.exitcode is not None
            ]
            if dead and queue.empty():
                # Give a just-exited child's final queue write a moment to
                # land before declaring it crashed.
                time.sleep(0.05)
                if queue.empty():
                    for rank in dead:
                        reported.add(rank)
                        failures[rank] = RuntimeError(
                            f"worker process for PE {rank} exited with code "
                            f"{procs[rank].exitcode} without reporting a result"
                        )
                continue
            time.sleep(0.001)
        for p in procs:
            p.join(timeout=10.0)
        return results, meters, failures
    finally:
        for p in procs:
            if p.is_alive():  # pragma: no cover - crash cleanup
                p.terminate()
                p.join(timeout=5.0)
        fabric.destroy()

"""The paper's contribution: communication-efficient probabilistic checkers.

Every checker verifies the output of a (black-box) distributed operation
with **one-sided error**: a correct result is always accepted; an incorrect
result is accepted with probability at most a configurable δ.

=====================  ==========================================  ==========
Checker                paper reference                             module
=====================  ==========================================  ==========
sum / count / xor      §4, Algorithm 1, Theorem 1                  sum_checker
average                §6.1, Corollary 8                           average_checker
minimum / maximum      §6.2, Theorem 9 (deterministic)             minmax_checker
median                 §6.3, Algorithm 2, Theorem 10               median_checker
permutation            §5, Lemmata 4/5, Theorem 6                  permutation_checker
sort                   §5, Theorem 7                               sort_checker
zip                    §6.4, Theorem 11                            zip_checker
union                  §6.5.1, Corollary 12                        union_checker
merge                  §6.5.2, Corollary 13                        merge_checker
group-by (invasive)    §6.5.3, Corollary 14                        groupby_checker
join (invasive)        §6.5.4, Corollary 15                        join_checker
multi-seed batching    §7.1 amortization across instances          multiseed
=====================  ==========================================  ==========
"""

from repro.core.base import CheckResult
from repro.core.params import (
    PAPER_TABLE2_ROWS,
    PAPER_TABLE3_ACCURACY,
    PAPER_TABLE3_SCALING,
    SumCheckConfig,
    optimize_parameters,
)
from repro.core.integrity import check_replicated, replicated_digest
from repro.core.sum_checker import (
    SumAggregationChecker,
    check_count_aggregation,
    check_sum_aggregation,
)
from repro.core.localize import FaultReport, localize_fault
from repro.core.multiseed import MultiSeedHashSumChecker, MultiSeedSumChecker
from repro.core.streams import (
    AverageCheckerStream,
    CheckerStream,
    CountCheckerStream,
    GroupByCheckerStream,
    MinMaxCheckerStream,
    MultiSeedSumCheckerStream,
    PermutationCheckerStream,
    SumCheckerStream,
    ZipCheckerStream,
)
from repro.core.average_checker import check_average_aggregation
from repro.core.minmax_checker import (
    check_max_aggregation,
    check_min_aggregation,
    check_min_aggregation_bitvector,
)
from repro.core.median_checker import MedianCertificate, check_median_aggregation
from repro.core.permutation_checker import (
    HashSumPermutationChecker,
    check_permutation_gf64,
    check_permutation_hashsum,
    check_permutation_polynomial,
    wide_sum,
)
from repro.core.sort_checker import check_globally_sorted, check_sort
from repro.core.zip_checker import check_zip
from repro.core.union_checker import check_union
from repro.core.merge_checker import check_merge
from repro.core.groupby_checker import check_groupby_redistribution
from repro.core.join_checker import check_join_redistribution

__all__ = [
    "CheckResult",
    "PAPER_TABLE2_ROWS",
    "PAPER_TABLE3_ACCURACY",
    "PAPER_TABLE3_SCALING",
    "SumCheckConfig",
    "optimize_parameters",
    "FaultReport",
    "localize_fault",
    "MultiSeedHashSumChecker",
    "MultiSeedSumChecker",
    "SumAggregationChecker",
    "AverageCheckerStream",
    "CheckerStream",
    "CountCheckerStream",
    "GroupByCheckerStream",
    "MinMaxCheckerStream",
    "MultiSeedSumCheckerStream",
    "PermutationCheckerStream",
    "SumCheckerStream",
    "ZipCheckerStream",
    "check_count_aggregation",
    "check_replicated",
    "check_sum_aggregation",
    "replicated_digest",
    "check_average_aggregation",
    "check_min_aggregation",
    "check_min_aggregation_bitvector",
    "check_max_aggregation",
    "MedianCertificate",
    "check_median_aggregation",
    "HashSumPermutationChecker",
    "check_permutation_gf64",
    "check_permutation_hashsum",
    "check_permutation_polynomial",
    "wide_sum",
    "check_globally_sorted",
    "check_sort",
    "check_zip",
    "check_union",
    "check_merge",
    "check_groupby_redistribution",
    "check_join_redistribution",
]

"""Average-aggregation checker (§6.1, Corollary 8).

Per-key averages are computed with the (value, count)-pair trick: reduce
``(v, 1)`` pairs componentwise, then divide.  The count column is exactly
the certificate the checker needs: multiplying the asserted average back by
the count *undoes the division* and reconstructs the per-key sums, which the
§4 sum checker can verify against the input.

To keep the one-sided-error guarantee exact we treat averages as exact
rationals ``num/den`` (the paper works over integers and flags the
floating-point case as future work): the reconstruction requires
``den | count`` and yields ``sum = num · (count / den)`` with no rounding.

The paper also warns that averages and counts could be mis-scaled in a way
that cancels (double the averages, halve the counts) — hence the checker
*simultaneously* verifies the count column with a count aggregation check,
sharing the bucket hash with the value check (the ⊕ on (value, count)
triples of §6.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CheckResult
from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker, _coerce_keys

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


def reconstruct_sums(
    numerators: np.ndarray, denominators: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Undo the final division: ``sum_k = avg_k · count_k``, exactly.

    Returns ``(sums, valid)``; ``valid[i]`` is False where the asserted
    average cannot be an average of ``count`` integers at all (``den`` does
    not divide ``count``, or non-positive count/denominator) — such rows are
    immediate rejections without any probabilistic step.
    """
    numerators = np.asarray(numerators, dtype=np.int64)
    denominators = np.asarray(denominators, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    valid = (denominators > 0) & (counts > 0) & (counts % denominators == 0)
    safe_den = np.where(valid, denominators, 1)
    quotient = counts // safe_den
    # Overflow guard: |num| * quotient must stay well inside int64.
    with np.errstate(over="ignore"):
        magnitude = np.abs(numerators.astype(np.float64)) * quotient.astype(
            np.float64
        )
    if np.any(magnitude[valid] >= 2.0**62):
        raise OverflowError(
            "reconstructed sums exceed the int64 range supported by the "
            "sum checker; rescale the input values"
        )
    sums = numerators * quotient
    return sums, valid


def check_average_aggregation(
    input_kv,
    asserted_keys,
    asserted_numerators,
    asserted_denominators,
    certificate_counts,
    config: SumCheckConfig | None = None,
    seed: int = 0,
    comm=None,
) -> CheckResult:
    """Corollary 8: check per-key averages given the count certificate.

    ``input_kv = (keys, values)`` is the operation's (local) input; the
    asserted result provides for each key an exact rational average
    ``num/den`` plus the certificate count.  Both may be distributed — the
    reconstruction is componentwise, so averages and counts only need to be
    co-located per key (exactly the paper's requirement).
    """
    cfg = config or _DEFAULT_CONFIG
    in_keys, in_values = input_kv
    in_keys = _coerce_keys(in_keys)
    in_values = np.asarray(in_values, dtype=np.int64).ravel()
    out_keys = _coerce_keys(asserted_keys)

    sums, valid = reconstruct_sums(
        asserted_numerators, asserted_denominators, certificate_counts
    )
    structurally_ok = bool(np.all(valid))
    counts = np.asarray(certificate_counts, dtype=np.int64).ravel()

    # The two coupled checks of §6.1 share all checker randomness: one
    # checker instance, applied to the value column and to the count column
    # (the (value, count)-pair ⊕ of the paper, evaluated componentwise).
    checker = SumAggregationChecker(cfg, seed)
    ones = np.ones(in_keys.shape, dtype=np.int64)
    diff_values = checker.difference(
        checker.local_tables(in_keys, in_values),
        checker.local_tables(out_keys, sums),
    )
    diff_counts = checker.difference(
        checker.local_tables(in_keys, ones),
        checker.local_tables(out_keys, counts),
    )

    if comm is None:
        verdict = (
            structurally_ok
            and not np.any(diff_values)
            and not np.any(diff_counts)
        )
    else:

        def wire_op(a, b):
            ok_a, va, ca = a
            ok_b, vb, cb = b
            return (
                ok_a and ok_b,
                checker.pack(checker.combine(checker.unpack(va), checker.unpack(vb))),
                checker.pack(checker.combine(checker.unpack(ca), checker.unpack(cb))),
            )

        payload = (structurally_ok, checker.pack(diff_values), checker.pack(diff_counts))
        combined = comm.reduce(payload, wire_op, root=0)
        verdict = None
        if comm.rank == 0:
            ok, values_packed, counts_packed = combined
            verdict = (
                ok
                and not np.any(checker.unpack(values_packed))
                and not np.any(checker.unpack(counts_packed))
            )
        verdict = comm.bcast(verdict, root=0)

    return CheckResult(
        accepted=bool(verdict),
        checker="average-aggregation",
        details={
            "config": cfg.label(),
            "certificate": "per-key counts (distributed)",
            "structural_ok": structurally_ok,
        },
    )


def check_average_aggregation_multiseed(
    input_kv,
    asserted_keys,
    asserted_numerators,
    asserted_denominators,
    certificate_counts,
    seeds,
    config: SumCheckConfig | None = None,
    comm=None,
) -> CheckResult:
    """Corollary 8 under ``T`` root seeds, one pass per column.

    The reconstruction and the structural validity test are
    seed-independent and run once; the two coupled §6.1 checks (value and
    count columns) then go through one :class:`MultiSeedSumChecker`, so
    all ``T`` seeds share the key condensations and, when distributed,
    settle in a single reduction.  Per-seed verdicts
    (``details["per_seed_accepted"]``) equal ``T`` independent
    :func:`check_average_aggregation` calls.
    """
    cfg = config or _DEFAULT_CONFIG
    in_keys, in_values = input_kv
    in_keys = _coerce_keys(in_keys)
    in_values = np.asarray(in_values, dtype=np.int64).ravel()
    out_keys = _coerce_keys(asserted_keys)

    sums, valid = reconstruct_sums(
        asserted_numerators, asserted_denominators, certificate_counts
    )
    structurally_ok = bool(np.all(valid))
    counts = np.asarray(certificate_counts, dtype=np.int64).ravel()

    checker = MultiSeedSumChecker(cfg, seeds)
    ones = np.ones(in_keys.shape, dtype=np.int64)
    diff_values = checker.difference(
        checker.local_tables(in_keys, in_values),
        checker.local_tables(out_keys, sums),
    )
    diff_counts = checker.difference(
        checker.local_tables(in_keys, ones),
        checker.local_tables(out_keys, counts),
    )

    if comm is None:
        values_ok = ~np.any(diff_values != 0, axis=(1, 2))
        counts_ok = ~np.any(diff_counts != 0, axis=(1, 2))
        per_seed = [
            structurally_ok and bool(v and c)
            for v, c in zip(values_ok, counts_ok)
        ]
    else:

        def wire_op(a, b):
            ok_a, va, ca = a
            ok_b, vb, cb = b
            return (
                ok_a and ok_b,
                checker.pack(
                    checker.combine(checker.unpack(va), checker.unpack(vb))
                ),
                checker.pack(
                    checker.combine(checker.unpack(ca), checker.unpack(cb))
                ),
            )

        payload = (
            structurally_ok,
            checker.pack(diff_values),
            checker.pack(diff_counts),
        )
        combined = comm.reduce(payload, wire_op, root=0)
        per_seed = None
        if comm.rank == 0:
            ok, values_packed, counts_packed = combined
            values_ok = ~np.any(checker.unpack(values_packed), axis=(1, 2))
            counts_ok = ~np.any(checker.unpack(counts_packed), axis=(1, 2))
            per_seed = [
                ok and bool(v and c) for v, c in zip(values_ok, counts_ok)
            ]
        per_seed = comm.bcast(per_seed, root=0)

    return CheckResult(
        accepted=all(per_seed),
        checker="average-aggregation-multiseed",
        details={
            "config": cfg.label(),
            "certificate": "per-key counts (distributed)",
            "structural_ok": structurally_ok,
            "num_seeds": checker.num_seeds,
            "per_seed_accepted": per_seed,
        },
    )

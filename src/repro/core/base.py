"""Common result type and helpers shared by all checkers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CheckResult:
    """Outcome of one checker invocation.

    ``accepted`` is the verdict (identical on every PE — checkers broadcast
    it).  ``checker`` names the algorithm; ``details`` carries per-checker
    diagnostics such as the iteration at which a mismatch was detected, the
    drawn moduli, or measured communication volume.
    """

    accepted: bool
    checker: str
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:
        verdict = "ACCEPT" if self.accepted else "REJECT"
        return f"CheckResult({self.checker}: {verdict}, details={self.details})"

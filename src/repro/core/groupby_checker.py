"""Invasive GroupBy redistribution checker (§6.5.3, Corollary 14).

GroupBy sends every element with key k to PE ``part(k)`` before applying
the group function.  The *redistribution phase* is checkable with the §5
machinery: the received multiset must be a permutation of the sent multiset
(hash-sum fingerprint over whole records), and every received record must
belong at its PE ("sortedness in the order induced by the hash function
assigning keys to PEs" — with a hash partitioner that order has exactly one
comparison per record: ``part(key) == my rank``).  The group function itself
needs a separate local checker, outside the paper's (and this repo's) scope.
"""

from __future__ import annotations

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.permutation_checker import check_permutation_hashsum
from repro.core.sum_checker import _coerce_keys
from repro.hashing.families import get_family
from repro.util.rng import derive_seed, derive_seed_array, splitmix64_array


def encode_records(keys, values) -> np.ndarray:
    """Fold (key, value) records into single 64-bit fingerprint words.

    The permutation fingerprint hashes set *elements*; records are pairs, so
    we first mix them injectively-up-to-2^-64-collisions into one word
    (SplitMix64 chaining).  Collisions only ever *hide* differences, adding
    ≤ n·2^-64 to the checker's failure probability.
    """
    keys = _coerce_keys(keys)
    values = np.asarray(values, dtype=np.int64).view(np.uint64).ravel()
    return splitmix64_array(splitmix64_array(keys) ^ values)


def default_partitioner(num_pes: int, seed: int = 0):
    """The framework's key→PE assignment: a fixed hash mod p."""
    fn = get_family("Mix").instance(derive_seed(seed, "partitioner"))

    def part(keys) -> np.ndarray:
        keys = _coerce_keys(keys)
        return (fn.hash_array(keys) % np.uint64(num_pes)).astype(np.int64)

    return part


def check_groupby_redistribution(
    pre_kv,
    post_kv,
    partitioner,
    comm=None,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
) -> CheckResult:
    """Corollary 14: verify the exchange phase of a GroupBy.

    ``pre_kv``/``post_kv`` are the local (keys, values) before and after the
    exchange; ``partitioner(keys) -> ranks`` is the operation's key→PE map.
    Accepts iff (1) post is a permutation of pre (records preserved) and
    (2) every received record is at the PE the partitioner assigns it to.
    """
    pre_records = encode_records(*pre_kv)
    post_records = encode_records(*post_kv)
    perm = check_permutation_hashsum(
        pre_records,
        post_records,
        iterations=iterations,
        hash_family=hash_family,
        log_h=log_h,
        seed=derive_seed(seed, "groupby-perm"),
        comm=comm,
    )
    rank = comm.rank if comm is not None else 0
    post_keys = np.asarray(post_kv[0])
    placement_ok = bool(np.all(partitioner(post_keys) == rank))
    if comm is not None:
        placement_ok = comm.allreduce(placement_ok, op=ops.LAND)
    return CheckResult(
        accepted=perm.accepted and placement_ok,
        checker="groupby-redistribution",
        details={
            "permutation": perm.details | {"accepted": perm.accepted},
            "placement_ok": placement_ok,
            "invasive": True,
        },
    )


def check_groupby_redistribution_multiseed(
    pre_kv,
    post_kv,
    partitioner,
    seeds,
    comm=None,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
) -> CheckResult:
    """Corollary 14 under ``T`` root seeds, one encoding pass.

    Records are encoded once; the permutation lanes of all seeds run
    through one :class:`~repro.core.multiseed.MultiSeedHashSumChecker`
    (the per-seed fingerprint seeds derive exactly as the single-seed
    checker's), and the placement test is seed-free and runs once.
    Per-seed verdicts equal ``T`` independent
    :func:`check_groupby_redistribution` calls.
    """
    from repro.core.multiseed import MultiSeedHashSumChecker, _coerce_seeds

    seeds = _coerce_seeds(seeds)
    pre_records = encode_records(*pre_kv)
    post_records = encode_records(*post_kv)
    perm = MultiSeedHashSumChecker(
        derive_seed_array(seeds, "groupby-perm"),
        iterations=iterations,
        hash_family=hash_family,
        log_h=log_h,
    ).check(pre_records, post_records, comm=comm)
    rank = comm.rank if comm is not None else 0
    post_keys = np.asarray(post_kv[0])
    placement_ok = bool(np.all(partitioner(post_keys) == rank))
    if comm is not None:
        placement_ok = comm.allreduce(placement_ok, op=ops.LAND)
    per_seed = [
        p and placement_ok for p in perm.details["per_seed_accepted"]
    ]
    return CheckResult(
        accepted=all(per_seed),
        checker="groupby-redistribution-multiseed",
        details={
            "permutation": perm.details | {"accepted": perm.accepted},
            "placement_ok": placement_ok,
            "invasive": True,
            "num_seeds": int(seeds.size),
            "per_seed_accepted": per_seed,
        },
    )

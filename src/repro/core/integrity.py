"""Result integrity (§2): are all PEs holding the same replicated data?

*"When the output of an operation or a certificate is provided at all PEs
rather than in distributed form, we need to ensure that all PEs received
the same output or certificate.  This can be achieved by hashing the data
in question with a random hash function, and comparing the hash values of
all other PEs ... by broadcasting the hash of PE 0, which every PE can
compare to its own hash, and aborting if any PE reports a difference."*

Used by the min/max and median checkers (their results and certificates are
fully replicated); exposed as a standalone utility because frameworks need
it for any broadcast result.
"""

from __future__ import annotations

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.hashing.crc32c import crc32c_bytes, crc32c_zero_advance
from repro.util.rng import derive_seed, derive_seed_array


def replicated_digest(seed: int, *arrays) -> int:
    """Seeded content hash of a tuple of arrays (order-sensitive).

    The seed draws a fresh function per check so a corrupted replica cannot
    be engineered to collide across runs.
    """
    state = derive_seed(seed, "result-integrity") & 0xFFFFFFFF
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        state = crc32c_bytes(arr.tobytes(), state)
        state = crc32c_bytes(str(arr.dtype).encode(), state)
        state = crc32c_bytes(str(arr.shape).encode(), state)
    return state


def replicated_digest_multiseed(seeds, *arrays) -> list[int]:
    """Per-seed replicated digests in ONE pass over the data.

    The digest chains CRC-32C over the same byte stream for every seed,
    differing only in the initial state — and CRC is GF(2)-linear in its
    state: ``crc(m, s) = crc(m, 0) ⊕ crc(0^|m|, s)``.  So the stream is
    hashed once from state 0, and each seed contributes a zero-advance
    constant computed in O(log |m|).  Entry ``t`` equals
    ``replicated_digest(seeds[t], *arrays)``.
    """
    base = 0
    total = 0
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        for data in (
            arr.tobytes(),
            str(arr.dtype).encode(),
            str(arr.shape).encode(),
        ):
            base = crc32c_bytes(data, base)
            total += len(data)
    states = derive_seed_array(
        np.asarray(seeds, dtype=np.uint64), "result-integrity"
    ) & np.uint64(0xFFFFFFFF)
    digests = np.uint32(base) ^ crc32c_zero_advance(states, total)
    return [int(x) for x in digests]


def check_replicated(comm, *arrays, seed: int = 0) -> CheckResult:
    """All PEs hold identical copies of ``arrays``? O(k + α log p).

    PE 0's digest is broadcast; each PE compares locally; an AND-reduction
    collects the verdict (the paper's "aborting if any PE reports a
    difference").  Sequential (``comm is None``) is trivially true.
    """
    digest = replicated_digest(seed, *arrays)
    if comm is None:
        return CheckResult(True, "result-integrity", {"pes": 1})
    root_digest = comm.bcast(digest, root=0)
    same = digest == root_digest
    all_same = comm.allreduce(bool(same), op=ops.LAND)
    return CheckResult(
        accepted=bool(all_same),
        checker="result-integrity",
        details={"pes": comm.size, "local_match": bool(same)},
    )

"""Invasive Join redistribution checker (§6.5.4, Corollary 15).

Distributed joins redistribute both relations so matching keys meet at the
same PE — by key hash (hash join) or by key range (sort-merge join).  As the
paper notes, both are "sort checking" problems: a hash join is a sort-merge
join in the order of the key hashes.  The checker verifies, for each
relation, that redistribution preserved the records (permutation check) and
that the key→PE assignment is consistent *across the two relations*:

* ``mode="hash"``: both relations' received keys must satisfy
  ``part(key) == rank`` for the shared partitioner;
* ``mode="range"``: the combined keys of both relations must be globally
  range-partitioned — every local key must dominate the running maximum of
  all preceding PEs' keys (the paper's exchange of locally largest/smallest
  keys with neighbouring PEs, implemented as a max-scan so empty PEs are
  handled uniformly).
"""

from __future__ import annotations

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.groupby_checker import encode_records
from repro.core.permutation_checker import check_permutation_hashsum
from repro.util.rng import derive_seed

_NEG_INF = None


def _max_op(a, b):
    if a is _NEG_INF:
        return b
    if b is _NEG_INF:
        return a
    return max(a, b)


def _range_partitioned(keys: np.ndarray, comm) -> bool:
    """All keys at PE i precede all keys at PEs > i (order irrelevant within)."""
    keys = np.asarray(keys)
    local_max = int(keys.max()) if keys.size else _NEG_INF
    local_min = int(keys.min()) if keys.size else None
    if comm is None:
        return True
    prev_max = comm.exscan(local_max, _max_op, identity=_NEG_INF)
    ok = True
    if keys.size and prev_max is not _NEG_INF:
        ok = local_min >= prev_max
    return bool(comm.allreduce(ok, op=ops.LAND))


def check_join_redistribution(
    r_pre,
    s_pre,
    r_post,
    s_post,
    mode: str = "hash",
    partitioner=None,
    comm=None,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
) -> CheckResult:
    """Corollary 15: verify the input redistribution of a join.

    Each of the four arguments is a local ``(keys, values)`` pair: relations
    R and S before and after the exchange.  ``partitioner`` is required for
    ``mode="hash"``.
    """
    if mode not in ("hash", "range"):
        raise ValueError(f"mode must be 'hash' or 'range', got {mode!r}")
    if mode == "hash" and partitioner is None:
        raise ValueError("hash mode requires the operation's partitioner")

    perms = {}
    for name, pre, post in (("R", r_pre, r_post), ("S", s_pre, s_post)):
        result = check_permutation_hashsum(
            encode_records(*pre),
            encode_records(*post),
            iterations=iterations,
            hash_family=hash_family,
            log_h=log_h,
            seed=derive_seed(seed, "join-perm", name),
            comm=comm,
        )
        perms[name] = result

    rank = comm.rank if comm is not None else 0
    if mode == "hash":
        placement_ok = bool(
            np.all(partitioner(np.asarray(r_post[0])) == rank)
            and np.all(partitioner(np.asarray(s_post[0])) == rank)
        )
        if comm is not None:
            placement_ok = comm.allreduce(placement_ok, op=ops.LAND)
    else:
        combined = np.concatenate(
            [
                np.asarray(r_post[0], dtype=np.int64).ravel(),
                np.asarray(s_post[0], dtype=np.int64).ravel(),
            ]
        )
        placement_ok = _range_partitioned(combined, comm)

    accepted = perms["R"].accepted and perms["S"].accepted and placement_ok
    return CheckResult(
        accepted=bool(accepted),
        checker="join-redistribution",
        details={
            "mode": mode,
            "permutation_R": perms["R"].accepted,
            "permutation_S": perms["S"].accepted,
            "placement_ok": bool(placement_ok),
            "invasive": True,
        },
    )

"""Fault localization: turn a failed sum-check verdict into a ``FaultReport``.

The §4 checkers are one-sided: a REJECT proves the asserted aggregates are
wrong somewhere, but the verdict itself says nothing about *where*.  This
module recovers the "where" from state the check already paid for:

1. **Guilty buckets.**  The per-seed per-iteration ⊕-difference tables
   (:class:`~repro.core.multiseed.MultiSeedSumChecker`) are combined
   globally once, so every PE holds the same ``(T, iterations, d)``
   difference tensor; its nonzero entries name the hash buckets whose
   minireductions disagree.
2. **Suspect keys.**  A key corrupted by aggregate delta δ perturbs bucket
   ``h_{t,j}(key)`` in *every* lane (unless δ ≡ 0 mod r, in which case
   that lane did not reject either).  Intersecting "bucket is guilty"
   across all ``T × iterations`` lanes therefore keeps every single-fault
   key while discarding the overwhelming majority of clean keys — the
   same amortized hash pass the checker uses, over unique keys only.
3. **Key-range bisection.**  The surviving suspects carry per-lane residue
   contributions (input side ⊕, asserted side ⊖), so the ⊕-difference of
   any key interval is a cheap masked scatter — no re-condensation, no
   second pass over raw data.  Each round splits every live interval at
   its midpoint and settles *all* halves' restricted tables in **one**
   collective; halves whose combined tables are zero are provably clean
   (their pairs cancel exactly) and are dropped.  Rounds are logarithmic
   in the suspect key span.
4. **Implicated PEs.**  The PEs whose asserted-output slice intersects the
   final ranges are named by one allgather.

Every decision that steers control flow (clean/faulty, interval liveness,
loop exit) is derived from a collective's replicated result, so all PEs
walk the same rounds in lockstep — the property ``repro.analysis``'s
``collective-lockstep`` rule checks statically.

Windows are localized for free: the streaming layer settles one verdict
per window, so the failing window is known before this module runs; its
id is threaded through ``window=`` into the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.comm import ops
from repro.core.multiseed import (
    CondensedKV,
    MultiSeedSumChecker,
    condense_kv,
)
from repro.core.params import SumCheckConfig

__all__ = ["FaultReport", "localize_fault"]

#: Sentinels for the packed bounds reduction (min over empty = +inf).
_NO_MIN = np.iinfo(np.int64).max
_NO_MAX = np.iinfo(np.int64).min

_SIGN_BIT = 1 << 63


def _pack_key(key: int) -> int:
    """Map a uint64 key onto int64 preserving order (top-bit bias)."""
    return (int(key) ^ _SIGN_BIT) - _SIGN_BIT


def _unpack_key(packed: int) -> int:
    """Inverse of :func:`_pack_key`."""
    return (int(packed) + _SIGN_BIT) ^ _SIGN_BIT


@dataclass
class FaultReport:
    """Where a failed sum-check verdict points.

    ``key_ranges`` are inclusive ``[lo, hi]`` intervals of (coerced
    uint64) key space — every corrupted key lies inside their union
    unless ``localized`` is False.  ``windows`` carries the rejected
    window id(s) when the caller settles windowed streams; ``pes`` the
    ranks whose asserted-output slice intersects the ranges.
    ``guilty_buckets[t][j]`` lists the nonzero buckets of seed ``t``,
    iteration ``j`` in the globally combined difference tensor.
    """

    localized: bool
    windows: list[int]
    key_ranges: list[tuple[int, int]]
    pes: list[int]
    guilty_buckets: list[list[list[int]]]
    suspect_keys: int
    bisection_rounds: int
    localization_seconds: float
    exhausted: bool = False
    details: dict = field(default_factory=dict)

    @property
    def num_ranges(self) -> int:
        return len(self.key_ranges)


# -- replicated-result helpers (comm-guarded; distributed arm ends in a
# collective, so call sites may steer control flow on the results) ---------


def _combine_packed(comm, checker: MultiSeedSumChecker, payload: bytes):
    """Globally ⊕-combined packed difference tensor (one collective)."""
    if comm is None:
        return payload

    def wire_op(a: bytes, b: bytes) -> bytes:
        return checker.pack(
            checker.combine(checker.unpack(a), checker.unpack(b))
        )

    return comm.allreduce(payload, op=wire_op)


def _bounds_op(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Combine two packed bounds vectors: counts add, bounds min/max."""
    return np.array(
        [
            a[0] + b[0],
            min(a[1], b[1]),
            max(a[2], b[2]),
            a[3] + b[3],
            min(a[4], b[4]),
            max(a[5], b[5]),
        ],
        dtype=np.int64,
    )


def _global_bounds(comm, payload: np.ndarray):
    """Agreed [#suspects, lo, hi, #keys, lo_all, hi_all] (one collective)."""
    if comm is None:
        return payload
    return comm.allreduce(payload, op=_bounds_op)


def _combine_tables(comm, tables: np.ndarray, operator: str):
    """Elementwise global ⊕ of the round's half-tables (one collective).

    ``"+"`` residues are summed raw — each PE ships entries in
    ``[0, r)``, so the sum stays far below int64 and the caller takes
    one ``% r`` on the combined tensor; xor tables combine by xor.
    """
    if comm is None:
        return tables
    if operator == "xor":
        return comm.allreduce(
            tables,
            op=lambda a, b: (
                a.view(np.uint64) ^ b.view(np.uint64)
            ).view(np.int64),
        )
    return comm.allreduce(tables, op=ops.SUM)


def _implicated_pes(comm, flag: bool):
    """Ranks whose local flag is set, agreed on every PE (one allgather)."""
    if comm is None:
        return [0] if flag else []
    flags = comm.allgather(bool(flag))
    return [i for i, f in enumerate(flags) if f]


# -- local (collective-free) kernels ---------------------------------------


def _guilty_luts(checker: MultiSeedSumChecker, gdiff: np.ndarray) -> list:
    """Per-lane boolean bucket lookups of the nonzero difference entries."""
    cfg = checker.config
    luts = []
    for t in range(checker.num_seeds):
        row = []
        for j in range(cfg.iterations):
            lut = np.zeros(cfg.d, dtype=bool)
            lut[np.flatnonzero(gdiff[t, j])] = True
            row.append(lut)
        luts.append(row)
    return luts


def _suspect_masks(
    checker: MultiSeedSumChecker,
    cin: CondensedKV,
    cout: CondensedKV,
    luts: list,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-side masks of keys whose bucket is guilty in almost all lanes.

    Works over the *union* of both sides' unique keys (they are near
    identical for a reduce window) and processes one seed at a time: keys
    whose accumulated miss count exceeds the slack are dropped before the
    next seed is hashed, so later seeds touch only survivors — the whole
    filter costs about one hash evaluation per union key.

    The slack (``≈ lanes/4`` missed lanes allowed) absorbs multi-fault
    cancellation: ±v deltas of a fault pair sharing a bucket zero that
    lane and would knock both true suspects out of an exact all-lanes
    intersection.  Deep cancellation past the slack still loses a
    suspect; the caller's completeness self-check catches that and falls
    back to the full key population.
    """
    cfg = checker.config
    kin, kout = cin.unique_keys, cout.unique_keys
    # Both sides are sorted-unique; for a reduce window they are usually
    # the *same* key set, so the union is a memcmp, not a hash pass.
    same = kin.size == kout.size and bool(np.array_equal(kin, kout))
    if same:
        union = kin
    else:
        merged = np.concatenate([kin, kout])
        merged = merged[np.argsort(merged, kind="stable")]
        union = (
            merged[np.concatenate(([True], merged[1:] != merged[:-1]))]
            if merged.size
            else merged
        )
    lanes = checker.num_seeds * cfg.iterations
    slack = max(1, lanes // 4)
    alive = np.arange(union.size, dtype=np.intp)
    misses = np.zeros(union.size, dtype=np.int64)
    for t in range(checker.num_seeds):
        rows = checker.seed_lane_buckets(t, union[alive])
        for j in range(cfg.iterations):
            misses += ~luts[t][j][rows[j]]
        keep = misses <= slack
        alive = alive[keep]
        misses = misses[keep]
    mask_u = np.zeros(union.size, dtype=bool)
    mask_u[alive] = True
    if same:
        return mask_u, mask_u.copy()
    mask_in = mask_u[np.searchsorted(union, kin)]
    mask_out = mask_u[np.searchsorted(union, kout)]
    return mask_in, mask_out


def _suspect_contrib(
    condensed: CondensedKV, idx: np.ndarray, r: int, operator: str
) -> np.ndarray:
    """Per-suspect ⊕-contribution of one side under modulus ``r``.

    Uses the condensation's exact per-key aggregates when present; the
    beyond-int64 fallback re-reduces only the suspects' elements mod r
    (exact, same chunked discipline as the checker's slow path).
    """
    if operator == "xor":
        return condensed.agg_xor[idx].view(np.int64)
    if condensed.agg is not None:
        return (condensed.agg[idx] % r).astype(np.int64)
    slot = np.full(condensed.unique_keys.size, -1, dtype=np.intp)
    slot[idx] = np.arange(idx.size, dtype=np.intp)
    el_slot = slot[condensed.inverse]
    sel = el_slot >= 0
    out = np.zeros(idx.size, dtype=np.int64)
    np.add.at(out, el_slot[sel], condensed.values[sel] % r)
    return out % r


def _suspect_lanes(
    checker: MultiSeedSumChecker,
    cin: CondensedKV,
    mask_in: np.ndarray,
    cout: CondensedKV,
    mask_out: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merged suspect arrays: sorted keys, per-lane buckets and residues.

    Input-side suspects contribute ``+agg mod r``, asserted-side suspects
    the ``r``-complement (xor is its own inverse), so any key interval's
    restricted ⊕-difference table is a plain masked scatter over these
    arrays — evaluated per bisection half without touching raw data.
    """
    cfg = checker.config
    idx_in = np.flatnonzero(mask_in)
    idx_out = np.flatnonzero(mask_out)
    keys = np.concatenate(
        [cin.unique_keys[idx_in], cout.unique_keys[idx_out]]
    )
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    s = skeys.size
    t_seeds = checker.num_seeds
    sbuckets = np.zeros((t_seeds, cfg.iterations, s), dtype=np.intp)
    scontrib = np.zeros((t_seeds, cfg.iterations, s), dtype=np.int64)
    if s == 0:
        return skeys, sbuckets, scontrib
    n_in = idx_in.size
    for t, j, buckets in checker.iter_lane_buckets(cin.unique_keys[idx_in]):
        sbuckets[t, j, :n_in] = buckets
    for t, j, buckets in checker.iter_lane_buckets(cout.unique_keys[idx_out]):
        sbuckets[t, j, n_in:] = buckets
    for t in range(t_seeds):
        for j in range(cfg.iterations):
            r = int(checker.moduli[t, j])
            cin_c = _suspect_contrib(cin, idx_in, r, checker.operator)
            cout_c = _suspect_contrib(cout, idx_out, r, checker.operator)
            if checker.operator == "+":
                cout_c = (r - cout_c) % r
            scontrib[t, j, :n_in] = cin_c
            scontrib[t, j, n_in:] = cout_c
    # Reorder lane columns into merged key order.
    sbuckets = sbuckets[:, :, order]
    scontrib = scontrib[:, :, order]
    return skeys, sbuckets, scontrib


def _half_tables(
    checker: MultiSeedSumChecker,
    skeys: np.ndarray,
    sbuckets: np.ndarray,
    scontrib: np.ndarray,
    halves: list[tuple[int, int]],
) -> np.ndarray:
    """Local restricted ⊕-difference tables of every candidate half."""
    cfg = checker.config
    t_seeds = checker.num_seeds
    tabs = np.zeros(
        (len(halves), t_seeds, cfg.iterations, cfg.d), dtype=np.int64
    )
    utabs = tabs.view(np.uint64)
    for h, (a, b) in enumerate(halves):
        i0 = int(np.searchsorted(skeys, np.uint64(a), side="left"))
        i1 = int(np.searchsorted(skeys, np.uint64(b), side="right"))
        if i0 == i1:
            continue
        for t in range(t_seeds):
            for j in range(cfg.iterations):
                if checker.operator == "xor":
                    np.bitwise_xor.at(
                        utabs[h, t, j],
                        sbuckets[t, j, i0:i1],
                        scontrib[t, j, i0:i1].view(np.uint64),
                    )
                else:
                    np.add.at(
                        tabs[h, t, j],
                        sbuckets[t, j, i0:i1],
                        scontrib[t, j, i0:i1],
                    )
                    tabs[h, t, j] %= int(checker.moduli[t, j])
    return tabs


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce adjacent/overlapping inclusive ranges, sorted ascending."""
    merged: list[tuple[int, int]] = []
    for a, b in sorted(ranges):
        if merged and a <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def _in_ranges(keys: np.ndarray, ranges: list[tuple[int, int]]) -> np.ndarray:
    """Boolean mask of ``keys`` inside the union of inclusive ranges."""
    mask = np.zeros(np.asarray(keys).size, dtype=bool)
    for a, b in ranges:
        mask |= (keys >= np.uint64(a)) & (keys <= np.uint64(b))
    return mask


# -- entry point -----------------------------------------------------------


def localize_fault(
    input_side,
    asserted_side,
    config: SumCheckConfig,
    seeds=0,
    comm=None,
    *,
    operator: str = "+",
    window: int | None = None,
    max_rounds: int = 64,
    max_ranges: int = 32,
    diff: np.ndarray | None = None,
) -> FaultReport:
    """Localize a failed Theorem 1 verdict to key range(s) and PE(s).

    ``input_side`` / ``asserted_side`` are ``(keys, values)`` pairs or
    already-built :class:`CondensedKV` sides — pass the condensations the
    failed check retained (e.g. a settled
    :class:`~repro.core.streams.SumCheckerStream`'s) and localization
    never re-reads a chunk.  ``seeds`` follows the multi-seed checker
    convention (scalar or array; more seeds → sharper bucket filter).

    All PEs must call collectively.  The return value is replicated:
    every PE gets the same report, so callers may branch on it (repair,
    quarantine) without desynchronizing.  ``max_rounds`` caps bisection
    depth, ``max_ranges`` the number of tracked intervals; hitting either
    cap sets ``exhausted`` and reports the coarser surviving ranges.

    ``diff`` short-circuits the table re-evaluation: pass the *local*
    per-seed ⊕-difference tensor the failed check already computed (same
    ``config``/``seeds``/``operator``) and localization's only full pass
    over the data is the one hash sweep of the suspect prefilter.
    """
    t_start = time.perf_counter()
    cin = (
        input_side
        if isinstance(input_side, CondensedKV)
        else condense_kv(*input_side, operator)
    )
    cout = (
        asserted_side
        if isinstance(asserted_side, CondensedKV)
        else condense_kv(*asserted_side, operator)
    )
    checker = MultiSeedSumChecker(config, np.atleast_1d(seeds), operator)

    # One packed collective: every PE holds the same global ⊕-difference.
    if diff is None:
        diff = checker.difference(
            checker.local_tables_condensed(cin),
            checker.local_tables_condensed(cout),
        )
    gdiff = checker.unpack(_combine_packed(comm, checker, checker.pack(diff)))
    guilty = [
        [np.flatnonzero(gdiff[t, j]).tolist() for j in range(config.iterations)]
        for t in range(checker.num_seeds)
    ]
    clean = not bool(np.any(gdiff))
    details = {
        "config": config.label(),
        "operator": operator,
        "num_seeds": checker.num_seeds,
    }
    if clean:
        # The check (re-evaluated under these seeds) accepts: nothing to
        # localize.  Uniform across PEs — gdiff is the combined tensor.
        return FaultReport(
            localized=False,
            windows=[] if window is None else [window],
            key_ranges=[],
            pes=[],
            guilty_buckets=guilty,
            suspect_keys=0,
            bisection_rounds=0,
            localization_seconds=time.perf_counter() - t_start,
            details=details,
        )

    # Guilty-bucket prefilter, then agree on suspect count and key bounds.
    luts = _guilty_luts(checker, gdiff)
    mask_in, mask_out = _suspect_masks(checker, cin, cout, luts)
    payload = _bounds_payload(cin, mask_in, cout, mask_out)
    bounds = _global_bounds(comm, payload)
    if int(bounds[0]) == 0:
        # Multi-fault cancellation starved the filter on every PE: fall
        # back to bisection over the full key population.
        mask_in = np.ones(cin.unique_keys.size, dtype=bool)
        mask_out = np.ones(cout.unique_keys.size, dtype=bool)
        lo, hi = _unpack_key(int(bounds[4])), _unpack_key(int(bounds[5]))
        suspect_total = int(bounds[3])
    else:
        lo, hi = _unpack_key(int(bounds[1])), _unpack_key(int(bounds[2]))
        suspect_total = int(bounds[0])
    details["prefilter_exhausted"] = int(bounds[0]) == 0

    skeys, sbuckets, scontrib = _suspect_lanes(
        checker, cin, mask_in, cout, mask_out
    )

    # Self-check: the suspects must reproduce the entire difference.
    # Multi-fault cancellation can hide a guilty key from one lane and
    # knock it out of the all-lanes intersection even when the filter
    # stays non-empty (IncDec's ±v pairs sharing a bucket).  One
    # collective; on a shortfall, widen to the full key population like
    # the empty-filter fallback above.
    if int(bounds[0]) != 0:
        whole = _combine_tables(
            comm,
            _half_tables(checker, skeys, sbuckets, scontrib, [(lo, hi)]),
            operator,
        )[0]
        if operator == "xor":
            complete = bool(
                np.array_equal(whole.view(np.uint64), gdiff.view(np.uint64))
            )
        else:
            complete = bool(
                np.all(whole % checker.moduli[:, :, None] == gdiff)
            )
        if not complete:
            details["prefilter_incomplete"] = True
            mask_in = np.ones(cin.unique_keys.size, dtype=bool)
            mask_out = np.ones(cout.unique_keys.size, dtype=bool)
            lo = _unpack_key(int(bounds[4]))
            hi = _unpack_key(int(bounds[5]))
            suspect_total = int(bounds[3])
            skeys, sbuckets, scontrib = _suspect_lanes(
                checker, cin, mask_in, cout, mask_out
            )

    # Replicated bisection: one collective per round, lockstep loop exits.
    pending = [(int(np.uint64(lo)), int(np.uint64(hi)))]
    final: list[tuple[int, int]] = []
    n_final = 0
    rounds = 0
    exhausted = False
    while True:
        splittable = []
        n_split = 0
        for a, b in pending:
            if b <= a:
                final.append((a, b))
                n_final += 1
            else:
                splittable.append((a, b))
                n_split += 1
        if not splittable:
            break
        if rounds >= max_rounds or n_final + 2 * n_split > max_ranges:
            exhausted = True
            final.extend(splittable)
            break
        halves = []
        for a, b in splittable:
            m = (a + b) // 2
            halves.append((a, m))
            halves.append((m + 1, b))
        tabs = _half_tables(checker, skeys, sbuckets, scontrib, halves)
        combined = _combine_tables(comm, tabs, operator)
        if operator == "xor":
            nz = np.any(combined != 0, axis=(1, 2, 3))
        else:
            residue = combined % checker.moduli[None, :, :, None]
            nz = np.any(residue != 0, axis=(1, 2, 3))
        pending = [h for h, keep in zip(halves, nz.tolist()) if keep]
        rounds += 1

    ranges = _merge_ranges(final)
    has_local = bool(np.any(_in_ranges(cout.unique_keys, ranges)))
    pes = _implicated_pes(comm, has_local)
    return FaultReport(
        localized=True,
        windows=[] if window is None else [window],
        key_ranges=ranges,
        pes=pes,
        guilty_buckets=guilty,
        suspect_keys=suspect_total,
        bisection_rounds=rounds,
        localization_seconds=time.perf_counter() - t_start,
        exhausted=exhausted,
        details=details,
    )


def _bounds_payload(
    cin: CondensedKV,
    mask_in: np.ndarray,
    cout: CondensedKV,
    mask_out: np.ndarray,
) -> np.ndarray:
    """Local [#suspects, lo, hi, #keys, lo_all, hi_all] for the reduction.

    Key bounds ride as top-bit-biased int64 (:func:`_pack_key`), so
    min/max order matches uint64 order over the full key space; the
    sentinel convention keeps empty PEs neutral.
    """

    def _minmax(keys: np.ndarray) -> tuple[int, int]:
        if keys.size == 0:
            return _NO_MIN, _NO_MAX
        return _pack_key(int(keys.min())), _pack_key(int(keys.max()))

    sus = np.concatenate(
        [cin.unique_keys[mask_in], cout.unique_keys[mask_out]]
    )
    all_keys = np.concatenate([cin.unique_keys, cout.unique_keys])
    s_lo, s_hi = _minmax(sus)
    a_lo, a_hi = _minmax(all_keys)
    return np.array(
        [sus.size, s_lo, s_hi, all_keys.size, a_lo, a_hi], dtype=np.int64
    )

"""Median-aggregation checker (§6.3, Algorithm 2, Theorem 10).

The median of a key's (multiset of) values — mean of the two middle
elements for even counts — has the defining balance property: with unique
values, exactly as many elements lie below it as above it.  Algorithm 2
exploits this: map each input element to −1 (below its key's asserted
median), +1 (above) or 0, and verify with the §4 sum checker that every
per-key sum is zero, against an *empty* asserted output.

Requirements (paper Table 1): the asserted medians must be available at
every PE; for non-unique values a **tie-breaking certificate** is required.
Our certificate names, per key, the unique ids (uids) of the middle
occurrence(s): elements equal in value to a middle element compare by uid.
The certificate is self-verifying — mis-designated middles shift the ±1
counts and break the zero-sum, so a forged certificate cannot make a wrong
median pass (beyond the sum checker's δ).

Medians are exact rationals ``num/den`` with den ∈ {1, 2}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import CheckResult
from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker, _coerce_keys

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


@dataclass
class MedianCertificate:
    """Tie-breaking certificate: uids of the middle occurrence(s) per key.

    Aligned with the asserted keys; ``uid_low == uid_high`` for odd counts.
    uids must be unique per (key, value) group — any total order works; the
    dataflow layer uses global element indices.
    """

    uid_low: np.ndarray
    uid_high: np.ndarray


def signed_contributions(
    keys,
    values,
    uids,
    asserted_keys,
    asserted_num,
    asserted_den,
    certificate: MedianCertificate | None,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """The −1/0/+1 mapping of Algorithm 2, vectorized.

    Returns ``(keys, contributions, structurally_ok)``; ``structurally_ok``
    is False when some input key is missing from the asserted result (an
    unconditional rejection).
    """
    keys = _coerce_keys(keys)
    values = np.asarray(values, dtype=np.int64).ravel()
    asserted_keys = _coerce_keys(asserted_keys)
    num = np.asarray(asserted_num, dtype=np.int64).ravel()
    den = np.asarray(asserted_den, dtype=np.int64).ravel()
    if np.any((den != 1) & (den != 2)):
        raise ValueError("median denominators must be 1 or 2")

    order = np.argsort(asserted_keys, kind="stable")
    sorted_keys = asserted_keys[order]
    if keys.size == 0:
        return keys, np.zeros(0, dtype=np.int64), True
    if sorted_keys.size == 0:
        return keys, np.zeros(keys.size, dtype=np.int64), False
    pos = np.searchsorted(sorted_keys, keys)
    clipped = np.minimum(pos, sorted_keys.size - 1)
    known = (pos < sorted_keys.size) & (sorted_keys[clipped] == keys)
    if not np.all(known):
        return keys, np.zeros(keys.size, dtype=np.int64), False
    idx = order[clipped]  # row in the asserted arrays per element

    # Compare value against num/den without division: sign(value·den − num).
    lhs = values * den[idx]
    contrib = np.sign(lhs - num[idx]).astype(np.int64)

    ties = contrib == 0
    if np.any(ties):
        if certificate is None:
            # Unique-values mode: the single element equal to the median is
            # the middle element of an odd-count key and maps to 0.
            pass
        else:
            uids = np.asarray(uids, dtype=np.int64).ravel()
            low = np.asarray(certificate.uid_low, dtype=np.int64).ravel()[idx]
            high = np.asarray(certificate.uid_high, dtype=np.int64).ravel()[idx]
            odd = low == high
            t_uid = uids[ties]
            t_low = low[ties]
            t_high = high[ties]
            t_odd = odd[ties]
            tie_contrib = np.zeros(t_uid.size, dtype=np.int64)
            tie_contrib[t_uid < t_low] = -1
            tie_contrib[t_uid > t_high] = +1
            # The designated middles: 0 for odd counts, −1/+1 for even.
            is_low = t_uid == t_low
            is_high = t_uid == t_high
            tie_contrib[is_low & ~t_odd] = -1
            tie_contrib[is_high & ~t_odd] = +1
            contrib[ties] = tie_contrib
    return keys, contrib, True


def check_median_aggregation(
    input_keys,
    input_values,
    asserted_keys,
    asserted_num,
    asserted_den,
    certificate: MedianCertificate | None = None,
    input_uids=None,
    config: SumCheckConfig | None = None,
    seed: int = 0,
    comm=None,
) -> CheckResult:
    """Theorem 10: check per-key medians via the balance property.

    The asserted result (and certificate, if values repeat) must be the
    full result, identical at every PE.  Cost: O(T_check-sum(n, p, δ)).
    """
    cfg = config or _DEFAULT_CONFIG
    if input_uids is None:
        input_uids = np.zeros(np.asarray(input_keys).size, dtype=np.int64)
    keys, contrib, structurally_ok = signed_contributions(
        input_keys,
        input_values,
        input_uids,
        asserted_keys,
        asserted_num,
        asserted_den,
        certificate,
    )

    checker = SumAggregationChecker(cfg, seed)
    empty = (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
    if comm is None:
        inner = checker.check_local((keys, contrib), empty)
        verdict = structurally_ok and inner.accepted
    else:
        structurally_ok = comm.allreduce(
            bool(structurally_ok), op=lambda a, b: a and b
        )
        inner = checker.check_distributed(comm, (keys, contrib), empty)
        verdict = structurally_ok and inner.accepted
    return CheckResult(
        accepted=bool(verdict),
        checker="median-aggregation",
        details={
            "config": cfg.label(),
            "structural_ok": bool(structurally_ok),
            "certificate": certificate is not None,
        },
    )


def check_median_aggregation_multiseed(
    input_keys,
    input_values,
    asserted_keys,
    asserted_num,
    asserted_den,
    seeds,
    certificate: MedianCertificate | None = None,
    input_uids=None,
    config: SumCheckConfig | None = None,
    comm=None,
) -> CheckResult:
    """Theorem 10 under ``T`` root seeds, one contribution pass.

    The −1/0/+1 mapping of Algorithm 2 is seed-independent and computed
    once; the inner zero-sum test runs through one
    :class:`MultiSeedSumChecker`, sharing the contribution condensation
    across all seeds and settling distributed in a single collective.
    Per-seed verdicts equal ``T`` independent
    :func:`check_median_aggregation` calls.
    """
    cfg = config or _DEFAULT_CONFIG
    if input_uids is None:
        input_uids = np.zeros(np.asarray(input_keys).size, dtype=np.int64)
    keys, contrib, structurally_ok = signed_contributions(
        input_keys,
        input_values,
        input_uids,
        asserted_keys,
        asserted_num,
        asserted_den,
        certificate,
    )

    checker = MultiSeedSumChecker(cfg, seeds)
    empty = (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
    if comm is None:
        inner = checker.check_local((keys, contrib), empty)
    else:
        structurally_ok = comm.allreduce(
            bool(structurally_ok), op=lambda a, b: a and b
        )
        inner = checker.check_distributed(comm, (keys, contrib), empty)
    per_seed = [
        bool(structurally_ok) and ok
        for ok in inner.details["per_seed_accepted"]
    ]
    return CheckResult(
        accepted=all(per_seed),
        checker="median-aggregation-multiseed",
        details={
            "config": cfg.label(),
            "structural_ok": bool(structurally_ok),
            "certificate": certificate is not None,
            "num_seeds": checker.num_seeds,
            "per_seed_accepted": per_seed,
        },
    )

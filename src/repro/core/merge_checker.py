"""Merge checker (§6.5.2, Corollary 13).

``Merge(S1, S2)`` combines two sorted sequences into one sorted sequence —
checking it is exactly the union check plus global sortedness of the
output (Theorem 7's machinery).
"""

from __future__ import annotations

from repro.core.base import CheckResult
from repro.core.sort_checker import check_globally_sorted
from repro.core.union_checker import check_union


def check_merge(
    s1,
    s2,
    out,
    method: str = "hashsum",
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
    comm=None,
    delta: float = 2.0**-30,
    universe: int = 1 << 32,
) -> CheckResult:
    """Accept iff ``out`` is a sorted permutation of ``concat(s1, s2)``."""
    union = check_union(
        s1,
        s2,
        out,
        method=method,
        iterations=iterations,
        hash_family=hash_family,
        log_h=log_h,
        seed=seed,
        comm=comm,
        delta=delta,
        universe=universe,
    )
    sortedness = check_globally_sorted(out, comm=comm)
    return CheckResult(
        accepted=union.accepted and sortedness.accepted,
        checker="merge",
        details={
            "union": union.details | {"accepted": union.accepted},
            "sorted": sortedness.accepted,
        },
    )

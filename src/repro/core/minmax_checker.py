"""Minimum/maximum aggregation checker (§6.2, Theorem 9) — deterministic.

Min/max cannot use the §4 machinery because ``min(a, b) = a`` for b ≥ a
violates Theorem 1's requirement.  The paper's checker needs

* the full asserted result ``M : key → min`` at **every** PE, and
* a certificate naming, for every key, a PE that holds the minimum.

Each PE then verifies (a) no local element undercuts its key's asserted
minimum, and (b) every key assigned to it by the certificate has a local
element *equal* to the asserted minimum.  The certificate's full replication
ensures no key can be silently "forgotten".  Because both directions are
checked exhaustively, the checker is deterministic: it never accepts an
incorrect result.  Cost: O(n/p + α log p) (plus the §2 result-integrity
hash comparison ensuring all PEs saw the same result/certificate).
"""

from __future__ import annotations

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.integrity import replicated_digest as _digest
from repro.core.integrity import replicated_digest_multiseed
from repro.core.multiseed import _coerce_seeds
from repro.core.sum_checker import _coerce_keys

_INT64_MAX = np.iinfo(np.int64).max


def _extremum_inputs(input_kv, asserted_keys, asserted_values, certificate_owners, sign):
    in_keys = _coerce_keys(input_kv[0])
    in_values = sign * np.asarray(input_kv[1], dtype=np.int64).ravel()
    keys = _coerce_keys(asserted_keys)
    values = sign * np.asarray(asserted_values, dtype=np.int64).ravel()
    owners = np.asarray(certificate_owners, dtype=np.int64).ravel()
    if not (keys.size == values.size == owners.size):
        raise ValueError("asserted keys, values and certificate must align")
    return in_keys, in_values, keys, values, owners


def _extremum_local_ok(in_keys, in_values, keys, values, owners, rank, size) -> bool:
    """The seed-independent part of the Theorem 9 check, one PE's verdict."""
    # Index the asserted result by sorted key for O(log k) lookups.
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    duplicate_keys = bool(
        sorted_keys.size > 1 and np.any(sorted_keys[:-1] == sorted_keys[1:])
    )

    ok = not duplicate_keys and bool(np.all((owners >= 0) & (owners < size)))
    if ok and in_keys.size:
        # (a) every input key appears in the result, and no local element
        #     undercuts its key's asserted minimum.
        if sorted_keys.size == 0:
            ok = False  # input has keys the result "forgot"
        else:
            pos = np.searchsorted(sorted_keys, in_keys)
            clipped = np.minimum(pos, sorted_keys.size - 1)
            known = (pos < sorted_keys.size) & (sorted_keys[clipped] == in_keys)
            ok = bool(np.all(known)) and bool(
                np.all(in_values >= sorted_values[clipped])
            )
    if ok:
        # (b) for keys this PE owns per the certificate, the asserted
        #     minimum must actually occur locally.
        local_min = np.full(sorted_keys.size, _INT64_MAX, dtype=np.int64)
        if in_keys.size:
            pos = np.searchsorted(sorted_keys, in_keys)
            np.minimum.at(local_min, pos, in_values)
        owned = owners[order] == rank
        ok = bool(np.all(local_min[owned] == sorted_values[owned]))
    return ok


def _check_extremum(
    input_kv,
    asserted_keys,
    asserted_values,
    certificate_owners,
    comm,
    seed: int,
    sign: int,
    name: str,
) -> CheckResult:
    in_keys, in_values, keys, values, owners = _extremum_inputs(
        input_kv, asserted_keys, asserted_values, certificate_owners, sign
    )
    rank = comm.rank if comm is not None else 0
    size = comm.size if comm is not None else 1

    # Result integrity (§2): all PEs must hold identical result+certificate.
    integrity_ok = True
    if comm is not None:
        digest = _digest(seed, keys, values, owners)
        root_digest = comm.bcast(digest, root=0)
        integrity_ok = digest == root_digest

    ok = integrity_ok and _extremum_local_ok(
        in_keys, in_values, keys, values, owners, rank, size
    )
    if comm is not None:
        ok = comm.allreduce(bool(ok), op=ops.LAND)

    return CheckResult(
        accepted=bool(ok),
        checker=name,
        details={
            "deterministic": True,
            "certificate": "owner PE per key, replicated at all PEs",
            "integrity_ok": bool(integrity_ok),
        },
    )


def _check_extremum_multiseed(
    input_kv,
    asserted_keys,
    asserted_values,
    certificate_owners,
    seeds,
    comm,
    sign: int,
    name: str,
) -> CheckResult:
    """Theorem 9 under ``T`` seeds: one deterministic pass, T digests.

    The deterministic body is seed-free and runs once; only the §2
    integrity digest is seeded, and
    :func:`~repro.core.integrity.replicated_digest_multiseed` evaluates
    all ``T`` digests in one pass over the replicated result (CRC is
    linear in its initial state).  Per-seed verdicts equal ``T``
    independent single-seed checks.
    """
    seeds = _coerce_seeds(seeds)
    in_keys, in_values, keys, values, owners = _extremum_inputs(
        input_kv, asserted_keys, asserted_values, certificate_owners, sign
    )
    rank = comm.rank if comm is not None else 0
    size = comm.size if comm is not None else 1

    integrity = [True] * seeds.size
    if comm is not None:
        digests = replicated_digest_multiseed(seeds, keys, values, owners)
        root_digests = comm.bcast(digests, root=0)
        integrity = [a == b for a, b in zip(digests, root_digests)]

    det_ok = _extremum_local_ok(
        in_keys, in_values, keys, values, owners, rank, size
    )
    if comm is not None:
        det_ok = comm.allreduce(bool(det_ok), op=ops.LAND)
        integrity = comm.allreduce(
            integrity, op=lambda a, b: [x and y for x, y in zip(a, b)]
        )
    per_seed = [bool(det_ok) and i for i in integrity]
    return CheckResult(
        accepted=all(per_seed),
        checker=name,
        details={
            "deterministic": True,
            "certificate": "owner PE per key, replicated at all PEs",
            "num_seeds": int(seeds.size),
            "per_seed_accepted": per_seed,
        },
    )


def check_min_aggregation(
    input_kv,
    asserted_keys,
    asserted_values,
    certificate_owners,
    comm=None,
    seed: int = 0,
) -> CheckResult:
    """Theorem 9: deterministic check of per-key minima.

    ``asserted_keys/values`` must be the *full* result, identical at every
    PE; ``certificate_owners[i]`` names a PE holding the minimum of key i.
    """
    return _check_extremum(
        input_kv,
        asserted_keys,
        asserted_values,
        certificate_owners,
        comm,
        seed,
        sign=+1,
        name="min-aggregation",
    )


def check_max_aggregation(
    input_kv,
    asserted_keys,
    asserted_values,
    certificate_owners,
    comm=None,
    seed: int = 0,
) -> CheckResult:
    """Theorem 9 for maxima (w.l.o.g. via negation)."""
    return _check_extremum(
        input_kv,
        asserted_keys,
        asserted_values,
        certificate_owners,
        comm,
        seed,
        sign=-1,
        name="max-aggregation",
    )


def check_min_aggregation_bitvector(
    input_kv,
    asserted_keys,
    asserted_values,
    comm=None,
    seed: int = 0,
) -> CheckResult:
    """Certificate-free min checker with O(βk) communication (§6.2).

    The paper notes property (b) — "the minimum value does indeed appear in
    the input" — is *"easy to verify in time O(n/p + βk + α log p) using a
    bitwise-or reduction on a bitvector of size k specifying which keys'
    minima are present locally, and testing whether each bit is set"*.
    This is that checker: no owner certificate needed, deterministic, but
    the communication volume grows linearly with the number of keys k —
    exactly the cost the certificate of Theorem 9 avoids.
    """
    in_keys = _coerce_keys(input_kv[0])
    in_values = np.asarray(input_kv[1], dtype=np.int64).ravel()
    keys = _coerce_keys(asserted_keys)
    values = np.asarray(asserted_values, dtype=np.int64).ravel()
    if keys.size != values.size:
        raise ValueError("asserted keys and values must align")

    integrity_ok = True
    if comm is not None:
        digest = _digest(seed, keys, values)
        integrity_ok = digest == comm.bcast(digest, root=0)

    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    duplicate_keys = bool(
        sorted_keys.size > 1 and np.any(sorted_keys[:-1] == sorted_keys[1:])
    )

    ok = integrity_ok and not duplicate_keys
    present = np.zeros(sorted_keys.size, dtype=np.uint8)
    if ok and in_keys.size:
        if sorted_keys.size == 0:
            ok = False
        else:
            pos = np.searchsorted(sorted_keys, in_keys)
            clipped = np.minimum(pos, sorted_keys.size - 1)
            known = (pos < sorted_keys.size) & (sorted_keys[clipped] == in_keys)
            # (a) no element undercuts its key's asserted minimum.
            ok = bool(np.all(known)) and bool(
                np.all(in_values >= sorted_values[clipped])
            )
            if ok:
                hit = in_values == sorted_values[clipped]
                np.bitwise_or.at(present, clipped[hit], np.uint8(1))

    if comm is not None:
        ok = comm.allreduce(bool(ok), op=ops.LAND)
        # The O(βk) step: OR-reduce the per-key presence bitvector.
        packed = np.packbits(present)
        combined = comm.allreduce(packed, op=np.bitwise_or)
        present = np.unpackbits(combined, count=present.size)
    verdict = ok and bool(np.all(present == 1))
    return CheckResult(
        accepted=bool(verdict),
        checker="min-aggregation-bitvector",
        details={
            "deterministic": True,
            "certificate": None,
            "communication": "O(k) bits per PE (bitvector OR-reduction)",
            "integrity_ok": bool(integrity_ok),
        },
    )


def check_min_aggregation_multiseed(
    input_kv,
    asserted_keys,
    asserted_values,
    certificate_owners,
    seeds,
    comm=None,
) -> CheckResult:
    """Theorem 9 under ``T`` integrity seeds (see `_check_extremum_multiseed`)."""
    return _check_extremum_multiseed(
        input_kv,
        asserted_keys,
        asserted_values,
        certificate_owners,
        seeds,
        comm,
        sign=+1,
        name="min-aggregation-multiseed",
    )


def check_max_aggregation_multiseed(
    input_kv,
    asserted_keys,
    asserted_values,
    certificate_owners,
    seeds,
    comm=None,
) -> CheckResult:
    """Theorem 9 for maxima under ``T`` integrity seeds."""
    return _check_extremum_multiseed(
        input_kv,
        asserted_keys,
        asserted_values,
        certificate_owners,
        seeds,
        comm,
        sign=-1,
        name="max-aggregation-multiseed",
    )

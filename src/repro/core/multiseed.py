"""Multi-seed batched checking: many independent checkers, one data pass.

Re-checking a result under ``T`` independent root seeds drives the failure
probability from δ to δ^T, but running ``T`` :class:`SumAggregationChecker`
instances costs ``T`` passes over the local data — ``T`` key coercions,
``T`` hash sweeps, ``T·iterations`` scatter passes.  This module pushes the
paper's amortization theme (§7.1: one evaluation serves many iterations)
across checker *instances*:

* the local slice is condensed **once** to its unique keys with exact
  per-key aggregates (the minireduction table is linear in the multiset of
  pairs, so aggregating by key first is verdict-neutral — and Zipf-keyed
  workloads shrink 4–5×);
* bucket indices for all ``T × iterations`` lanes come from the batched
  hash kernels (:func:`repro.hashing.bitgroups.iter_bucket_blocks` over
  :func:`~repro.hashing.bitgroups.assign_buckets_batch`), evaluated in
  bounded seed blocks;
* moduli for all seeds come from the vectorized
  :func:`~repro.core.sum_checker.draw_moduli` path;
* tables accumulate as a ``(T, iterations, d)`` tensor with the same
  deferred-modulo chunking as the single-seed checker;
* the wire format packs all ``T·iterations·d`` residues into one message,
  so :meth:`MultiSeedSumChecker.check_distributed` reduces every seed's
  difference table in a **single** collective.

Every per-seed verdict (and table) is bit-identical to the corresponding
single-seed checker — property-tested across hash families and operators
in ``tests/test_core_multiseed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import CheckResult
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import (
    _CHUNK_BITS,
    _coerce_keys,
    _coerce_values,
    _magnitude_bound,
    _scatter_add_mod,
    draw_moduli,
    pack_residues,
    unpack_residues,
)
from repro.core.permutation_checker import _as_sequences, wide_weighted_sum
from repro.hashing.bitgroups import iter_bucket_blocks, iter_superbucket_blocks
from repro.hashing.families import get_family, hash_lanes
from repro.kernels import get_kernels, seeds_per_block
from repro.util.bits import ceil_log2, is_power_of_two
from repro.util.rng import derive_seed_array, splitmix64_array

#: Lane-matrix elements (seed lanes × unique keys) per batched hash pass;
#: bounds the bucket-index scratch to ``iterations · chunk · 8`` bytes and
#: keeps one block's working set cache-friendly.  Small key sets still
#: batch thousands of seeds per lane pass; paper-scale key sets get one
#: seed per pass — the shared base work (CRC's seed-0 sweep, tabulation's
#: byte extraction) is hoisted out of the block loop by the family's
#: :class:`~repro.hashing.families.LaneHasher` either way.
_DEFAULT_CHUNK_ELEMENTS = 1 << 18


def _coerce_seeds(seeds) -> np.ndarray:
    seeds = np.atleast_1d(np.asarray(seeds))
    if seeds.ndim != 1 or seeds.size < 1:
        raise ValueError(f"need a 1-d, non-empty seed array, got {seeds!r}")
    if seeds.dtype.kind == "i":
        seeds = seeds.astype(np.int64).view(np.uint64)
    elif seeds.dtype.kind == "u":
        seeds = seeds.astype(np.uint64, copy=False)
    else:
        # Same policy as _coerce_keys: silently truncating float seeds could
        # collapse "independent" seeds onto one another (0.4 and 0.6 both
        # become 0), quietly voiding the δ^T multi-seed guarantee.
        raise TypeError(
            f"multi-seed checkers require integer seeds, got dtype {seeds.dtype}"
        )
    if np.unique(seeds).size != seeds.size:
        # A duplicated seed re-runs the *same* checker: the observed lanes
        # agree by construction and the claimed δ^T bound silently degrades
        # to δ^(distinct seeds).  Refuse rather than over-promise.
        raise ValueError("multi-seed checkers require distinct seeds")
    return seeds


@dataclass
class CondensedKV:
    """One-pass condensation of a (keys, values) multiset.

    The minireduction table is linear in the multiset of pairs, so exact
    per-key aggregation is verdict-neutral — and it is the *only* pass over
    the raw data any multi-seed sum check needs.  Escalating from 1 seed to
    T seeds (see :class:`repro.dataflow.pipeline.AdaptiveCheckPolicy`)
    reuses the same condensation, so escalation never re-reads the input.

    ``agg`` / ``agg_float`` / ``agg_xor`` are the exact per-unique-key
    aggregates on the accumulation paths that admit them; when all three
    are None the magnitude guard fell back to per-element accumulation
    (``values`` and ``inverse`` are kept for exactly that path).
    """

    unique_keys: np.ndarray
    inverse: np.ndarray
    values: np.ndarray
    agg: np.ndarray | None
    agg_float: np.ndarray | None
    agg_xor: np.ndarray | None

    @property
    def num_pairs(self) -> int:
        return self.values.size


def condense_kv(keys, values, operator: str = "+") -> CondensedKV:
    """Condense a local slice to unique keys with exact aggregates.

    One pass over the raw data; magnitude guards pick the cheapest exact
    accumulation path exactly as the single-seed checker does (see
    :meth:`SumAggregationChecker.local_tables`).
    """
    if operator not in ("+", "xor"):
        raise ValueError(f"unsupported reduce operator {operator!r}")
    keys = _coerce_keys(keys)
    values = _coerce_values(values)
    if keys.size != values.size:
        raise ValueError(
            f"keys and values differ in length: {keys.size} vs {values.size}"
        )
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    k = unique_keys.size
    agg = agg_float = agg_xor = None
    if keys.size:
        # Σ|v| bounds every per-key aggregate and every partial bucket sum
        # (any of them is a subset sum), so it decides both exactness
        # guards — far tighter than the historical n·max|v| product.
        bound = _magnitude_bound(values)
        if operator == "xor":
            agg_xor = np.zeros(k, dtype=np.uint64)
            np.bitwise_xor.at(agg_xor, inverse, values.view(np.uint64))
        elif bound < (1 << _CHUNK_BITS):
            # All partial bucket sums fit the float64 mantissa: aggregate
            # per key and defer every modulo to one pass per lane (§7.1).
            agg = np.bincount(
                inverse, weights=values.astype(np.float64), minlength=k
            ).astype(np.int64)
            agg_float = agg.astype(np.float64)
        elif bound < (1 << 63):
            # Exact in int64, but bucket sums may exceed 2^52: aggregate
            # per key, reduce mod r per lane via the chunked scatter-add.
            agg = np.zeros(k, dtype=np.int64)
            np.add.at(agg, inverse, values)
        # else: |Σ values| could overflow int64 — keys still dedup for the
        # hash pass, but accumulation stays per element (exact mod-r path).
    return CondensedKV(unique_keys, inverse, values, agg, agg_float, agg_xor)


class MultiSeedSumChecker:
    """``T`` independent Algorithm 1 checkers evaluated in one data pass.

    Parameters
    ----------
    config:
        Shared bucket count, modulus parameter, iteration count, hash family.
    seeds:
        Array of ``T`` root seeds; seed ``t``'s lanes reproduce
        ``SumAggregationChecker(config, seeds[t], operator)`` exactly.
    operator:
        ``"+"`` or ``"xor"`` (as in the single-seed checker).
    chunk_elements:
        Budget for one batched hash pass (seed-tiled unique keys).
    """

    def __init__(
        self,
        config: SumCheckConfig,
        seeds,
        operator: str = "+",
        chunk_elements: int = _DEFAULT_CHUNK_ELEMENTS,
    ):
        if operator not in ("+", "xor"):
            raise ValueError(f"unsupported reduce operator {operator!r}")
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
        self.config = config
        self.operator = operator
        self.seeds = _coerce_seeds(seeds)
        self.num_seeds = self.seeds.size
        self.chunk_elements = chunk_elements
        self._family = get_family(config.hash_family)
        # (T, iterations) moduli — row t equals the scalar checker's draw.
        self.moduli = draw_moduli(config, self.seeds)
        # Root of each seed's bucket-hash tree, matching BucketAssigner's
        # derive_seed(seed, "sum-checker", "buckets") construction.
        self._bucket_seeds = derive_seed_array(
            self.seeds, "sum-checker", "buckets"
        )

    @property
    def table_bits(self) -> int:
        """Total wire size of all seeds' tables in bits."""
        return self.num_seeds * self.config.table_bits

    # -- local kernel --------------------------------------------------------
    def local_tables(self, keys, values) -> np.ndarray:
        """Condensed reductions of all seeds: ``(T, iterations, d)`` int64.

        ``out[t]`` is bit-identical to
        ``SumAggregationChecker(config, seeds[t], operator).local_tables``.
        """
        return self.local_tables_condensed(
            condense_kv(keys, values, self.operator)
        )

    def local_tables_condensed(self, condensed: CondensedKV) -> np.ndarray:
        """:meth:`local_tables` from an existing :class:`CondensedKV`.

        The condensation is the only pass over raw data — callers that keep
        it around (streaming feeds, adaptive escalation) evaluate any
        number of seed sets against the same aggregates for free.
        """
        cfg = self.config
        tables = np.zeros(
            (self.num_seeds, cfg.iterations, cfg.d), dtype=np.int64
        )
        if condensed.num_pairs == 0:
            return tables
        agg = condensed.agg
        agg_float = condensed.agg_float
        agg_xor = condensed.agg_xor
        if self.operator == "xor":
            if agg_xor is None:
                raise ValueError(
                    "condensed input was built for operator '+', not 'xor'"
                )
            utables = tables.view(np.uint64)
        elif agg_xor is not None:
            raise ValueError(
                "condensed input was built for operator 'xor', not '+'"
            )
        k = condensed.unique_keys.size
        values = condensed.values
        inverse = condensed.inverse

        if agg_float is not None and is_power_of_two(cfg.d):
            # Super-group fast path: one weighted bincount covers up to
            # m adjacent iterations at once (16 super-bits), each lane's
            # per-iteration counts falling out as cube marginals.
            self._accumulate_supergroups(condensed, tables)
            return tables

        kernels = get_kernels()
        for start, count, buckets in iter_bucket_blocks(
            self._family, cfg.d, cfg.iterations, self._bucket_seeds,
            condensed.unique_keys, self.chunk_elements,
        ):
            for c in range(count):
                t = start + c
                block = buckets[:, c * k : (c + 1) * k]
                for j in range(cfg.iterations):
                    if agg_float is not None:
                        # Fast path: raw weighted bincount per lane, one
                        # deferred mod at the end (exact under `bound`).
                        sums = kernels.weighted_bincount(
                            block[j], agg_float, cfg.d
                        )
                        tables[t, j] = sums.astype(np.int64) % int(
                            self.moduli[t, j]
                        )
                    elif self.operator == "xor":
                        np.bitwise_xor.at(utables[t, j], block[j], agg_xor)
                    elif agg is not None:
                        r = int(self.moduli[t, j])
                        _scatter_add_mod(tables[t, j], block[j], agg % r, r)
                    else:
                        r = int(self.moduli[t, j])
                        _scatter_add_mod(
                            tables[t, j], block[j][inverse], values % r, r
                        )
        return tables

    def iter_lane_buckets(self, keys):
        """Yield ``(seed_index, iteration, bucket_row)`` for every lane.

        ``bucket_row`` is the ``d``-bucket assignment of ``keys`` under
        seed ``seeds[seed_index]``'s iteration — the same batched
        :func:`iter_bucket_blocks` pass the table evaluation runs,
        exposed raw for consumers that intersect bucket memberships
        (fault localization's guilty-bucket filter).
        """
        keys = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64).ravel())
        k = keys.size
        if k == 0:
            return
        cfg = self.config
        for start, count, buckets in iter_bucket_blocks(
            self._family, cfg.d, cfg.iterations, self._bucket_seeds,
            keys, self.chunk_elements,
        ):
            for c in range(count):
                block = buckets[:, c * k : (c + 1) * k]
                for j in range(cfg.iterations):
                    yield start + c, j, block[j]

    def seed_lane_buckets(self, t: int, keys) -> np.ndarray:
        """Bucket assignments of ``keys`` under seed ``t`` alone.

        Returns shape ``(iterations, len(keys))`` — one hash evaluation
        per key, all iteration lanes extracted from it.  Lets a consumer
        process seeds one at a time over a shrinking key set (fault
        localization's progressive prefilter) instead of paying every
        seed up front.
        """
        keys = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64).ravel())
        cfg = self.config
        rows = np.empty((cfg.iterations, keys.size), dtype=np.int64)
        if keys.size == 0:
            return rows
        for start, count, buckets in iter_bucket_blocks(
            self._family, cfg.d, cfg.iterations,
            self._bucket_seeds[t : t + 1], keys, self.chunk_elements,
        ):
            rows[:, :] = buckets
        return rows

    def _accumulate_supergroups(
        self, condensed: CondensedKV, tables: np.ndarray
    ) -> None:
        """Accumulate the ``agg_float`` path via super-group bincounts.

        Up to ``m`` adjacent bit-groups of one hash evaluation are packed
        into a single index (:func:`iter_superbucket_blocks`), so *one*
        ``d**m``-bin weighted bincount per (lane, super-group) replaces
        ``m`` ``d``-bin passes over the keys.  Iteration ``j0 + q``'s
        bucket sums are the cube marginal over every other packed axis —
        exact, because every marginal partial sum is a subset sum of the
        values and therefore bounded by the same Σ|v| < 2^52 guard that
        selected ``agg_float``; the per-iteration residues are
        bit-identical to the per-group path.
        """
        cfg = self.config
        kernels = get_kernels()
        agg_float = condensed.agg_float
        group_bits = ceil_log2(cfg.d)
        for start, count, supers in iter_superbucket_blocks(
            self._family, cfg.d, cfg.iterations, self._bucket_seeds,
            condensed.unique_keys, self.chunk_elements,
        ):
            for j0, m, idx in supers:
                bins = 1 << (m * group_bits)
                for c in range(count):
                    t = start + c
                    sums = kernels.weighted_bincount(idx[c], agg_float, bins)
                    # C-order reshape: axis a holds the bits of group
                    # j0 + (m-1-a), so iteration j0+q sums out all axes
                    # except m-1-q.
                    cube = sums.reshape((cfg.d,) * m)
                    for q in range(m):
                        axes = tuple(a for a in range(m) if a != m - 1 - q)
                        marg = cube.sum(axis=axes) if axes else cube
                        tables[t, j0 + q] = marg.astype(np.int64) % int(
                            self.moduli[t, j0 + q]
                        )

    # -- table algebra -------------------------------------------------------
    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ⊕ of two ``(T, iterations, d)`` table tensors."""
        if self.operator == "+":
            return (a + b) % self.moduli[:, :, None]
        return (a.view(np.uint64) ^ b.view(np.uint64)).view(np.int64)

    def difference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ⊕-difference ``a ⊖ b`` of two table tensors."""
        if self.operator == "+":
            return (a - b) % self.moduli[:, :, None]
        return (a.view(np.uint64) ^ b.view(np.uint64)).view(np.int64)

    # -- wire format ---------------------------------------------------------
    def pack(self, tables: np.ndarray) -> bytes:
        """All seeds' tables as one ``T·iterations·d·residue_bits``-bit blob.

        One message for all seeds is what lets the distributed check settle
        every seed in a single reduction.
        """
        if self.operator == "xor":
            return tables.astype(np.int64).tobytes()
        return pack_residues(tables, self.config.residue_bits)

    def unpack(self, payload: bytes) -> np.ndarray:
        """Inverse of :meth:`pack`."""
        cfg = self.config
        shape = (self.num_seeds, cfg.iterations, cfg.d)
        if self.operator == "xor":
            return np.frombuffer(payload, dtype=np.int64).reshape(shape).copy()
        total = self.num_seeds * cfg.iterations * cfg.d
        return unpack_residues(payload, total, cfg.residue_bits).reshape(shape)

    # -- verdicts ------------------------------------------------------------
    def _result(
        self, per_seed: list[bool], distributed: bool, **extra
    ) -> CheckResult:
        return CheckResult(
            accepted=all(per_seed),
            checker="sum-aggregation-multiseed",
            details={
                "config": self.config.label(),
                "operator": self.operator,
                "num_seeds": self.num_seeds,
                "per_seed_accepted": per_seed,
                "table_bits": self.table_bits,
                "distributed": distributed,
                **extra,
            },
        )

    def per_seed_verdicts(self, diff: np.ndarray, comm=None) -> list[bool]:
        """Per-seed accept flags from a local ⊕-difference tensor.

        Sequentially a reduction over the tensor; distributed, ALL ``T``
        seeds settle in one packed collective (reduce to PE 0 + verdict
        broadcast), which is the whole point of the shared wire format.
        """
        if comm is None:
            return (~np.any(diff != 0, axis=(1, 2))).tolist()

        def wire_op(a: bytes, b: bytes) -> bytes:
            return self.pack(self.combine(self.unpack(a), self.unpack(b)))

        combined = comm.reduce(self.pack(diff), wire_op, root=0)
        per_seed = None
        if comm.rank == 0:
            per_seed = (~np.any(self.unpack(combined), axis=(1, 2))).tolist()
        return comm.bcast(per_seed, root=0)

    def check_local(self, input_kv, asserted_kv) -> CheckResult:
        """Single-PE check; accepted iff every seed's checker accepts."""
        return self.check_local_condensed(
            condense_kv(*input_kv, self.operator),
            condense_kv(*asserted_kv, self.operator),
        )

    def check_local_condensed(
        self, input_c: CondensedKV, asserted_c: CondensedKV
    ) -> CheckResult:
        """:meth:`check_local` over pre-condensed sides."""
        diff = self.difference(
            self.local_tables_condensed(input_c),
            self.local_tables_condensed(asserted_c),
        )
        return self._result(self.per_seed_verdicts(diff), distributed=False)

    def check_distributed(self, comm, input_kv, asserted_kv) -> CheckResult:
        """SPMD check settling all ``T`` seeds in one packed reduction."""
        return self.check_distributed_condensed(
            comm,
            condense_kv(*input_kv, self.operator),
            condense_kv(*asserted_kv, self.operator),
        )

    def check_distributed_condensed(
        self, comm, input_c: CondensedKV, asserted_c: CondensedKV
    ) -> CheckResult:
        """:meth:`check_distributed` over pre-condensed local sides."""
        diff = self.difference(
            self.local_tables_condensed(input_c),
            self.local_tables_condensed(asserted_c),
        )
        return self._result(
            self.per_seed_verdicts(diff, comm), distributed=True
        )

    # -- exact fast path for experiments -------------------------------------
    def detects_delta(self, delta_keys, delta_values) -> np.ndarray:
        """Per-seed detection flags for a sparse error delta, ``(T,)`` bool."""
        tables = self.local_tables(delta_keys, delta_values)
        return np.any(tables != 0, axis=(1, 2))


def __getattr__(name: str):
    # Back-compat: MultiSeedSumCheckerStream moved to repro.core.streams
    # when the CheckerStream protocol was extracted.  Lazy import keeps the
    # modules cycle-free.
    if name == "MultiSeedSumCheckerStream":
        from repro.core.streams import MultiSeedSumCheckerStream

        return MultiSeedSumCheckerStream
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def condense_side(side) -> list[tuple[np.ndarray, np.ndarray]]:
    """Condense one permutation-check side to (uniques, counts) pairs.

    The hash-sum fingerprint over a multiset equals the count-weighted
    fingerprint over its support, so this single pass over the raw
    sequence(s) is all any number of seed lanes needs — the permutation
    analog of :func:`condense_kv`, and what adaptive escalation reuses.
    """
    return [
        np.unique(seq, return_counts=True)
        for seq in _as_sequences(side)
        if seq.size
    ]


class MultiSeedHashSumChecker:
    """``T`` independent hash-sum permutation checkers, one pass per side.

    Seed ``t`` reproduces
    ``HashSumPermutationChecker(iterations, hash_family, log_h, seeds[t])``
    exactly: iteration hashes derive from the same
    ``derive_seed(seed, "perm-checker", j)`` tree, evaluated through the
    family's batched kernel over each side's unique elements (with exact
    multiplicity weighting via :func:`wide_weighted_sum`).
    """

    def __init__(
        self,
        seeds,
        iterations: int = 2,
        hash_family: str = "Mix",
        log_h: int = 32,
        chunk_elements: int = _DEFAULT_CHUNK_ELEMENTS,
    ):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        family = get_family(hash_family)
        if not 1 <= log_h <= family.bits:
            raise ValueError(
                f"log_h={log_h} out of range for {family.name} "
                f"({family.bits} output bits)"
            )
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
        self.seeds = _coerce_seeds(seeds)
        self.num_seeds = self.seeds.size
        self.iterations = iterations
        self.hash_family = hash_family
        self.log_h = log_h
        self.chunk_elements = chunk_elements
        self._family = family
        self._mask = np.uint64((1 << log_h) - 1)
        # Fold the "perm-checker" label once per seed; iterations branch on
        # their counter (identical to derive_seed(seed, "perm-checker", j)).
        self._prefix = derive_seed_array(self.seeds, "perm-checker")

    def fingerprints(self, side) -> list[list[int]]:
        """Wide hash sums per seed and iteration: ``T`` rows of ``iterations``."""
        return self.fingerprints_condensed(condense_side(side))

    def fingerprints_condensed(
        self, condensed: list[tuple[np.ndarray, np.ndarray]]
    ) -> list[list[int]]:
        """:meth:`fingerprints` from pre-condensed (uniques, counts) pairs.

        Every registered family goes through its
        :class:`~repro.hashing.families.LaneHasher`, built once per
        (uniques) array: the fixed-keys base pass (CRC's seed-0 table
        lookups, tabulation's byte extraction) serves every
        ``T × iterations`` lane, and each lane evaluation is a constant
        XOR (CRC), a stacked-table gather (Tab/Tab64), or a broadcast mix
        (Mix) — never a tiled per-seed hash pass.
        """
        totals = [[0] * self.iterations for _ in range(self.num_seeds)]
        for uniques, counts in condensed:
            k = uniques.size
            if k == 0:
                continue
            hasher = self._family.multiseed_hasher(uniques)
            per_block = seeds_per_block(self.chunk_elements, k)
            for start in range(0, self.num_seeds, per_block):
                count = min(per_block, self.num_seeds - start)
                prefix = self._prefix[start : start + count]
                for j in range(self.iterations):
                    fn_seeds = splitmix64_array(prefix ^ np.uint64(j))
                    hashed = (
                        hash_lanes(self._family, fn_seeds, uniques, hasher)
                        & self._mask
                    )
                    for c in range(count):
                        totals[start + c][j] += wide_weighted_sum(
                            hashed[c], counts
                        )
        return totals

    def lambda_values(self, e_side, o_side) -> list[list[int]]:
        """λ_{t,j} = Σ h_{t,j}(e) − Σ h_{t,j}(o); zero row ⇔ seed accepts."""
        fe = self.fingerprints(e_side)
        fo = self.fingerprints(o_side)
        return [
            [a - b for a, b in zip(row_e, row_o)]
            for row_e, row_o in zip(fe, fo)
        ]

    def check_condensed(
        self, e_condensed, o_condensed, comm=None
    ) -> CheckResult:
        """:meth:`check` over pre-condensed sides (see :func:`condense_side`)."""
        fe = self.fingerprints_condensed(e_condensed)
        fo = self.fingerprints_condensed(o_condensed)
        lambdas = [
            [a - b for a, b in zip(row_e, row_o)]
            for row_e, row_o in zip(fe, fo)
        ]
        return self._settle(lambdas, comm)

    def check(self, e_side, o_side, comm=None) -> CheckResult:
        """Accept iff every seed's every λ is zero; one collective if SPMD."""
        lambdas = self.lambda_values(e_side, o_side)
        return self._settle(lambdas, comm)

    def _settle(self, lambdas: list[list[int]], comm) -> CheckResult:
        if comm is not None:
            # All T·iterations partial sums travel in a single all-reduction.
            lambdas = comm.allreduce(
                lambdas,
                op=lambda a, b: [
                    [x + y for x, y in zip(ra, rb)] for ra, rb in zip(a, b)
                ],
            )
        per_seed = [all(lam == 0 for lam in row) for row in lambdas]
        return CheckResult(
            accepted=all(per_seed),
            checker="permutation-hashsum-multiseed",
            details={
                "iterations": self.iterations,
                "log_h": self.log_h,
                "hash_family": self.hash_family,
                "num_seeds": self.num_seeds,
                "per_seed_accepted": per_seed,
            },
        )


# ---------------------------------------------------------------------------
# Convenience wrappers (multi-seed forms of the sum_checker module's)
# ---------------------------------------------------------------------------

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


def check_sum_aggregation_multiseed(
    input_kv,
    asserted_kv,
    seeds,
    config: SumCheckConfig | None = None,
    comm=None,
    operator: str = "+",
) -> CheckResult:
    """Check a sum aggregation under ``T`` root seeds in one data pass.

    Per-seed verdicts (``details["per_seed_accepted"]``) equal ``T``
    independent :func:`~repro.core.sum_checker.check_sum_aggregation`
    calls; accepted iff every seed accepts (failure probability δ^T).
    """
    checker = MultiSeedSumChecker(config or _DEFAULT_CONFIG, seeds, operator)
    if comm is None:
        return checker.check_local(input_kv, asserted_kv)
    return checker.check_distributed(comm, input_kv, asserted_kv)


def check_count_aggregation_multiseed(
    input_keys,
    asserted_kv,
    seeds,
    config: SumCheckConfig | None = None,
    comm=None,
) -> CheckResult:
    """Count aggregation = sum aggregation of ones (§4), under ``T`` seeds."""
    keys = np.asarray(input_keys)
    ones = np.ones(keys.shape, dtype=np.int64)
    return check_sum_aggregation_multiseed(
        (keys, ones), asserted_kv, seeds, config=config, comm=comm
    )

"""Sum-checker parameterisation and the Table 2 / Table 3 configurations.

A sum-checker configuration is ``#its × d  m⌈log2 r̂⌉`` in the paper's
syntax: ``iterations`` independent repetitions, each hashing keys into ``d``
buckets and reducing values modulo a random ``r`` drawn uniformly from
``r̂+1 .. 2r̂``.  Lemma 2 bounds a single iteration's failure probability by
``1/r̂ + 1/d``, so the configuration guarantees

    δ  ≤  (1/r̂ + 1/d) ** iterations                        (Lemma 3)

and ships a minireduction table of ``iterations · d · ⌈log2(2r̂)⌉`` bits.

:func:`optimize_parameters` reproduces the paper's **Table 2**: given an
effective minimum message size ``b`` (bits) and a target δ, it finds the
minimum number of iterations and, among those, the (d, r̂) minimising the
achieved failure bound subject to the table fitting in ``b`` bits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.util.bits import ceil_log2


@dataclass(frozen=True)
class SumCheckConfig:
    """Parameters of the §4 sum-aggregation checker.

    Attributes
    ----------
    iterations:
        Number of independent repetitions (all executed in one input pass).
    d:
        Size of the condensed key space (buckets per iteration), ≥ 2.
    rhat:
        Modulus parameter r̂; each iteration draws r uniformly from
        ``r̂+1 .. 2r̂``.  The paper writes configurations as ``m<k>`` meaning
        ``r̂ = 2^k``.
    hash_family:
        Name of the bucket-hash family (see :mod:`repro.hashing.families`).
    """

    iterations: int
    d: int
    rhat: int
    hash_family: str = "Mix"

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.d < 2:
            raise ValueError(f"d must be >= 2, got {self.d}")
        if self.rhat < 1:
            # r̂ = 1 is the degenerate-but-valid floor: r is always 2 and the
            # table carries one residue bit per bucket (Lemma 2's bound is
            # vacuous there, but the checker itself stays one-sided correct).
            raise ValueError(f"rhat must be >= 1, got {self.rhat}")

    # -- analysis ----------------------------------------------------------
    @property
    def single_iteration_failure_bound(self) -> float:
        """Lemma 2 bound: 1/r̂ + 1/d."""
        return 1.0 / self.rhat + 1.0 / self.d

    @property
    def failure_bound(self) -> float:
        """Lemma 3 bound δ = (1/r̂ + 1/d)^iterations."""
        return self.single_iteration_failure_bound**self.iterations

    @property
    def residue_bits(self) -> int:
        """Bits per bucket counter: ⌈log2(2r̂)⌉."""
        return ceil_log2(2 * self.rhat)

    @property
    def table_bits(self) -> int:
        """Total minireduction table size in bits (the message payload)."""
        return self.iterations * self.d * self.residue_bits

    # -- naming --------------------------------------------------------------
    def label(self, with_hash: bool = True) -> str:
        """Paper syntax, e.g. ``"4x8 CRC m5"`` for 4×8 CRC m5."""
        m = (self.rhat - 1).bit_length()  # log2 for powers of two
        base = f"{self.iterations}x{self.d}"
        hash_part = f" {self.hash_family}" if with_hash else ""
        return f"{base}{hash_part} m{m}"

    @classmethod
    def parse(cls, label: str) -> "SumCheckConfig":
        """Parse the paper's ``#its×d [Hash] m<log2 r̂>`` syntax.

        Accepts ``x`` or ``×`` as the separator, an optional hash-family
        token, and ``m<k>`` meaning ``r̂ = 2^k``.  Example: ``"4x8 Tab m5"``.
        """
        match = re.fullmatch(
            r"\s*(\d+)\s*[x×]\s*(\d+)\s*(?:([A-Za-z][A-Za-z0-9]*)\s*)?m(\d+)\s*",
            label,
        )
        if not match:
            raise ValueError(f"cannot parse configuration label {label!r}")
        its, d, fam, m = match.groups()
        return cls(
            iterations=int(its),
            d=int(d),
            rhat=1 << int(m),
            hash_family=fam or "Mix",
        )

    def with_hash(self, family: str) -> "SumCheckConfig":
        """Same parameters, different hash family."""
        return SumCheckConfig(self.iterations, self.d, self.rhat, family)


def optimize_parameters(
    message_bits: int, delta: float, max_log_rhat: int = 40
) -> SumCheckConfig:
    """Numerically determine optimal (d, r̂, iterations) — paper Table 2.

    Minimises the number of iterations subject to the minireduction table
    fitting the effective minimum message size ``message_bits`` and the
    failure bound reaching δ; among minimum-iteration solutions, picks the
    (d, r̂) minimising the achieved failure bound.  Matches the constraint of
    §4:  ``d · ⌈log2(2r̂)⌉ · ⌈log_{1/r̂+1/d} δ⌉ ≤ b``.
    """
    if message_bits < 8:
        raise ValueError(f"message_bits too small: {message_bits}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")

    for iterations in range(1, 513):
        best: SumCheckConfig | None = None
        for log_rhat in range(1, max_log_rhat + 1):
            residue_bits = log_rhat + 1  # ⌈log2(2·2^k)⌉ = k + 1
            d = message_bits // (iterations * residue_bits)
            if d < 2:
                continue
            config = SumCheckConfig(iterations, d, 1 << log_rhat)
            if best is None or config.failure_bound < best.failure_bound:
                best = config
        if best is not None and best.failure_bound <= delta:
            return best
    raise ValueError(
        f"no configuration with <= 512 iterations reaches delta={delta} "
        f"within {message_bits} message bits"
    )


# ---------------------------------------------------------------------------
# Paper reference data
# ---------------------------------------------------------------------------

#: Table 2 of the paper: (b, δ) -> (d, log2 r̂, iterations, achieved δ).
#: Used by tests/benches to demonstrate digit-for-digit reproduction.
PAPER_TABLE2_ROWS: list[dict] = [
    {"b": 1024, "delta": 1e-4, "d": 37, "log_rhat": 8, "its": 3, "achieved": 3.0e-5},
    {"b": 1024, "delta": 1e-6, "d": 25, "log_rhat": 7, "its": 5, "achieved": 2.5e-7},
    {"b": 1024, "delta": 1e-8, "d": 18, "log_rhat": 7, "its": 7, "achieved": 4.1e-9},
    {"b": 1024, "delta": 1e-10, "d": 14, "log_rhat": 6, "its": 10, "achieved": 2.5e-11},
    {"b": 1024, "delta": 1e-20, "d": 6, "log_rhat": 4, "its": 32, "achieved": 3.3e-21},
    {"b": 4096, "delta": 1e-6, "d": 124, "log_rhat": 10, "its": 3, "achieved": 7.4e-7},
    {"b": 4096, "delta": 1e-10, "d": 68, "log_rhat": 9, "its": 6, "achieved": 2.1e-11},
    {"b": 4096, "delta": 1e-20, "d": 32, "log_rhat": 8, "its": 14, "achieved": 4.4e-21},
    {"b": 16384, "delta": 1e-7, "d": 420, "log_rhat": 12, "its": 3, "achieved": 1.8e-8},
    {"b": 16384, "delta": 1e-10, "d": 273, "log_rhat": 11, "its": 5, "achieved": 1.2e-12},
    {"b": 16384, "delta": 1e-20, "d": 148, "log_rhat": 10, "its": 10, "achieved": 7.6e-22},
    {"b": 16384, "delta": 1e-30, "d": 93, "log_rhat": 10, "its": 16, "achieved": 1.3e-31},
    {"b": 65536, "delta": 1e-10, "d": 1170, "log_rhat": 13, "its": 4, "achieved": 9.1e-13},
    {"b": 65536, "delta": 1e-20, "d": 630, "log_rhat": 12, "its": 8, "achieved": 1.3e-22},
    {"b": 65536, "delta": 1e-30, "d": 420, "log_rhat": 12, "its": 12, "achieved": 1.1e-31},
    {"b": 65536, "delta": 1e-40, "d": 321, "log_rhat": 11, "its": 17, "achieved": 2.9e-42},
]

#: Table 3, first block: configurations used for the accuracy tests (Fig 3).
#: Each is instantiated with both CRC and Tab hashing in the experiments.
PAPER_TABLE3_ACCURACY: list[str] = [
    "1x2 m31",
    "1x4 m31",
    "4x2 m4",
    "4x4 m3",
    "4x4 m5",
    "4x8 m3",
    "4x8 m5",
    "4x8 m7",
]

#: Table 3, second block: configurations used for the scaling tests (Fig 4)
#: and the overhead measurements (Table 5), with the paper's hash families.
PAPER_TABLE3_SCALING: list[str] = [
    "5x16 CRC m5",
    "6x32 CRC m9",
    "8x16 CRC m15",
    "4x256 CRC m15",
    "5x128 Tab64 m11",
    "8x256 Tab64 m15",
    "16x16 Tab64 m15",
]


def table3_expected_failure_rate(label: str) -> float:
    """δ column of Table 3, computed from the configuration label."""
    return SumCheckConfig.parse(label).failure_bound


@dataclass(frozen=True)
class PermCheckConfig:
    """Configuration of the §5 permutation/sort checker accuracy runs.

    Paper syntax ``Hashfn logH`` (Fig 5): one hash-sum iteration with the
    hash output truncated to ``log_h`` bits; expected maximum failure rate
    δ = 2^-log_h for a single-element manipulation.
    """

    log_h: int
    hash_family: str = "Mix"
    iterations: int = 1

    def __post_init__(self):
        if not 1 <= self.log_h <= 64:
            raise ValueError(f"log_h must be in 1..64, got {self.log_h}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")

    @property
    def failure_bound(self) -> float:
        """δ = H^-iterations with H = 2^log_h (Lemma 4 / Theorem 6)."""
        return float(2.0 ** (-self.log_h * self.iterations))

    def label(self) -> str:
        return f"{self.hash_family}{self.log_h}"


#: Fig 5 sweep: logH values (sorted as in the paper's alphabetical axis).
PAPER_FIG5_LOG_H: list[int] = [1, 2, 3, 4, 6, 8, 12]

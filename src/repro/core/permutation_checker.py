"""Permutation checkers (§5): hash-sum, polynomial, and GF(2^64) variants.

**Hash-sum (Lemma 4, Wegman–Carter).**  Compare ``Σ h(e_i)`` with
``Σ h(o_i)`` for a random hash ``h``.  The paper's inline TODO notes the
mod-H version breaks for multisets with repeated elements and proposes the
fix we implement: *drop the modulo* — add 32-bit (here: up to 64-bit
truncated) hash values in wide integers, so multiplicities enter the sum
exactly.  For an element ``e`` occurring ``k`` times in E and ``k' < k``
times in O, equality requires ``h(e) = (h(O∖e) − h(E∖e))/(k−k')``, a single
value independent of ``h(e)`` — probability ≤ 1/H (the paper's margin
argument).

**Polynomial (Lemma 5, Lipton).**  ``q(z) = Π(z−e_i) − Π(z−o_i) mod r`` for
a prime ``r > max(n/δ, U−1)``; q is the zero polynomial iff the multisets
match, else it has ≤ n roots, so a random evaluation point exposes the
difference with probability ≥ 1 − n/r.  No trust in a hash function needed.

**GF(2^64) (§5 remark).**  Same polynomial identity over the carry-less
field GF(2^64) (the ``PCLMULQDQ`` trick of Plank et al.); failure ≤ n/2^64
per iteration.

All three run distributed: each PE fingerprints its local slice in O(n/p),
and one all-reduction of a single word per iteration combines the
fingerprints — ``O((n/(p·w) + β) log 1/δ + α log p)`` (Theorem 6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.hashing.families import get_family
from repro.hashing.gf2 import gf64_mul, gf64_product
from repro.hashing.primes import random_prime_in_range
from repro.util.rng import derive_seed, uniform_below

_CHUNK = 1 << 30  # sums of < 2^30 values below 2^32 stay within int64


def wide_sum(arr: np.ndarray) -> int:
    """Exact (arbitrary-precision) sum of an unsigned integer array.

    This is the paper's multiset fix: 32-bit halves are accumulated in
    64-bit lanes per chunk and the chunk totals are combined as Python ints,
    so no wrap-around ever occurs regardless of n.
    """
    arr = np.asarray(arr, dtype=np.uint64).ravel()
    total = 0
    for start in range(0, arr.size, _CHUNK):
        part = arr[start : start + _CHUNK]
        lo = (part & np.uint64(0xFFFFFFFF)).astype(np.int64)
        hi = (part >> np.uint64(32)).astype(np.int64)
        total += int(lo.sum()) + (int(hi.sum()) << 32)
    return total


def wide_weighted_sum(values: np.ndarray, weights: np.ndarray) -> int:
    """Exact ``Σ values[i]·weights[i]`` for uint64 values, weights < 2^32.

    The multiplicity-aware companion of :func:`wide_sum`: a multiset's hash
    fingerprint over its *unique* elements with their counts as weights.
    Each value splits into 32-bit halves, so every product fits uint64 and
    the halves reduce exactly through :func:`wide_sum`.
    """
    values = np.asarray(values, dtype=np.uint64).ravel()
    weights = np.asarray(weights, dtype=np.uint64).ravel()
    if values.size != weights.size:
        raise ValueError(
            f"values and weights differ in length: "
            f"{values.size} vs {weights.size}"
        )
    if weights.size and int(weights.max()) >= 1 << 32:
        raise ValueError("weights must be < 2**32 for exact uint64 products")
    lo = values & np.uint64(0xFFFFFFFF)
    hi = values >> np.uint64(32)
    return wide_sum(lo * weights) + (wide_sum(hi * weights) << 32)


def _as_sequences(side) -> list[np.ndarray]:
    """Normalise one side of a comparison into a list of uint64 arrays.

    A side may be a single array or a list of arrays — the latter supports
    the Union/Merge checkers, which compare ``concat(S1, S2)`` against ``S``
    without materialising the concatenation.
    """
    if isinstance(side, (list, tuple)) and not (
        len(side) == 2 and np.isscalar(side[0])
    ):
        seqs = list(side)
    else:
        seqs = [side]
    out = []
    for seq in seqs:
        arr = np.asarray(seq)
        if arr.dtype.kind == "i":
            arr = arr.astype(np.int64).view(np.uint64)
        else:
            arr = arr.astype(np.uint64)
        out.append(arr.ravel())
    return out


class HashSumPermutationChecker:
    """Seeded hash-sum fingerprint (Lemma 4 with the wide-sum multiset fix).

    ``iterations`` independent hash functions from ``hash_family``, each
    truncated to ``log_h`` bits, boost the detection probability to
    ``1 − 2^(−log_h · iterations)`` per differing multiset (Theorem 6).
    """

    def __init__(
        self,
        iterations: int = 2,
        hash_family: str = "Mix",
        log_h: int = 32,
        seed: int = 0,
    ):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        family = get_family(hash_family)
        if not 1 <= log_h <= family.bits:
            raise ValueError(
                f"log_h={log_h} out of range for {family.name} "
                f"({family.bits} output bits)"
            )
        self.iterations = iterations
        self.log_h = log_h
        self.hash_family = hash_family
        self.seed = seed
        self._functions = [
            family.instance(derive_seed(seed, "perm-checker", j))
            for j in range(iterations)
        ]
        self._mask = np.uint64((1 << log_h) - 1)

    @property
    def failure_bound(self) -> float:
        """Per-check acceptance bound for an unequal multiset pair."""
        return float(2.0 ** (-self.log_h * self.iterations))

    def fingerprint(self, side) -> list[int]:
        """Per-iteration wide hash sums over one side's sequence(s)."""
        seqs = _as_sequences(side)
        fps = []
        for fn in self._functions:
            total = 0
            for seq in seqs:
                hashed = fn.hash_array(seq) & self._mask
                total += wide_sum(hashed)
            fps.append(total)
        return fps

    def lambda_values(self, e_side, o_side) -> list[int]:
        """λ_j = Σ h_j(e) − Σ h_j(o) per iteration (zero ⇔ accept)."""
        fe = self.fingerprint(e_side)
        fo = self.fingerprint(o_side)
        return [a - b for a, b in zip(fe, fo)]

    def check(self, e_side, o_side, comm=None) -> CheckResult:
        """Accept iff every λ_j is zero; distributed when ``comm`` given."""
        lambdas = self.lambda_values(e_side, o_side)
        if comm is not None:
            lambdas = comm.allreduce(
                lambdas, op=lambda a, b: [x + y for x, y in zip(a, b)]
            )
        detecting = [j for j, lam in enumerate(lambdas) if lam != 0]
        return CheckResult(
            accepted=not detecting,
            checker="permutation-hashsum",
            details={
                "iterations": self.iterations,
                "log_h": self.log_h,
                "hash_family": self.hash_family,
                "detecting_iterations": detecting,
            },
        )


def check_permutation_hashsum(
    e_side,
    o_side,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
    comm=None,
) -> CheckResult:
    """Convenience wrapper over :class:`HashSumPermutationChecker`."""
    checker = HashSumPermutationChecker(iterations, hash_family, log_h, seed)
    return checker.check(e_side, o_side, comm)


# ---------------------------------------------------------------------------
# Lemma 5: polynomial identity testing over F_r
# ---------------------------------------------------------------------------


def _mod_product(values: np.ndarray, z: int, r: int) -> int:
    """``Π (z − v_i) mod r`` — vectorized tree product when residues fit."""
    values = np.asarray(values, dtype=np.uint64).ravel()
    if values.size == 0:
        return 1
    if r <= (1 << 31):
        # Residues < 2^31 → pairwise products < 2^62 fit in int64.
        residues = (values % np.uint64(r)).astype(np.int64)
        terms = (np.int64(z) - residues) % np.int64(r)
        while terms.size > 1:
            half = terms.size // 2
            merged = (terms[:half] * terms[half : 2 * half]) % np.int64(r)
            if terms.size % 2:
                merged = np.concatenate([merged, terms[-1:]])
            terms = merged
        return int(terms[0])
    product = 1
    for v in values.tolist():
        product = (product * ((z - v) % r)) % r
    return product


def check_permutation_polynomial(
    e_side,
    o_side,
    delta: float = 2.0**-30,
    universe: int = 1 << 32,
    seed: int = 0,
    comm=None,
    total_n: int | None = None,
) -> CheckResult:
    """Lemma 5: compare ``Π(z−e_i)`` and ``Π(z−o_i)`` in F_r at random z.

    ``universe`` must exceed every element (so no two distinct elements
    collide mod r); ``total_n`` is the global sequence length (computed via
    an all-reduction when running distributed and left unset).
    """
    e_seqs = _as_sequences(e_side)
    o_seqs = _as_sequences(o_side)
    local_n = sum(s.size for s in e_seqs)
    if comm is not None:
        n = comm.allreduce(local_n, op=ops.SUM)
    else:
        n = total_n if total_n is not None else local_n
    n = max(n, 1)
    bound = max(int(n / delta) + 1, universe - 1, 3)
    # Bertrand: a prime exists in (bound, 2·bound]; seeded random choice.
    r = random_prime_in_range(bound + 1, 2 * bound, derive_seed(seed, "poly-r"))
    z = uniform_below(derive_seed(seed, "poly-z"), r)
    prod_e = 1
    for seq in e_seqs:
        prod_e = (prod_e * _mod_product(seq, z, r)) % r
    prod_o = 1
    for seq in o_seqs:
        prod_o = (prod_o * _mod_product(seq, z, r)) % r
    if comm is not None:
        prod_e, prod_o = comm.allreduce(
            (prod_e, prod_o),
            op=lambda a, b: ((a[0] * b[0]) % r, (a[1] * b[1]) % r),
        )
    return CheckResult(
        accepted=prod_e == prod_o,
        checker="permutation-polynomial",
        details={"prime": r, "eval_point": z, "n": n, "delta": delta},
    )


# ---------------------------------------------------------------------------
# GF(2^64) variant
# ---------------------------------------------------------------------------


def check_permutation_gf64(
    e_side,
    o_side,
    iterations: int = 1,
    seed: int = 0,
    comm=None,
) -> CheckResult:
    """Polynomial identity test over GF(2^64) (carry-less field).

    Failure probability ≤ n / 2^64 per iteration; subtraction in the field
    is XOR, so the factors are ``z XOR e_i``.
    """
    e_seqs = _as_sequences(e_side)
    o_seqs = _as_sequences(o_side)
    mismatched = []
    for j in range(iterations):
        z = np.uint64(derive_seed(seed, "gf64-z", j))
        prod_e = 1
        for seq in e_seqs:
            prod_e = gf64_mul(prod_e, gf64_product(seq ^ z))
        prod_o = 1
        for seq in o_seqs:
            prod_o = gf64_mul(prod_o, gf64_product(seq ^ z))
        if comm is not None:
            prod_e, prod_o = comm.allreduce(
                (prod_e, prod_o),
                op=lambda a, b: (gf64_mul(a[0], b[0]), gf64_mul(a[1], b[1])),
            )
        if prod_e != prod_o:
            mismatched.append(j)
    return CheckResult(
        accepted=not mismatched,
        checker="permutation-gf64",
        details={"iterations": iterations, "detecting_iterations": mismatched},
    )

"""Sort checker (§5, Theorem 7): permutation + global sortedness.

After establishing the permutation property (Theorem 6), sortedness needs
only O(n/p) local work plus one boundary message per PE: each PE transmits
its locally smallest element to the preceding PE, which compares it to its
local maximum; a final AND-reduction collects the verdicts.

Empty local sequences (legal under the O(n/p) distribution model) are
handled with a prefix-maximum scan instead of the neighbour exchange — the
running maximum over all preceding PEs is exactly what the local minimum
must dominate, whether or not neighbours hold data.
"""

from __future__ import annotations

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.permutation_checker import (
    check_permutation_gf64,
    check_permutation_hashsum,
    check_permutation_polynomial,
)

_NEG_INF = None  # identity of the max-scan (no predecessor data)


def _max_op(a, b):
    if a is _NEG_INF:
        return b
    if b is _NEG_INF:
        return a
    return max(a, b)


def locally_sorted(values: np.ndarray) -> bool:
    """Non-decreasing order of one PE's local slice, O(n/p)."""
    values = np.asarray(values)
    if values.size <= 1:
        return True
    return bool(np.all(values[:-1] <= values[1:]))


def check_globally_sorted(values, comm=None) -> CheckResult:
    """Is the (distributed) concatenation of local slices sorted?

    Sequential when ``comm`` is None.  Distributed: local sortedness check,
    an exclusive max-scan replacing the paper's neighbour exchange (same
    O(α log p) cost, robust to empty PEs), and an AND-reduction of verdicts.
    """
    values = np.asarray(values)
    ok = locally_sorted(values)
    if comm is not None:
        local_max = int(values[-1]) if values.size else _NEG_INF
        prev_max = comm.exscan(local_max, _max_op, identity=_NEG_INF)
        if ok and values.size and prev_max is not _NEG_INF:
            ok = int(values[0]) >= prev_max
        ok = comm.allreduce(bool(ok), op=ops.LAND)
    return CheckResult(
        accepted=bool(ok),
        checker="sortedness",
        details={},
    )


def check_sort(
    e_values,
    o_values,
    method: str = "hashsum",
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
    comm=None,
    delta: float = 2.0**-30,
    universe: int = 1 << 32,
) -> CheckResult:
    """Theorem 7: ``o_values`` is a sorted permutation of ``e_values``.

    ``method`` selects the permutation fingerprint: ``"hashsum"`` (Lemma 4),
    ``"polynomial"`` (Lemma 5) or ``"gf64"``.
    """
    if method == "hashsum":
        perm = check_permutation_hashsum(
            e_values,
            o_values,
            iterations=iterations,
            hash_family=hash_family,
            log_h=log_h,
            seed=seed,
            comm=comm,
        )
    elif method == "polynomial":
        perm = check_permutation_polynomial(
            e_values, o_values, delta=delta, universe=universe, seed=seed, comm=comm
        )
    elif method == "gf64":
        perm = check_permutation_gf64(
            e_values, o_values, iterations=iterations, seed=seed, comm=comm
        )
    else:
        raise ValueError(f"unknown permutation method {method!r}")
    sortedness = check_globally_sorted(o_values, comm=comm)
    return CheckResult(
        accepted=perm.accepted and sortedness.accepted,
        checker="sort",
        details={
            "permutation": perm.details | {"accepted": perm.accepted},
            "sorted": sortedness.accepted,
            "method": method,
        },
    )

"""Unified ``CheckerStream`` protocol: chunk-at-a-time checking, one settle.

The paper integrates its checkers *inline* with the operations (§7:
"elements are forwarded to the checker as they are passed to the
reduction"), which means the natural execution model is a one-pass stream:
chunks of the operation's input and asserted output arrive in arbitrary
order, the checker folds each chunk into bounded per-key state, and the
verdict settles once — exactly the annotated-stream model of the related
work (Chakrabarti et al.; François & Magniez).

Every stream in this module follows one protocol:

* ``feed_input(...)`` — account a chunk of the operation's input;
* ``feed_output(...)`` — account a chunk of the asserted output;
* ``settle(comm=None) -> CheckResult`` — combine across PEs (one
  data-bearing collective when distributed) and produce the verdict.

A stream settles **exactly once**: feeding after settle or settling twice
raises ``RuntimeError`` uniformly (the distributed settle runs a metered
reduction, so silently re-running it would double-count network traffic).

All streams fold chunks into the *condensed* aggregates of
:mod:`repro.core.multiseed` (:func:`condense_kv` per-key aggregates for the
sum family, :func:`condense_side` (uniques, counts) pairs for the
permutation family), so memory stays O(unique keys) regardless of how many
chunks stream through, and verdicts are **bit-identical** to the batch
checker fed the concatenated input (the minireduction table and the
hash-sum fingerprint are linear in the multiset of pairs/elements).
Multi-seed variants ride the same condensed state: pass an array of seeds
where a scalar is accepted and all ``T`` lanes evaluate against the one
condensation.  The retained condensations are also what adaptive
escalation reuses (:meth:`SumCheckerStream.settle_adaptive`) — escalating
to ``T`` fresh seeds never re-reads a chunk.

The zip checker is the one exception to condensation: its fingerprint is
*positional* (order-sensitive), so :class:`ZipCheckerStream` instead
accumulates the running inner-product fingerprints chunk by chunk — state
O(seeds · iterations), one allreduce at settle (versus one per iteration
in the batch checker).
"""

from __future__ import annotations

import numpy as np

from repro.core.average_checker import reconstruct_sums
from repro.core.base import CheckResult
from repro.core.groupby_checker import encode_records
from repro.core.integrity import replicated_digest, replicated_digest_multiseed
from repro.core.multiseed import (
    CondensedKV,
    MultiSeedHashSumChecker,
    MultiSeedSumChecker,
    _coerce_seeds,
    condense_kv,
)
from repro.core.params import SumCheckConfig
from repro.core.permutation_checker import _as_sequences
from repro.core.sum_checker import (
    _CHUNK_BITS,
    SumAggregationChecker,
    _coerce_keys,
    _coerce_values,
    _magnitude_bound,
)
from repro.core.zip_checker import MERSENNE31, positional_fingerprint
from repro.kernels import get_kernels
from repro.util.rng import derive_seed, derive_seed_array

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)
_INT64_LIMIT = 1 << 63
_INT64_MAX = np.iinfo(np.int64).max
_SETTLED_MSG = "stream already settled"


class CheckerStream:
    """Base of the streaming protocol: the settle-once state machine.

    Subclasses implement ``feed_input`` / ``feed_output`` (guarding with
    :meth:`_ensure_open`) and the family-specific :meth:`_settle`; the
    public :meth:`settle` enforces the settle-exactly-once contract that
    the whole protocol shares.
    """

    def __init__(self):
        self._settled = False

    def _ensure_open(self) -> None:
        if self._settled:
            raise RuntimeError(_SETTLED_MSG)

    def settle(self, comm=None) -> CheckResult:
        """Combine across PEs (if distributed) and produce the verdict."""
        self._ensure_open()
        self._settled = True
        return self._settle(comm)

    def _settle(self, comm) -> CheckResult:  # pragma: no cover - abstract
        raise NotImplementedError


def _explode_wide_sums(
    keys: np.ndarray, sums: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Represent arbitrary-precision per-key sums as int64 pairs.

    The minireduction table is linear in the multiset of pairs, so a
    per-key sum too large for int64 can be split into several pairs whose
    values do fit — table-neutral, and only ever exercised after the
    accumulator promoted to Python ints (astronomically large inputs).
    """
    limit = 1 << 62
    out_k: list[int] = []
    out_v: list[int] = []
    for k, s in zip(keys.tolist(), sums.tolist()):
        s = int(s)
        while s > limit:
            out_k.append(k)
            out_v.append(limit)
            s -= limit
        while s < -limit:
            out_k.append(k)
            out_v.append(-limit)
            s += limit
        out_k.append(k)
        out_v.append(s)
    return np.array(out_k, dtype=np.uint64), np.array(out_v, dtype=np.int64)


#: StreamedKV compaction tuning.  A merge factor ``f`` merges while the
#: previous segment holds at most ``f×`` the newest segment's keys, so
#: higher factors merge more eagerly.  The factor adapts to the observed
#: duplicate ratio: merges that barely shrink (mostly-unique feeds, where
#: compaction is pure data movement) halve it down to the floor, merges
#: that collapse heavily (duplicate-heavy feeds, where early compaction
#: keeps later merges small) double it back up to the cap.
_MERGE_FACTOR_START = 2.0
_MERGE_FACTOR_MIN = 0.125
_MERGE_FACTOR_MAX = 4.0
_SHRINK_LOWER = 0.9  # merged/unmerged size above this → lower the factor
_SHRINK_RAISE = 0.6  # ... below this → raise it
#: Deferred-merge backstop: past this many segments, one concat-all
#: compaction bounds both memory overhead and the settle-time merge cost.
_MAX_SEGMENTS = 64


class StreamedKV:
    """Streaming fold of :func:`condense_kv`: exact per-key aggregates.

    Chunks are condensed on arrival and compacted into geometrically
    decreasing segments, so total memory stays O(unique keys) — segment
    sizes are geometric, their sum is at most a small multiple of the
    largest, and no segment exceeds the global unique-key count — while
    total merge work stays O(n log(chunks)).  The merge threshold adapts
    to the observed duplicate ratio (see :data:`_MERGE_FACTOR_START`):
    all-unique feeds, where merging never shrinks anything, defer
    compaction (up to :data:`_MAX_SEGMENTS` segments, then one concat-all
    pass) instead of re-merging every element O(log chunks) times.
    Segment merges run on the active kernel tier
    (:mod:`repro.kernels`; the numba tier's two-pointer merge avoids the
    concat + sort of the numpy path).

    Exactness mirrors the batch condensation's magnitude guards: per-chunk
    aggregation uses the float64 bincount fast path when provably exact,
    int64 scatter-adds otherwise, and promotes the whole accumulator to
    Python ints in the (astronomical) regime where a running per-key sum
    could overflow int64.
    """

    def __init__(self, operator: str = "+"):
        if operator not in ("+", "xor"):
            raise ValueError(f"unsupported reduce operator {operator!r}")
        self.operator = operator
        self._segments: list[tuple[np.ndarray, np.ndarray]] = []
        self.elements = 0
        self._bound = 0  # conservative bound on any per-key |aggregate|
        self._merge_factor = _MERGE_FACTOR_START
        self.compactions = 0  # segment merges performed (observability)

    def fold(self, keys, values) -> None:
        """Fold one (keys, values) chunk into the condensed state."""
        keys = _coerce_keys(keys)
        values = _coerce_values(values)
        if keys.size != values.size:
            raise ValueError(
                f"keys and values differ in length: {keys.size} vs {values.size}"
            )
        if keys.size == 0:
            return
        self.elements += int(keys.size)
        uk, inv = np.unique(keys, return_inverse=True)
        if self.operator == "xor":
            agg: np.ndarray = np.zeros(uk.size, dtype=np.uint64)
            np.bitwise_xor.at(agg, inv, values.view(np.uint64))
        else:
            # Σ|v| of the chunk bounds every per-key contribution; the
            # running total then bounds any per-key aggregate of the whole
            # stream (each is a subset sum of all folded values).
            chunk_bound = _magnitude_bound(values)
            self._bound += chunk_bound
            if self._bound >= _INT64_LIMIT:
                # A running per-key sum could no longer be proven to fit
                # int64: promote everything to exact Python ints.
                agg = np.zeros(uk.size, dtype=object)
                np.add.at(agg, inv, values.astype(object))
                self._segments = [
                    (k, a.astype(object)) for k, a in self._segments
                ]
            elif chunk_bound < (1 << _CHUNK_BITS):
                agg = np.bincount(
                    inv, weights=values.astype(np.float64), minlength=uk.size
                ).astype(np.int64)
            else:
                agg = np.zeros(uk.size, dtype=np.int64)
                np.add.at(agg, inv, values)
        self._segments.append((uk, agg))
        self._compact()

    def _merge(
        self, a: tuple[np.ndarray, np.ndarray], b: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        if a[1].dtype == object:
            # Python-int promoted regime: numpy scatter keeps exact
            # arbitrary-precision sums (both segments promote together).
            keys = np.concatenate([a[0], b[0]])
            aggs = np.concatenate([a[1], b[1]])
            uk, inv = np.unique(keys, return_inverse=True)
            out = np.zeros(uk.size, dtype=object)
            np.add.at(out, inv, aggs)
            return uk, out
        kernels = get_kernels()
        if self.operator == "xor":
            return kernels.merge_sorted_unique_xor(a[0], a[1], b[0], b[1])
        return kernels.merge_sorted_unique_sum(a[0], a[1], b[0], b[1])

    def _compact(self) -> None:
        segs = self._segments
        if len(segs) > _MAX_SEGMENTS:
            self.merged()
            return
        while (
            len(segs) > 1
            and segs[-2][0].size <= self._merge_factor * segs[-1][0].size
        ):
            b = segs.pop()
            a = segs.pop()
            before = a[0].size + b[0].size
            merged = self._merge(a, b)
            self.compactions += 1
            shrink = merged[0].size / before if before else 1.0
            if shrink > _SHRINK_LOWER:
                self._merge_factor = max(
                    self._merge_factor / 2, _MERGE_FACTOR_MIN
                )
            elif shrink < _SHRINK_RAISE:
                self._merge_factor = min(
                    self._merge_factor * 2, _MERGE_FACTOR_MAX
                )
            segs.append(merged)

    @property
    def unique_count(self) -> int:
        return sum(int(k.size) for k, _ in self._segments)

    def merged(self) -> tuple[np.ndarray, np.ndarray]:
        """All state as one (unique keys, exact aggregates) pair."""
        if len(self._segments) > 1:
            # One concat-all + single scatter, not pairwise merges: with
            # deferred compaction there can be tens of segments, and the
            # pairwise chain would re-touch the big segments once each.
            keys = np.concatenate([k for k, _ in self._segments])
            aggs = np.concatenate([a for _, a in self._segments])
            uk, inv = np.unique(keys, return_inverse=True)
            out = np.zeros(uk.size, dtype=aggs.dtype)
            if self.operator == "xor":
                np.bitwise_xor.at(out, inv, aggs)
            else:
                np.add.at(out, inv, aggs)
            self._segments = [(uk, out)]
            self.compactions += 1
        if not self._segments:
            empty_vals = np.zeros(
                0, dtype=np.uint64 if self.operator == "xor" else np.int64
            )
            return np.zeros(0, dtype=np.uint64), empty_vals
        return self._segments[0]

    def pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """The state as an int64 (keys, values) multiset (table-neutral)."""
        keys, aggs = self.merged()
        if self.operator == "xor":
            return keys, aggs.view(np.int64)
        if aggs.dtype == object:
            return _explode_wide_sums(keys, aggs)
        return keys, aggs

    def condensed(self) -> CondensedKV:
        """The accumulated state as a batch-compatible :class:`CondensedKV`.

        This is what multi-seed evaluation and adaptive escalation consume
        — any number of seed lanes run against it without re-reading a
        single chunk.  Built directly from the merged segments (they are
        already sorted-unique with exact aggregates), so settle pays no
        second ``np.unique`` pass; field-for-field identical to
        ``condense_kv(*self.pairs(), self.operator)``.
        """
        keys, aggs = self.merged()
        identity = np.arange(keys.size, dtype=np.intp)
        if self.operator == "xor":
            return CondensedKV(
                keys, identity, aggs.view(np.int64), None, None,
                aggs if keys.size else None,
            )
        if aggs.dtype == object:
            # Wide (beyond-int64) sums need the int64-pair explosion;
            # route through the generic batch condensation.
            return condense_kv(*self.pairs(), self.operator)
        agg = agg_float = None
        if keys.size:
            bound = _magnitude_bound(aggs)
            if bound < (1 << _CHUNK_BITS):
                agg = aggs
                agg_float = aggs.astype(np.float64)
            elif bound < _INT64_LIMIT:
                agg = aggs
        return CondensedKV(keys, identity, aggs, agg, agg_float, None)


class StreamedSide:
    """Streaming fold of :func:`condense_side`: (uniques, counts) pairs.

    The permutation-family analog of :class:`StreamedKV`, with the same
    geometric segment compaction; counts accumulate exactly in int64.
    """

    def __init__(self):
        self._segments: list[tuple[np.ndarray, np.ndarray]] = []
        self.elements = 0

    def fold(self, side) -> None:
        """Fold one chunk (an array, or a list of arrays) into the state."""
        for seq in _as_sequences(side):
            if seq.size == 0:
                continue
            self.elements += int(seq.size)
            uniques, counts = np.unique(seq, return_counts=True)
            self._segments.append((uniques, counts.astype(np.int64)))
            self._compact()

    def _merge(self, a, b):
        uniques = np.concatenate([a[0], b[0]])
        counts = np.concatenate([a[1], b[1]])
        uk, inv = np.unique(uniques, return_inverse=True)
        out = np.zeros(uk.size, dtype=np.int64)
        np.add.at(out, inv, counts)
        return uk, out

    def _compact(self) -> None:
        segs = self._segments
        while len(segs) > 1 and segs[-2][0].size <= 2 * segs[-1][0].size:
            b = segs.pop()
            a = segs.pop()
            segs.append(self._merge(a, b))

    def condensed(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batch-compatible condensation (see :func:`condense_side`)."""
        while len(self._segments) > 1:
            b = self._segments.pop()
            a = self._segments.pop()
            self._segments.append(self._merge(a, b))
        return list(self._segments)


def _as_seed_array(seeds) -> tuple[np.ndarray, bool]:
    """Normalise scalar-or-array seeds; returns (array, was_scalar)."""
    scalar = np.ndim(seeds) == 0
    return _coerce_seeds(np.atleast_1d(np.asarray(seeds))), scalar


# ---------------------------------------------------------------------------
# Sum family (§4): sum / count, single- and multi-seed
# ---------------------------------------------------------------------------


class _CondensingSumStream(CheckerStream):
    """Shared feed layer of the sum-family streams: two StreamedKV sides."""

    def __init__(self, operator: str):
        super().__init__()
        self._input = StreamedKV(operator)
        self._output = StreamedKV(operator)

    def feed_input(self, keys, values) -> None:
        """Account a chunk of the operation's input stream."""
        self._ensure_open()
        self._input.fold(keys, values)

    def feed_output(self, keys, values) -> None:
        """Account a chunk of the asserted output stream."""
        self._ensure_open()
        self._output.fold(keys, values)

    @property
    def elements_fed(self) -> int:
        """Input-side elements folded so far (the stream's consumption)."""
        return self._input.elements

    def condensed_input(self) -> CondensedKV:
        return self._input.condensed()

    def condensed_output(self) -> CondensedKV:
        return self._output.condensed()


class SumCheckerStream(_CondensingSumStream):
    """Streaming facade over :class:`SumAggregationChecker`.

    Thrill forwards elements to the checker *as they pass through* the
    reduction (§7); this class mirrors that integration style: feed input
    pairs and output pairs in arbitrary chunk order, then settle the
    verdict once.  Chunks fold into exact per-key aggregates (the
    minireduction table is linear in the multiset of pairs, so condensed
    accumulation is verdict-identical to the batch checker), which is also
    what :meth:`settle_adaptive` escalation reuses.

    Memory is O(unique keys) between feeds — deliberately richer than a
    direct O(iterations·d) table fold would be: the retained condensation
    is what lets multi-seed lanes and adaptive escalation run against the
    stream without ever re-reading a chunk.  Feeds over an unbounded key
    universe should settle in windows (see
    :mod:`repro.dataflow.streaming`) rather than grow one stream forever.
    """

    def __init__(self, checker: SumAggregationChecker):
        super().__init__(checker.operator)
        self.checker = checker

    def _tables(self, streamed: StreamedKV) -> np.ndarray:
        return self.checker.local_tables(*streamed.pairs())

    def _settle(self, comm) -> CheckResult:
        diff = self.checker.difference(
            self._tables(self._input), self._tables(self._output)
        )
        if comm is None:
            verdict = not np.any(diff)
        else:

            def wire_op(a: bytes, b: bytes) -> bytes:
                return self.checker.pack(
                    self.checker.combine(
                        self.checker.unpack(a), self.checker.unpack(b)
                    )
                )

            combined = comm.reduce(self.checker.pack(diff), wire_op, root=0)
            verdict = None
            if comm.rank == 0:
                verdict = not np.any(self.checker.unpack(combined))
            verdict = comm.bcast(verdict, root=0)
        return CheckResult(
            accepted=bool(verdict),
            checker="sum-aggregation",
            details={
                "config": self.checker.config.label(),
                "streaming": True,
            },
        )

    def settle_adaptive(self, policy, comm=None) -> CheckResult:
        """Settle with 1-seed primary + policy escalation, zero re-reads.

        The window's condensed aggregates serve both the primary verdict
        and any escalation lanes — the streaming form of the
        condensed-reuse contract of
        :func:`repro.dataflow.pipeline.adaptive_sum_check` (imported
        lazily: core stays import-independent of the dataflow layer).
        """
        self._ensure_open()
        self._settled = True
        from repro.dataflow.pipeline import adaptive_sum_check

        return adaptive_sum_check(
            self._input.condensed(),
            self._output.condensed(),
            self.checker.config,
            seed=self.checker.seed,
            policy=policy,
            comm=comm,
            operator=self.checker.operator,
        )


#: Chunk unique-key ratio at or above which the ``fused="auto"``
#: multi-seed stream folds each chunk's lane tables immediately instead
#: of retaining condensed per-key aggregates.  Mostly-unique feeds gain
#: nothing from condensation (the settle-time hash pass would touch as
#: many keys as the chunks held) but pay its segment merges; duplicate-
#: heavy feeds (e.g. Zipf keys) hash far fewer keys by condensing first.
_FUSED_UNIQUE_RATIO = 0.9
# Condense-mode sides coalesce raw chunks to this many elements before
# folding them into the StreamedKV: one sort per ~2^18 elements instead
# of one per chunk, and proportionally fewer segment merges.  Scratch
# stays bounded by the coalesce budget plus one chunk.
_CONDENSE_COALESCE = 1 << 18


def _pairs_condensed(keys, values, operator: str) -> CondensedKV:
    """A :class:`CondensedKV` view of raw pairs, without deduplication.

    Every consumer of a condensation is linear in the (key, value)
    multiset — weighted bincounts, chunked mod-r scatter-adds, xor
    scatters — so presenting the raw pairs as "unique" keys with their
    own values as aggregates yields bit-identical lane tables while
    skipping the per-chunk sort.  The magnitude guards mirror
    :func:`condense_kv` exactly (Σ|v| is the same for raw and condensed
    pairs), so the same exactness path is selected.  Only valid where a
    condensation is consumed as a multiset (table evaluation); the
    ``unique_keys`` field may contain duplicates.
    """
    inverse = np.arange(keys.size, dtype=np.intp)
    agg = agg_float = agg_xor = None
    if keys.size:
        bound = _magnitude_bound(values)
        if operator == "xor":
            agg_xor = values.view(np.uint64)
        elif bound < (1 << _CHUNK_BITS):
            agg = values
            agg_float = values.astype(np.float64)
        elif bound < (1 << 63):
            agg = values
    return CondensedKV(keys, inverse, values, agg, agg_float, agg_xor)


class _FusedSumSide:
    """One side of :class:`MultiSeedSumCheckerStream`.

    ``mode`` is ``"condense"`` (retain a :class:`StreamedKV`; all lane
    tables evaluate once at settle against the global condensation),
    ``"fused"`` (fold each chunk's ``(T, iterations, d)`` tables into a
    running tensor as the chunk arrives — table accumulation is a mod-r
    homomorphism, so the combined tables are bit-identical to the batch
    tables of the concatenated feed — and retain nothing per-key), or
    ``"auto"`` (decide per side from the first chunk's unique-key
    ratio, :data:`_FUSED_UNIQUE_RATIO`).

    Condense-mode chunks are coalesced to :data:`_CONDENSE_COALESCE`
    elements before folding (fewer sorts and segment merges, identical
    aggregates); fused-mode chunks skip condensation entirely and fold
    their lane tables straight from the raw pairs.
    """

    def __init__(self, checker: MultiSeedSumChecker, mode: str):
        self.checker = checker
        self.mode = mode
        self.kv = StreamedKV(checker.operator)
        self.tables: np.ndarray | None = None
        self.elements = 0
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._pending_elements = 0
        # Fused mode: whether per-chunk condensation still pays (set from
        # the first fused chunk's unique ratio; None = not yet probed).
        self._fused_condense: bool | None = None

    def _queue(self, keys, values) -> None:
        """Coalesce condense-mode chunks before they hit the StreamedKV.

        Folding every 64k-element chunk individually pays one sort plus a
        segment-merge chain per chunk; queueing up to
        :data:`_CONDENSE_COALESCE` elements first amortizes both.  The
        per-key aggregates are order- and grouping-insensitive, so the
        settled condensation is bit-identical either way.
        """
        self._pending.append((keys, values))
        self._pending_elements += int(keys.size)
        if self._pending_elements >= _CONDENSE_COALESCE:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        if len(self._pending) == 1:
            keys, values = self._pending[0]
        else:
            keys = np.concatenate([k for k, _ in self._pending])
            values = np.concatenate([v for _, v in self._pending])
        self._pending.clear()
        self._pending_elements = 0
        self.kv.fold(keys, values)

    def fold(self, keys, values) -> None:
        keys = _coerce_keys(keys)
        values = _coerce_values(values)
        if keys.size != values.size:
            raise ValueError(
                f"keys and values differ in length: {keys.size} vs {values.size}"
            )
        if keys.size == 0:
            return
        self.elements += int(keys.size)
        if self.mode == "condense":
            self._queue(keys, values)
            return
        if self.mode == "auto":
            chunk = condense_kv(keys, values, self.checker.operator)
            if chunk.unique_keys.size < _FUSED_UNIQUE_RATIO * keys.size:
                self.mode = "condense"
                # Reuse the probe's sort: the condensed (unique keys,
                # exact aggregates) pair is the same multiset as the raw
                # chunk, so queue it instead of re-condensing.  The
                # beyond-int64 regime leaves ``agg`` unset — queue raw.
                if self.checker.operator == "xor":
                    self._queue(
                        chunk.unique_keys, chunk.agg_xor.view(np.int64)
                    )
                elif chunk.agg is not None:
                    self._queue(chunk.unique_keys, chunk.agg)
                else:
                    self._queue(keys, values)
                return
            self.mode = "fused"
            self._fused_condense = False
        elif self._fused_condense is not False:
            # Forced-fused sides probe their first chunk: on
            # duplicate-heavy feeds condensing before the hash pass still
            # pays (fewer keys to hash per lane), on mostly-unique feeds
            # it is wasted sorting.
            chunk = condense_kv(keys, values, self.checker.operator)
            if self._fused_condense is None:
                self._fused_condense = (
                    chunk.unique_keys.size < _FUSED_UNIQUE_RATIO * keys.size
                )
        else:
            # Mostly-unique fused feed: consume the chunk as a multiset
            # and skip the per-chunk sort — lane tables are linear in the
            # pairs and the exactness guards only depend on Σ|v| (see
            # :func:`_pairs_condensed`).
            chunk = _pairs_condensed(keys, values, self.checker.operator)
        tables = self.checker.local_tables_condensed(chunk)
        self.tables = (
            tables
            if self.tables is None
            else self.checker.combine(self.tables, tables)
        )

    def settle_tables(self) -> np.ndarray:
        """The side's full ``(T, iterations, d)`` tensor at settle."""
        self._flush()
        base = self.checker.local_tables_condensed(self.kv.condensed())
        if self.tables is None:
            return base
        # Fused mode leaves kv empty, so `base` is the ⊕-identity (all
        # zeros) and combining it back is a no-op on the residues.
        return self.checker.combine(self.tables, base)

    def condensed(self) -> CondensedKV:
        if self.tables is not None:
            raise RuntimeError(
                "fused stream side folded chunks into lane tables and "
                "retains no per-key aggregates; construct the stream "
                "with fused=False to keep them"
            )
        self._flush()
        return self.kv.condensed()


class MultiSeedSumCheckerStream(CheckerStream):
    """Streaming facade over :class:`MultiSeedSumChecker`.

    The multi-seed analog of :class:`SumCheckerStream`: by default each
    side adapts to its feed (``fused="auto"``) — duplicate-heavy sides
    retain condensed per-key aggregates and evaluate every ``T ×
    iterations`` lane once at settle; mostly-unique sides fold each
    chunk's lane tables as the chunk arrives and retain nothing per-key
    (no second condensed-keys traversal at settle).  ``fused=True``
    forces chunk-at-a-time table folding, ``fused=False`` the legacy
    always-condense behaviour (required by consumers of
    :meth:`condensed_input` / :meth:`condensed_output`, e.g. adaptive
    escalation).  Either way the distributed settle is a single packed
    collective, and per-seed verdicts are bit-identical to ``T``
    independent ``SumCheckerStream`` instances fed the same chunks.
    """

    def __init__(self, checker: MultiSeedSumChecker, fused="auto"):
        super().__init__()
        if fused not in ("auto", True, False):
            raise ValueError(
                f"fused must be 'auto', True or False, got {fused!r}"
            )
        mode = {"auto": "auto", True: "fused", False: "condense"}[fused]
        self.checker = checker
        self._input = _FusedSumSide(checker, mode)
        self._output = _FusedSumSide(checker, mode)

    def feed_input(self, keys, values) -> None:
        """Account a chunk of the operation's input stream."""
        self._ensure_open()
        self._input.fold(keys, values)

    def feed_output(self, keys, values) -> None:
        """Account a chunk of the asserted output stream."""
        self._ensure_open()
        self._output.fold(keys, values)

    @property
    def elements_fed(self) -> int:
        """Input-side elements folded so far (the stream's consumption)."""
        return self._input.elements

    def condensed_input(self) -> CondensedKV:
        return self._input.condensed()

    def condensed_output(self) -> CondensedKV:
        return self._output.condensed()

    def _settle(self, comm) -> CheckResult:
        diff = self.checker.difference(
            self._input.settle_tables(), self._output.settle_tables()
        )
        per_seed = self.checker.per_seed_verdicts(diff, comm)
        return self.checker._result(
            per_seed, distributed=comm is not None, streaming=True
        )


class CountCheckerStream(CheckerStream):
    """Streaming count aggregation (§4): every input element counts one.

    Wraps the sum stream matching the checker's type (single- or
    multi-seed); ``feed_input`` takes keys only, ``feed_output`` the
    asserted per-key counts.  Verdicts equal
    :func:`~repro.core.sum_checker.check_count_aggregation` (or its
    multi-seed form) on the concatenated input.
    """

    def __init__(self, checker):
        super().__init__()
        if getattr(checker, "operator", "+") != "+":
            raise ValueError("count aggregation requires operator '+'")
        if isinstance(checker, MultiSeedSumChecker):
            self._inner: _CondensingSumStream = MultiSeedSumCheckerStream(
                checker
            )
        elif isinstance(checker, SumAggregationChecker):
            self._inner = SumCheckerStream(checker)
        else:
            raise TypeError(
                "CountCheckerStream needs a SumAggregationChecker or "
                f"MultiSeedSumChecker, got {type(checker).__name__}"
            )

    def feed_input(self, keys) -> None:
        """Account a chunk of input keys (each contributes count 1)."""
        keys = np.asarray(keys)
        self._inner.feed_input(keys, np.ones(keys.shape, dtype=np.int64))

    def feed_output(self, keys, counts) -> None:
        """Account a chunk of the asserted (key, count) output."""
        self._inner.feed_output(keys, counts)

    @property
    def elements_fed(self) -> int:
        return self._inner.elements_fed

    def _settle(self, comm) -> CheckResult:
        return self._inner.settle(comm)


# ---------------------------------------------------------------------------
# Average (§6.1, Corollary 8)
# ---------------------------------------------------------------------------


class AverageCheckerStream(CheckerStream):
    """Streaming Corollary 8: per-key averages with the count certificate.

    ``feed_output`` chunks carry the asserted exact rationals plus the
    certificate counts; the division is undone chunk-locally (the
    reconstruction is row-wise, so chunking is exact) and both coupled
    §6.1 columns (values and counts) fold into condensed per-key state.
    All seeds settle in one packed reduction carrying both columns.
    Scalar ``seeds`` reproduces :func:`check_average_aggregation`; an
    array reproduces the multi-seed variant per seed.
    """

    def __init__(self, seeds, config: SumCheckConfig | None = None):
        super().__init__()
        self.config = config or _DEFAULT_CONFIG
        seed_arr, self._scalar = _as_seed_array(seeds)
        self.checker = MultiSeedSumChecker(self.config, seed_arr)
        self._in_values = StreamedKV()
        self._in_counts = StreamedKV()
        self._out_sums = StreamedKV()
        self._out_counts = StreamedKV()
        self._structural_ok = True

    def feed_input(self, keys, values) -> None:
        """Account a chunk of the operation's (key, value) input."""
        self._ensure_open()
        keys = np.asarray(keys)
        self._in_values.fold(keys, values)
        self._in_counts.fold(keys, np.ones(keys.shape, dtype=np.int64))

    @property
    def elements_fed(self) -> int:
        return self._in_values.elements

    def feed_output(self, keys, numerators, denominators, counts) -> None:
        """Account a chunk of asserted averages (num/den) + count certificate."""
        self._ensure_open()
        sums, valid = reconstruct_sums(numerators, denominators, counts)
        self._structural_ok &= bool(np.all(valid))
        self._out_sums.fold(keys, sums)
        self._out_counts.fold(keys, np.asarray(counts, dtype=np.int64).ravel())

    def _settle(self, comm) -> CheckResult:
        checker = self.checker
        diff_values = checker.difference(
            checker.local_tables_condensed(self._in_values.condensed()),
            checker.local_tables_condensed(self._out_sums.condensed()),
        )
        diff_counts = checker.difference(
            checker.local_tables_condensed(self._in_counts.condensed()),
            checker.local_tables_condensed(self._out_counts.condensed()),
        )
        if comm is None:
            values_ok = ~np.any(diff_values != 0, axis=(1, 2))
            counts_ok = ~np.any(diff_counts != 0, axis=(1, 2))
            per_seed = [
                self._structural_ok and bool(v and c)
                for v, c in zip(values_ok, counts_ok)
            ]
        else:
            # One reduction carries the structural flag and both columns
            # for every seed (exactly the batch multi-seed wire format).
            def wire_op(a, b):
                ok_a, va, ca = a
                ok_b, vb, cb = b
                return (
                    ok_a and ok_b,
                    checker.pack(
                        checker.combine(checker.unpack(va), checker.unpack(vb))
                    ),
                    checker.pack(
                        checker.combine(checker.unpack(ca), checker.unpack(cb))
                    ),
                )

            payload = (
                self._structural_ok,
                checker.pack(diff_values),
                checker.pack(diff_counts),
            )
            combined = comm.reduce(payload, wire_op, root=0)
            per_seed = None
            if comm.rank == 0:
                ok, values_packed, counts_packed = combined
                values_ok = ~np.any(checker.unpack(values_packed), axis=(1, 2))
                counts_ok = ~np.any(checker.unpack(counts_packed), axis=(1, 2))
                per_seed = [
                    ok and bool(v and c)
                    for v, c in zip(values_ok, counts_ok)
                ]
            per_seed = comm.bcast(per_seed, root=0)
        name = (
            "average-aggregation"
            if self._scalar
            else "average-aggregation-multiseed"
        )
        return CheckResult(
            accepted=all(per_seed),
            checker=name,
            details={
                "config": self.config.label(),
                "certificate": "per-key counts (distributed)",
                "structural_ok": self._structural_ok,
                "num_seeds": self.checker.num_seeds,
                "per_seed_accepted": per_seed,
                "streaming": True,
            },
        )


# ---------------------------------------------------------------------------
# Min/max (§6.2, Theorem 9) — deterministic body, streamed input side
# ---------------------------------------------------------------------------


class MinMaxCheckerStream(CheckerStream):
    """Streaming Theorem 9: the asserted result first, input chunks after.

    The deterministic min/max checker needs the (replicated) asserted
    result to judge input elements, so the protocol here is: one
    ``feed_output(keys, values, owners)`` call delivers result +
    certificate, then input chunks stream through ``feed_input`` — each
    chunk is checked against the result inline (no element is retained)
    and a per-result-key running minimum accumulates for the certificate
    test at settle.  State is O(result keys).  Scalar ``seeds`` reproduces
    :func:`check_min_aggregation` / :func:`check_max_aggregation`; an
    array reproduces the multi-seed variants (T §2 integrity digests, one
    pass).
    """

    def __init__(self, seeds, kind: str = "min"):
        super().__init__()
        if kind not in ("min", "max"):
            raise ValueError(f"kind must be 'min' or 'max', got {kind!r}")
        self.kind = kind
        self._sign = 1 if kind == "min" else -1
        self._scalar = np.ndim(seeds) == 0
        if self._scalar:
            self._seed = int(seeds)
            self._seeds = None
        else:
            self._seeds = _coerce_seeds(seeds)
        self._result_set = False
        self._keys = np.zeros(0, dtype=np.uint64)
        self._values = np.zeros(0, dtype=np.int64)
        self._owners = np.zeros(0, dtype=np.int64)
        self._sorted_keys = self._keys
        self._sorted_values = self._values
        self._sorted_owners = self._owners
        self._local_min = np.zeros(0, dtype=np.int64)
        self._duplicate_keys = False
        self._ok = True
        self.elements_fed = 0

    def feed_output(self, keys, values, owners) -> None:
        """Deliver the asserted result + owner certificate (exactly once)."""
        self._ensure_open()
        if self._result_set:
            raise RuntimeError("asserted result already fed")
        keys = _coerce_keys(keys)
        values = self._sign * np.asarray(values, dtype=np.int64).ravel()
        owners = np.asarray(owners, dtype=np.int64).ravel()
        if not (keys.size == values.size == owners.size):
            raise ValueError("asserted keys, values and certificate must align")
        self._keys, self._values, self._owners = keys, values, owners
        order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[order]
        self._sorted_values = values[order]
        self._sorted_owners = owners[order]
        self._duplicate_keys = bool(
            keys.size > 1
            and np.any(self._sorted_keys[:-1] == self._sorted_keys[1:])
        )
        self._local_min = np.full(keys.size, _INT64_MAX, dtype=np.int64)
        self._result_set = True

    def feed_input(self, keys, values) -> None:
        """Check one input chunk against the asserted result, inline."""
        self._ensure_open()
        if not self._result_set:
            # Judging a chunk needs the asserted extrema; silently folding
            # it against an empty result would wrongly reject a correct
            # run (violating one-sided error), so refuse loudly.
            raise RuntimeError(
                "feed the asserted result (feed_output) before input chunks"
            )
        in_keys = _coerce_keys(keys)
        in_values = self._sign * np.asarray(values, dtype=np.int64).ravel()
        if in_keys.size == 0:
            return
        self.elements_fed += int(in_keys.size)
        if not self._ok:
            return  # verdict already decided; stay one-pass-cheap
        if self._sorted_keys.size == 0:
            self._ok = False  # input has keys the result "forgot"
            return
        pos = np.searchsorted(self._sorted_keys, in_keys)
        clipped = np.minimum(pos, self._sorted_keys.size - 1)
        known = (pos < self._sorted_keys.size) & (
            self._sorted_keys[clipped] == in_keys
        )
        if not (
            bool(np.all(known))
            and bool(np.all(in_values >= self._sorted_values[clipped]))
        ):
            self._ok = False
            return
        np.minimum.at(self._local_min, pos, in_values)

    def _settle(self, comm) -> CheckResult:
        rank = comm.rank if comm is not None else 0
        size = comm.size if comm is not None else 1
        det_ok = (
            self._ok
            and not self._duplicate_keys
            and bool(np.all((self._owners >= 0) & (self._owners < size)))
        )
        if det_ok:
            owned = self._sorted_owners == rank
            det_ok = bool(
                np.all(self._local_min[owned] == self._sorted_values[owned])
            )
        name = f"{self.kind}-aggregation"
        if self._scalar:
            integrity_ok = True
            if comm is not None:
                digest = replicated_digest(
                    self._seed, self._keys, self._values, self._owners
                )
                integrity_ok = digest == comm.bcast(digest, root=0)
                det_ok = comm.allreduce(
                    bool(det_ok and integrity_ok), op=lambda a, b: a and b
                )
            else:
                det_ok = det_ok and integrity_ok
            return CheckResult(
                accepted=bool(det_ok),
                checker=name,
                details={
                    "deterministic": True,
                    "certificate": "owner PE per key, replicated at all PEs",
                    "integrity_ok": bool(integrity_ok),
                    "streaming": True,
                },
            )
        integrity = [True] * self._seeds.size
        if comm is not None:
            digests = replicated_digest_multiseed(
                self._seeds, self._keys, self._values, self._owners
            )
            root_digests = comm.bcast(digests, root=0)
            integrity = [a == b for a, b in zip(digests, root_digests)]
            # One combined allreduce for the deterministic verdict and all
            # T integrity flags (the batch checker pays two).
            det_ok, integrity = comm.allreduce(
                (bool(det_ok), integrity),
                op=lambda a, b: (
                    a[0] and b[0],
                    [x and y for x, y in zip(a[1], b[1])],
                ),
            )
        per_seed = [bool(det_ok) and i for i in integrity]
        return CheckResult(
            accepted=all(per_seed),
            checker=f"{name}-multiseed",
            details={
                "deterministic": True,
                "certificate": "owner PE per key, replicated at all PEs",
                "num_seeds": int(self._seeds.size),
                "per_seed_accepted": per_seed,
                "streaming": True,
            },
        )


# ---------------------------------------------------------------------------
# Permutation family (§5 / §6.5)
# ---------------------------------------------------------------------------


class PermutationCheckerStream(CheckerStream):
    """Streaming hash-sum permutation check (Lemma 4 / Theorem 6).

    Both sides fold into (uniques, counts) condensations; any number of
    seed lanes evaluates against them at settle (one allreduce).  Scalar
    ``seeds`` reproduces :func:`check_permutation_hashsum`; an array
    reproduces ``T`` independent checkers per seed.
    """

    def __init__(
        self,
        seeds,
        iterations: int = 2,
        hash_family: str = "Mix",
        log_h: int = 32,
    ):
        super().__init__()
        seed_arr, self._scalar = _as_seed_array(seeds)
        self.checker = MultiSeedHashSumChecker(
            seed_arr, iterations, hash_family, log_h
        )
        self._e = StreamedSide()
        self._o = StreamedSide()

    def feed_input(self, values) -> None:
        """Account a chunk (array, or list of arrays) of the E side."""
        self._ensure_open()
        self._e.fold(values)

    def feed_output(self, values) -> None:
        """Account a chunk of the asserted O side."""
        self._ensure_open()
        self._o.fold(values)

    @property
    def elements_fed(self) -> int:
        return self._e.elements

    def _settle(self, comm) -> CheckResult:
        res = self.checker.check_condensed(
            self._e.condensed(), self._o.condensed(), comm
        )
        return CheckResult(
            accepted=res.accepted,
            checker="permutation-hashsum" if self._scalar else res.checker,
            details={**res.details, "streaming": True},
        )


class GroupByCheckerStream(CheckerStream):
    """Streaming Corollary 14: the invasive GroupBy redistribution check.

    Pre-exchange records fold through ``feed_input``, received records
    through ``feed_output`` (which also verifies placement inline against
    ``partitioner`` and this PE's ``rank``); records are encoded once per
    chunk and both sides condense to (uniques, counts).  Scalar ``seeds``
    reproduces :func:`check_groupby_redistribution` (same
    ``"groupby-perm"`` seed tree); an array the multi-seed variant.
    """

    def __init__(
        self,
        partitioner,
        seeds,
        rank: int = 0,
        iterations: int = 2,
        hash_family: str = "Mix",
        log_h: int = 32,
    ):
        super().__init__()
        seed_arr, self._scalar = _as_seed_array(seeds)
        self.checker = MultiSeedHashSumChecker(
            derive_seed_array(seed_arr, "groupby-perm"),
            iterations,
            hash_family,
            log_h,
        )
        self.partitioner = partitioner
        self.rank = rank
        self._pre = StreamedSide()
        self._post = StreamedSide()
        self._placement_ok = True

    def feed_input(self, keys, values) -> None:
        """Account a chunk of records entering the exchange."""
        self._ensure_open()
        self._pre.fold(encode_records(keys, values))

    def feed_output(self, keys, values) -> None:
        """Account a chunk of received records (placement checked inline)."""
        self._ensure_open()
        keys_arr = np.asarray(keys)
        if keys_arr.size:
            self._placement_ok &= bool(
                np.all(self.partitioner(keys_arr) == self.rank)
            )
        self._post.fold(encode_records(keys, values))

    @property
    def elements_fed(self) -> int:
        return self._pre.elements

    def _settle(self, comm) -> CheckResult:
        perm = self.checker.check_condensed(
            self._pre.condensed(), self._post.condensed(), comm
        )
        placement_ok = self._placement_ok
        if comm is not None:
            placement_ok = comm.allreduce(
                placement_ok, op=lambda a, b: a and b
            )
        per_seed = [
            p and placement_ok for p in perm.details["per_seed_accepted"]
        ]
        name = "groupby-redistribution" + (
            "" if self._scalar else "-multiseed"
        )
        return CheckResult(
            accepted=all(per_seed),
            checker=name,
            details={
                "permutation": perm.details | {"accepted": perm.accepted},
                "placement_ok": placement_ok,
                "invasive": True,
                "num_seeds": self.checker.num_seeds,
                "per_seed_accepted": per_seed,
                "streaming": True,
            },
        )


# ---------------------------------------------------------------------------
# Zip (§6.4, Theorem 11) — positional, so no condensation: running
# fingerprints instead
# ---------------------------------------------------------------------------


class ZipCheckerStream(CheckerStream):
    """Streaming Theorem 11: order-sensitive positional fingerprints.

    The zip fingerprint admits no unique-key condensation (it is an inner
    product against per-position weights), but it *is* chunk-additive:
    each chunk's contribution is computed at its absolute positions and
    added to the running fingerprint, so state is O(seeds · iterations)
    words however long the stream runs.  ``offsets`` are this PE's global
    starting offsets ``(s1, s2, output)`` — the windowed dataflow passes
    the offsets its zip exchange already computed; sequential callers
    leave them 0.  All seeds and iterations settle in ONE allreduce
    (batch ``check_zip`` pays one per iteration plus one for lengths).
    Scalar ``seeds`` reproduces :func:`check_zip`; an array reproduces
    ``T`` independent calls per seed.
    """

    def __init__(
        self,
        seeds,
        iterations: int = 2,
        offsets: tuple[int, int, int] = (0, 0, 0),
    ):
        super().__init__()
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self._scalar = np.ndim(seeds) == 0
        seed_list = [int(s) for s in np.atleast_1d(np.asarray(seeds))]
        if len(set(seed_list)) != len(seed_list):
            raise ValueError("multi-seed checkers require distinct seeds")
        self.iterations = iterations
        self._lane_seeds = [
            (derive_seed(s, "lane1"), derive_seed(s, "lane2"))
            for s in seed_list
        ]
        self._off1, self._off2, self._offz = (int(o) for o in offsets)
        self._fps = [
            [[0, 0, 0, 0] for _ in range(iterations)] for _ in seed_list
        ]
        self._n1 = self._n2 = self._nz = 0

    def _accumulate(self, values, column: int, lane: int, offset: int) -> None:
        values = np.asarray(values).ravel()
        if values.size == 0:
            return
        for t, lanes in enumerate(self._lane_seeds):
            seed = lanes[lane]
            for j in range(self.iterations):
                self._fps[t][j][column] = (
                    self._fps[t][j][column]
                    + positional_fingerprint(values, offset, seed, j)
                ) % MERSENNE31

    def feed_input(self, first=None, second=None) -> None:
        """Account chunks of S1 (``first``) and/or S2 (``second``)."""
        self._ensure_open()
        if first is not None:
            first = np.asarray(first).ravel()
            self._accumulate(first, 0, 0, self._off1 + self._n1)
            self._n1 += int(first.size)
        if second is not None:
            second = np.asarray(second).ravel()
            self._accumulate(second, 2, 1, self._off2 + self._n2)
            self._n2 += int(second.size)

    def feed_output(self, first, second) -> None:
        """Account a chunk of the asserted zipped output (both columns)."""
        self._ensure_open()
        first = np.asarray(first).ravel()
        second = np.asarray(second).ravel()
        if first.size != second.size:
            raise ValueError(
                "zipped component columns differ in length: "
                f"{first.size} vs {second.size}"
            )
        offset = self._offz + self._nz
        self._accumulate(first, 1, 0, offset)
        self._accumulate(second, 3, 1, offset)
        self._nz += int(first.size)

    @property
    def elements_fed(self) -> int:
        return self._n1 + self._n2

    def _settle(self, comm) -> CheckResult:
        payload = (self._fps, (self._n1, self._n2, self._nz))
        if comm is not None:

            def combine(a, b):
                fps = [
                    [
                        [(x + y) % MERSENNE31 for x, y in zip(ja, jb)]
                        for ja, jb in zip(ta, tb)
                    ]
                    for ta, tb in zip(a[0], b[0])
                ]
                lens = tuple(x + y for x, y in zip(a[1], b[1]))
                return fps, lens

            payload = comm.allreduce(payload, op=combine)
        fps, lens = payload
        length_ok = lens[0] == lens[1] == lens[2]
        per_seed = []
        detecting_first = None
        for row in fps:
            detecting = [
                j
                for j, lanes in enumerate(row)
                if lanes[0] != lanes[1] or lanes[2] != lanes[3]
            ]
            if detecting_first is None:
                detecting_first = detecting
            per_seed.append(not detecting and length_ok)
        return CheckResult(
            accepted=all(per_seed),
            checker="zip" if self._scalar else "zip-multiseed",
            details={
                "iterations": self.iterations,
                "detecting_iterations": detecting_first,
                "lengths": tuple(lens),
                "length_ok": length_ok,
                "num_seeds": len(self._fps),
                "per_seed_accepted": per_seed,
                "streaming": True,
            },
        )


__all__ = [
    "AverageCheckerStream",
    "CheckerStream",
    "CountCheckerStream",
    "GroupByCheckerStream",
    "MinMaxCheckerStream",
    "MultiSeedSumCheckerStream",
    "PermutationCheckerStream",
    "StreamedKV",
    "StreamedSide",
    "SumCheckerStream",
    "ZipCheckerStream",
]

"""The §4 sum/count-aggregation checker (Algorithm 1, Theorem 1).

A sum aggregation maps a distributed multiset of ``(key, value)`` pairs to
one ``(key, Σ values)`` pair per key.  The checker condenses the unknown key
space ``K`` into ``d`` buckets with a random hash ``h : K → 0..d-1`` and
reduces values modulo a random ``r ∈ (r̂, 2r̂]``; the condensed reduction
("minireduction") of the *input* must equal that of the *asserted output*.
Lemma 2: one iteration accepts an incorrect result with probability at most
``1/r̂ + 1/d``; independent repetitions drive this to δ (Lemma 3).

Implementation notes mirroring §7.1:

* **Bit-parallel hashing** — one hash evaluation provides the bucket indices
  of several iterations (see :class:`repro.hashing.bitgroups.BucketAssigner`).
* **Deferred modulo** — local accumulation uses 64-bit lanes and reduces
  modulo ``r`` per chunk instead of per element (exactness argument in
  :func:`_scatter_add_mod`).
* **Packed wire format** — the minireduction table travels as
  ``iterations · d`` residues of ``⌈log2 2r̂⌉`` bits each, so the metered
  communication volume equals the paper's ``table size`` column (Table 3).

The checker also supports any reduce operator satisfying Theorem 1's
requirement ``x ⊕ y ≠ x for y ≠ 0``; besides ``+`` we provide ``xor``
(count aggregation is sum aggregation of ones, §4).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CheckResult
from repro.core.params import SumCheckConfig
from repro.hashing.bitgroups import BucketAssigner
from repro.hashing.families import get_family
from repro.kernels import get_kernels
from repro.util.rng import (
    derive_seed,
    derive_seed_array,
    splitmix64_array,
    uniform_below_array,
)

_CHUNK_BITS = 52  # float64 mantissa headroom for the exact bincount path
_PACK_CHUNK_RESIDUES = 1 << 15  # bounds pack/unpack scratch to ~1 MB


def _coerce_keys(keys) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.dtype.kind == "i":
        keys = keys.astype(np.int64).view(np.uint64)
    elif keys.dtype.kind == "u":
        keys = keys.astype(np.uint64, copy=False)
    else:
        # A silent astype(np.uint64) would truncate float keys (1.5 and 1.7
        # both become key 1), merging distinct keys and letting the checker
        # accept outputs it must reject — mirror _coerce_values and refuse.
        raise TypeError(
            f"sum checker requires integer keys, got dtype {keys.dtype} "
            "(float keys would be truncated and could collide)"
        )
    return keys.ravel()


def _coerce_values(values) -> np.ndarray:
    values = np.asarray(values)
    if values.dtype.kind not in ("i", "u"):
        raise TypeError(
            f"sum checker requires integer values, got dtype {values.dtype} "
            "(the paper leaves floating-point aggregation as future work)"
        )
    return values.astype(np.int64).ravel()


def _max_magnitude(values: np.ndarray) -> int:
    """Largest ``|v|`` over an int64 array as an exact Python int.

    ``int(np.abs(values).max())`` is wrong at the extreme: ``abs(int64 min)``
    overflows back to ``-2**63``, making the bound negative and silently
    steering callers onto the inexact float64 fast path.  Two scalar
    reductions into Python ints avoid the overflow entirely.
    """
    if values.size == 0:
        return 0
    return max(-int(values.min()), int(values.max()), 0)


def _magnitude_bound(values: np.ndarray) -> int:
    """Upper bound on ``|Σ subset|`` over any subset of ``values``: Σ|v|.

    Every quantity the checkers accumulate — a bucket sum, a per-key
    aggregate, any partial sum inside a bincount — is a subset sum of the
    value array, so Σ|v| bounds them all.  It is dramatically tighter
    than the historical ``n · max|v|`` (a 10^6-element workload of ±10^6
    values has Σ|v| ≈ 5·10^11 < 2^52 but ``n·max`` ≈ 10^12 — the loose
    bound knocked streamed condensations off the exact float64 bincount
    fast path).  The float64 total is inflated by the pairwise-summation
    error margin so the result is always a true upper bound; near the
    int64 extreme, where ``np.abs`` itself would overflow, it falls back
    to the old conservative product.
    """
    if values.size == 0:
        return 0
    m = _max_magnitude(values)
    if m == 0:
        return 0
    if m >= (1 << 62):
        return values.size * m
    total = float(np.abs(values).sum(dtype=np.float64))
    return int(total * (1.0 + 2.0**-30)) + 1


def _scatter_add_mod(
    table: np.ndarray, buckets: np.ndarray, values: np.ndarray, r: int
) -> None:
    """``table[buckets[i]] += values[i] (mod r)`` exactly, via the kernel tier.

    Values are pre-reduced mod r (so ``0 <= v < r``).  The numpy tier
    sizes chunks so a chunk's bucket sum stays below 2^52 and is exact in
    the float64 arithmetic of ``np.bincount``, reducing mod r once per
    chunk ("deferred modulo", §7.1); the numba tier keeps a running
    residue with one conditional subtract per element.  Both are exact.
    """
    if values.size == 0:
        return
    get_kernels().scatter_add_mod(table, buckets, values, int(r))


def pack_residues(flat: np.ndarray, bits: int) -> bytes:
    """Bit-pack residues into ``flat.size · bits`` bits (LSB first, + padding).

    Shared wire codec of the single- and multi-seed checkers: the scratch is
    bounded by expanding residues into bits a chunk at a time; chunks hold a
    multiple of 8 residues, so each chunk's bitstream is byte-aligned and
    the concatenation is identical to packing the whole stream at once.
    """
    flat = np.asarray(flat).ravel().astype(np.uint64)
    shifts = np.arange(bits, dtype=np.uint64)
    parts = []
    for start in range(0, flat.size, _PACK_CHUNK_RESIDUES):
        chunk = flat[start : start + _PACK_CHUNK_RESIDUES]
        expanded = ((chunk[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        parts.append(np.packbits(expanded.ravel()).tobytes())
    return b"".join(parts)


def unpack_residues(payload: bytes, total: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_residues`: ``total`` residues of ``bits`` bits."""
    payload_bytes = np.frombuffer(payload, dtype=np.uint8)
    weights = (np.uint64(1) << np.arange(bits, dtype=np.uint64)).astype(
        np.int64
    )
    out = np.empty(total, dtype=np.int64)
    for start in range(0, total, _PACK_CHUNK_RESIDUES):
        count = min(_PACK_CHUNK_RESIDUES, total - start)
        first_bit = start * bits  # byte-aligned: start is a multiple of 8
        nbits = count * bits
        chunk = payload_bytes[first_bit // 8 : (first_bit + nbits + 7) // 8]
        unpacked = np.unpackbits(chunk, count=nbits)
        out[start : start + count] = (
            unpacked.reshape(count, bits).astype(np.int64) @ weights
        )
    return out


def draw_moduli(config: SumCheckConfig, seeds) -> np.ndarray:
    """Per-iteration moduli ``r ∈ r̂+1 .. 2r̂`` for one or many checker seeds.

    A scalar ``seeds`` yields the ``(iterations,)`` int64 vector a
    :class:`SumAggregationChecker` stores; a ``(T,)`` array yields the
    ``(T, iterations)`` matrix of T independent checkers — row ``t`` equals
    the scalar draw for ``seeds[t]``.  Seed derivation and rejection
    sampling match the historical per-iteration scalar loop exactly.
    """
    counters = np.arange(config.iterations, dtype=np.uint64)
    if np.ndim(seeds) == 0:
        mod_seeds = derive_seed_array(
            int(seeds), "sum-checker", "modulus", counters
        )
    else:
        # Fold the string labels once per trial, then branch per iteration.
        prefix = derive_seed_array(seeds, "sum-checker", "modulus")
        mod_seeds = splitmix64_array(prefix[:, None] ^ counters[None, :])
    draws = uniform_below_array(mod_seeds, config.rhat).astype(np.int64)
    return draws + np.int64(config.rhat + 1)


class SumAggregationChecker:
    """A seeded instance of the Algorithm 1 checker.

    Parameters
    ----------
    config:
        Bucket count, modulus parameter, iteration count, hash family.
    seed:
        Root seed; bucket hashes and moduli are derived deterministically.
    operator:
        ``"+"`` (sum/count/average building block) or ``"xor"``.
    """

    def __init__(self, config: SumCheckConfig, seed: int, operator: str = "+"):
        if operator not in ("+", "xor"):
            raise ValueError(f"unsupported reduce operator {operator!r}")
        self.config = config
        self.seed = seed
        self.operator = operator
        self.assigner = BucketAssigner(
            get_family(config.hash_family),
            config.d,
            config.iterations,
            derive_seed(seed, "sum-checker", "buckets"),
        )
        # r drawn uniformly from r̂+1 .. 2r̂ per iteration (Algorithm 1),
        # all iterations in one vectorized rejection-sampling pass (the
        # values are identical to the former per-iteration scalar draws).
        self.moduli = draw_moduli(config, seed)

    # -- local kernel (the n/p term of Theorem 1) ---------------------------
    def local_tables(self, keys, values) -> np.ndarray:
        """Condensed reduction ``cRed`` of Algorithm 1, all iterations.

        Returns an ``(iterations, d)`` int64 table; entry ``[j, b]`` is the
        ⊕-aggregate (mod r_j for ``+``) of all values whose key hashes to
        bucket ``b`` in iteration ``j``.
        """
        keys = _coerce_keys(keys)
        values = _coerce_values(values)
        if keys.size != values.size:
            raise ValueError(
                f"keys and values differ in length: {keys.size} vs {values.size}"
            )
        cfg = self.config
        tables = np.zeros((cfg.iterations, cfg.d), dtype=np.int64)
        if keys.size == 0:
            return tables
        buckets = self.assigner.assign(keys)
        if self.operator == "+":
            # Fast path ("deferred modulo", §7.1): when the raw bucket sums
            # provably fit the float64 mantissa (Σ|v| bounds every bucket
            # sum), accumulate raw values with one shared weight array and
            # reduce mod r only once per iteration at the very end — exact
            # and ~3x cheaper than per-element modulo.
            if _magnitude_bound(values) < (1 << _CHUNK_BITS):
                weights = values.astype(np.float64)
                kernels = get_kernels()
                for j in range(cfg.iterations):
                    part = kernels.weighted_bincount(
                        buckets[j], weights, cfg.d
                    ).astype(np.int64)
                    tables[j] = part % int(self.moduli[j])
            else:
                for j in range(cfg.iterations):
                    r = int(self.moduli[j])
                    _scatter_add_mod(tables[j], buckets[j], values % r, r)
        else:  # xor: no modulus needed, values live in GF(2)^64
            uvals = values.view(np.uint64)
            utables = tables.view(np.uint64)
            for j in range(cfg.iterations):
                np.bitwise_xor.at(utables[j], buckets[j], uvals)
        return tables

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ⊕ of two tables (the reduction operator on the wire)."""
        if self.operator == "+":
            return (a + b) % self.moduli[:, None]
        return (a.view(np.uint64) ^ b.view(np.uint64)).view(np.int64)

    def difference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ⊕-difference ``a ⊖ b`` of two tables."""
        if self.operator == "+":
            return (a - b) % self.moduli[:, None]
        return (a.view(np.uint64) ^ b.view(np.uint64)).view(np.int64)

    # -- wire format -----------------------------------------------------------
    def pack(self, table: np.ndarray) -> bytes:
        """Bit-pack a table into ``iterations·d·⌈log2 2r̂⌉`` bits (+ padding).

        This is the message actually metered on the network, making measured
        volumes comparable with the paper's "table size" column.
        """
        if self.operator == "xor":
            return table.astype(np.int64).tobytes()
        return pack_residues(table, self.config.residue_bits)

    def unpack(self, payload: bytes) -> np.ndarray:
        """Inverse of :meth:`pack`."""
        cfg = self.config
        if self.operator == "xor":
            return np.frombuffer(payload, dtype=np.int64).reshape(
                cfg.iterations, cfg.d
            ).copy()
        return unpack_residues(
            payload, cfg.iterations * cfg.d, cfg.residue_bits
        ).reshape(cfg.iterations, cfg.d)

    # -- verdicts ------------------------------------------------------------
    def check_local(self, input_kv, asserted_kv) -> CheckResult:
        """Single-PE check: compare the two minireduction tables directly."""
        t_in = self.local_tables(*input_kv)
        t_out = self.local_tables(*asserted_kv)
        diff = self.difference(t_in, t_out)
        mismatched = np.flatnonzero(np.any(diff != 0, axis=1))
        return CheckResult(
            accepted=mismatched.size == 0,
            checker="sum-aggregation",
            details={
                "config": self.config.label(),
                "operator": self.operator,
                "detecting_iterations": mismatched.tolist(),
                "table_bits": self.config.table_bits,
            },
        )

    def check_distributed(self, comm, input_kv, asserted_kv) -> CheckResult:
        """SPMD check over a communicator (Algorithm 1's reduce to PE 0).

        Every PE passes its local slice of the operation's input and of the
        asserted output (the output may be distributed arbitrarily).  The
        ⊕-difference of the two local tables is reduced to PE 0 in packed
        form; PE 0 accepts iff every residue is zero, and the verdict is
        broadcast so all PEs return the same :class:`CheckResult`.
        """
        t_in = self.local_tables(*input_kv)
        t_out = self.local_tables(*asserted_kv)
        diff = self.difference(t_in, t_out)

        def wire_op(a: bytes, b: bytes) -> bytes:
            return self.pack(self.combine(self.unpack(a), self.unpack(b)))

        combined = comm.reduce(self.pack(diff), wire_op, root=0)
        verdict = None
        if comm.rank == 0:
            verdict = not np.any(self.unpack(combined))
        verdict = comm.bcast(verdict, root=0)
        return CheckResult(
            accepted=bool(verdict),
            checker="sum-aggregation",
            details={
                "config": self.config.label(),
                "operator": self.operator,
                "table_bits": self.config.table_bits,
            },
        )

    # -- exact fast path for the accuracy experiments ------------------------
    def detects_delta(self, delta_keys, delta_values) -> bool:
        """Would this checker reject an error with the given per-key deltas?

        The minireduction table is linear in the multiset of pairs, and
        input and correct output produce identical tables; hence the full
        checker rejects **iff** the table of the (sparse) error deltas is
        non-zero.  This is an exact shortcut, validated against
        :meth:`check_local` by property tests, and it is what makes the
        paper-scale accuracy experiments (100 000 trials) affordable.
        """
        table = self.local_tables(delta_keys, delta_values)
        return bool(np.any(table))


def __getattr__(name: str):
    # Back-compat: SumCheckerStream moved to repro.core.streams when the
    # CheckerStream protocol was extracted (it now folds chunks into
    # condensed per-key aggregates).  Lazy so the two modules stay free of
    # an import cycle.
    if name == "SumCheckerStream":
        from repro.core.streams import SumCheckerStream

        return SumCheckerStream
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


def check_sum_aggregation(
    input_kv,
    asserted_kv,
    config: SumCheckConfig | None = None,
    seed: int = 0,
    comm=None,
    operator: str = "+",
) -> CheckResult:
    """Check a sum aggregation; sequential if ``comm`` is None.

    ``input_kv`` and ``asserted_kv`` are ``(keys, values)`` array pairs
    (the local slices when running under a communicator).
    """
    checker = SumAggregationChecker(config or _DEFAULT_CONFIG, seed, operator)
    if comm is None:
        return checker.check_local(input_kv, asserted_kv)
    return checker.check_distributed(comm, input_kv, asserted_kv)


def check_count_aggregation(
    input_keys,
    asserted_kv,
    config: SumCheckConfig | None = None,
    seed: int = 0,
    comm=None,
) -> CheckResult:
    """Count aggregation = sum aggregation with every value mapped to 1 (§4)."""
    keys = np.asarray(input_keys)
    ones = np.ones(keys.shape, dtype=np.int64)
    return check_sum_aggregation(
        (keys, ones), asserted_kv, config=config, seed=seed, comm=comm
    )

"""Union checker (§6.5.1, Corollary 12).

``Union(S1, S2) = S`` (multiset union) holds iff ``S`` is a permutation of
the concatenation of ``S1`` and ``S2`` — so the permutation checker of §5
applies directly, iterating over the two inputs without materialising the
concatenation.
"""

from __future__ import annotations

from repro.core.base import CheckResult
from repro.core.permutation_checker import (
    check_permutation_gf64,
    check_permutation_hashsum,
    check_permutation_polynomial,
)


def check_union(
    s1,
    s2,
    out,
    method: str = "hashsum",
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
    comm=None,
    delta: float = 2.0**-30,
    universe: int = 1 << 32,
) -> CheckResult:
    """Accept iff ``out`` is a permutation of ``concat(s1, s2)``.

    All arguments are the local slices when running distributed.
    """
    e_side = [s1, s2]
    if method == "hashsum":
        result = check_permutation_hashsum(
            e_side,
            out,
            iterations=iterations,
            hash_family=hash_family,
            log_h=log_h,
            seed=seed,
            comm=comm,
        )
    elif method == "polynomial":
        result = check_permutation_polynomial(
            e_side, out, delta=delta, universe=universe, seed=seed, comm=comm
        )
    elif method == "gf64":
        result = check_permutation_gf64(
            e_side, out, iterations=iterations, seed=seed, comm=comm
        )
    else:
        raise ValueError(f"unknown permutation method {method!r}")
    return CheckResult(
        accepted=result.accepted,
        checker="union",
        details=result.details | {"method": method},
    )

"""Zip checker (§6.4, Theorem 11): order-sensitive distributed fingerprints.

``Zip(S1, S2)`` pairs the sequences index-wise, generally moving elements
because the two inputs need not share a data distribution.  Verifying it
requires a hash of a *sequence* (order matters!) that is evaluable on
distributed data independently of how the data is split: the paper's choice
is the inner product with pseudo-random positional weights ``r_i = h'(i)``,
computable on the fly from each PE's global offset without communication.

We evaluate the inner product in the field F_p with the Mersenne prime
``p = 2^31 − 1``: weights and hashed values are reduced below 2^31 so
products fit int64 exactly, and a differing single position survives with
probability 1/p per iteration (boosted by independent iterations).
"""

from __future__ import annotations

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.hashing.families import get_family
from repro.util.rng import derive_seed

MERSENNE31 = (1 << 31) - 1

_CHUNK = 1 << 30


def _mod_p31(x: np.ndarray) -> np.ndarray:
    """Reduce int64 values (< 2^62) modulo 2^31 − 1 with shift-adds."""
    p = np.int64(MERSENNE31)
    x = (x & p) + (x >> np.int64(31))
    x = (x & p) + (x >> np.int64(31))
    return np.where(x >= p, x - p, x)


def positional_fingerprint(
    values, global_offset: int, seed: int, iteration: int = 0
) -> int:
    """``Σ_i  h'(offset+i) · g(x_i)  mod 2^31−1`` over one local slice.

    ``h'`` supplies the positional weights and ``g`` hashes element values;
    both are fresh seeded SplitMix instances per iteration.  Needs only the
    slice's global offset — no data exchange (the "computed on the fly"
    property the paper requires).
    """
    values = np.asarray(values)
    if values.dtype.kind == "i":
        values = values.astype(np.int64).view(np.uint64)
    else:
        values = values.astype(np.uint64)
    n = values.size
    if n == 0:
        return 0
    weight_fn = get_family("Mix").instance(derive_seed(seed, "zip-pos", iteration))
    value_fn = get_family("Mix").instance(derive_seed(seed, "zip-val", iteration))
    total = 0
    for start in range(0, n, _CHUNK):
        stop = min(start + _CHUNK, n)
        idx = np.arange(
            global_offset + start, global_offset + stop, dtype=np.uint64
        )
        w = (weight_fn.hash_array(idx) % np.uint64(MERSENNE31)).astype(np.int64)
        g = (value_fn.hash_array(values[start:stop]) % np.uint64(MERSENNE31)).astype(
            np.int64
        )
        prods = _mod_p31(w * g)
        # prods < 2^31; int64 chunk sums of < 2^30 terms are exact.
        total = (total + int(prods.sum())) % MERSENNE31
    return total


def _global_offset(comm, local_count: int) -> int:
    """Exclusive prefix sum of local counts = this PE's global offset."""
    if comm is None:
        return 0
    return comm.exscan(local_count, op=ops.SUM, identity=0)


def _global_offsets(comm, *local_counts: int) -> tuple[int, ...]:
    """All columns' offsets in ONE tuple-valued exscan (not one each).

    Mirrors :func:`repro.dataflow.exchange.global_offsets`; duplicated
    here because the core layer must not import the dataflow layer.
    """
    counts = tuple(int(c) for c in local_counts)
    if comm is None:
        return tuple(0 for _ in counts)
    return tuple(
        comm.exscan(
            counts,
            op=lambda a, b: tuple(x + y for x, y in zip(a, b)),
            identity=tuple(0 for _ in counts),
        )
    )


def check_zip(
    s1,
    s2,
    zipped_first,
    zipped_second,
    iterations: int = 2,
    seed: int = 0,
    comm=None,
) -> CheckResult:
    """Theorem 11: verify ``Zip(S1, S2) = ⟨(x_i, y_i)⟩`` index-wise.

    ``s1``/``s2`` are the local slices of the inputs; ``zipped_first`` /
    ``zipped_second`` the component columns of the local slice of the
    asserted output.  The output's distribution may differ from the inputs'.
    Accepts iff for every iteration the positional fingerprint of S1 matches
    that of the first components and S2 matches the second components.
    """
    s1 = np.asarray(s1)
    s2 = np.asarray(s2)
    zipped_first = np.asarray(zipped_first)
    zipped_second = np.asarray(zipped_second)
    if zipped_first.size != zipped_second.size:
        raise ValueError(
            "zipped component columns differ in length: "
            f"{zipped_first.size} vs {zipped_second.size}"
        )
    off_s1, off_s2, off_z = _global_offsets(
        comm, s1.size, s2.size, zipped_first.size
    )

    detecting = []
    for j in range(iterations):
        fps = [
            positional_fingerprint(s1, off_s1, derive_seed(seed, "lane1"), j),
            positional_fingerprint(
                zipped_first, off_z, derive_seed(seed, "lane1"), j
            ),
            positional_fingerprint(s2, off_s2, derive_seed(seed, "lane2"), j),
            positional_fingerprint(
                zipped_second, off_z, derive_seed(seed, "lane2"), j
            ),
        ]
        if comm is not None:
            fps = comm.allreduce(
                fps,
                op=lambda a, b: [(x + y) % MERSENNE31 for x, y in zip(a, b)],
            )
        if fps[0] != fps[1] or fps[2] != fps[3]:
            detecting.append(j)

    # Lengths must match as well: fingerprints of equal-sum random values
    # could in principle hide a length mismatch (they do not for random
    # weights, but the check is a single integer per PE — do it exactly).
    lens = (int(s1.size), int(s2.size), int(zipped_first.size))
    if comm is not None:
        lens = comm.allreduce(
            lens, op=lambda a, b: tuple(x + y for x, y in zip(a, b))
        )
    length_ok = lens[0] == lens[1] == lens[2]

    return CheckResult(
        accepted=not detecting and length_ok,
        checker="zip",
        details={
            "iterations": iterations,
            "detecting_iterations": detecting,
            "lengths": lens,
            "length_ok": length_ok,
        },
    )

"""Mini-Thrill: the distributed dataflow substrate the checkers verify.

The paper integrates its checkers into Thrill [3], a C++ data-parallel batch
framework; the checkers treat every operation as a black box, so what they
need from the framework is only the *semantics* of the operations and the
SPMD collectives.  This package provides from-scratch distributed
implementations of the operations of paper Table 1:

=================  ========================================================
operation          implementation
=================  ========================================================
ReduceByKey        local sort-based pre-reduce + key-partitioned exchange
GroupByKey         all-to-all by key hash (§2 "GroupBy")
Sort               sample sort (local sort, splitter gather, exchange)
Merge              union + global sort (semantically equivalent)
Zip                offset-aligned range exchange
Union              local concatenation (distribution-free)
Join               hash join with key-partitioned exchange
Sum/Min/Max/Avg/   per-key aggregates on top of the exchange, producing
Median aggregates  the certificates the checkers consume (§6)
=================  ========================================================

All operations take the per-rank ``comm`` handle (or ``None`` for
sequential semantics) and local numpy slices, mirroring how Thrill
operations see their data.
"""

from repro.dataflow.exchange import (
    Exchange,
    exchange_by_destination,
    global_offset,
    global_offsets,
)
from repro.dataflow.dia import DIA, KeyValueDIA
from repro.dataflow.repair import (
    QuarantinedWindow,
    RepairOutcome,
    RepairPolicy,
    repair_reduce_window,
    repair_sum_window,
    repair_zip_window,
)
from repro.dataflow.streaming import (
    StreamingCheckedRun,
    StreamingDIA,
    StreamingKeyValueDIA,
    WindowRecord,
    settle_reduce_window,
    settle_sum_window,
    settle_zip_window,
    window_seed,
)
from repro.dataflow.ops.map_filter import (
    filter_elements,
    map_elements,
    map_pairs,
)
from repro.dataflow.ops.reduce_by_key import local_aggregate, reduce_by_key
from repro.dataflow.ops.sort_merge_join import sort_merge_join
from repro.dataflow.ops.group_by_key import group_by_key
from repro.dataflow.ops.sort import sample_sort
from repro.dataflow.ops.merge import merge_sorted
from repro.dataflow.ops.zip_op import zip_arrays
from repro.dataflow.ops.union import union_arrays
from repro.dataflow.ops.join import JoinExchange, hash_join
from repro.dataflow.ops.aggregates import (
    AverageResult,
    MedianResult,
    MinMaxResult,
    average_by_key,
    max_by_key,
    median_by_key,
    min_by_key,
)
from repro.dataflow.pipeline import (
    CheckedRunStats,
    StatsAccumulator,
    checked_join,
    checked_reduce_by_key,
    checked_sort,
)

__all__ = [
    "Exchange",
    "exchange_by_destination",
    "global_offset",
    "global_offsets",
    "DIA",
    "KeyValueDIA",
    "QuarantinedWindow",
    "RepairOutcome",
    "RepairPolicy",
    "repair_reduce_window",
    "repair_sum_window",
    "repair_zip_window",
    "StreamingCheckedRun",
    "StreamingDIA",
    "StreamingKeyValueDIA",
    "WindowRecord",
    "settle_reduce_window",
    "settle_sum_window",
    "settle_zip_window",
    "window_seed",
    "filter_elements",
    "map_elements",
    "map_pairs",
    "local_aggregate",
    "reduce_by_key",
    "sort_merge_join",
    "group_by_key",
    "sample_sort",
    "merge_sorted",
    "zip_arrays",
    "union_arrays",
    "JoinExchange",
    "hash_join",
    "AverageResult",
    "MedianResult",
    "MinMaxResult",
    "average_by_key",
    "max_by_key",
    "median_by_key",
    "min_by_key",
    "CheckedRunStats",
    "StatsAccumulator",
    "checked_join",
    "checked_reduce_by_key",
    "checked_sort",
]

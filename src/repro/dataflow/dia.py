"""DIA — a chainable, Thrill-flavoured API over the dataflow operations.

Thrill programs chain *distributed immutable arrays* (DIAs) through
operations; this module offers the same ergonomics on top of the functional
ops layer, including ``*_checked`` variants that return the operation's
result together with the checker verdict:

    def program(comm, chunk):
        dia = DIA(comm, chunk)
        out, verdict = dia.sort_checked(seed=1)
        assert verdict.accepted
        return out.collect_local()

Single-column data lives in :class:`DIA`; key-value data in
:class:`KeyValueDIA`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.params import SumCheckConfig
from repro.core.sort_checker import check_globally_sorted, check_sort
from repro.core.sum_checker import check_sum_aggregation
from repro.core.union_checker import check_union
from repro.core.merge_checker import check_merge
from repro.core.zip_checker import check_zip
from repro.core.groupby_checker import (
    check_groupby_redistribution,
    default_partitioner,
)
from repro.dataflow.pipeline import (
    AdaptiveCheckPolicy,
    adaptive_groupby_check,
    adaptive_permutation_check,
    adaptive_sort_check,
    adaptive_sum_check,
    adaptive_zip_check,
    hashsum_only_kwargs,
)
from repro.dataflow.ops.group_by_key import group_by_key
from repro.dataflow.ops.map_filter import filter_elements, map_elements, map_pairs
from repro.dataflow.ops.merge import merge_sorted
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.ops.sort import sample_sort
from repro.dataflow.ops.union import union_arrays
from repro.dataflow.ops.zip_op import zip_arrays

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


class DIA:
    """One PE's handle on a distributed immutable array (single column)."""

    def __init__(self, comm, local):
        self.comm = comm
        self.local = np.asarray(local)

    # -- local (communication-free) ------------------------------------------
    def map(self, fn: Callable) -> "DIA":
        """Vectorized element transform."""
        return DIA(self.comm, map_elements(self.local, fn))

    def filter(self, predicate: Callable) -> "DIA":
        """Vectorized element filter."""
        return DIA(self.comm, filter_elements(self.local, predicate))

    def size(self) -> int:
        """Global element count (one all-reduction)."""
        n = int(self.local.size)
        if self.comm is None:
            return n
        return self.comm.allreduce(n, op=ops.SUM)

    def collect_local(self) -> np.ndarray:
        """This PE's local slice."""
        return self.local

    def collect(self) -> np.ndarray:
        """The full array, assembled at every PE (expensive; debugging)."""
        if self.comm is None:
            return self.local.copy()
        pieces = self.comm.allgather(self.local)
        return np.concatenate(pieces)

    # -- distributed operations ----------------------------------------------
    def sort(self) -> "DIA":
        return DIA(self.comm, sample_sort(self.comm, self.local))

    def sort_checked(
        self,
        seed: int = 0,
        policy: AdaptiveCheckPolicy | None = None,
        **kwargs,
    ) -> tuple["DIA", CheckResult]:
        """Sort + Theorem 7 checker; returns (sorted DIA, verdict).

        With a ``policy`` the permutation fingerprint runs 1 seed inline
        and escalates per the policy over the condensed element counts
        (the sortedness half is deterministic and runs once).
        """
        out = sample_sort(self.comm, self.local)
        if policy is not None:
            verdict = adaptive_sort_check(
                self.local, out, seed=seed, policy=policy, comm=self.comm,
                **kwargs,
            )
        else:
            verdict = check_sort(
                self.local, out, seed=seed, comm=self.comm, **kwargs
            )
        return DIA(self.comm, out), verdict

    def union(self, other: "DIA") -> "DIA":
        return DIA(self.comm, union_arrays(self.comm, self.local, other.local))

    def union_checked(
        self,
        other: "DIA",
        seed: int = 0,
        policy: AdaptiveCheckPolicy | None = None,
        **kwargs,
    ) -> tuple["DIA", CheckResult]:
        """Union + Corollary 12 checker (adaptive when ``policy`` given)."""
        out = union_arrays(self.comm, self.local, other.local)
        if policy is not None:
            verdict = adaptive_permutation_check(
                [self.local, other.local],
                out,
                seed=seed,
                policy=policy,
                comm=self.comm,
                checker="union-adaptive",
                **hashsum_only_kwargs(kwargs),
            )
        else:
            verdict = check_union(
                self.local, other.local, out, seed=seed, comm=self.comm,
                **kwargs,
            )
        return DIA(self.comm, out), verdict

    def merge(self, other: "DIA") -> "DIA":
        return DIA(self.comm, merge_sorted(self.comm, self.local, other.local))

    def merge_checked(
        self,
        other: "DIA",
        seed: int = 0,
        policy: AdaptiveCheckPolicy | None = None,
        **kwargs,
    ) -> tuple["DIA", CheckResult]:
        """Merge + Corollary 13 checker (adaptive when ``policy`` given)."""
        out = merge_sorted(self.comm, self.local, other.local)
        if policy is not None:
            sortedness = check_globally_sorted(out, comm=self.comm)
            verdict = adaptive_permutation_check(
                [self.local, other.local],
                out,
                seed=seed,
                policy=policy,
                comm=self.comm,
                extra_ok=sortedness.accepted,
                extra_details={"sorted": sortedness.accepted},
                checker="merge-adaptive",
                **hashsum_only_kwargs(kwargs),
            )
        else:
            verdict = check_merge(
                self.local, other.local, out, seed=seed, comm=self.comm,
                **kwargs,
            )
        return DIA(self.comm, out), verdict

    def zip(self, other: "DIA") -> "KeyValueDIA":
        first, second = zip_arrays(self.comm, self.local, other.local)
        return KeyValueDIA(self.comm, first, second)

    def zip_checked(
        self,
        other: "DIA",
        seed: int = 0,
        iterations: int = 2,
        policy: AdaptiveCheckPolicy | None = None,
    ) -> tuple["KeyValueDIA", CheckResult]:
        """Zip + Theorem 11 checker (adaptive when ``policy`` given)."""
        first, second = zip_arrays(self.comm, self.local, other.local)
        if policy is not None:
            verdict = adaptive_zip_check(
                self.local,
                other.local,
                first,
                second,
                seed=seed,
                policy=policy,
                comm=self.comm,
                iterations=iterations,
            )
        else:
            verdict = check_zip(
                self.local,
                other.local,
                first,
                second,
                iterations=iterations,
                seed=seed,
                comm=self.comm,
            )
        return KeyValueDIA(self.comm, first, second), verdict

    def with_values(self, values) -> "KeyValueDIA":
        """Pair this column (as keys) with a values column."""
        return KeyValueDIA(self.comm, self.local, values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rank = self.comm.rank if self.comm is not None else 0
        return f"DIA(rank={rank}, local_size={self.local.size})"


class KeyValueDIA:
    """One PE's handle on a distributed array of (key, value) pairs."""

    def __init__(self, comm, keys, values):
        self.comm = comm
        self.keys = np.asarray(keys)
        self.values = np.asarray(values)
        if self.keys.shape != self.values.shape:
            raise ValueError(
                f"keys and values must align: {self.keys.shape} vs "
                f"{self.values.shape}"
            )

    # -- local ------------------------------------------------------------
    def map_pairs(self, fn: Callable) -> "KeyValueDIA":
        k, v = map_pairs(self.keys, self.values, fn)
        return KeyValueDIA(self.comm, k, v)

    def filter_pairs(self, predicate: Callable) -> "KeyValueDIA":
        mask = np.asarray(predicate(self.keys, self.values), dtype=bool)
        return KeyValueDIA(self.comm, self.keys[mask], self.values[mask])

    def collect_local(self) -> tuple[np.ndarray, np.ndarray]:
        return self.keys, self.values

    # -- distributed ----------------------------------------------------------
    def reduce_by_key(self, partitioner=None) -> "KeyValueDIA":
        k, v = reduce_by_key(self.comm, self.keys, self.values, partitioner)
        return KeyValueDIA(self.comm, k, v)

    def reduce_by_key_checked(
        self,
        config: SumCheckConfig | None = None,
        seed: int = 0,
        partitioner=None,
        policy: AdaptiveCheckPolicy | None = None,
    ) -> tuple["KeyValueDIA", CheckResult]:
        """ReduceByKey + Theorem 1 checker.

        With a ``policy`` the check runs 1 seed inline and escalates to the
        policy's ``T`` seeds on its trigger, reusing the condensed
        unique-key aggregates (no second pass over the pairs).
        """
        k, v = reduce_by_key(self.comm, self.keys, self.values, partitioner)
        if policy is not None:
            verdict = adaptive_sum_check(
                (self.keys, self.values),
                (k, v),
                config or _DEFAULT_CONFIG,
                seed=seed,
                policy=policy,
                comm=self.comm,
            )
        else:
            verdict = check_sum_aggregation(
                (self.keys, self.values),
                (k, v),
                config or _DEFAULT_CONFIG,
                seed=seed,
                comm=self.comm,
            )
        return KeyValueDIA(self.comm, k, v), verdict

    def group_by_key(self, partitioner=None):
        """Returns (unique keys, list of per-key value arrays)."""
        return group_by_key(self.comm, self.keys, self.values, partitioner)

    def group_by_key_checked(
        self,
        seed: int = 0,
        partitioner=None,
        policy: AdaptiveCheckPolicy | None = None,
        **kwargs,
    ) -> tuple[tuple, CheckResult]:
        """GroupByKey + Corollary 14 (invasive redistribution) checker.

        With a ``policy``, records are encoded once, the placement test
        (deterministic) runs once, and the permutation fingerprint
        escalates adaptively over the shared record condensation.
        """
        if partitioner is None:
            size = self.comm.size if self.comm is not None else 1
            partitioner = default_partitioner(size)
        uk, groups, post = group_by_key(
            self.comm,
            self.keys,
            self.values,
            partitioner=partitioner,
            return_exchange=True,
        )
        if policy is not None:
            verdict = adaptive_groupby_check(
                (self.keys, self.values),
                post,
                partitioner,
                seed=seed,
                policy=policy,
                comm=self.comm,
                **kwargs,
            )
        else:
            verdict = check_groupby_redistribution(
                (self.keys, self.values),
                post,
                partitioner,
                comm=self.comm,
                seed=seed,
                **kwargs,
            )
        return (uk, groups), verdict

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rank = self.comm.rank if self.comm is not None else 0
        return f"KeyValueDIA(rank={rank}, local_size={self.keys.size})"

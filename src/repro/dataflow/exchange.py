"""Data exchange primitives shared by the dataflow operations."""

from __future__ import annotations

import numpy as np

from repro.comm import ops


def global_offset(comm, local_count: int) -> int:
    """This PE's starting index in the global concatenation order."""
    if comm is None:
        return 0
    return comm.exscan(local_count, op=ops.SUM, identity=0)


def global_offsets(comm, *local_counts: int) -> tuple[int, ...]:
    """Offsets for several columns in ONE exscan (tuple payload).

    Every column used to pay its own :func:`global_offset` collective —
    windowed loops (one zip per window needs three offsets) multiplied
    that α·log p latency by the column count.  A single tuple-valued
    exscan delivers all of them at once.
    """
    counts = tuple(int(c) for c in local_counts)
    if comm is None:
        return tuple(0 for _ in counts)
    return tuple(
        comm.exscan(
            counts,
            op=lambda a, b: tuple(x + y for x, y in zip(a, b)),
            identity=tuple(0 for _ in counts),
        )
    )


class Exchange:
    """Reusable per-communicator exchange handle for windowed loops.

    Holds the communicator once so repeated per-window routing and offset
    queries go through one object — and through the batched
    :func:`global_offsets` (one collective for any number of columns)
    instead of one exscan per column per window.
    """

    def __init__(self, comm):
        self.comm = comm

    def offsets(self, *local_counts: int) -> tuple[int, ...]:
        """All columns' global offsets in one collective."""
        return global_offsets(self.comm, *local_counts)

    def route(self, destinations: np.ndarray, *columns):
        """Route rows to their destination PEs (see
        :func:`exchange_by_destination`)."""
        return exchange_by_destination(self.comm, destinations, *columns)


def exchange_by_destination(comm, destinations: np.ndarray, *columns):
    """Route each row to the PE named by ``destinations`` (all-to-all).

    ``columns`` are aligned arrays (anything ``np.asarray`` accepts);
    returns the received columns, rows concatenated in source-PE order
    (stable within a source).  Sequential (``comm is None``) requires every
    destination to be 0 and is an identity.
    """
    destinations = np.asarray(destinations, dtype=np.int64)
    # Coerce columns up front: a Python-list column used to work
    # sequentially but crash on the distributed path (lists don't support
    # fancy indexing), and a misaligned column would silently drop rows.
    columns = tuple(np.asarray(c) for c in columns)
    for i, col in enumerate(columns):
        if col.shape[:1] != destinations.shape:
            raise ValueError(
                f"column {i} has {col.shape[0] if col.ndim else 'scalar'} "
                f"rows but {destinations.size} destinations"
            )
    if comm is None:
        if destinations.size and (destinations != 0).any():
            raise ValueError("sequential exchange cannot route to other PEs")
        return tuple(c.copy() for c in columns)
    p = comm.size
    if destinations.size and (
        destinations.min() < 0 or destinations.max() >= p
    ):
        raise ValueError("destination rank out of range")
    order = np.argsort(destinations, kind="stable")
    sorted_dest = destinations[order]
    bounds = np.searchsorted(sorted_dest, np.arange(p + 1))
    payloads = []
    for r in range(p):
        rows = order[bounds[r] : bounds[r + 1]]
        payloads.append(tuple(np.ascontiguousarray(c[rows]) for c in columns))
    received = comm.alltoall(payloads)
    out = []
    for col_idx, col in enumerate(columns):
        parts = [received[src][col_idx] for src in range(p)]
        out.append(
            np.concatenate(parts) if parts else np.zeros(0, dtype=col.dtype)
        )
    return tuple(out)

"""Distributed operations of the mini-Thrill dataflow layer."""

"""Per-key aggregates on top of the exchange layer (§6 substrates).

These produce, besides the aggregate itself, exactly the certificates the
§6 checkers consume:

* :func:`average_by_key` — exact rational averages plus the per-key count
  certificate (Corollary 8, "this certificate naturally arises during
  computation anyway");
* :func:`min_by_key` / :func:`max_by_key` — result *replicated at every PE*
  plus the owner-PE certificate (Theorem 9);
* :func:`median_by_key` — result replicated at every PE plus the
  tie-breaking certificate (Theorem 10), with uids assigned from global
  element indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.groupby_checker import default_partitioner
from repro.core.median_checker import MedianCertificate
from repro.dataflow.exchange import exchange_by_destination, global_offset
from repro.dataflow.ops.reduce_by_key import local_aggregate, reduce_by_key


@dataclass
class AverageResult:
    """Distributed per-key averages as exact rationals + count certificate."""

    keys: np.ndarray
    numerators: np.ndarray
    denominators: np.ndarray
    counts: np.ndarray  # the certificate


@dataclass
class MinMaxResult:
    """Fully replicated per-key extrema + owner certificate (Theorem 9)."""

    keys: np.ndarray
    values: np.ndarray
    owners: np.ndarray  # certificate: a PE holding the extremum per key


@dataclass
class MedianResult:
    """Fully replicated per-key medians + tie-break certificate."""

    keys: np.ndarray
    numerators: np.ndarray
    denominators: np.ndarray  # 1 or 2
    certificate: MedianCertificate


def average_by_key(comm, keys, values, partitioner=None) -> AverageResult:
    """Per-key averages via the (value, count)-pair trick of §6.1."""
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    sk, sums = reduce_by_key(comm, keys, values, partitioner)
    ck, counts = reduce_by_key(
        comm, keys, np.ones(keys.size, dtype=np.int64), partitioner
    )
    if not np.array_equal(sk, ck):  # pragma: no cover - same partitioner
        raise AssertionError("sum and count reductions disagree on keys")
    g = np.maximum(np.gcd(np.abs(sums), counts), 1)
    return AverageResult(sk, sums // g, counts // g, counts)


def _extremum_by_key(comm, keys, values, sign: int, partitioner=None) -> MinMaxResult:
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    values = sign * np.asarray(values, dtype=np.int64).ravel()
    rank = comm.rank if comm is not None else 0

    # Local extremum per key, tagged with this PE as candidate owner.
    if keys.size:
        order = np.lexsort((values, keys))
        sk = keys[order]
        sv = values[order]
        starts = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
        lk, lv = sk[starts], sv[starts]
    else:
        lk = keys.copy()
        lv = values.copy()
    owners = np.full(lk.size, rank, dtype=np.int64)

    if comm is not None and comm.size > 1:
        if partitioner is None:
            partitioner = default_partitioner(comm.size)
        lk, lv, owners = exchange_by_destination(
            comm, partitioner(lk), lk, lv, owners
        )
        if lk.size:
            # Per key: smallest value wins; ties broken by lowest owner rank.
            order = np.lexsort((owners, lv, lk))
            sk, sv, so = lk[order], lv[order], owners[order]
            starts = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
            lk, lv, owners = sk[starts], sv[starts], so[starts]
        # Theorem 9 requires the result and certificate at every PE.
        pieces = comm.allgather((lk, lv, owners))
        lk = np.concatenate([p[0] for p in pieces])
        lv = np.concatenate([p[1] for p in pieces])
        owners = np.concatenate([p[2] for p in pieces])
        order = np.argsort(lk, kind="stable")
        lk, lv, owners = lk[order], lv[order], owners[order]
    return MinMaxResult(lk, sign * lv, owners)


def min_by_key(comm, keys, values, partitioner=None) -> MinMaxResult:
    """Per-key minima, replicated everywhere, with owner certificate."""
    return _extremum_by_key(comm, keys, values, +1, partitioner)


def max_by_key(comm, keys, values, partitioner=None) -> MinMaxResult:
    """Per-key maxima, replicated everywhere, with owner certificate."""
    return _extremum_by_key(comm, keys, values, -1, partitioner)


def median_by_key(comm, keys, values, uids=None, partitioner=None) -> MedianResult:
    """Per-key medians (mean of middles for even counts), replicated.

    uids default to global element indices — a total order on occurrences,
    which is all the tie-breaking scheme of §6.3 needs.
    """
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    if uids is None:
        offset = global_offset(comm, int(keys.size))
        uids = offset + np.arange(keys.size, dtype=np.int64)
    else:
        uids = np.asarray(uids, dtype=np.int64).ravel()

    if comm is not None and comm.size > 1:
        if partitioner is None:
            partitioner = default_partitioner(comm.size)
        keys, values, uids = exchange_by_destination(
            comm, partitioner(keys), keys, values, uids
        )

    if keys.size:
        order = np.lexsort((uids, values, keys))
        sk, sv, su = keys[order], values[order], uids[order]
        starts = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
        bounds = np.append(starts, sk.size)
        out_k = sk[starts]
        nums = np.empty(starts.size, dtype=np.int64)
        dens = np.empty(starts.size, dtype=np.int64)
        uid_low = np.empty(starts.size, dtype=np.int64)
        uid_high = np.empty(starts.size, dtype=np.int64)
        for i in range(starts.size):
            lo, hi = bounds[i], bounds[i + 1]
            m = hi - lo
            low_pos = lo + (m - 1) // 2
            high_pos = lo + m // 2
            v_low, v_high = int(sv[low_pos]), int(sv[high_pos])
            if (v_low + v_high) % 2 == 0:
                nums[i], dens[i] = (v_low + v_high) // 2, 1
            else:
                nums[i], dens[i] = v_low + v_high, 2
            uid_low[i] = su[low_pos]
            uid_high[i] = su[high_pos]
    else:
        out_k = keys.copy()
        nums = dens = uid_low = uid_high = np.zeros(0, dtype=np.int64)

    if comm is not None and comm.size > 1:
        pieces = comm.allgather((out_k, nums, dens, uid_low, uid_high))
        out_k = np.concatenate([p[0] for p in pieces])
        nums = np.concatenate([p[1] for p in pieces])
        dens = np.concatenate([p[2] for p in pieces])
        uid_low = np.concatenate([p[3] for p in pieces])
        uid_high = np.concatenate([p[4] for p in pieces])
        order = np.argsort(out_k, kind="stable")
        out_k = out_k[order]
        nums, dens = nums[order], dens[order]
        uid_low, uid_high = uid_low[order], uid_high[order]

    return MedianResult(
        out_k, nums, dens, MedianCertificate(uid_low, uid_high)
    )

"""GroupByKey — the paper's §2 "GroupBy" operation.

All elements with the same key are collected at one PE (all-to-all by key
hash) and handed to a group function.  Much more communication-expensive
than reduction — O(β·w·n + α·p) — which is exactly why the paper's invasive
checker (Corollary 14) targets the redistribution phase.
"""

from __future__ import annotations

import numpy as np

from repro.core.groupby_checker import default_partitioner
from repro.dataflow.exchange import exchange_by_destination


def group_by_key(
    comm,
    keys: np.ndarray,
    values: np.ndarray,
    partitioner=None,
    return_exchange: bool = False,
):
    """Group values per key at the key's home PE.

    Returns ``(unique_keys, groups)`` where ``groups[i]`` is the value array
    of ``unique_keys[i]`` (arbitrary order inside a group, as in Thrill).
    With ``return_exchange=True`` also returns the raw post-exchange
    ``(keys, values)`` — the data the invasive checker (Corollary 14)
    verifies.
    """
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    if comm is None or comm.size == 1:
        rk, rv = keys.copy(), values.copy()
    else:
        if partitioner is None:
            partitioner = default_partitioner(comm.size)
        rk, rv = exchange_by_destination(comm, partitioner(keys), keys, values)
    if rk.size == 0:
        unique_keys = rk
        groups: list[np.ndarray] = []
    else:
        order = np.argsort(rk, kind="stable")
        sk = rk[order]
        sv = rv[order]
        starts = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
        unique_keys = sk[starts]
        bounds = np.append(starts, sk.size)
        groups = [sv[bounds[i] : bounds[i + 1]] for i in range(starts.size)]
    if return_exchange:
        return unique_keys, groups, (rk, rv)
    return unique_keys, groups

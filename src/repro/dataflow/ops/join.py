"""Hash join of two distributed relations (§6.5.4 substrate).

Both relations are repartitioned by key hash so matching keys meet at one
PE; the local phase is a classic build/probe hash join.  The post-exchange
relations are returned alongside the joined rows because they are exactly
what the invasive checker (Corollary 15) verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.groupby_checker import default_partitioner
from repro.dataflow.exchange import exchange_by_destination


@dataclass
class JoinExchange:
    """Result of a distributed hash join on one PE."""

    keys: np.ndarray  # joined keys (one row per matching pair)
    r_values: np.ndarray
    s_values: np.ndarray
    r_post: tuple[np.ndarray, np.ndarray]  # relation R after the exchange
    s_post: tuple[np.ndarray, np.ndarray]  # relation S after the exchange


def _local_join(
    rk: np.ndarray, rv: np.ndarray, sk: np.ndarray, sv: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All (key, r_value, s_value) combinations of matching keys."""
    if rk.size == 0 or sk.size == 0:
        return (
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    build: dict[int, list[int]] = {}
    for k, v in zip(rk.tolist(), rv.tolist()):
        build.setdefault(k, []).append(v)
    out_k: list[int] = []
    out_r: list[int] = []
    out_s: list[int] = []
    for k, v in zip(sk.tolist(), sv.tolist()):
        for rv_match in build.get(k, ()):
            out_k.append(k)
            out_r.append(rv_match)
            out_s.append(v)
    return (
        np.array(out_k, dtype=np.uint64),
        np.array(out_r, dtype=np.int64),
        np.array(out_s, dtype=np.int64),
    )


def hash_join(
    comm,
    r_kv: tuple[np.ndarray, np.ndarray],
    s_kv: tuple[np.ndarray, np.ndarray],
    partitioner=None,
) -> JoinExchange:
    """Equi-join R ⋈ S on keys; returns this PE's joined rows + exchanges."""
    rk = np.asarray(r_kv[0], dtype=np.uint64).ravel()
    rv = np.asarray(r_kv[1], dtype=np.int64).ravel()
    sk = np.asarray(s_kv[0], dtype=np.uint64).ravel()
    sv = np.asarray(s_kv[1], dtype=np.int64).ravel()
    if comm is None or comm.size == 1:
        jk, jr, js = _local_join(rk, rv, sk, sv)
        return JoinExchange(jk, jr, js, (rk, rv), (sk, sv))
    if partitioner is None:
        partitioner = default_partitioner(comm.size)
    rk2, rv2 = exchange_by_destination(comm, partitioner(rk), rk, rv)
    sk2, sv2 = exchange_by_destination(comm, partitioner(sk), sk, sv)
    jk, jr, js = _local_join(rk2, rv2, sk2, sv2)
    return JoinExchange(jk, jr, js, (rk2, rv2), (sk2, sv2))

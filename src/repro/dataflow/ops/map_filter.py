"""Element-local operations (Map, Filter, FlatMap over columns).

These need no communication — each PE transforms its local slice — and no
checker in the paper's framework (they are deterministic local work; the
checkers target the operations that *move* data).  Provided for API
completeness of the mini-Thrill layer.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def map_elements(values: np.ndarray, fn: Callable) -> np.ndarray:
    """Apply a vectorized function to the local slice."""
    out = fn(np.asarray(values))
    return np.asarray(out)


def filter_elements(values: np.ndarray, predicate: Callable) -> np.ndarray:
    """Keep elements where the vectorized predicate holds."""
    values = np.asarray(values)
    mask = np.asarray(predicate(values), dtype=bool)
    if mask.shape != values.shape:
        raise ValueError(
            f"predicate mask shape {mask.shape} does not match data shape "
            f"{values.shape}"
        )
    return values[mask]


def map_pairs(
    keys: np.ndarray, values: np.ndarray, fn: Callable
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a vectorized pair transform ``fn(keys, values) -> (keys, values)``."""
    new_keys, new_values = fn(np.asarray(keys), np.asarray(values))
    new_keys = np.asarray(new_keys)
    new_values = np.asarray(new_values)
    if new_keys.shape != new_values.shape:
        raise ValueError("pair transform must keep keys and values aligned")
    return new_keys, new_values

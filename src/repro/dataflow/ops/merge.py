"""Merge of two sorted distributed sequences.

Semantically ``Merge(S1, S2) = sort(S1 ∪ S2)`` when both inputs are sorted;
this implementation routes through the sample-sort exchange (a dedicated
distributed merge would save local work but produce the same output, and
the checkers — Corollary 13 — treat the operation as a black box anyway).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.ops.sort import sample_sort


def merge_sorted(comm, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
    """Merge two locally held slices of globally sorted sequences.

    Returns this PE's slice of the merged (sorted) sequence.
    """
    s1 = np.asarray(s1).ravel()
    s2 = np.asarray(s2).ravel()
    if comm is None or comm.size == 1:
        # Classic two-pointer merge via numpy: concatenate + stable sort is
        # O(n log n) but allocation-free merging buys nothing at this scale.
        out = np.concatenate([s1, s2])
        out.sort(kind="stable")
        return out
    return sample_sort(comm, np.concatenate([s1, s2]))

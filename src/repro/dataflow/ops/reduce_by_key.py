"""ReduceByKey — the paper's §2 "Reduction" operation.

Local phase: aggregate local pairs per key (we use a sort-based reduction
in place of Thrill's hash table — same semantics, cache-friendlier in
numpy).  Exchange phase: keys are partitioned over PEs by a fixed hash and
partial sums are combined at their home PE.  The result is *distributed*:
each key lives at exactly one PE.
"""

from __future__ import annotations

import numpy as np

from repro.core.groupby_checker import default_partitioner
from repro.dataflow.exchange import exchange_by_destination


def local_aggregate(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-key sums of one PE's pairs, keys ascending."""
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    if keys.size != values.size:
        raise ValueError(
            f"keys and values differ in length: {keys.size} vs {values.size}"
        )
    if keys.size == 0:
        return keys.copy(), values.copy()
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    sv = values[order]
    starts = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
    return sk[starts], np.add.reduceat(sv, starts)


def reduce_by_key(
    comm,
    keys: np.ndarray,
    values: np.ndarray,
    partitioner=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Distributed sum aggregation; returns this PE's slice of the result.

    ``partitioner`` is the key→PE map (default: the framework hash);
    sequential when ``comm`` is None.
    """
    lk, lv = local_aggregate(keys, values)
    if comm is None or comm.size == 1:
        return lk, lv
    if partitioner is None:
        partitioner = default_partitioner(comm.size)
    rk, rv = exchange_by_destination(comm, partitioner(lk), lk, lv)
    return local_aggregate(rk, rv)

"""Distributed sample sort.

Local sort, regular sampling, splitter broadcast, range exchange, local
merge — the standard p-splitter algorithm (and what Thrill's Sort does at
this level of abstraction).  Output: globally sorted, each PE holding a
contiguous range.
"""

from __future__ import annotations

import numpy as np


def _pick_splitters(samples: np.ndarray, p: int) -> np.ndarray:
    """p−1 regular splitters from the pooled, sorted sample."""
    samples = np.sort(samples)
    if samples.size == 0:
        return np.zeros(0, dtype=samples.dtype)
    positions = (np.arange(1, p) * samples.size) // p
    return samples[np.minimum(positions, samples.size - 1)]


def sample_sort(
    comm, values: np.ndarray, oversampling: int = 16
) -> np.ndarray:
    """Sort the distributed concatenation of local slices.

    Returns this PE's slice of the sorted sequence.  ``oversampling``
    controls splitter quality (samples per PE = oversampling · p, capped by
    the local size).
    """
    local = np.sort(np.asarray(values).ravel())
    if comm is None or comm.size == 1:
        return local
    p = comm.size
    sample_count = min(local.size, oversampling * p)
    if sample_count > 0:
        positions = (np.arange(sample_count) * local.size) // sample_count
        sample = local[positions]
    else:
        sample = local[:0]
    pooled = comm.gather(sample, root=0)
    splitters = None
    if comm.rank == 0:
        splitters = _pick_splitters(np.concatenate(pooled), p)
    splitters = comm.bcast(splitters, root=0)

    if splitters.size:
        bounds = np.searchsorted(local, splitters, side="right")
        bounds = np.concatenate(([0], bounds, [local.size]))
    else:
        bounds = np.array([0] * p + [local.size])
    payloads = [
        np.ascontiguousarray(local[bounds[r] : bounds[r + 1]]) for r in range(p)
    ]
    received = comm.alltoall(payloads)
    merged = np.concatenate(received) if received else local[:0]
    merged.sort()
    return merged

"""Sort-merge join with range partitioning (§6.5.4's second algorithm).

Both relations are range-partitioned by key using shared splitters sampled
from their union, so each PE receives a contiguous key range of *both*
relations; the local phase joins two sorted runs.  The exchange is exactly
what Corollary 15's range-mode checker verifies (combined global sortedness
across the two relations plus per-relation permutation).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.exchange import exchange_by_destination
from repro.dataflow.ops.join import JoinExchange, _local_join


def _shared_splitters(comm, r_keys: np.ndarray, s_keys: np.ndarray) -> np.ndarray:
    """p−1 splitters sampled from the union of both relations' keys."""
    p = comm.size
    pool = np.sort(np.concatenate([r_keys, s_keys]))
    count = min(pool.size, 16 * p)
    sample = pool[(np.arange(count) * pool.size) // max(count, 1)] if count else pool
    gathered = comm.gather(sample, root=0)
    splitters = None
    if comm.rank == 0:
        merged = np.sort(np.concatenate(gathered))
        if merged.size:
            positions = (np.arange(1, p) * merged.size) // p
            splitters = merged[np.minimum(positions, merged.size - 1)]
        else:
            splitters = merged
    return comm.bcast(splitters, root=0)


def sort_merge_join(
    comm,
    r_kv: tuple[np.ndarray, np.ndarray],
    s_kv: tuple[np.ndarray, np.ndarray],
) -> JoinExchange:
    """Equi-join via range partitioning + local sorted-run join."""
    rk = np.asarray(r_kv[0], dtype=np.uint64).ravel()
    rv = np.asarray(r_kv[1], dtype=np.int64).ravel()
    sk = np.asarray(s_kv[0], dtype=np.uint64).ravel()
    sv = np.asarray(s_kv[1], dtype=np.int64).ravel()
    if comm is None or comm.size == 1:
        jk, jr, js = _local_join(rk, rv, sk, sv)
        return JoinExchange(jk, jr, js, (rk, rv), (sk, sv))

    splitters = _shared_splitters(comm, rk, sk)
    r_dest = np.searchsorted(splitters, rk, side="right").astype(np.int64)
    s_dest = np.searchsorted(splitters, sk, side="right").astype(np.int64)
    rk2, rv2 = exchange_by_destination(comm, r_dest, rk, rv)
    sk2, sv2 = exchange_by_destination(comm, s_dest, sk, sv)
    jk, jr, js = _local_join(rk2, rv2, sk2, sv2)
    return JoinExchange(jk, jr, js, (rk2, rv2), (sk2, sv2))

"""Union — multiset union of two distributed sequences.

Distribution-free: concatenating the local slices realises the multiset
union without any communication (order is unspecified, as in Thrill).
"""

from __future__ import annotations

import numpy as np


def union_arrays(comm, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
    """Local slice of ``Union(S1, S2)``."""
    del comm  # no communication needed; kept for API uniformity
    s1 = np.asarray(s1).ravel()
    s2 = np.asarray(s2).ravel()
    return np.concatenate([s1, s2])

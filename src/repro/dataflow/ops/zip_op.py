"""Zip — index-wise pairing of two equally long distributed sequences.

The sequences need not share a distribution, so (at least) one of them is
realigned: every PE fetches the slice of S2 covering its S1 index range
(§6.4: "the elements of (at least) one sequence need to be moved in the
general case").
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.exchange import global_offsets


def zip_arrays(
    comm, s1: np.ndarray, s2: np.ndarray, return_offsets: bool = False
):
    """Return the local slice of ``Zip(S1, S2)`` as two aligned columns.

    Output distribution follows S1's.  Raises if the global lengths
    differ.  With ``return_offsets`` the result is ``(first, second,
    (off1, off2))`` — the PE's global starting offsets of both inputs (the
    output shares S1's), which the zip checker needs and would otherwise
    recompute with its own collectives.
    """
    s1 = np.asarray(s1).ravel()
    s2 = np.asarray(s2).ravel()
    if comm is None or comm.size == 1:
        if s1.size != s2.size:
            raise ValueError(
                f"Zip requires equal lengths, got {s1.size} and {s2.size}"
            )
        if return_offsets:
            return s1.copy(), s2.copy(), (0, 0)
        return s1.copy(), s2.copy()

    p = comm.size
    # Both totals in one allreduce, both offsets in one exscan (these used
    # to be four collectives — redundant latency in windowed loops).
    n1, n2 = comm.allreduce(
        (int(s1.size), int(s2.size)),
        op=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    )
    if n1 != n2:
        raise ValueError(f"Zip requires equal lengths, got {n1} and {n2}")

    off1, off2 = global_offsets(comm, int(s1.size), int(s2.size))
    # Every PE learns the S1 index ranges (the target distribution).
    ranges = comm.allgather((off1, off1 + int(s1.size)))

    # Send each PE the part of our S2 slice that falls into its range.
    payloads = []
    for start, stop in ranges:
        lo = max(off2, start)
        hi = min(off2 + s2.size, stop)
        payloads.append(
            np.ascontiguousarray(s2[lo - off2 : hi - off2])
            if hi > lo
            else s2[:0]
        )
    received = comm.alltoall(payloads)
    aligned = np.concatenate([received[src] for src in range(p)])
    if return_offsets:
        return s1.copy(), aligned, (off1, off2)
    return s1.copy(), aligned

"""Zip — index-wise pairing of two equally long distributed sequences.

The sequences need not share a distribution, so (at least) one of them is
realigned: every PE fetches the slice of S2 covering its S1 index range
(§6.4: "the elements of (at least) one sequence need to be moved in the
general case").
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.exchange import global_offset


def zip_arrays(
    comm, s1: np.ndarray, s2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return the local slice of ``Zip(S1, S2)`` as two aligned columns.

    Output distribution follows S1's.  Raises if the global lengths differ.
    """
    s1 = np.asarray(s1).ravel()
    s2 = np.asarray(s2).ravel()
    if comm is None or comm.size == 1:
        if s1.size != s2.size:
            raise ValueError(
                f"Zip requires equal lengths, got {s1.size} and {s2.size}"
            )
        return s1.copy(), s2.copy()

    p = comm.size
    n1 = comm.allreduce(int(s1.size), op=lambda a, b: a + b)
    n2 = comm.allreduce(int(s2.size), op=lambda a, b: a + b)
    if n1 != n2:
        raise ValueError(f"Zip requires equal lengths, got {n1} and {n2}")

    off1 = global_offset(comm, int(s1.size))
    off2 = global_offset(comm, int(s2.size))
    # Every PE learns the S1 index ranges (the target distribution).
    ranges = comm.allgather((off1, off1 + int(s1.size)))

    # Send each PE the part of our S2 slice that falls into its range.
    payloads = []
    for start, stop in ranges:
        lo = max(off2, start)
        hi = min(off2 + s2.size, stop)
        payloads.append(
            np.ascontiguousarray(s2[lo - off2 : hi - off2])
            if hi > lo
            else s2[:0]
        )
    received = comm.alltoall(payloads)
    aligned = np.concatenate([received[src] for src in range(p)])
    return s1.copy(), aligned

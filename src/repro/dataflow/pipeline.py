"""Checked operations: run an operation with its checker interleaved.

Mirrors how the paper integrates checkers into Thrill (§7 "Scaling
Behavior"): elements are forwarded to the checker as they are passed to the
operation, so the measured cost is the whole reduce-check pipeline.  A
manipulator may be planted inside the black box to exercise the failure
path (the experiment harness does exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.base import CheckResult
from repro.core.params import SumCheckConfig
from repro.core.sort_checker import check_sort
from repro.core.sum_checker import SumAggregationChecker
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.ops.sort import sample_sort


@dataclass
class CheckedRunStats:
    """Timing split of a checked run (for the Fig 4 overhead ratio)."""

    operation_seconds: float
    checker_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.operation_seconds + self.checker_seconds

    @property
    def overhead_ratio(self) -> float:
        if self.operation_seconds == 0.0:
            return 1.0
        return self.total_seconds / self.operation_seconds


def checked_reduce_by_key(
    comm,
    keys: np.ndarray,
    values: np.ndarray,
    config: SumCheckConfig,
    seed: int = 0,
    partitioner=None,
    manipulator=None,
    manipulator_rng=None,
):
    """ReduceByKey + §4 checker in one pipeline.

    Returns ``(result_keys, result_values, CheckResult, CheckedRunStats)``.
    With a ``manipulator`` the fault is injected *inside* the black box (the
    checker still sees the original input), emulating a silent error in the
    reduction.
    """
    checker = SumAggregationChecker(config, seed)

    t0 = time.perf_counter()
    t_in = checker.local_tables(keys, values)  # checker taps the input stream
    t1 = time.perf_counter()

    op_keys, op_values = keys, values
    if manipulator is not None:
        rng = manipulator_rng or np.random.default_rng(seed)
        manipulated = manipulator.apply(rng, keys, values)
        op_keys, op_values = manipulated.keys, manipulated.values
    out_keys, out_values = reduce_by_key(comm, op_keys, op_values, partitioner)
    t2 = time.perf_counter()

    t_out = checker.local_tables(out_keys, out_values)
    diff = checker.difference(t_in, t_out)
    if comm is None:
        verdict = not np.any(diff)
    else:

        def wire_op(a, b):
            return checker.pack(
                checker.combine(checker.unpack(a), checker.unpack(b))
            )

        combined = comm.reduce(checker.pack(diff), wire_op, root=0)
        verdict = None
        if comm.rank == 0:
            verdict = not np.any(checker.unpack(combined))
        verdict = comm.bcast(verdict, root=0)
    t3 = time.perf_counter()

    result = CheckResult(
        accepted=bool(verdict),
        checker="sum-aggregation",
        details={"config": config.label(), "pipelined": True},
    )
    stats = CheckedRunStats(
        operation_seconds=t2 - t1,
        checker_seconds=(t1 - t0) + (t3 - t2),
    )
    return out_keys, out_values, result, stats


def checked_sort(
    comm,
    values: np.ndarray,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
    manipulator=None,
    manipulator_rng=None,
):
    """Sample sort + Theorem 7 checker in one pipeline.

    Returns ``(sorted_local, CheckResult, CheckedRunStats)``.
    """
    t0 = time.perf_counter()
    op_input = values
    if manipulator is not None:
        rng = manipulator_rng or np.random.default_rng(seed)
        op_input = manipulator.apply(rng, values).sequence
    out = sample_sort(comm, op_input)
    t1 = time.perf_counter()
    result = check_sort(
        values,
        out,
        iterations=iterations,
        hash_family=hash_family,
        log_h=log_h,
        seed=seed,
        comm=comm,
    )
    t2 = time.perf_counter()
    stats = CheckedRunStats(
        operation_seconds=t1 - t0, checker_seconds=t2 - t1
    )
    return out, result, stats


def checked_join(
    comm,
    r_kv,
    s_kv,
    mode: str = "hash",
    partitioner=None,
    iterations: int = 2,
    seed: int = 0,
):
    """Distributed join + Corollary 15 (invasive redistribution) checker.

    ``mode="hash"`` runs a hash join; ``mode="range"`` a range-partitioned
    sort-merge join.  Returns ``(JoinExchange, CheckResult, stats)``.
    """
    from repro.core.groupby_checker import default_partitioner
    from repro.core.join_checker import check_join_redistribution
    from repro.dataflow.ops.join import hash_join
    from repro.dataflow.ops.sort_merge_join import sort_merge_join

    t0 = time.perf_counter()
    if mode == "hash":
        if partitioner is None:
            size = comm.size if comm is not None else 1
            partitioner = default_partitioner(size)
        jx = hash_join(comm, r_kv, s_kv, partitioner=partitioner)
    elif mode == "range":
        jx = sort_merge_join(comm, r_kv, s_kv)
    else:
        raise ValueError(f"mode must be 'hash' or 'range', got {mode!r}")
    t1 = time.perf_counter()
    result = check_join_redistribution(
        r_kv,
        s_kv,
        jx.r_post,
        jx.s_post,
        mode=mode,
        partitioner=partitioner,
        comm=comm,
        iterations=iterations,
        seed=seed,
    )
    t2 = time.perf_counter()
    stats = CheckedRunStats(
        operation_seconds=t1 - t0, checker_seconds=t2 - t1
    )
    return jx, result, stats

"""Checked operations: run an operation with its checker interleaved.

Mirrors how the paper integrates checkers into Thrill (§7 "Scaling
Behavior"): elements are forwarded to the checker as they are passed to the
operation, so the measured cost is the whole reduce-check pipeline.  A
manipulator may be planted inside the black box to exercise the failure
path (the experiment harness does exactly that).

:class:`AdaptiveCheckPolicy` adds the "verify cheaply first, escalate on
suspicion" layer: every checked operation runs ONE seed inline and
re-checks under ``T`` escalation seeds only when the primary verdict fails
(or unconditionally, for a hardened δ^T run).  Escalation reuses the
condensed unique-key aggregates the primary check already built, so it
never takes a second pass over the raw data.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.multiseed import (
    CondensedKV,
    MultiSeedHashSumChecker,
    MultiSeedSumChecker,
    condense_kv,
    condense_side,
)
from repro.core.groupby_checker import encode_records
from repro.core.params import SumCheckConfig
from repro.core.sort_checker import check_globally_sorted, check_sort
from repro.core.sum_checker import SumAggregationChecker
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.ops.sort import sample_sort
from repro.util.rng import default_generator, derive_seed, derive_seed_array


@dataclass
class CheckedRunStats:
    """Timing split of a checked run (for the Fig 4 overhead ratio).

    ``checker_seconds`` covers the primary (1-seed) check;
    ``escalation_seconds`` the multi-seed re-check when an
    :class:`AdaptiveCheckPolicy` triggered one.  Windowed streaming runs
    accumulate one instance per window via :meth:`merge`: ``windows``
    counts settled windows, ``elements_fed`` the stream elements consumed,
    and ``overhead_ratio`` on the merged stats is the whole run's ratio.

    Rejected-window handling is metered alongside checking cost:
    ``localized`` flags that at least one failed verdict went through
    :func:`repro.core.localize.localize_fault` (``bisection_rounds`` and
    ``localization_seconds`` accumulate its work), ``repaired_windows``
    counts windows healed by re-execution, ``quarantined_windows`` those
    that exhausted the retry budget.  Repair-side re-execution time is
    *not* part of ``overhead_ratio`` — it is replacement work, not
    checking overhead.
    """

    operation_seconds: float
    checker_seconds: float
    escalated: bool = False
    escalation_seconds: float = 0.0
    escalation_seeds: int = 0
    windows: int = 0
    elements_fed: int = 0
    localized: bool = False
    bisection_rounds: int = 0
    localization_seconds: float = 0.0
    repaired_windows: int = 0
    quarantined_windows: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.operation_seconds
            + self.checker_seconds
            + self.escalation_seconds
        )

    def merge(self, other: "CheckedRunStats") -> "CheckedRunStats":
        """Accumulate another (window's) stats into a combined record.

        ``merge`` is pure — it returns a fresh record and never mutates
        either operand — so the *ownership rule* for concurrent use is:
        a ``stats = stats.merge(new)`` read-modify-write cycle must have
        exactly one writer (e.g. the single worker thread that settles a
        tenant's windows).  Cross-thread accumulation (many tenants into
        one run record) must go through :class:`StatsAccumulator`, which
        serializes the cycle under a lock.
        """
        return CheckedRunStats(
            operation_seconds=self.operation_seconds + other.operation_seconds,
            checker_seconds=self.checker_seconds + other.checker_seconds,
            escalated=self.escalated or other.escalated,
            escalation_seconds=(
                self.escalation_seconds + other.escalation_seconds
            ),
            escalation_seeds=self.escalation_seeds + other.escalation_seeds,
            windows=self.windows + other.windows,
            elements_fed=self.elements_fed + other.elements_fed,
            localized=self.localized or other.localized,
            bisection_rounds=self.bisection_rounds + other.bisection_rounds,
            localization_seconds=(
                self.localization_seconds + other.localization_seconds
            ),
            repaired_windows=self.repaired_windows + other.repaired_windows,
            quarantined_windows=(
                self.quarantined_windows + other.quarantined_windows
            ),
        )

    @classmethod
    def accumulated(cls, stats) -> "CheckedRunStats":
        """Merge an iterable of per-window stats into one record."""
        total = cls(operation_seconds=0.0, checker_seconds=0.0)
        for s in stats:
            total = total.merge(s)
        return total

    @property
    def overhead_ratio(self) -> float:
        if self.operation_seconds == 0.0:
            # A zero-duration operation with real checker work is *all*
            # overhead; reporting 1.0 here made zero-duration micro-runs
            # claim "no overhead".  1.0 is only right when nothing at all
            # was measured.
            if self.checker_seconds + self.escalation_seconds == 0.0:
                return 1.0
            return float("inf")
        return self.total_seconds / self.operation_seconds


class StatsAccumulator:
    """Thread-safe accumulation of :class:`CheckedRunStats`.

    ``CheckedRunStats.merge`` is pure, so the only concurrency hazard is
    the read-modify-write cycle around it: two threads that both read the
    current total, merge their window, and write back will silently drop
    one window.  This accumulator owns that cycle under a lock — the
    multi-tenant service daemon pushes every tenant's per-window stats
    through one instance and reads an exact run-level total at any time.
    """

    def __init__(self, initial: CheckedRunStats | None = None):
        self._lock = threading.Lock()
        self._total = (
            initial
            if initial is not None
            else CheckedRunStats(operation_seconds=0.0, checker_seconds=0.0)
        )

    def add(self, stats: CheckedRunStats) -> None:
        """Merge one (window's) stats record into the running total."""
        with self._lock:
            self._total = self._total.merge(stats)

    def snapshot(self) -> CheckedRunStats:
        """The current total (immutable — safe to hold across updates)."""
        with self._lock:
            return self._total


@dataclass
class AdaptiveCheckPolicy:
    """Escalation policy: 1 seed inline, ``T`` seeds on suspicion.

    The checkers have one-sided error: a rejection *proves* the result (or
    the checker's own wire traffic) is corrupt, so before paying for a
    re-execution the pipeline confirms the verdict under ``T`` fresh seeds
    — at condensed-aggregate cost, not another data pass.  Modes:

    * ``"reject"`` (default) — escalate only when the primary verdict
      rejects; the per-seed flags tell a true data error (every seed
      rejects, failure probability of a wrong confirmation δ^T) from a
      checker-side glitch.
    * ``"always"`` — hardened mode: every check runs all escalation seeds
      (δ^T on every accept) while still condensing the data once.
    * ``"never"`` — adaptive bookkeeping without any escalation.

    ``escalation_seeds`` is either a count (seeds derive from the primary
    seed) or an explicit array of root seeds.
    """

    escalation_seeds: int | np.ndarray = 8
    escalate_on: str = "reject"

    def __post_init__(self):
        if self.escalate_on not in ("reject", "always", "never"):
            raise ValueError(
                f"escalate_on must be 'reject', 'always' or 'never', "
                f"got {self.escalate_on!r}"
            )
        if isinstance(self.escalation_seeds, (int, np.integer)):
            if self.escalation_seeds < 1:
                raise ValueError(
                    f"need at least 1 escalation seed, "
                    f"got {self.escalation_seeds}"
                )
        elif np.asarray(self.escalation_seeds).size < 1:
            raise ValueError("escalation seed array must be non-empty")

    def resolve_seeds(self, primary_seed: int) -> np.ndarray:
        """The escalation root seeds (derived when given as a count)."""
        if isinstance(self.escalation_seeds, (int, np.integer)):
            return derive_seed_array(
                primary_seed,
                "adaptive-escalation",
                np.arange(int(self.escalation_seeds), dtype=np.uint64),
            )
        return np.asarray(self.escalation_seeds)

    def should_escalate(self, primary_accepted: bool) -> bool:
        if self.escalate_on == "always":
            return True
        return self.escalate_on == "reject" and not primary_accepted


def _adaptive_details(
    policy: AdaptiveCheckPolicy,
    primary_accepted: bool,
    escalated: bool,
    per_seed: list[bool] | None,
    num_seeds: int,
    escalation_seconds: float,
) -> dict:
    return {
        "primary_accepted": bool(primary_accepted),
        "adaptive": {
            "escalated": escalated,
            "escalate_on": policy.escalate_on,
            "num_escalation_seeds": num_seeds,
            "per_seed_accepted": per_seed,
            "escalation_seconds": escalation_seconds,
        },
    }


def adaptive_sum_check(
    input_side,
    asserted_side,
    config: SumCheckConfig,
    seed: int = 0,
    policy: AdaptiveCheckPolicy | None = None,
    comm=None,
    operator: str = "+",
) -> CheckResult:
    """Theorem 1 check with 1-seed primary and policy-driven escalation.

    ``input_side`` / ``asserted_side`` are ``(keys, values)`` pairs or
    already-built :class:`~repro.core.multiseed.CondensedKV` objects; both
    sides are condensed exactly once, and the escalation evaluates its
    ``T`` seed lanes against the *same* aggregates — no second pass over
    raw data.  The primary verdict (and each escalation seed's verdict) is
    identical to a fresh single-seed checker under that seed; the primary
    verdict is globally agreed before the escalation decision, so all PEs
    escalate together.
    """
    policy = policy or AdaptiveCheckPolicy()
    cin = (
        input_side
        if isinstance(input_side, CondensedKV)
        else condense_kv(*input_side, operator)
    )
    cout = (
        asserted_side
        if isinstance(asserted_side, CondensedKV)
        else condense_kv(*asserted_side, operator)
    )
    primary = MultiSeedSumChecker(config, [seed], operator)
    diff = primary.difference(
        primary.local_tables_condensed(cin),
        primary.local_tables_condensed(cout),
    )
    primary_ok = primary.per_seed_verdicts(diff, comm)[0]

    roots = policy.resolve_seeds(seed)
    escalated = policy.should_escalate(primary_ok)
    per_seed = None
    escalation_seconds = 0.0
    if escalated:
        t0 = time.perf_counter()
        esc = MultiSeedSumChecker(config, roots, operator)
        esc_diff = esc.difference(
            esc.local_tables_condensed(cin),
            esc.local_tables_condensed(cout),
        )
        per_seed = esc.per_seed_verdicts(esc_diff, comm)
        escalation_seconds = time.perf_counter() - t0
    accepted = primary_ok and (per_seed is None or all(per_seed))
    return CheckResult(
        accepted=bool(accepted),
        checker="sum-aggregation-adaptive",
        details={
            "config": config.label(),
            "operator": operator,
            **_adaptive_details(
                policy,
                primary_ok,
                escalated,
                per_seed,
                int(roots.size),
                escalation_seconds,
            ),
        },
    )


def adaptive_permutation_check(
    e_side,
    o_side,
    seed: int = 0,
    policy: AdaptiveCheckPolicy | None = None,
    comm=None,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    extra_ok: bool = True,
    extra_details: dict | None = None,
    checker: str = "permutation-adaptive",
    seed_path: tuple = (),
) -> CheckResult:
    """Hash-sum permutation check with policy-driven escalation.

    Both sides are condensed to (uniques, counts) once; primary and
    escalation lanes run over those condensations.  ``extra_ok`` folds in
    a deterministic companion verdict (sortedness, placement) that is
    seed-free and therefore computed once by the caller; ``seed_path``
    maps root seeds to the underlying checker's fingerprint seeds (e.g.
    ``("groupby-perm",)``), keeping per-seed verdicts identical to fresh
    single-seed checks.
    """
    policy = policy or AdaptiveCheckPolicy()
    e_c = condense_side(e_side)
    o_c = condense_side(o_side)
    primary_seed = derive_seed(seed, *seed_path) if seed_path else seed
    primary = MultiSeedHashSumChecker(
        [primary_seed], iterations, hash_family, log_h
    ).check_condensed(e_c, o_c, comm)
    primary_ok = primary.accepted and bool(extra_ok)

    roots = policy.resolve_seeds(seed)
    # Escalation keys on the *seeded* fingerprint verdict alone: a failed
    # deterministic companion (sortedness, placement) is exact and needs
    # no multi-seed confirmation, so re-hashing T lanes for it would be
    # pure waste.  per_seed likewise reports the fingerprint lanes only —
    # the deterministic verdict lives in extra_details / primary_accepted.
    escalated = policy.should_escalate(primary.accepted)
    per_seed = None
    escalation_seconds = 0.0
    if escalated:
        t0 = time.perf_counter()
        esc_seeds = (
            derive_seed_array(roots, *seed_path) if seed_path else roots
        )
        esc = MultiSeedHashSumChecker(
            esc_seeds, iterations, hash_family, log_h
        ).check_condensed(e_c, o_c, comm)
        per_seed = esc.details["per_seed_accepted"]
        escalation_seconds = time.perf_counter() - t0
    accepted = primary_ok and (per_seed is None or all(per_seed))
    return CheckResult(
        accepted=bool(accepted),
        checker=checker,
        details={
            **(extra_details or {}),
            "iterations": iterations,
            "hash_family": hash_family,
            "log_h": log_h,
            **_adaptive_details(
                policy,
                primary_ok,
                escalated,
                per_seed,
                int(roots.size),
                escalation_seconds,
            ),
        },
    )


def hashsum_only_kwargs(kwargs: dict) -> dict:
    """Validate ``check_sort``/``check_union``-style kwargs for adaptive use.

    The multi-seed machinery exists only for the hash-sum fingerprint, so
    the adaptive paths accept ``method="hashsum"`` at most and none of the
    polynomial/GF(2^64) knobs — rejected here with a pointed error instead
    of a ``TypeError`` from an inner signature.
    """
    kwargs = dict(kwargs)
    method = kwargs.pop("method", "hashsum")
    if method != "hashsum":
        raise ValueError(
            "adaptive checking supports only the hash-sum fingerprint "
            f"(method='hashsum'), got method={method!r}"
        )
    unsupported = set(kwargs) - {"iterations", "hash_family", "log_h"}
    if unsupported:
        raise ValueError(
            "adaptive checking does not support "
            f"{sorted(unsupported)} (hash-sum fingerprint only)"
        )
    return kwargs


def adaptive_sort_check(
    e_values,
    o_values,
    seed: int = 0,
    policy: AdaptiveCheckPolicy | None = None,
    comm=None,
    **kwargs,
) -> CheckResult:
    """Theorem 7 with adaptive escalation.

    Global sortedness is deterministic and runs once; the permutation
    fingerprint escalates per the policy over the condensed element
    counts.  Shared by :func:`checked_sort` and ``DIA.sort_checked``.
    """
    sortedness = check_globally_sorted(o_values, comm=comm)
    return adaptive_permutation_check(
        e_values,
        o_values,
        seed=seed,
        policy=policy,
        comm=comm,
        extra_ok=sortedness.accepted,
        extra_details={"sorted": sortedness.accepted, "method": "hashsum"},
        checker="sort-adaptive",
        **hashsum_only_kwargs(kwargs),
    )


def adaptive_groupby_check(
    pre_kv,
    post_kv,
    partitioner,
    seed: int = 0,
    policy: AdaptiveCheckPolicy | None = None,
    comm=None,
    **kwargs,
) -> CheckResult:
    """Corollary 14 with adaptive escalation.

    Records are encoded once, the placement test (deterministic) runs
    once, and the permutation fingerprint escalates over the shared
    record condensation — the adaptive sibling of
    :func:`~repro.core.groupby_checker.check_groupby_redistribution` and
    its multi-seed variant, sharing their ``"groupby-perm"`` seed tree.
    """
    rank = comm.rank if comm is not None else 0
    post_keys = np.asarray(post_kv[0])
    placement_ok = bool(np.all(partitioner(post_keys) == rank))
    if comm is not None:
        placement_ok = comm.allreduce(placement_ok, op=ops.LAND)
    return adaptive_permutation_check(
        encode_records(*pre_kv),
        encode_records(*post_kv),
        seed=seed,
        policy=policy,
        comm=comm,
        extra_ok=placement_ok,
        extra_details={"placement_ok": placement_ok, "invasive": True},
        checker="groupby-redistribution-adaptive",
        seed_path=("groupby-perm",),
        **hashsum_only_kwargs(kwargs),
    )


def adaptive_zip_check(
    s1,
    s2,
    zipped_first,
    zipped_second,
    seed: int = 0,
    policy: AdaptiveCheckPolicy | None = None,
    comm=None,
    iterations: int = 2,
) -> CheckResult:
    """Theorem 11 check with policy-driven escalation.

    The zip fingerprint is *positional* (order-sensitive inner products),
    so unlike the sum/permutation checkers it admits no unique-key
    condensation: each escalation seed costs a fresh fingerprint pass.
    That is exactly why it sits behind the adaptive policy — the ``T``-pass
    price is paid only on a suspicious verdict, never inline.
    """
    from repro.core.zip_checker import check_zip

    policy = policy or AdaptiveCheckPolicy()
    primary = check_zip(
        s1, s2, zipped_first, zipped_second,
        iterations=iterations, seed=seed, comm=comm,
    )
    primary_ok = primary.accepted

    roots = policy.resolve_seeds(seed)
    escalated = policy.should_escalate(primary_ok)
    per_seed = None
    escalation_seconds = 0.0
    if escalated:
        t0 = time.perf_counter()
        per_seed = [
            check_zip(
                s1, s2, zipped_first, zipped_second,
                iterations=iterations, seed=int(s), comm=comm,
            ).accepted
            for s in roots
        ]
        escalation_seconds = time.perf_counter() - t0
    accepted = primary_ok and (per_seed is None or all(per_seed))
    return CheckResult(
        accepted=bool(accepted),
        checker="zip-adaptive",
        details={
            "iterations": iterations,
            **_adaptive_details(
                policy,
                primary_ok,
                escalated,
                per_seed,
                int(roots.size),
                escalation_seconds,
            ),
        },
    )


def checked_reduce_by_key(
    comm,
    keys: np.ndarray,
    values: np.ndarray,
    config: SumCheckConfig,
    seed: int = 0,
    partitioner=None,
    manipulator=None,
    manipulator_rng=None,
    policy: AdaptiveCheckPolicy | None = None,
):
    """ReduceByKey + §4 checker in one pipeline.

    Returns ``(result_keys, result_values, CheckResult, CheckedRunStats)``.
    With a ``manipulator`` the fault is injected *inside* the black box (the
    checker still sees the original input), emulating a silent error in the
    reduction.  With a ``policy`` the check is adaptive: the input is
    condensed once as it streams into the operation, a single seed settles
    inline, and escalation (on the policy's trigger) re-checks ``T`` seeds
    against the same condensed aggregates — no second pass over the data.
    """
    if policy is not None:
        t0 = time.perf_counter()
        cin = condense_kv(keys, values)  # checker taps the input stream
        t1 = time.perf_counter()
        op_keys, op_values = keys, values
        if manipulator is not None:
            rng = manipulator_rng or default_generator(seed)
            manipulated = manipulator.apply(rng, keys, values)
            op_keys, op_values = manipulated.keys, manipulated.values
        out_keys, out_values = reduce_by_key(
            comm, op_keys, op_values, partitioner
        )
        t2 = time.perf_counter()
        result = adaptive_sum_check(
            cin, (out_keys, out_values), config, seed, policy, comm
        )
        t3 = time.perf_counter()
        adaptive = result.details["adaptive"]
        stats = CheckedRunStats(
            operation_seconds=t2 - t1,
            checker_seconds=(t1 - t0)
            + (t3 - t2)
            - adaptive["escalation_seconds"],
            escalated=adaptive["escalated"],
            escalation_seconds=adaptive["escalation_seconds"],
            escalation_seeds=(
                adaptive["num_escalation_seeds"]
                if adaptive["escalated"]
                else 0
            ),
        )
        return out_keys, out_values, result, stats

    checker = SumAggregationChecker(config, seed)

    t0 = time.perf_counter()
    t_in = checker.local_tables(keys, values)  # checker taps the input stream
    t1 = time.perf_counter()

    op_keys, op_values = keys, values
    if manipulator is not None:
        rng = manipulator_rng or default_generator(seed)
        manipulated = manipulator.apply(rng, keys, values)
        op_keys, op_values = manipulated.keys, manipulated.values
    out_keys, out_values = reduce_by_key(comm, op_keys, op_values, partitioner)
    t2 = time.perf_counter()

    t_out = checker.local_tables(out_keys, out_values)
    diff = checker.difference(t_in, t_out)
    if comm is None:
        verdict = not np.any(diff)
    else:

        def wire_op(a, b):
            return checker.pack(
                checker.combine(checker.unpack(a), checker.unpack(b))
            )

        combined = comm.reduce(checker.pack(diff), wire_op, root=0)
        verdict = None
        if comm.rank == 0:
            verdict = not np.any(checker.unpack(combined))
        verdict = comm.bcast(verdict, root=0)
    t3 = time.perf_counter()

    result = CheckResult(
        accepted=bool(verdict),
        checker="sum-aggregation",
        details={"config": config.label(), "pipelined": True},
    )
    stats = CheckedRunStats(
        operation_seconds=t2 - t1,
        checker_seconds=(t1 - t0) + (t3 - t2),
    )
    return out_keys, out_values, result, stats


def checked_sort(
    comm,
    values: np.ndarray,
    iterations: int = 2,
    hash_family: str = "Mix",
    log_h: int = 32,
    seed: int = 0,
    manipulator=None,
    manipulator_rng=None,
    policy: AdaptiveCheckPolicy | None = None,
):
    """Sample sort + Theorem 7 checker in one pipeline.

    Returns ``(sorted_local, CheckResult, CheckedRunStats)``.  With a
    ``policy``, the permutation fingerprint escalates adaptively (the
    sortedness half of Theorem 7 is deterministic and runs once).
    """
    t0 = time.perf_counter()
    op_input = values
    if manipulator is not None:
        rng = manipulator_rng or default_generator(seed)
        op_input = manipulator.apply(rng, values).sequence
    out = sample_sort(comm, op_input)
    t1 = time.perf_counter()
    if policy is not None:
        result = adaptive_sort_check(
            values,
            out,
            seed=seed,
            policy=policy,
            comm=comm,
            iterations=iterations,
            hash_family=hash_family,
            log_h=log_h,
        )
    else:
        result = check_sort(
            values,
            out,
            iterations=iterations,
            hash_family=hash_family,
            log_h=log_h,
            seed=seed,
            comm=comm,
        )
    t2 = time.perf_counter()
    escalation = (
        result.details["adaptive"]
        if policy is not None
        else {"escalated": False, "escalation_seconds": 0.0,
              "num_escalation_seeds": 0}
    )
    stats = CheckedRunStats(
        operation_seconds=t1 - t0,
        checker_seconds=(t2 - t1) - escalation["escalation_seconds"],
        escalated=escalation["escalated"],
        escalation_seconds=escalation["escalation_seconds"],
        escalation_seeds=(
            escalation["num_escalation_seeds"]
            if escalation["escalated"]
            else 0
        ),
    )
    return out, result, stats


def checked_join(
    comm,
    r_kv,
    s_kv,
    mode: str = "hash",
    partitioner=None,
    iterations: int = 2,
    seed: int = 0,
):
    """Distributed join + Corollary 15 (invasive redistribution) checker.

    ``mode="hash"`` runs a hash join; ``mode="range"`` a range-partitioned
    sort-merge join.  Returns ``(JoinExchange, CheckResult, stats)``.
    """
    from repro.core.groupby_checker import default_partitioner
    from repro.core.join_checker import check_join_redistribution
    from repro.dataflow.ops.join import hash_join
    from repro.dataflow.ops.sort_merge_join import sort_merge_join

    t0 = time.perf_counter()
    if mode == "hash":
        if partitioner is None:
            size = comm.size if comm is not None else 1
            partitioner = default_partitioner(size)
        jx = hash_join(comm, r_kv, s_kv, partitioner=partitioner)
    elif mode == "range":
        jx = sort_merge_join(comm, r_kv, s_kv)
    else:
        raise ValueError(f"mode must be 'hash' or 'range', got {mode!r}")
    t1 = time.perf_counter()
    result = check_join_redistribution(
        r_kv,
        s_kv,
        jx.r_post,
        jx.s_post,
        mode=mode,
        partitioner=partitioner,
        comm=comm,
        iterations=iterations,
        seed=seed,
    )
    t2 = time.perf_counter()
    stats = CheckedRunStats(
        operation_seconds=t1 - t0, checker_seconds=t2 - t1
    )
    return jx, result, stats

"""Window repair: bounded re-execution of a rejected streaming window.

The checkers prove *that* a window's asserted aggregates are wrong;
:mod:`repro.core.localize` narrows *where*.  This module closes the loop
the way Yoon & Liu's partial re-execution does for MapReduce: re-run only
the implicated slice, splice it into the retained output, and re-settle —
escalating to a full window re-execution (and to more verification seeds)
only as attempts fail.  A window that exhausts its retry budget surfaces
as a permanent :class:`QuarantinedWindow`; the streaming layer keeps
settling later windows either way.

The ``reexecute`` callback is the caller's bridge back to the window's
source data::

    def reexecute(window_id: int, key_ranges: list[tuple[int, int]]):
        # Return this PE's complete input chunks for the window, as an
        # iterable of (keys, values) pairs.  ``key_ranges`` (inclusive,
        # possibly empty when localization failed) names the implicated
        # slice so callers with sliced storage can prefetch narrowly —
        # the repair engine re-filters, so returning everything is
        # always correct.
        ...

Every attempt re-verifies the *full* window (complete re-executed input
against the patched or recomputed output) under fresh derived seeds, so a
wrong localization cannot smuggle a partially-patched window through: the
re-settle rejects and the next attempt recomputes from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.localize import FaultReport
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.core.streams import ZipCheckerStream
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.ops.zip_op import zip_arrays
from repro.util.rng import derive_seed, derive_seed_array

__all__ = [
    "QuarantinedWindow",
    "RepairOutcome",
    "RepairPolicy",
    "repair_reduce_window",
    "repair_sum_window",
    "repair_zip_window",
]


@dataclass
class RepairPolicy:
    """Bounded-retry repair: attempt cap plus per-attempt seed escalation.

    Attempt ``i`` re-settles under ``min(seed_cap, initial_seeds ·
    seed_growth^i)`` fresh seeds derived from the window seed, so every
    retry is judged more sternly than the last (a wrongly-ACCEPTed repair
    survives with probability δ^T for growing ``T``).  ``partial`` keeps
    Yoon-&-Liu-style slice re-execution for every attempt but the final
    one, which always recomputes the whole window; localization knobs are
    forwarded to :func:`repro.core.localize.localize_fault`.
    """

    max_attempts: int = 3
    initial_seeds: int = 2
    seed_growth: int = 2
    seed_cap: int = 16
    partial: bool = True
    localize: bool = True
    localization_seeds: int = 2
    max_rounds: int = 64
    max_ranges: int = 32

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.initial_seeds < 1 or self.seed_cap < 1:
            raise ValueError("need at least one verification seed")
        if self.seed_growth < 1:
            raise ValueError(f"seed_growth must be >= 1, got {self.seed_growth}")
        if self.localization_seeds < 1:
            raise ValueError("need at least one localization seed")

    def num_seeds(self, attempt: int) -> int:
        """Verification seed count for (0-based) ``attempt``."""
        return min(self.seed_cap, self.initial_seeds * self.seed_growth**attempt)

    def attempt_seed_roots(self, window_seed: int, attempt: int) -> np.ndarray:
        """Fresh distinct root seeds for ``attempt``'s re-settle."""
        root = derive_seed(window_seed, "repair-attempt", attempt)
        return derive_seed_array(
            root,
            "repair-seed",
            np.arange(self.num_seeds(attempt), dtype=np.uint64),
        )


@dataclass
class QuarantinedWindow:
    """A window that stayed rejected through every repair attempt."""

    window: int
    attempts: int
    report: FaultReport | None
    verdicts: list[CheckResult] = field(default_factory=list)


@dataclass
class RepairOutcome:
    """What one rejected window's repair loop produced."""

    window: int
    healed: bool
    attempts: int
    report: FaultReport | None
    verdicts: list[CheckResult]
    output: tuple | None
    repair_seconds: float

    def quarantine(self) -> QuarantinedWindow:
        """The permanent record for a failed repair."""
        return QuarantinedWindow(
            window=self.window,
            attempts=self.attempts,
            report=self.report,
            verdicts=self.verdicts,
        )


def _range_mask(keys: np.ndarray, ranges: list[tuple[int, int]]) -> np.ndarray:
    """Mask of ``keys`` inside the union of inclusive key ranges."""
    mask = np.zeros(keys.size, dtype=bool)
    for a, b in ranges:
        mask |= (keys >= np.uint64(a)) & (keys <= np.uint64(b))
    return mask


def _coerce_kv(keys, values) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.asarray(keys, dtype=np.uint64).ravel(),
        np.asarray(values, dtype=np.int64).ravel(),
    )


def _gather_chunks(chunks) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate a reexecute callback's (keys, values) chunk iterable."""
    ks: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for keys, values in chunks:
        k, v = _coerce_kv(keys, values)
        ks.append(k)
        vs.append(v)
    if not ks:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
    return np.concatenate(ks), np.concatenate(vs)


def _patched_output(
    comm, old_output, keys, values, ranges, partitioner, recompute
) -> tuple[np.ndarray, np.ndarray]:
    """Splice a recomputed implicated slice into the retained output.

    Keys outside the implicated ranges keep their (checker-trusted only
    insofar as the re-settle confirms them) old aggregates; keys inside
    are recomputed from the re-executed input through the same
    partitioned exchange, so they land on the same home PEs as a clean
    run and the merged result is sorted-unique per PE exactly like
    ``reduce_by_key``'s.
    """
    sel = _range_mask(keys, ranges)
    new_k, new_v = recompute(comm, keys[sel], values[sel], partitioner)
    old_k, old_v = _coerce_kv(*old_output)
    keep = ~_range_mask(old_k, ranges)
    pk = np.concatenate([old_k[keep], new_k])
    pv = np.concatenate([old_v[keep], new_v])
    order = np.argsort(pk, kind="stable")
    return pk[order], pv[order]


def repair_reduce_window(
    comm,
    window: int,
    window_seed: int,
    config: SumCheckConfig,
    reexecute,
    old_output,
    policy: RepairPolicy,
    report: FaultReport | None = None,
    partitioner=None,
    operator: str = "+",
    recompute=None,
) -> RepairOutcome:
    """Repair one rejected ReduceByKey window under bounded retry.

    Attempts re-execute the window's source through ``reexecute`` and
    either patch the implicated ``report.key_ranges`` into ``old_output``
    (earlier attempts, when localization succeeded) or recompute the
    window outright (the final attempt, and whenever no usable report
    exists).  Each attempt re-settles the complete window under
    :meth:`RepairPolicy.attempt_seed_roots`; the first ACCEPT wins.  All
    PEs must call collectively — every verdict is agreed before the next
    attempt starts, so the loop stays in lockstep.

    ``recompute(comm, keys, values, partitioner)`` replaces the default
    :func:`reduce_by_key` aggregation — the hook the chaos harness uses
    to model a *persistently* broken operation (re-execution recomputes
    through the same faulty black box, so the re-settle keeps rejecting
    and the window quarantines instead of healing).
    """
    t0 = time.perf_counter()
    if recompute is None:
        recompute = reduce_by_key
    ranges = (
        list(report.key_ranges)
        if report is not None and report.localized
        else []
    )
    verdicts: list[CheckResult] = []
    attempts = 0
    healed = False
    output = None
    for attempt in range(policy.max_attempts):
        attempts = attempt + 1
        keys, values = _gather_chunks(reexecute(window, ranges))
        use_partial = (
            policy.partial
            and bool(ranges)
            and attempt < policy.max_attempts - 1
        )
        if use_partial:
            output = _patched_output(
                comm, old_output, keys, values, ranges, partitioner, recompute
            )
        else:
            output = recompute(comm, keys, values, partitioner)
        roots = policy.attempt_seed_roots(window_seed, attempt)
        checker = MultiSeedSumChecker(config, roots, operator)
        diff = checker.difference(
            checker.local_tables_condensed(
                condense_kv(keys, values, operator)
            ),
            checker.local_tables_condensed(
                condense_kv(output[0], output[1], operator)
            ),
        )
        per_seed = checker.per_seed_verdicts(diff, comm)
        healed = all(per_seed)
        verdicts.append(
            CheckResult(
                accepted=bool(healed),
                checker="repair-resettle",
                details={
                    "config": config.label(),
                    "operator": operator,
                    "window": window,
                    "attempt": attempt,
                    "partial": use_partial,
                    "num_seeds": int(roots.size),
                    "per_seed_accepted": [bool(x) for x in per_seed],
                },
            )
        )
        if healed:
            break
    return RepairOutcome(
        window=window,
        healed=bool(healed),
        attempts=attempts,
        report=report,
        verdicts=verdicts,
        output=output if healed else None,
        repair_seconds=time.perf_counter() - t0,
    )


def _gather_value_chunks(chunks) -> np.ndarray:
    """Concatenate a sum reexecute callback's value-chunk iterable."""
    parts = [np.asarray(c, dtype=np.int64).ravel() for c in chunks]
    parts = [p for p in parts if p.size]
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts)


def repair_sum_window(
    comm,
    window: int,
    window_seed: int,
    config: SumCheckConfig,
    reexecute,
    policy: RepairPolicy,
    recompute=None,
) -> RepairOutcome:
    """Repair one rejected windowed-sum window under bounded retry.

    The sum checker condenses the whole window to a single key (every
    element is a ``(0, value)`` pair), so there is nothing to localize
    and no partial splice: every attempt is a full re-execution.
    ``reexecute(window_id, key_ranges)`` must return this PE's complete
    *value* chunks for the window (``key_ranges`` is always empty here);
    ``recompute(comm, values)`` overrides the default allreduce total.
    Each attempt re-settles input vs asserted total under
    :meth:`RepairPolicy.attempt_seed_roots`; the first ACCEPT heals the
    window with the re-executed total.
    """
    t0 = time.perf_counter()
    rank = comm.rank if comm is not None else 0
    verdicts: list[CheckResult] = []
    attempts = 0
    healed = False
    total = None
    for attempt in range(policy.max_attempts):
        attempts = attempt + 1
        values = _gather_value_chunks(reexecute(window, []))
        if recompute is not None:
            total = int(recompute(comm, values))
        else:
            local = int(np.sum(values, dtype=np.int64))
            if comm is None:
                total = local
            else:
                total = comm.allreduce(local, op=ops.SUM)
        roots = policy.attempt_seed_roots(window_seed, attempt)
        checker = MultiSeedSumChecker(config, roots)
        if rank == 0:
            asserted = condense_kv(
                np.zeros(1, dtype=np.uint64), np.array([total], dtype=np.int64)
            )
        else:
            asserted = condense_kv(
                np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
            )
        diff = checker.difference(
            checker.local_tables_condensed(
                condense_kv(np.zeros(values.shape, dtype=np.uint64), values)
            ),
            checker.local_tables_condensed(asserted),
        )
        per_seed = checker.per_seed_verdicts(diff, comm)
        healed = all(per_seed)
        verdicts.append(
            CheckResult(
                accepted=bool(healed),
                checker="repair-resettle-sum",
                details={
                    "config": config.label(),
                    "window": window,
                    "attempt": attempt,
                    "num_seeds": int(roots.size),
                    "per_seed_accepted": [bool(x) for x in per_seed],
                },
            )
        )
        if healed:
            break
    return RepairOutcome(
        window=window,
        healed=bool(healed),
        attempts=attempts,
        report=None,
        verdicts=verdicts,
        output=total if healed else None,
        repair_seconds=time.perf_counter() - t0,
    )


def _gather_zip_chunks(chunks) -> np.ndarray:
    """Concatenate one side of a zip reexecute callback's chunk iterable."""
    parts = [np.asarray(c).ravel() for c in chunks]
    parts = [p for p in parts if p.size]
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts)


def repair_zip_window(
    comm,
    window: int,
    window_seed: int,
    iterations: int,
    reexecute,
    policy: RepairPolicy,
    recompute=None,
) -> RepairOutcome:
    """Repair one rejected Zip window under bounded retry.

    The Theorem 11 positional fingerprint carries no per-key carrier to
    bisect, so zip repair is always a full re-execution: ``reexecute(
    window_id, key_ranges)`` must return ``(chunks1, chunks2)`` — this
    PE's complete input chunks for both streams (``key_ranges`` is
    always empty) — and each attempt re-runs the zip exchange and
    re-settles the window's fingerprints under fresh
    :meth:`RepairPolicy.attempt_seed_roots`.  ``recompute(comm, s1,
    s2)`` overrides the default :func:`zip_arrays` call and must return
    ``(first, second, (off1, off2))``.
    """
    t0 = time.perf_counter()
    verdicts: list[CheckResult] = []
    attempts = 0
    healed = False
    output = None
    for attempt in range(policy.max_attempts):
        attempts = attempt + 1
        chunks1, chunks2 = reexecute(window, [])
        s1 = _gather_zip_chunks(chunks1)
        s2 = _gather_zip_chunks(chunks2)
        if recompute is not None:
            first, second, (off1, off2) = recompute(comm, s1, s2)
        else:
            first, second, (off1, off2) = zip_arrays(
                comm, s1, s2, return_offsets=True
            )
        roots = policy.attempt_seed_roots(window_seed, attempt)
        stream = ZipCheckerStream(
            roots, iterations, offsets=(off1, off2, off1)
        )
        stream.feed_input(first=s1, second=s2)
        stream.feed_output(first, second)
        verdict = stream.settle(comm)
        per_seed = verdict.details["per_seed_accepted"]
        healed = all(per_seed)
        verdicts.append(
            CheckResult(
                accepted=bool(healed),
                checker="repair-resettle-zip",
                details={
                    "window": window,
                    "attempt": attempt,
                    "iterations": iterations,
                    "num_seeds": int(roots.size),
                    "per_seed_accepted": [bool(x) for x in per_seed],
                },
            )
        )
        if healed:
            output = (first, second)
            break
    return RepairOutcome(
        window=window,
        healed=bool(healed),
        attempts=attempts,
        report=None,
        verdicts=verdicts,
        output=output,
        repair_seconds=time.perf_counter() - t0,
    )

"""Streaming DIAs: chunked (possibly unbounded) feeds with windowed checks.

The batch :class:`~repro.dataflow.dia.DIA` materializes every array before
any checker sees a byte.  This module is the §7-faithful alternative: a
:class:`StreamingDIA` is an iterator of local chunks (bounded memory, no
global materialization), and every checked operation processes the stream
in **windows** of ``chunks_per_window`` chunks:

* chunks are forwarded to a :mod:`repro.core.streams` checker stream *as
  they arrive* (the checker folds them into condensed per-key aggregates —
  memory O(unique keys per window));
* the operation itself runs once per window (local pre-aggregation also
  happens chunk-at-a-time);
* the verdict **settles once per window** — one data-bearing collective
  per window, not per chunk — and with an
  :class:`~repro.dataflow.pipeline.AdaptiveCheckPolicy` the escalation
  lanes reuse the window's condensed aggregates (no chunk is re-read).

Per-window :class:`~repro.dataflow.pipeline.CheckedRunStats` accumulate
into a run-level record (``windows``, ``elements_fed``, merged overhead
ratio) on the returned :class:`StreamingCheckedRun`, and every window
leaves a :class:`WindowRecord` in ``window_history`` — verdict, seeds
used, escalation, and (for :meth:`reduce_by_key_checked` with a
``reexecute`` callback) the localization/repair trail of rejected
windows.  A rejected window never stalls its successors: it is localized
(:mod:`repro.core.localize`), re-executed under the bounded retry of a
:class:`~repro.dataflow.repair.RepairPolicy`, and either healed in place
or surfaced as a permanent
:class:`~repro.dataflow.repair.QuarantinedWindow` while the stream keeps
settling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.comm import ops
from repro.core.base import CheckResult
from repro.core.localize import FaultReport, localize_fault
from repro.core.params import SumCheckConfig
from repro.core.streams import SumCheckerStream, ZipCheckerStream
from repro.core.sum_checker import SumAggregationChecker
from repro.dataflow.ops.reduce_by_key import local_aggregate, reduce_by_key
from repro.dataflow.ops.zip_op import zip_arrays
from repro.dataflow.pipeline import AdaptiveCheckPolicy, CheckedRunStats
from repro.dataflow.repair import (
    QuarantinedWindow,
    RepairPolicy,
    repair_reduce_window,
    repair_sum_window,
    repair_zip_window,
)
from repro.util.rng import derive_seed, derive_seed_array

_DEFAULT_CONFIG = SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


@dataclass
class WindowRecord:
    """One window's verdict history entry.

    ``verdict`` is the window's *final* verdict (the healing re-settle
    when a repair succeeded; the original rejection otherwise) and
    ``seeds_used`` every checker root seed spent on the window — primary,
    escalation lanes, and repair re-settle roots in order.  ``report``
    carries the :class:`~repro.core.localize.FaultReport` when a failed
    verdict was localized.
    """

    window: int
    verdict: CheckResult
    accepted: bool
    seed: int
    seeds_used: list[int]
    escalated: bool = False
    escalation_seeds: int = 0
    repair_attempts: int = 0
    repaired: bool = False
    quarantined: bool = False
    report: FaultReport | None = None


@dataclass
class StreamingCheckedRun:
    """Result of a windowed checked operation over a chunked stream.

    ``outputs[w]`` is window ``w``'s operation result (shape depends on
    the operation; empty when the run was started with
    ``keep_outputs=False`` for unbounded feeds; the healed result for a
    repaired window), ``verdicts[w]`` its final :class:`CheckResult`,
    ``window_history[w]`` the full :class:`WindowRecord` (verdict, seeds
    used, escalation, repair trail), ``quarantined`` the permanently
    failed windows, and ``stats`` the merged per-window
    :class:`CheckedRunStats` (``stats.windows`` settled windows,
    ``stats.elements_fed`` stream elements consumed).
    """

    outputs: list = field(default_factory=list)
    verdicts: list[CheckResult] = field(default_factory=list)
    stats: CheckedRunStats = field(
        default_factory=lambda: CheckedRunStats(0.0, 0.0)
    )
    window_history: list[WindowRecord] = field(default_factory=list)
    quarantined: list[QuarantinedWindow] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        """True iff every settled window's final verdict accepted."""
        return all(v.accepted for v in self.verdicts)

    def _add_window(self, output, verdict, stats, keep_outputs, record=None):
        if keep_outputs:
            self.outputs.append(output)
        self.verdicts.append(verdict)
        self.stats = self.stats.merge(stats)
        if record is not None:
            self.window_history.append(record)


def _window_seed(seed: int, window: int) -> int:
    """Fresh checker randomness per window from one root seed."""
    return derive_seed(seed, "stream-window", window)


class _ChunkSource:
    """Shared chunk plumbing of the streaming DIAs."""

    def __init__(self, comm, chunks):
        self.comm = comm
        self._chunks = iter(chunks)

    def _pull_window(self, chunks_per_window: int) -> list:
        """Up to ``chunks_per_window`` local chunks (may be empty at EOF)."""
        if chunks_per_window < 1:
            raise ValueError(
                f"chunks_per_window must be >= 1, got {chunks_per_window}"
            )
        window = []
        for _ in range(chunks_per_window):
            try:
                window.append(next(self._chunks))
            except StopIteration:
                break
        return window

    def _window_live(self, window: list) -> bool:
        """Global agreement whether ANY PE still has data this window.

        PEs whose local stream ran dry keep participating in the window's
        collectives with empty feeds until every PE is dry — windows are
        a global construct.
        """
        has_local = len(window) > 0
        if self.comm is None:
            return has_local
        return self.comm.allreduce(has_local, op=ops.LOR)


class StreamingDIA(_ChunkSource):
    """One PE's handle on a chunked stream of single-column elements.

    ``chunks`` is any iterable of local numpy arrays — a list, a
    generator over a socket, an unbounded feed.  Nothing is materialized
    beyond the current window.
    """

    @classmethod
    def from_chunks(cls, comm, chunks) -> "StreamingDIA":
        """Wrap an iterable of local array chunks."""
        return cls(comm, chunks)

    @classmethod
    def from_generator(cls, comm, generator_fn, *args) -> "StreamingDIA":
        """Wrap a zero-materialization chunk generator (called lazily)."""
        return cls(comm, generator_fn(*args))

    def map(self, fn) -> "StreamingDIA":
        """Lazily apply a vectorized transform to every chunk."""
        return StreamingDIA(self.comm, (fn(c) for c in self._chunks))

    def key_by(self, key_fn) -> "StreamingKeyValueDIA":
        """Lazily derive (key, value) chunk pairs: keys = key_fn(chunk)."""
        return StreamingKeyValueDIA(
            self.comm, ((key_fn(c), c) for c in self._chunks)
        )

    # -- checked windowed operations ----------------------------------------
    def sum_checked(
        self,
        config: SumCheckConfig | None = None,
        seed: int = 0,
        chunks_per_window: int = 8,
        policy: AdaptiveCheckPolicy | None = None,
        keep_outputs: bool = True,
        reexecute=None,
        repair: RepairPolicy | None = None,
        fault=None,
    ) -> StreamingCheckedRun:
        """Windowed global sum with the §4 checker (key 0 for all elements).

        Each window's output is the window's global total; the checker
        sees every element as a ``(0, value)`` pair (condensed state is a
        single key) and the asserted total as a single output pair on
        PE 0.  One settle per window.

        A ``reexecute(window_id, key_ranges)`` callback heals rejected
        windows like :meth:`StreamingKeyValueDIA.reduce_by_key_checked`
        does, except that the single-key condensation leaves nothing to
        localize: every :func:`~repro.dataflow.repair.repair_sum_window`
        attempt is a full re-execution of the window's *value* chunks
        (``key_ranges`` is always empty), re-settled under escalating
        seeds, with a :class:`~repro.dataflow.repair.QuarantinedWindow`
        on exhaustion.
        """
        config = config or _DEFAULT_CONFIG
        run = StreamingCheckedRun()
        w = 0
        while True:
            window = self._pull_window(chunks_per_window)
            if not self._window_live(window):
                break
            output, verdict, stats, record, quarantine = settle_sum_window(
                self.comm,
                window,
                config=config,
                seed_w=_window_seed(seed, w),
                window=w,
                policy=policy,
                reexecute=reexecute,
                repair=repair,
                fault=fault,
            )
            if quarantine is not None:
                run.quarantined.append(quarantine)
            run._add_window(output, verdict, stats, keep_outputs, record)
            w += 1
        return run

    def zip_checked(
        self,
        other: "StreamingDIA",
        seed: int = 0,
        iterations: int = 2,
        chunks_per_window: int = 8,
        policy: AdaptiveCheckPolicy | None = None,
        keep_outputs: bool = True,
        reexecute=None,
        repair: RepairPolicy | None = None,
        fault=None,
    ) -> StreamingCheckedRun:
        """Windowed Zip with the Theorem 11 checker, one settle per window.

        Both streams advance in lockstep windows; within a window the zip
        exchange computes the PE offsets once (one batched exscan) and the
        checker stream reuses them — the positional fingerprint admits no
        condensation, so the window's arrays are retained exactly until
        its settle (and, with a ``policy``, its escalation) completes.

        A ``reexecute(window_id, key_ranges)`` callback must return
        ``(chunks1, chunks2)`` — this PE's complete chunks for both
        streams of the window — and heals rejected windows through
        :func:`~repro.dataflow.repair.repair_zip_window`: the fingerprint
        carries no key ranges to bisect, so every attempt re-runs the zip
        exchange outright and re-settles under escalating seeds.
        """
        run = StreamingCheckedRun()
        w = 0
        while True:
            window1 = self._pull_window(chunks_per_window)
            window2 = other._pull_window(chunks_per_window)
            live = self._window_live(window1 + window2)
            if not live:
                break
            output, verdict, stats, record, quarantine = settle_zip_window(
                self.comm,
                window1,
                window2,
                seed_w=_window_seed(seed, w),
                window=w,
                iterations=iterations,
                policy=policy,
                reexecute=reexecute,
                repair=repair,
                fault=fault,
            )
            if quarantine is not None:
                run.quarantined.append(quarantine)
            run._add_window(output, verdict, stats, keep_outputs, record)
            w += 1
        return run


class StreamingKeyValueDIA(_ChunkSource):
    """One PE's handle on a chunked stream of (keys, values) pairs.

    ``chunks`` is an iterable of ``(keys, values)`` array pairs.
    """

    @classmethod
    def from_chunks(cls, comm, chunks) -> "StreamingKeyValueDIA":
        """Wrap an iterable of local (keys, values) chunk pairs."""
        return cls(comm, chunks)

    @classmethod
    def from_generator(
        cls, comm, generator_fn, *args
    ) -> "StreamingKeyValueDIA":
        """Wrap a zero-materialization (keys, values) chunk generator."""
        return cls(comm, generator_fn(*args))

    def map_pairs(self, fn) -> "StreamingKeyValueDIA":
        """Lazily apply a vectorized (keys, values) -> (keys, values) map."""
        return StreamingKeyValueDIA(
            self.comm, (fn(k, v) for k, v in self._chunks)
        )

    def reduce_by_key_checked(
        self,
        config: SumCheckConfig | None = None,
        seed: int = 0,
        partitioner=None,
        chunks_per_window: int = 8,
        policy: AdaptiveCheckPolicy | None = None,
        keep_outputs: bool = True,
        reexecute=None,
        repair: RepairPolicy | None = None,
        fault=None,
    ) -> StreamingCheckedRun:
        """Windowed ReduceByKey + Theorem 1 checker, one settle per window.

        Every chunk is (a) folded into the window's checker stream and
        (b) locally pre-aggregated — both O(unique keys) — then the window
        runs one key-partitioned exchange and settles one verdict.  With a
        ``policy`` the settle is adaptive: 1 seed inline, escalation lanes
        evaluated against the window's already-condensed aggregates.

        With a ``reexecute(window_id, key_ranges)`` callback (see
        :mod:`repro.dataflow.repair` for the contract) a rejected window
        is localized against the stream's retained condensations, then
        repaired under bounded retry and either healed in place (its
        output and verdict replaced by the accepted re-execution) or
        appended to ``run.quarantined`` — subsequent windows settle
        regardless.  ``repair`` customizes the
        :class:`~repro.dataflow.repair.RepairPolicy` (defaulted when only
        ``reexecute`` is given); the callback must be supplied on every
        PE or none, like any other collective argument.
        """
        config = config or _DEFAULT_CONFIG
        run = StreamingCheckedRun()
        w = 0
        while True:
            window = self._pull_window(chunks_per_window)
            if not self._window_live(window):
                break
            output, verdict, stats, record, quarantine = (
                settle_reduce_window(
                    self.comm,
                    window,
                    config=config,
                    seed_w=_window_seed(seed, w),
                    window=w,
                    partitioner=partitioner,
                    policy=policy,
                    reexecute=reexecute,
                    repair=repair,
                    fault=fault,
                )
            )
            if quarantine is not None:
                run.quarantined.append(quarantine)
            run._add_window(output, verdict, stats, keep_outputs, record)
            w += 1
        return run

    def count_by_key_checked(
        self,
        config: SumCheckConfig | None = None,
        seed: int = 0,
        partitioner=None,
        chunks_per_window: int = 8,
        policy: AdaptiveCheckPolicy | None = None,
        keep_outputs: bool = True,
        reexecute=None,
        repair: RepairPolicy | None = None,
        fault=None,
    ) -> StreamingCheckedRun:
        """Windowed per-key counting (§4: sum aggregation of ones).

        A ``reexecute`` callback repairs rejected windows exactly as in
        :meth:`reduce_by_key_checked`; it must yield ``(keys, ones)``
        pairs — the counting view of the window's source chunks.
        """
        ones = StreamingKeyValueDIA(
            self.comm,
            (
                (k, np.ones(np.asarray(k).shape, dtype=np.int64))
                for k, _ in self._chunks
            ),
        )
        return ones.reduce_by_key_checked(
            config=config,
            seed=seed,
            partitioner=partitioner,
            chunks_per_window=chunks_per_window,
            policy=policy,
            keep_outputs=keep_outputs,
            reexecute=reexecute,
            repair=repair,
            fault=fault,
        )


# -- per-window settlement engine -------------------------------------------
#
# One function per checked operation, covering a single window end to end:
# feed the checker, run the operation, settle the verdict, and (given a
# ``reexecute`` callback) localize/repair or quarantine.  The pull-based
# DIAs above and the push-based ``repro.service`` daemon both drive their
# windows through these, so service tenants settle bit-identically to a
# batch streaming run.
#
# ``fault`` is the chaos-injection seam: a callable applied to the
# operation's working data (never to what the checker was fed), emulating
# the paper's fault-inside-the-black-box model.  It also wraps the repair
# path's recompute, so a hook that keeps corrupting models a persistently
# broken operation (repair keeps rejecting → quarantine) while a hook that
# corrupts only the first execution models a transient fault (repair
# heals).


def _fold_repair(outcome, report, record, stats, repair, seed_w, output, verdict):
    """Fold a RepairOutcome into the window's record/stats/output."""
    record.report = report
    record.repair_attempts = outcome.attempts
    for attempt in range(outcome.attempts):
        record.seeds_used += [
            int(s) for s in repair.attempt_seed_roots(seed_w, attempt)
        ]
    quarantine = None
    if outcome.healed:
        output = outcome.output
        verdict = outcome.verdicts[-1]
        record.verdict = verdict
        record.accepted = True
        record.repaired = True
    else:
        record.quarantined = True
        quarantine = outcome.quarantine()
    stats = replace(
        stats,
        localized=bool(report is not None and report.localized),
        bisection_rounds=(
            report.bisection_rounds if report is not None else 0
        ),
        localization_seconds=(
            report.localization_seconds if report is not None else 0.0
        ),
        repaired_windows=1 if outcome.healed else 0,
        quarantined_windows=0 if outcome.healed else 1,
    )
    return output, verdict, stats, quarantine


def settle_reduce_window(
    comm,
    chunks,
    *,
    config: SumCheckConfig,
    seed_w: int,
    window: int,
    partitioner=None,
    policy: AdaptiveCheckPolicy | None = None,
    reexecute=None,
    repair: RepairPolicy | None = None,
    fault=None,
):
    """Settle one ReduceByKey window over its local ``(keys, values)`` chunks.

    Returns ``(output, verdict, stats, record, quarantine)`` where
    ``quarantine`` is a :class:`QuarantinedWindow` when a repair loop
    exhausted its budget (else None).  Collective: every PE must call
    with the same window index and seed.
    """
    if reexecute is not None and repair is None:
        repair = RepairPolicy()
    stream = SumCheckerStream(SumAggregationChecker(config, seed_w))
    elements = 0
    parts_k: list[np.ndarray] = []
    parts_v: list[np.ndarray] = []
    checker_s = 0.0
    op_s = 0.0
    for keys, values in chunks:
        c0 = time.perf_counter()
        stream.feed_input(keys, values)
        c1 = time.perf_counter()
        lk, lv = local_aggregate(keys, values)
        c2 = time.perf_counter()
        checker_s += c1 - c0
        op_s += c2 - c1
        parts_k.append(lk)
        parts_v.append(lv)
        elements += int(np.asarray(keys).size)

    def _operation(comm_, keys, values, part):
        if fault is not None:
            keys, values = fault(window, keys, values)
        return reduce_by_key(comm_, keys, values, part)

    t0 = time.perf_counter()
    merged_k, merged_v = local_aggregate(
        _concat(parts_k, dtype=np.uint64),
        _concat(parts_v, dtype=np.int64),
    )
    out_k, out_v = _operation(comm, merged_k, merged_v, partitioner)
    t1 = time.perf_counter()
    op_s += t1 - t0
    stream.feed_output(out_k, out_v)
    if policy is not None:
        verdict = stream.settle_adaptive(policy, comm)
    else:
        verdict = stream.settle(comm)
    t2 = time.perf_counter()
    checker_s += t2 - t1
    stats = _window_stats(
        verdict,
        operation_seconds=op_s,
        checker_seconds=checker_s,
        elements=elements,
    )
    record = _window_record(window, verdict, seed_w, policy)
    output = (out_k, out_v)
    quarantine = None
    ok = bool(verdict.accepted)
    if not ok and reexecute is not None:
        report = None
        if repair.localize:
            loc_seeds = derive_seed_array(
                seed_w,
                "localize",
                np.arange(repair.localization_seeds, dtype=np.uint64),
            )
            report = localize_fault(
                stream.condensed_input(),
                stream.condensed_output(),
                config,
                loc_seeds,
                comm,
                window=window,
                max_rounds=repair.max_rounds,
                max_ranges=repair.max_ranges,
            )
            record.seeds_used += [int(s) for s in loc_seeds]
        outcome = repair_reduce_window(
            comm,
            window=window,
            window_seed=seed_w,
            config=config,
            reexecute=reexecute,
            old_output=output,
            policy=repair,
            report=report,
            partitioner=partitioner,
            recompute=_operation if fault is not None else None,
        )
        output, verdict, stats, quarantine = _fold_repair(
            outcome, report, record, stats, repair, seed_w, output, verdict
        )
    return output, verdict, stats, record, quarantine


def settle_sum_window(
    comm,
    chunks,
    *,
    config: SumCheckConfig,
    seed_w: int,
    window: int,
    policy: AdaptiveCheckPolicy | None = None,
    reexecute=None,
    repair: RepairPolicy | None = None,
    fault=None,
):
    """Settle one windowed-sum window over its local value chunks.

    The checker sees every element as a ``(0, value)`` pair and the
    asserted global total as one output pair on PE 0.  Same return shape
    as :func:`settle_reduce_window`.
    """
    if reexecute is not None and repair is None:
        repair = RepairPolicy()
    rank = comm.rank if comm is not None else 0
    t0 = time.perf_counter()
    stream = SumCheckerStream(SumAggregationChecker(config, seed_w))
    elements = 0
    vals: list[np.ndarray] = []
    checker_s = 0.0
    for chunk in chunks:
        chunk = np.asarray(chunk)
        elements += int(chunk.size)
        c0 = time.perf_counter()
        stream.feed_input(np.zeros(chunk.shape, dtype=np.uint64), chunk)
        checker_s += time.perf_counter() - c0
        vals.append(chunk)

    def _operation(comm_, values):
        if fault is not None:
            values = fault(window, values)
        local = int(np.sum(values, dtype=np.int64))
        if comm_ is None:
            return local
        return comm_.allreduce(local, op=ops.SUM)

    total = _operation(comm, _concat(vals, dtype=np.int64))
    t_op_done = time.perf_counter()
    if rank == 0:
        stream.feed_output(
            np.zeros(1, dtype=np.uint64),
            np.array([total], dtype=np.int64),
        )
    if policy is not None:
        verdict = stream.settle_adaptive(policy, comm)
    else:
        verdict = stream.settle(comm)
    t1 = time.perf_counter()
    stats = _window_stats(
        verdict,
        operation_seconds=(t_op_done - t0) - checker_s,
        checker_seconds=checker_s + (t1 - t_op_done),
        elements=elements,
    )
    record = _window_record(window, verdict, seed_w, policy)
    output = total
    quarantine = None
    ok = bool(verdict.accepted)
    if not ok and reexecute is not None:
        outcome = repair_sum_window(
            comm,
            window,
            seed_w,
            config,
            reexecute,
            repair,
            recompute=_operation if fault is not None else None,
        )
        output, verdict, stats, quarantine = _fold_repair(
            outcome, None, record, stats, repair, seed_w, output, verdict
        )
    return output, verdict, stats, record, quarantine


def settle_zip_window(
    comm,
    window1,
    window2,
    *,
    seed_w: int,
    window: int,
    iterations: int = 2,
    policy: AdaptiveCheckPolicy | None = None,
    reexecute=None,
    repair: RepairPolicy | None = None,
    fault=None,
):
    """Settle one Zip window over both streams' local chunk lists.

    Same return shape as :func:`settle_reduce_window`; ``fault`` (when
    given) corrupts the zipped output columns — the operation's product —
    while the checker keeps fingerprinting the original inputs.
    """
    if reexecute is not None and repair is None:
        repair = RepairPolicy()
    t0 = time.perf_counter()
    w1 = _concat(window1)
    w2 = _concat(window2)

    def _operation(comm_, s1, s2):
        first, second, offs = zip_arrays(comm_, s1, s2, return_offsets=True)
        if fault is not None:
            first, second = fault(window, first, second)
        return first, second, offs

    first, second, (off1, off2) = _operation(comm, w1, w2)
    t1 = time.perf_counter()
    stream = ZipCheckerStream(seed_w, iterations, offsets=(off1, off2, off1))
    for chunk in window1:
        stream.feed_input(first=chunk)
    for chunk in window2:
        stream.feed_input(second=chunk)
    stream.feed_output(first, second)
    verdict = stream.settle(comm)
    t2 = time.perf_counter()
    escalation_seconds = 0.0
    esc_seeds = 0
    escalated = False
    per_seed = None
    ok = verdict.accepted
    if policy is not None:
        escalated = policy.should_escalate(verdict.accepted)
        if escalated:
            e0 = time.perf_counter()
            roots = policy.resolve_seeds(seed_w)
            esc = ZipCheckerStream(
                roots, iterations, offsets=(off1, off2, off1)
            )
            esc.feed_input(first=w1, second=w2)
            esc.feed_output(first, second)
            esc_res = esc.settle(comm)
            per_seed = esc_res.details["per_seed_accepted"]
            esc_seeds = int(roots.size)
            escalation_seconds = time.perf_counter() - e0
        ok = verdict.accepted and (per_seed is None or all(per_seed))
        verdict = CheckResult(
            accepted=ok,
            checker="zip-adaptive",
            details={
                **verdict.details,
                "primary_accepted": verdict.accepted,
                "adaptive": {
                    "escalated": escalated,
                    "escalate_on": policy.escalate_on,
                    "num_escalation_seeds": esc_seeds,
                    "per_seed_accepted": per_seed,
                    "escalation_seconds": escalation_seconds,
                },
            },
        )
    stats = CheckedRunStats(
        operation_seconds=t1 - t0,
        checker_seconds=t2 - t1,
        escalated=escalated,
        escalation_seconds=escalation_seconds,
        escalation_seeds=esc_seeds,
        windows=1,
        elements_fed=int(w1.size + w2.size),
    )
    record = _window_record(window, verdict, seed_w, policy)
    output = (first, second)
    quarantine = None
    if not ok and reexecute is not None:
        outcome = repair_zip_window(
            comm,
            window,
            seed_w,
            iterations,
            reexecute,
            repair,
            recompute=_operation if fault is not None else None,
        )
        output, verdict, stats, quarantine = _fold_repair(
            outcome, None, record, stats, repair, seed_w, output, verdict
        )
    return output, verdict, stats, record, quarantine


def _concat(parts: list, dtype=None) -> np.ndarray:
    arrays = [np.asarray(p) for p in parts]
    arrays = [a for a in arrays if a.size]
    if not arrays:
        return np.zeros(0, dtype=dtype if dtype is not None else np.int64)
    return np.concatenate(arrays)


def _window_record(
    window: int,
    verdict: CheckResult,
    seed_w: int,
    policy: AdaptiveCheckPolicy | None,
) -> WindowRecord:
    """The window's history entry as first settled (pre-repair)."""
    adaptive = verdict.details.get("adaptive")
    escalated = bool(adaptive and adaptive["escalated"])
    seeds_used = [int(seed_w)]
    if escalated and policy is not None:
        seeds_used += [int(s) for s in policy.resolve_seeds(seed_w)]
    return WindowRecord(
        window=window,
        verdict=verdict,
        accepted=bool(verdict.accepted),
        seed=int(seed_w),
        seeds_used=seeds_used,
        escalated=escalated,
        escalation_seeds=(
            int(adaptive["num_escalation_seeds"]) if escalated else 0
        ),
    )


def _window_stats(
    verdict: CheckResult,
    operation_seconds: float,
    checker_seconds: float,
    elements: int,
) -> CheckedRunStats:
    """One window's CheckedRunStats, escalation split off when adaptive."""
    adaptive = verdict.details.get("adaptive")
    escalation_seconds = (
        adaptive["escalation_seconds"] if adaptive is not None else 0.0
    )
    escalated = bool(adaptive and adaptive["escalated"])
    return CheckedRunStats(
        operation_seconds=operation_seconds,
        checker_seconds=checker_seconds - escalation_seconds,
        escalated=escalated,
        escalation_seconds=escalation_seconds,
        escalation_seeds=(
            adaptive["num_escalation_seeds"] if escalated else 0
        ),
        windows=1,
        elements_fed=elements,
    )


__all__ = [
    "StreamingCheckedRun",
    "StreamingDIA",
    "StreamingKeyValueDIA",
    "WindowRecord",
    "settle_reduce_window",
    "settle_sum_window",
    "settle_zip_window",
    "window_seed",
]


#: Public alias: the per-window checker seed derivation shared by the
#: streaming DIAs and the ``repro.service`` daemon.
window_seed = _window_seed

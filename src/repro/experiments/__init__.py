"""The paper's experiment suite (§7 + Appendix A).

===========  =============================================  ==============
experiment   paper artefact                                  module
===========  =============================================  ==============
accuracy     Fig 3 (sum checker), Fig 5 (permutation)        accuracy
overhead     Table 5, §7.2 running-time paragraphs           overhead
scaling      Fig 4 (weak scaling overhead ratio)             scaling
volume       Table 1's communication claims                  volume
parameters   Table 2 (optimizer), Table 3 (configurations)   core.params
localization fault localization & repair accuracy (repo       localization
             extension past the paper's detect-only scope)
===========  =============================================  ==============
"""

from repro.experiments.accuracy import (
    AccuracyCell,
    detection_allowance,
    perm_checker_accuracy,
    perm_checker_accuracy_full,
    sum_checker_accuracy,
    sum_checker_accuracy_full,
)
from repro.experiments.overhead import (
    OverheadEngine,
    OverheadRow,
    multiseed_sum_overhead_ns,
    reduce_baseline_ns,
    sort_checker_overhead_ns,
    sum_checker_overhead_ns,
)
from repro.experiments.scaling import (
    ScalingPoint,
    measured_weak_scaling,
    modeled_weak_scaling,
)
from repro.experiments.localization import (
    LocalizationSummary,
    LocalizationTrial,
    localization_accuracy,
    run_localization_trials,
    summarize_trials,
)
from repro.experiments.volume import VolumeRow, checker_volume_table
from repro.experiments.report import format_series, format_table

__all__ = [
    "AccuracyCell",
    "detection_allowance",
    "perm_checker_accuracy",
    "perm_checker_accuracy_full",
    "sum_checker_accuracy",
    "sum_checker_accuracy_full",
    "OverheadEngine",
    "OverheadRow",
    "multiseed_sum_overhead_ns",
    "reduce_baseline_ns",
    "sort_checker_overhead_ns",
    "sum_checker_overhead_ns",
    "ScalingPoint",
    "measured_weak_scaling",
    "modeled_weak_scaling",
    "LocalizationSummary",
    "LocalizationTrial",
    "localization_accuracy",
    "run_localization_trials",
    "summarize_trials",
    "VolumeRow",
    "checker_volume_table",
    "format_series",
    "format_table",
]

"""``python -m repro.experiments`` — regenerate the paper's artefacts."""

from repro.experiments.runner import main

raise SystemExit(main())

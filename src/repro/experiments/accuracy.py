"""Failure-rate estimation — the Fig 3 / Fig 5 accuracy experiments.

The paper measures, per (checker configuration × manipulator) cell, the
fraction of 100 000 trials in which the checker *fails to detect* an
injected fault, and plots it relative to the configuration's failure bound
δ.  Three execution paths per cell:

* **batched** (default) — the exact fast-path verdicts, evaluated many
  trials per numpy kernel call by :mod:`repro.experiments.engine`.  This
  is what makes `REPRO_BENCH_TRIALS=100000` routine (≥20× over the
  per-trial loop).
* **reference** — the per-trial loop over the same exact shortcut: the
  checker's verdict is a deterministic function of the fault's sparse
  effect (per-key aggregate deltas for the sum checker, removed/added
  elements for the permutation checker) and of the drawn hash/modulus
  randomness.  The batched engine reproduces this path trial for trial
  (same `derive_seed` tree, same stream draws); it is kept as the oracle.
* **full** — the genuine end-to-end run: manipulate the data, execute the
  black-box operation, run the complete checker.  Used for validation and
  affordable at reduced trial counts.  Shares the reference path's trial
  seeds, so the two estimate identical failure counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import PermCheckConfig, SumCheckConfig
from repro.core.permutation_checker import HashSumPermutationChecker
from repro.core.sum_checker import SumAggregationChecker
from repro.faults.manipulators import get_kv_manipulator, get_seq_manipulator
from repro.util.bits import ceil_log2
from repro.util.rng import SplitMixStream, derive_seed
from repro.workloads.kv import aggregate_reference, sum_workload
from repro.workloads.uniform import uniform_integers

#: Execution paths accepted by the accuracy entry points.
ACCURACY_MODES = ("batched", "reference")


def _check_mode(mode: str) -> None:
    if mode not in ACCURACY_MODES:
        raise ValueError(
            f"unknown accuracy mode {mode!r}; expected one of {ACCURACY_MODES}"
        )


@dataclass
class AccuracyCell:
    """One cell of an accuracy figure."""

    checker: str
    config: str
    manipulator: str
    trials: int
    failures: int
    expected_delta: float

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def ratio(self) -> float:
        """failure rate / expected maximum failure rate δ (the y axis)."""
        return self.failure_rate / self.expected_delta

    @property
    def stderr(self) -> float:
        """Standard error of the failure-rate estimate (binomial)."""
        p = self.failure_rate
        return (p * (1 - p) / self.trials) ** 0.5 if self.trials else 0.0


def _storage_aware_family(name: str, domain: int) -> str:
    """Hash the element's *stored* width, as the paper's implementation does.

    Thrill stores the experiment's 32-bit elements in 32-bit words and the
    hardware CRC consumes exactly those bytes; CRC over the same value
    zero-extended to 64 bits is a *different function* with different
    low-bit anomalies.  The "CRC" label therefore resolves to the 4-byte
    CRC variant whenever the element domain fits 32 bits.
    """
    if name.upper() == "CRC" and domain <= (1 << 32):
        return "CRC4"
    return name


def _kv_manipulator(name: str, num_keys: int):
    if name == "Bitflip":
        return get_kv_manipulator(
            "Bitflip", key_bits=ceil_log2(num_keys), value_bits=21
        )
    if name == "RandKey":
        return get_kv_manipulator("RandKey", key_domain=num_keys)
    return get_kv_manipulator(name)


def sum_checker_accuracy(
    config: SumCheckConfig,
    manipulator: str,
    trials: int,
    n_elements: int = 50_000,
    num_keys: int = 10**6,
    seed: int = 0,
    mode: str = "batched",
) -> AccuracyCell:
    """Fig 3 cell, fast path: exact verdicts from sparse fault deltas.

    Workload: ``n_elements`` power-law pairs over ``num_keys`` possible keys
    (paper: 50 000 elements, 10^6 values); a fresh fault and fresh checker
    randomness per trial.  ``mode="batched"`` vectorizes the trials through
    :mod:`repro.experiments.engine`; ``mode="reference"`` runs the
    per-trial oracle loop — both produce identical verdicts per trial.
    """
    _check_mode(mode)
    if mode == "batched":
        from repro.experiments.engine import BatchedSumAccuracy

        return BatchedSumAccuracy(
            config, manipulator, n_elements=n_elements, num_keys=num_keys,
            seed=seed,
        ).run(trials)
    keys, values = sum_workload(n_elements, num_keys, seed=derive_seed(seed, "wl"))
    man = _kv_manipulator(manipulator, num_keys)
    effective = config.with_hash(
        _storage_aware_family(config.hash_family, num_keys)
    )
    failures = 0
    for trial in range(trials):
        rng = SplitMixStream(derive_seed(seed, "trial", trial))
        effect = man.sample_delta(rng, keys, values)
        checker = SumAggregationChecker(
            effective, derive_seed(seed, "checker", trial)
        )
        if not checker.detects_delta(effect.delta_keys, effect.delta_values):
            failures += 1
    return AccuracyCell(
        checker="sum-aggregation",
        config=config.label(),
        manipulator=manipulator,
        trials=trials,
        failures=failures,
        expected_delta=config.failure_bound,
    )


def sum_checker_accuracy_full(
    config: SumCheckConfig,
    manipulator: str,
    trials: int,
    n_elements: int = 2_000,
    num_keys: int = 10**4,
    seed: int = 0,
) -> AccuracyCell:
    """Fig 3 cell, full path: aggregate manipulated data, run Algorithm 1."""
    keys, values = sum_workload(n_elements, num_keys, seed=derive_seed(seed, "wl"))
    man = _kv_manipulator(manipulator, num_keys)
    effective = config.with_hash(
        _storage_aware_family(config.hash_family, num_keys)
    )
    failures = 0
    for trial in range(trials):
        rng = SplitMixStream(derive_seed(seed, "trial", trial))
        manipulated = man.apply(rng, keys, values)
        out_k, out_v = aggregate_reference(manipulated.keys, manipulated.values)
        checker = SumAggregationChecker(
            effective, derive_seed(seed, "checker", trial)
        )
        result = checker.check_local((keys, values), (out_k, out_v))
        if result.accepted:
            failures += 1
    return AccuracyCell(
        checker="sum-aggregation",
        config=config.label(),
        manipulator=manipulator,
        trials=trials,
        failures=failures,
        expected_delta=config.failure_bound,
    )


# ---------------------------------------------------------------------------
# Permutation checker accuracy (Fig 5 / Appendix A)
# ---------------------------------------------------------------------------


def _seq_manipulator(name: str, universe: int):
    if name == "Bitflip":
        return get_seq_manipulator("Bitflip", bit_width=ceil_log2(universe))
    if name == "Randomize":
        return get_seq_manipulator("Randomize", universe=universe)
    return get_seq_manipulator(name)


def perm_checker_accuracy(
    config: PermCheckConfig,
    manipulator: str,
    trials: int,
    n_elements: int = 10**6,
    universe: int = 10**8,
    seed: int = 0,
    mode: str = "batched",
) -> AccuracyCell:
    """Fig 5 cell, fast path.

    For a single-element manipulation (all of Table 6), the wide hash-sum
    fingerprints of input and output differ by ``h(new) − h(old)``, so the
    checker misses the fault iff the truncated hashes collide.  Only the
    (old, new) pair needs drawing and hashing per trial — the rest of the
    sequence contributes identically to both sides.  ``mode`` selects the
    vectorized engine or the per-trial reference loop (identical verdicts).
    """
    _check_mode(mode)
    if mode == "batched":
        from repro.experiments.engine import BatchedPermAccuracy

        return BatchedPermAccuracy(
            config, manipulator, n_elements=n_elements, universe=universe,
            seed=seed,
        ).run(trials)
    sequence = uniform_integers(
        min(n_elements, 1 << 16), universe, seed=derive_seed(seed, "wl")
    )
    man = _seq_manipulator(manipulator, universe)
    family = _storage_aware_family(config.hash_family, universe)
    failures = 0
    for trial in range(trials):
        rng = SplitMixStream(derive_seed(seed, "trial", trial))
        change = man.sample_change(rng, sequence)
        # Same checker (same seed derivation) as the full path, applied to
        # the removed/added elements only: the common elements cancel in
        # the wide hash sums, so the λ values are identical.
        checker = HashSumPermutationChecker(
            iterations=config.iterations,
            hash_family=family,
            log_h=config.log_h,
            seed=derive_seed(seed, "hash", trial),
        )
        lambdas = checker.lambda_values(change.removed, change.added)
        if all(lam == 0 for lam in lambdas):
            failures += 1
    return AccuracyCell(
        checker="permutation-hashsum",
        config=config.label(),
        manipulator=manipulator,
        trials=trials,
        failures=failures,
        expected_delta=config.failure_bound,
    )


def perm_checker_accuracy_full(
    config: PermCheckConfig,
    manipulator: str,
    trials: int,
    n_elements: int = 4_000,
    universe: int = 10**8,
    seed: int = 0,
) -> AccuracyCell:
    """Fig 5 cell, full path: manipulate before sorting, run the checker.

    Manipulations are applied before sorting "in order to test the
    permutation checker and not the trivial sortedness check" (§7.2) — so
    the measured event is the permutation fingerprint colliding.
    """
    sequence = uniform_integers(n_elements, universe, seed=derive_seed(seed, "wl"))
    man = _seq_manipulator(manipulator, universe)
    family = _storage_aware_family(config.hash_family, universe)
    failures = 0
    for trial in range(trials):
        rng = SplitMixStream(derive_seed(seed, "trial", trial))
        manipulated = man.apply(rng, sequence)
        output = np.sort(manipulated.sequence)
        checker = HashSumPermutationChecker(
            iterations=config.iterations,
            hash_family=family,
            log_h=config.log_h,
            seed=derive_seed(seed, "hash", trial),
        )
        if checker.check(sequence, output).accepted:
            failures += 1
    return AccuracyCell(
        checker="permutation-hashsum",
        config=config.label(),
        manipulator=manipulator,
        trials=trials,
        failures=failures,
        expected_delta=config.failure_bound,
    )


def detection_allowance(injected: int, delta: float, tail: float = 1e-6) -> int:
    """Largest undetected-corruption count still consistent with ``delta``.

    Under the paper's analytic model an injected corruption escapes a
    checker with probability at most ``delta`` per settlement, so the
    number of misses among ``injected`` independent injections is
    stochastically dominated by ``Binomial(injected, delta)``.  The
    allowance is the largest ``k`` with ``P[X >= k] >= tail`` — any
    observed miss count *above* it is evidence of a real checker defect
    rather than analytic bad luck.  At the repo's failure bounds this is
    0 or 1 for any realistic injection count — the soak harness gates
    its undetected-corruption count against it.
    """
    if injected < 0:
        raise ValueError(f"injected must be >= 0, got {injected}")
    if not 0.0 <= delta < 1.0:
        raise ValueError(f"delta must be in [0, 1), got {delta}")
    if injected == 0 or delta == 0.0:
        return 0
    # pmf recurrence keeps this dependency-free and exact enough for the
    # tiny (n, delta) regime the gates live in.
    pmf = [(1.0 - delta) ** injected]
    ratio = delta / (1.0 - delta)
    for i in range(injected):
        pmf.append(pmf[-1] * (injected - i) / (i + 1) * ratio)
    allowance = 0
    survival = 1.0
    for k in range(1, injected + 1):
        survival -= pmf[k - 1]
        if survival < tail:
            break
        allowance = k
    return allowance

"""Batched trial engine for the Fig 3 / Fig 5 accuracy experiments.

The per-trial reference loop in :mod:`repro.experiments.accuracy` costs
~0.3 ms/trial: every trial re-derives seeds, rebuilds a checker
(regenerating 8–16 KB of tabulation tables), and hashes a handful of keys
in a fresh tiny numpy call.  Following the paper's own bit-parallel
philosophy (§7.1: one wide evaluation serves many iterations), this engine
evaluates many *trials* per numpy kernel call:

* all per-trial randomness is drawn up front from the same ``derive_seed``
  tree the reference loop walks (vectorized SplitMix64 streams);
* fault sampling happens through the manipulators'
  ``sample_delta_batch``/``sample_change_batch`` kernels;
* checker randomness (moduli, bucket hashes, fingerprint hashes) is drawn
  by stacked kernels — one tabulation-table build / CRC pass / mix per
  hash evaluation for the whole batch.

Equivalence is exact, not statistical: trial ``t`` of the engine consumes
the same seeds and draws as trial ``t`` of the reference loop, so the
verdict vectors — and hence the :class:`AccuracyCell` counts — are
identical.  ``tests/test_experiments_engine.py`` asserts this per trial
for every manipulator and hash family.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import PermCheckConfig, SumCheckConfig
from repro.core.sum_checker import draw_moduli
from repro.experiments.accuracy import (
    AccuracyCell,
    _kv_manipulator,
    _seq_manipulator,
    _storage_aware_family,
)
from repro.faults.manipulators import KVManipulationBatch
from repro.hashing.bitgroups import assign_buckets_batch
from repro.hashing.families import get_family
from repro.util.rng import (
    SplitMixStreamBatch,
    derive_seed,
    derive_seed_array,
    splitmix64_array,
)
from repro.workloads.kv import sum_workload
from repro.workloads.uniform import uniform_integers

#: Trials evaluated per numpy pass; bounds the stacked-table scratch to a
#: few tens of MB (8192 trials × 8 tables × 256 entries × 8 B ≈ 134 MB
#: worst case for Tab64, half that for Tab).
DEFAULT_CHUNK_TRIALS = 8192


def sum_delta_verdicts(
    config: SumCheckConfig,
    checker_seeds: np.ndarray,
    delta: KVManipulationBatch,
) -> np.ndarray:
    """``SumAggregationChecker(config, seed_t).detects_delta`` for many trials.

    ``checker_seeds[t]`` seeds trial ``t``'s checker; ``delta`` carries the
    trials' sparse per-key aggregate deltas.  Returns a boolean ``(T,)``
    vector — exact: the minireduction residues of each trial's deltas are
    computed mod that trial's drawn moduli under that trial's bucket
    hashes, matching the scalar checker bit for bit.
    """
    checker_seeds = np.asarray(checker_seeds, dtype=np.uint64).ravel()
    trials = checker_seeds.size
    if delta.trials != trials:
        raise ValueError(
            f"{delta.trials} delta trials vs {trials} checker seeds"
        )
    cfg = config
    family = get_family(cfg.hash_family)
    moduli = draw_moduli(cfg, checker_seeds)  # (T, iterations)
    bucket_seeds = derive_seed_array(checker_seeds, "sum-checker", "buckets")
    buckets = assign_buckets_batch(
        family, cfg.d, cfg.iterations, bucket_seeds, delta.delta_keys, delta.owner
    )
    owner = delta.owner.astype(np.int64)
    values = delta.delta_values.astype(np.int64)
    detected = np.zeros(trials, dtype=bool)
    # The float64 bincount is exact only while a slot's residue sum stays
    # below the 2^52 mantissa headroom: at most max-entries-per-trial
    # residues, each < 2r̂.  Paper configs (r̂ ≤ 2^31, ≤ 8 deltas) clear it
    # by far; for extreme r̂ fall back to an exact int64 scatter-add.
    max_entries = int(np.bincount(owner, minlength=trials).max()) if owner.size else 0
    float_exact = max_entries * 2 * cfg.rhat < (1 << 52)
    for j in range(cfg.iterations):
        r = moduli[:, j]
        residues = values % r[owner]
        slot = owner * cfg.d + buckets[j]
        if float_exact:
            sums = np.bincount(
                slot,
                weights=residues.astype(np.float64),
                minlength=trials * cfg.d,
            ).astype(np.int64)
        else:
            sums = np.zeros(trials * cfg.d, dtype=np.int64)
            np.add.at(sums, slot, residues)
        table = sums.reshape(trials, cfg.d) % r[:, None]
        detected |= table.any(axis=1)
    return detected


def perm_change_verdicts(
    config: PermCheckConfig,
    hash_family: str,
    hash_seeds: np.ndarray,
    removed: np.ndarray,
    added: np.ndarray,
) -> np.ndarray:
    """``HashSumPermutationChecker(...).lambda_values != 0`` for many trials.

    For single-element changes the wide hash sums differ by
    ``h(removed) − h(added)``, so trial ``t`` detects its fault iff some
    iteration's truncated hashes differ.  ``hash_seeds[t]`` is the scalar
    checker's ``seed`` argument; iteration functions derive from it exactly
    as :class:`HashSumPermutationChecker` does.
    """
    hash_seeds = np.asarray(hash_seeds, dtype=np.uint64).ravel()
    trials = hash_seeds.size
    family = get_family(hash_family)
    if not 1 <= config.log_h <= family.bits:
        raise ValueError(
            f"log_h={config.log_h} out of range for {family.name} "
            f"({family.bits} output bits)"
        )
    mask = np.uint64((1 << config.log_h) - 1)
    owner = np.arange(trials, dtype=np.intp)
    removed = np.asarray(removed, dtype=np.uint64)
    added = np.asarray(added, dtype=np.uint64)
    undetected = np.ones(trials, dtype=bool)
    # Fold the "perm-checker" label once; iterations only branch on their
    # counter (identical to derive_seed_array(hash_seeds, "perm-checker", j)).
    prefix = derive_seed_array(hash_seeds, "perm-checker")
    for j in range(config.iterations):
        fn_seeds = splitmix64_array(prefix ^ np.uint64(j))
        h_removed = family.hash_array_batch(fn_seeds, owner, removed) & mask
        h_added = family.hash_array_batch(fn_seeds, owner, added) & mask
        undetected &= h_removed == h_added
    return ~undetected


class BatchedSumAccuracy:
    """Vectorized Fig 3 cell: same seed tree as ``sum_checker_accuracy``."""

    def __init__(
        self,
        config: SumCheckConfig,
        manipulator: str,
        n_elements: int = 50_000,
        num_keys: int = 10**6,
        seed: int = 0,
        chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    ):
        if chunk_trials < 1:
            raise ValueError(f"chunk_trials must be >= 1, got {chunk_trials}")
        self.config = config
        self.manipulator = manipulator
        self.seed = seed
        self.chunk_trials = chunk_trials
        self.keys, self.values = sum_workload(
            n_elements, num_keys, seed=derive_seed(seed, "wl")
        )
        self.man = _kv_manipulator(manipulator, num_keys)
        self.effective = config.with_hash(
            _storage_aware_family(config.hash_family, num_keys)
        )

    def verdicts(self, trials: int) -> np.ndarray:
        """Per-trial detection flags, identical to the reference loop's."""
        detected = np.zeros(trials, dtype=bool)
        for start in range(0, trials, self.chunk_trials):
            ids = np.arange(start, min(start + self.chunk_trials, trials))
            stream = SplitMixStreamBatch(
                derive_seed_array(self.seed, "trial", ids.astype(np.uint64))
            )
            delta = self.man.sample_delta_batch(stream, self.keys, self.values)
            checker_seeds = derive_seed_array(
                self.seed, "checker", ids.astype(np.uint64)
            )
            detected[ids] = sum_delta_verdicts(
                self.effective, checker_seeds, delta
            )
        return detected

    def run(self, trials: int) -> AccuracyCell:
        detected = self.verdicts(trials)
        return AccuracyCell(
            checker="sum-aggregation",
            config=self.config.label(),
            manipulator=self.manipulator,
            trials=trials,
            failures=int(trials - detected.sum()),
            expected_delta=self.config.failure_bound,
        )


class BatchedPermAccuracy:
    """Vectorized Fig 5 cell: same seed tree as ``perm_checker_accuracy``."""

    def __init__(
        self,
        config: PermCheckConfig,
        manipulator: str,
        n_elements: int = 10**6,
        universe: int = 10**8,
        seed: int = 0,
        chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    ):
        if chunk_trials < 1:
            raise ValueError(f"chunk_trials must be >= 1, got {chunk_trials}")
        self.config = config
        self.manipulator = manipulator
        self.seed = seed
        self.chunk_trials = chunk_trials
        self.sequence = uniform_integers(
            min(n_elements, 1 << 16), universe, seed=derive_seed(seed, "wl")
        )
        self.man = _seq_manipulator(manipulator, universe)
        self.family = _storage_aware_family(config.hash_family, universe)

    def verdicts(self, trials: int) -> np.ndarray:
        """Per-trial detection flags, identical to the reference loop's."""
        detected = np.zeros(trials, dtype=bool)
        for start in range(0, trials, self.chunk_trials):
            ids = np.arange(start, min(start + self.chunk_trials, trials))
            stream = SplitMixStreamBatch(
                derive_seed_array(self.seed, "trial", ids.astype(np.uint64))
            )
            change = self.man.sample_change_batch(stream, self.sequence)
            hash_seeds = derive_seed_array(
                self.seed, "hash", ids.astype(np.uint64)
            )
            detected[ids] = perm_change_verdicts(
                self.config, self.family, hash_seeds, change.removed, change.added
            )
        return detected

    def run(self, trials: int) -> AccuracyCell:
        detected = self.verdicts(trials)
        return AccuracyCell(
            checker="permutation-hashsum",
            config=self.config.label(),
            manipulator=self.manipulator,
            trials=trials,
            failures=int(trials - detected.sum()),
            expected_delta=self.config.failure_bound,
        )

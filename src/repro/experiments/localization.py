"""Fault-injection accuracy for localization and repair.

The detection experiments (Fig 3) ask *whether* a checker catches an
injected fault; this harness asks the two questions the repair loop adds:

* **Precision** — when a Table 4 manipulator corrupts exactly one window
  of a multi-window run, does the per-window check reject exactly that
  window, and does :func:`repro.core.localize.localize_fault` pin the
  fault to key ranges that cover the manipulator's (known) sparse deltas?
* **Repair** — does :func:`repro.dataflow.repair.repair_reduce_window`
  heal the window to aggregates bit-identical to the clean run?

Each trial emulates the streaming engine's per-window settlement on a
multi-window workload (sequential semantics, ``comm=None``): the target
window's asserted output is aggregated from the *manipulated* input while
the checker sees the original — the paper's fault model, where the fault
lives inside the black-box reduction.  Because the manipulator reports its
exact per-key deltas, ground truth for "localized correctly" is exact, not
statistical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.localize import localize_fault
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.dataflow.repair import RepairPolicy, repair_reduce_window
from repro.faults.manipulators import get_kv_manipulator
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import aggregate_reference, sum_workload

__all__ = [
    "DEFAULT_MANIPULATORS",
    "LocalizationSummary",
    "LocalizationTrial",
    "localization_accuracy",
    "run_localization_trials",
    "summarize_trials",
]

#: Table 4 roster exercised by default (all key-value manipulators).
DEFAULT_MANIPULATORS = (
    "Bitflip",
    "RandKey",
    "SwitchValues",
    "IncKey",
    "IncDec1",
    "IncDec2",
)


@dataclass
class LocalizationTrial:
    """Ground truth vs observed outcome of one injected-fault trial."""

    trial: int
    manipulator: str
    target_window: int
    detected_windows: list[int]
    exact_window: bool  # rejected exactly the corrupted window
    localized: bool  # FaultReport.localized on the rejected window
    keys_covered: bool  # every injected delta key inside report ranges
    range_count: int
    suspect_count: int
    bisection_rounds: int
    repaired: bool
    bit_identical: bool  # repaired output == clean aggregates
    repair_attempts: int
    check_seconds: float  # per-window check on the corrupted window
    localization_seconds: float


@dataclass
class LocalizationSummary:
    """Aggregate rates over a batch of trials."""

    trials: int
    exact_window_rate: float
    localized_rate: float
    key_cover_rate: float
    repair_rate: float
    bit_identical_rate: float
    mean_bisection_rounds: float
    mean_range_count: float
    mean_check_seconds: float
    mean_localization_seconds: float


def _in_ranges(keys: np.ndarray, ranges) -> np.ndarray:
    mask = np.zeros(keys.size, dtype=bool)
    for a, b in ranges:
        mask |= (keys >= np.uint64(a)) & (keys <= np.uint64(b))
    return mask


def _one_trial(
    config: SumCheckConfig,
    trial: int,
    manipulator: str,
    *,
    windows: int,
    elements_per_window: int,
    key_domain: int,
    num_seeds: int,
    seed: int,
    policy: RepairPolicy,
) -> LocalizationTrial:
    root = derive_seed(seed, "loc-trial", trial)
    target = trial % windows
    inputs = [
        sum_workload(
            elements_per_window,
            num_keys=key_domain,
            seed=derive_seed(root, "wl", w),
        )
        for w in range(windows)
    ]
    man_kwargs = {"rng": derive_seed(root, "fault")}
    if manipulator == "RandKey":
        man_kwargs["key_domain"] = key_domain
    man = get_kv_manipulator(manipulator, **man_kwargs)
    k, v = inputs[target]
    effect = man.apply(None, k, v)
    clean_out = aggregate_reference(k, v)
    bad_out = aggregate_reference(effect.keys, effect.values)

    check_seeds = derive_seed_array(
        derive_seed(root, "check"),
        "seed",
        np.arange(num_seeds, dtype=np.uint64),
    )
    checker = MultiSeedSumChecker(config, check_seeds)
    detected: list[int] = []
    check_s = 0.0
    for w, (wk, wv) in enumerate(inputs):
        out = bad_out if w == target else aggregate_reference(wk, wv)
        t0 = time.perf_counter()
        verdict = checker.check_local((wk, wv), out)
        elapsed = time.perf_counter() - t0
        if w == target:
            check_s = elapsed
        if not verdict.accepted:
            detected.append(w)

    exact = detected == [target]
    localized = False
    covered = False
    ranges = 0
    suspects = 0
    rounds = 0
    loc_s = 0.0
    report = None
    if target in detected:
        loc_seeds = derive_seed_array(
            derive_seed(root, "localize"),
            "seed",
            np.arange(policy.localization_seeds, dtype=np.uint64),
        )
        report = localize_fault(
            condense_kv(k, v),
            condense_kv(*bad_out),
            config,
            loc_seeds,
            None,
            window=target,
            max_rounds=policy.max_rounds,
            max_ranges=policy.max_ranges,
        )
        localized = report.localized
        ranges = report.num_ranges
        suspects = report.suspect_keys
        rounds = report.bisection_rounds
        loc_s = report.localization_seconds
        if localized:
            covered = bool(_in_ranges(effect.delta_keys, report.key_ranges).all())

    repaired = False
    identical = False
    attempts = 0
    if target in detected:
        outcome = repair_reduce_window(
            None,
            target,
            derive_seed(root, "repair"),
            config,
            lambda window_id, key_ranges: [inputs[window_id]],
            bad_out,
            policy,
            report=report,
        )
        repaired = outcome.healed
        attempts = outcome.attempts
        if repaired:
            identical = bool(
                np.array_equal(outcome.output[0], clean_out[0])
                and np.array_equal(outcome.output[1], clean_out[1])
            )

    return LocalizationTrial(
        trial=trial,
        manipulator=manipulator,
        target_window=target,
        detected_windows=detected,
        exact_window=exact,
        localized=localized,
        keys_covered=covered,
        range_count=ranges,
        suspect_count=suspects,
        bisection_rounds=rounds,
        repaired=repaired,
        bit_identical=identical,
        repair_attempts=attempts,
        check_seconds=check_s,
        localization_seconds=loc_s,
    )


def run_localization_trials(
    config: SumCheckConfig,
    trials: int,
    *,
    windows: int = 3,
    elements_per_window: int = 4096,
    key_domain: int = 1024,
    num_seeds: int = 2,
    manipulators=DEFAULT_MANIPULATORS,
    seed: int = 0,
    policy: RepairPolicy | None = None,
) -> list[LocalizationTrial]:
    """Run ``trials`` injected-fault trials, cycling the manipulator roster.

    Every trial is derived from ``seed`` alone (workloads, fault draw,
    checker seeds), so a batch is bit-reproducible.  ``key_domain`` keeps
    the workload's keys inside ``0..key_domain-1``; RandKey draws its
    replacement key from the same domain so the fault stays in-window.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    policy = policy or RepairPolicy()
    roster = list(manipulators)
    return [
        _one_trial(
            config,
            t,
            roster[t % len(roster)],
            windows=windows,
            elements_per_window=elements_per_window,
            key_domain=key_domain,
            num_seeds=num_seeds,
            seed=seed,
            policy=policy,
        )
        for t in range(trials)
    ]


def summarize_trials(trials: list[LocalizationTrial]) -> LocalizationSummary:
    """Collapse a trial batch to the rates the bench gates check."""
    n = len(trials)
    loc = [t for t in trials if t.localized]
    return LocalizationSummary(
        trials=n,
        exact_window_rate=sum(t.exact_window for t in trials) / n,
        localized_rate=len(loc) / n,
        key_cover_rate=sum(t.keys_covered for t in trials) / n,
        repair_rate=sum(t.repaired for t in trials) / n,
        bit_identical_rate=sum(t.bit_identical for t in trials) / n,
        mean_bisection_rounds=(
            sum(t.bisection_rounds for t in loc) / len(loc) if loc else 0.0
        ),
        mean_range_count=(
            sum(t.range_count for t in loc) / len(loc) if loc else 0.0
        ),
        mean_check_seconds=sum(t.check_seconds for t in trials) / n,
        mean_localization_seconds=sum(t.localization_seconds for t in trials)
        / n,
    )


def localization_accuracy(
    config: SumCheckConfig, trials: int, **kwargs
) -> LocalizationSummary:
    """One-call harness: run the trials and summarize."""
    return summarize_trials(run_localization_trials(config, trials, **kwargs))

"""Local-work overhead measurements — Table 5 and the §7.2 runtime text.

The paper measures the checker's *local input processing* cost per element
(the ``n/p`` term that dominates in practice): Table 5 reports 3.8–10 ns per
64-bit pair on a 3.6 GHz machine for the scaling configurations, versus
~88 ns per element for the main reduce operation.  Absolute numbers here
differ (numpy vs hand-tuned C++), but the *relationships* the paper claims
are reproducible: the checker costs a small fraction of the reduction, more
buckets are cheaper per iteration than more iterations, and hash-family
choice shifts the constant.

:class:`OverheadEngine` is the batched measurement harness: the workload is
generated **once**, checkers for every configuration and hash family are
constructed up front, and all kernels are timed in one interleaved sweep —
round-robin over the kernels within each repeat, best-of across repeats —
so a full Table 5 is a single engine pass instead of the former
per-configuration regenerate-and-rehash loops.  The historical entry
points (:func:`sum_checker_overhead_ns`, :func:`reduce_baseline_ns`,
:func:`sort_checker_overhead_ns`) remain as thin wrappers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import PAPER_TABLE3_SCALING, SumCheckConfig
from repro.core.permutation_checker import HashSumPermutationChecker
from repro.core.sum_checker import SumAggregationChecker
from repro.dataflow.ops.reduce_by_key import local_aggregate
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import sum_workload
from repro.workloads.uniform import uniform_integers


@dataclass
class OverheadRow:
    """One row of an overhead table."""

    label: str
    ns_per_element: float
    elements: int
    repeats: int


@dataclass
class _Kernel:
    """A timed unit of the engine's sweep."""

    label: str
    fn: Callable[[], object]
    processed: int  # elements the kernel touches (denominator of ns/elt)


class OverheadEngine:
    """Batched Table 5 engine: shared workload, one interleaved timing sweep.

    Parameters
    ----------
    n_elements:
        Workload size (the paper uses 10^6 pairs / elements).
    repeats:
        Timed sweeps; each kernel's row reports its minimum (noise-robust).
        One additional untimed warm-up sweep runs first.
    seed:
        Root seed for workload and checker randomness (same derivation tree
        as the historical per-config functions, so rows are comparable).
    """

    def __init__(self, n_elements: int = 10**6, repeats: int = 5, seed: int = 0):
        if n_elements < 1:
            raise ValueError(f"n_elements must be >= 1, got {n_elements}")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.n_elements = n_elements
        self.repeats = repeats
        self.seed = seed
        self._kv: tuple[np.ndarray, np.ndarray] | None = None
        self._sorted: tuple[np.ndarray, np.ndarray] | None = None

    # -- shared inputs (built once, lazily) ---------------------------------
    @property
    def kv_workload(self) -> tuple[np.ndarray, np.ndarray]:
        """The §7.1 sum-aggregation workload, generated exactly once."""
        if self._kv is None:
            self._kv = sum_workload(
                self.n_elements, seed=derive_seed(self.seed, "wl")
            )
        return self._kv

    @property
    def sort_workload(self) -> tuple[np.ndarray, np.ndarray]:
        """Uniform elements and their sorted copy, generated exactly once."""
        if self._sorted is None:
            data = uniform_integers(
                self.n_elements, seed=derive_seed(self.seed, "wl")
            )
            output = data.copy()
            output.sort()
            self._sorted = (data, output)
        return self._sorted

    # -- kernel builders -----------------------------------------------------
    def _sum_kernel(self, config: SumCheckConfig) -> _Kernel:
        keys, values = self.kv_workload
        checker = SumAggregationChecker(
            config, derive_seed(self.seed, "checker")
        )
        return _Kernel(
            label=config.label(),
            fn=lambda: checker.local_tables(keys, values),
            processed=self.n_elements,
        )

    def _baseline_kernel(self) -> _Kernel:
        keys, values = self.kv_workload
        return _Kernel(
            label="local reduce (baseline)",
            fn=lambda: local_aggregate(keys, values),
            processed=self.n_elements,
        )

    def _sort_kernel(self, hash_family: str) -> _Kernel:
        data, output = self.sort_workload
        checker = HashSumPermutationChecker(
            iterations=1,
            hash_family=hash_family,
            log_h=8,
            seed=derive_seed(self.seed, "checker"),
        )
        # Input and output are both processed: report per processed element.
        return _Kernel(
            label=f"sort checker ({hash_family})",
            fn=lambda: checker.lambda_values(data, output),
            processed=2 * self.n_elements,
        )

    def _multiseed_kernel(
        self, config: SumCheckConfig, num_seeds: int
    ) -> _Kernel:
        keys, values = self.kv_workload
        seeds = derive_seed_array(
            self.seed, "checker", np.arange(num_seeds, dtype=np.uint64)
        )
        checker = MultiSeedSumChecker(config, seeds)
        # Per element *and* per seed, so the row is comparable with the
        # single-seed rows: values below them show the amortization win.
        return _Kernel(
            label=f"{config.label()} x{num_seeds} seeds (multi-seed)",
            fn=lambda: checker.local_tables(keys, values),
            processed=self.n_elements * num_seeds,
        )

    # -- the timing sweep ----------------------------------------------------
    def _run(self, kernels: Sequence[_Kernel]) -> list[OverheadRow]:
        """One warm-up sweep, then ``repeats`` interleaved best-of sweeps."""
        for kernel in kernels:  # warm-up: table builds, caches, allocator
            kernel.fn()
        best = [float("inf")] * len(kernels)
        for _ in range(self.repeats):
            for i, kernel in enumerate(kernels):
                t0 = time.perf_counter()
                kernel.fn()
                best[i] = min(best[i], time.perf_counter() - t0)
        return [
            OverheadRow(
                label=kernel.label,
                ns_per_element=best[i] / kernel.processed * 1e9,
                elements=self.n_elements,
                repeats=self.repeats,
            )
            for i, kernel in enumerate(kernels)
        ]

    # -- public surface ------------------------------------------------------
    def measure_table5(
        self,
        configs: Iterable[str | SumCheckConfig] = PAPER_TABLE3_SCALING,
        include_baseline: bool = True,
        multiseed: Sequence[tuple[str | SumCheckConfig, int]] = (),
    ) -> list[OverheadRow]:
        """All Table 5 rows (plus optional multi-seed rows) in one sweep.

        ``configs`` mixes labels and :class:`SumCheckConfig` instances
        across any hash families; ``multiseed`` entries are
        ``(config, num_seeds)`` pairs measured through
        :class:`~repro.core.multiseed.MultiSeedSumChecker` and reported
        per element·seed.
        """
        kernels = [self._sum_kernel(self._as_config(c)) for c in configs]
        kernels += [
            self._multiseed_kernel(self._as_config(c), t) for c, t in multiseed
        ]
        if include_baseline:
            kernels.append(self._baseline_kernel())
        return self._run(kernels)

    def measure_sort(
        self, hash_families: Iterable[str] = ("CRC", "Tab")
    ) -> list[OverheadRow]:
        """§7.2 sort-checker rows for several hash families, one sweep."""
        return self._run([self._sort_kernel(f) for f in hash_families])

    @staticmethod
    def _as_config(config: str | SumCheckConfig) -> SumCheckConfig:
        if isinstance(config, SumCheckConfig):
            return config
        return SumCheckConfig.parse(config)


# ---------------------------------------------------------------------------
# Historical single-measurement entry points (wrappers over the engine)
# ---------------------------------------------------------------------------


def sum_checker_overhead_ns(
    config: SumCheckConfig,
    n_elements: int = 10**6,
    repeats: int = 5,
    seed: int = 0,
) -> OverheadRow:
    """Table 5: checker local input processing time per element."""
    engine = OverheadEngine(n_elements, repeats, seed)
    return engine.measure_table5([config], include_baseline=False)[0]


def reduce_baseline_ns(
    n_elements: int = 10**6, repeats: int = 5, seed: int = 0
) -> OverheadRow:
    """The comparison point: the main reduce operation per element."""
    engine = OverheadEngine(n_elements, repeats, seed)
    return engine.measure_table5([], include_baseline=True)[0]


def sort_checker_overhead_ns(
    hash_family: str = "CRC",
    n_elements: int = 10**6,
    repeats: int = 5,
    seed: int = 0,
) -> OverheadRow:
    """§7.2: sort-checker local processing of input *and* output.

    The paper reports 2.0 ns/element for CRC-32C and 2.8 ns for 32-bit
    tabulation hashing, independent of how many output bits are used —
    which holds here too, because truncation is a mask applied after the
    (cost-dominating) hash evaluation.
    """
    engine = OverheadEngine(n_elements, repeats, seed)
    return engine.measure_sort([hash_family])[0]


def multiseed_sum_overhead_ns(
    config: SumCheckConfig,
    num_seeds: int,
    n_elements: int = 10**6,
    repeats: int = 5,
    seed: int = 0,
) -> OverheadRow:
    """Per element·seed cost of the multi-seed batched checker."""
    engine = OverheadEngine(n_elements, repeats, seed)
    return engine.measure_table5(
        [], include_baseline=False, multiseed=[(config, num_seeds)]
    )[0]

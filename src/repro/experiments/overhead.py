"""Local-work overhead measurements — Table 5 and the §7.2 runtime text.

The paper measures the checker's *local input processing* cost per element
(the ``n/p`` term that dominates in practice): Table 5 reports 3.8–10 ns per
64-bit pair on a 3.6 GHz machine for the scaling configurations, versus
~88 ns per element for the main reduce operation.  Absolute numbers here
differ (numpy vs hand-tuned C++), but the *relationships* the paper claims
are reproducible: the checker costs a small fraction of the reduction, more
buckets are cheaper per iteration than more iterations, and hash-family
choice shifts the constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker
from repro.core.permutation_checker import HashSumPermutationChecker
from repro.dataflow.ops.reduce_by_key import local_aggregate
from repro.util.rng import derive_seed
from repro.workloads.kv import sum_workload
from repro.workloads.uniform import uniform_integers


@dataclass
class OverheadRow:
    """One row of an overhead table."""

    label: str
    ns_per_element: float
    elements: int
    repeats: int


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sum_checker_overhead_ns(
    config: SumCheckConfig,
    n_elements: int = 10**6,
    repeats: int = 5,
    seed: int = 0,
) -> OverheadRow:
    """Table 5: checker local input processing time per element."""
    keys, values = sum_workload(n_elements, seed=derive_seed(seed, "wl"))
    checker = SumAggregationChecker(config, derive_seed(seed, "checker"))
    checker.local_tables(keys, values)  # warm-up (table builds, caches)
    best = _best_of(lambda: checker.local_tables(keys, values), repeats)
    return OverheadRow(
        label=config.label(),
        ns_per_element=best / n_elements * 1e9,
        elements=n_elements,
        repeats=repeats,
    )


def reduce_baseline_ns(
    n_elements: int = 10**6, repeats: int = 5, seed: int = 0
) -> OverheadRow:
    """The comparison point: the main reduce operation per element."""
    keys, values = sum_workload(n_elements, seed=derive_seed(seed, "wl"))
    local_aggregate(keys, values)  # warm-up
    best = _best_of(lambda: local_aggregate(keys, values), repeats)
    return OverheadRow(
        label="local reduce (baseline)",
        ns_per_element=best / n_elements * 1e9,
        elements=n_elements,
        repeats=repeats,
    )


def sort_checker_overhead_ns(
    hash_family: str = "CRC",
    n_elements: int = 10**6,
    repeats: int = 5,
    seed: int = 0,
) -> OverheadRow:
    """§7.2: sort-checker local processing of input *and* output.

    The paper reports 2.0 ns/element for CRC-32C and 2.8 ns for 32-bit
    tabulation hashing, independent of how many output bits are used —
    which holds here too, because truncation is a mask applied after the
    (cost-dominating) hash evaluation.
    """
    data = uniform_integers(n_elements, seed=derive_seed(seed, "wl"))
    output = data.copy()
    output.sort()
    checker = HashSumPermutationChecker(
        iterations=1,
        hash_family=hash_family,
        log_h=8,
        seed=derive_seed(seed, "checker"),
    )
    checker.lambda_values(data, output)  # warm-up
    best = _best_of(lambda: checker.lambda_values(data, output), repeats)
    # Input and output are both processed: report per processed element.
    return OverheadRow(
        label=f"sort checker ({hash_family})",
        ns_per_element=best / (2 * n_elements) * 1e9,
        elements=n_elements,
        repeats=repeats,
    )

"""Plain-text table/series rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a header rule (monospace-friendly)."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y"
) -> str:
    """A labelled (x, y) series as aligned columns (one figure line)."""
    header = f"# {name}: {x_label} -> {y_label}"
    rows = [f"{x!s:>12}  {y}" for x, y in zip(xs, ys)]
    return "\n".join([header] + rows)

"""Regenerate the paper's tables and figures as one text report.

Entry point::

    python -m repro.experiments --trials 1000 --out report.md

Produces the Table 2 / Table 3 reproductions, Fig 3 / Fig 5 accuracy
grids, Table 5 overhead rows, the Fig 4 scaling model and the Table 1
volume measurements — the same computations the benchmark suite asserts
on, collected into a single document.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.params import (
    PAPER_FIG5_LOG_H,
    PAPER_TABLE2_ROWS,
    PAPER_TABLE3_ACCURACY,
    PAPER_TABLE3_SCALING,
    PermCheckConfig,
    SumCheckConfig,
    optimize_parameters,
)
from repro.experiments.accuracy import perm_checker_accuracy, sum_checker_accuracy
from repro.experiments.overhead import OverheadEngine
from repro.experiments.report import format_table
from repro.experiments.scaling import modeled_weak_scaling
from repro.experiments.volume import checker_volume_table
from repro.faults.manipulators import PERM_MANIPULATORS, SUM_MANIPULATORS


def _section_table2() -> str:
    rows = []
    for row in PAPER_TABLE2_ROWS:
        cfg = optimize_parameters(row["b"], row["delta"])
        rows.append(
            (
                row["b"],
                f"{row['delta']:.0e}",
                cfg.d,
                (cfg.rhat - 1).bit_length(),
                cfg.iterations,
                f"{cfg.failure_bound:.1e}",
            )
        )
    return "## Table 2 — optimal parameters\n\n" + format_table(
        ["b", "δ", "d", "log r̂", "#its", "achieved δ"], rows
    )


def _section_table3() -> str:
    rows = []
    for label in PAPER_TABLE3_ACCURACY + PAPER_TABLE3_SCALING:
        cfg = SumCheckConfig.parse(label)
        rows.append((label, cfg.table_bits, f"{cfg.failure_bound:.1e}"))
    return "## Table 3 — configurations\n\n" + format_table(
        ["configuration", "table bits", "δ"], rows
    )


def _section_fig3(trials: int, mode: str = "batched") -> str:
    rows = []
    for manipulator in SUM_MANIPULATORS:
        for label in PAPER_TABLE3_ACCURACY:
            for fam in ("CRC", "Tab"):
                cfg = SumCheckConfig.parse(label).with_hash(fam)
                cell = sum_checker_accuracy(
                    cfg, manipulator, trials, seed=0xF163, mode=mode
                )
                rows.append(
                    (
                        manipulator,
                        cfg.label(),
                        f"{cell.failure_rate:.4f}",
                        f"{cell.ratio:.3f}",
                    )
                )
    return (
        f"## Fig 3 — sum-checker accuracy ({trials} trials/cell)\n\n"
        + format_table(["manipulator", "config", "fail rate", "ratio"], rows)
    )


def _section_fig5(trials: int, mode: str = "batched") -> str:
    rows = []
    for manipulator in PERM_MANIPULATORS:
        for fam in ("CRC", "Tab"):
            for log_h in PAPER_FIG5_LOG_H:
                cfg = PermCheckConfig(log_h=log_h, hash_family=fam)
                cell = perm_checker_accuracy(
                    cfg, manipulator, trials, seed=0xF165, mode=mode
                )
                rows.append(
                    (
                        manipulator,
                        cfg.label(),
                        f"{cell.failure_rate:.4f}",
                        f"{cell.ratio:.3f}",
                    )
                )
    return (
        f"## Fig 5 — permutation-checker accuracy ({trials} trials/cell)\n\n"
        + format_table(["manipulator", "config", "fail rate", "ratio"], rows)
    )


def _section_table5(elements: int) -> str:
    # One engine pass times every configuration and the reduce baseline
    # over a single shared workload (the batched overhead engine).
    engine = OverheadEngine(n_elements=elements)
    rows = engine.measure_table5(PAPER_TABLE3_SCALING)
    return "## Table 5 — checker overhead\n\n" + format_table(
        ["configuration", "ns/element"],
        [(r.label, f"{r.ns_per_element:.1f}") for r in rows],
    )


def _section_multiseed(elements: int, num_seeds: int = 8) -> str:
    """Multi-seed re-checking: per element·seed cost vs the single-seed row."""
    engine = OverheadEngine(n_elements=elements)
    labels = ("8x16 CRC m15", "16x16 Tab64 m15")
    rows = engine.measure_table5(
        labels,
        include_baseline=False,
        multiseed=[(label, num_seeds) for label in labels],
    )
    return (
        f"## Multi-seed batched checking ({num_seeds} seeds)\n\n"
        + format_table(
            ["kernel", "ns/(element·seed)"],
            [(r.label, f"{r.ns_per_element:.1f}") for r in rows],
        )
    )


def _section_fig4() -> str:
    rows = []
    for label in ("5x16 CRC m5", "16x16 Tab64 m15"):
        for pt in modeled_weak_scaling(
            SumCheckConfig.parse(label), pes=(32, 128, 512, 2048, 4096)
        ):
            rows.append((label, pt.p, f"{pt.ratio:.3f}"))
    return "## Fig 4 — weak-scaling overhead (α–β model)\n\n" + format_table(
        ["configuration", "p", "time ratio"], rows
    )


def _section_streaming() -> str:
    from repro.experiments.overhead import sum_checker_overhead_ns
    from repro.experiments.scaling import modeled_streaming_windows

    cfg = SumCheckConfig.parse("8x16 Tab64 m15")
    # Measure the per-element local cost once; both seed rows are pure
    # α–β model evaluations on top of it.
    check_ns = sum_checker_overhead_ns(cfg, n_elements=200_000).ns_per_element
    rows = []
    for num_seeds in (1, 8):
        for pt in modeled_streaming_windows(
            cfg,
            windows=(1, 4, 16, 64),
            num_seeds=num_seeds,
            check_local_ns=check_ns * num_seeds,
        ):
            rows.append(
                (
                    num_seeds,
                    pt.windows,
                    pt.wire_bits_total,
                    f"{pt.settle_seconds * 1e3:.3f}",
                )
            )
    return (
        "## Streaming — window count vs checker wire volume (α–β model)\n\n"
        + format_table(
            ["seeds", "windows", "wire bits", "settle ms (p=1024)"], rows
        )
    )


def _section_table1() -> str:
    rows = checker_volume_table(ns=(1_000, 10_000, 100_000), p=4)
    return "## Table 1 — checker communication volume\n\n" + format_table(
        ["checker", "n", "bottleneck bytes/PE", "max msgs/PE"],
        [(r.checker, r.n, r.bottleneck_bytes, r.max_messages_per_pe) for r in rows],
    )


_SECTIONS = {
    "table1": lambda args: _section_table1(),
    "table2": lambda args: _section_table2(),
    "table3": lambda args: _section_table3(),
    "table5": lambda args: _section_table5(args.elements),
    "multiseed": lambda args: _section_multiseed(args.elements),
    "fig3": lambda args: _section_fig3(args.trials, args.accuracy_mode),
    "fig4": lambda args: _section_fig4(),
    "fig5": lambda args: _section_fig5(args.trials, args.accuracy_mode),
    "streaming": lambda args: _section_streaming(),
}


def build_report(args) -> str:
    """Assemble the requested sections into one markdown document."""
    parts = [
        "# Reproduction report — Communication Efficient Checking of Big "
        "Data Operations",
        f"_generated by `python -m repro.experiments`, "
        f"{args.trials} accuracy trials/cell_",
    ]
    for name in args.sections:
        t0 = time.perf_counter()
        parts.append(_SECTIONS[name](args))
        parts.append(f"_({name}: {time.perf_counter() - t0:.1f}s)_")
    return "\n\n".join(parts) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "--trials", type=int, default=400, help="accuracy trials per cell"
    )
    parser.add_argument(
        "--accuracy-mode",
        choices=("batched", "reference"),
        default="batched",
        help="accuracy execution path: vectorized engine (default) or the "
        "per-trial oracle loop (identical verdicts, ~20-100x slower)",
    )
    parser.add_argument(
        "--elements",
        type=int,
        default=300_000,
        help="element count for overhead measurements",
    )
    parser.add_argument(
        "--sections",
        nargs="+",
        choices=sorted(_SECTIONS),
        default=sorted(_SECTIONS),
        help="which artefacts to regenerate",
    )
    parser.add_argument(
        "--out", type=str, default="-", help="output path ('-' = stdout)"
    )
    args = parser.parse_args(argv)
    report = build_report(args)
    if args.out == "-":
        sys.stdout.write(report)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

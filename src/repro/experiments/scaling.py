"""Weak-scaling overhead of the checked reduction pipeline — Fig 4.

The paper runs ReduceByKey with and without the checker on 125 000 Zipf
items per PE for p = 32 .. 4096 cores and plots ``time(with checker) /
time(without)``: ≈ 1.01–1.12, essentially flat, with the network noise of
the exchange dominating from 4 nodes on.

Substitution (see DESIGN.md): wall-clock on a real cluster is replaced by

* **measured** ratios on the thread-backed simulator for small p (the local
  work is real; the exchange is real message passing in shared memory), and
* **modeled** ratios for the paper's p range, combining measured
  per-element local costs with the paper's own α–β collective formulas
  (§2) — the same model the paper's analysis uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.comm.context import Context
from repro.comm.cost import CostModel
from repro.core.multiseed import MultiSeedSumChecker
from repro.core.params import SumCheckConfig
from repro.core.sum_checker import SumAggregationChecker
from repro.dataflow.ops.reduce_by_key import local_aggregate, reduce_by_key
from repro.experiments.overhead import (
    multiseed_sum_overhead_ns,
    reduce_baseline_ns,
    sum_checker_overhead_ns,
)
from repro.util.rng import derive_seed, derive_seed_array
from repro.workloads.kv import sum_workload


@dataclass
class ScalingPoint:
    """One x-position of the Fig 4 series."""

    p: int
    time_without: float
    time_with: float

    @property
    def ratio(self) -> float:
        if self.time_without == 0.0:
            return 1.0
        return self.time_with / self.time_without


@dataclass
class StreamingWindowPoint:
    """One row of the window-count vs wire-volume trade-off model.

    A windowed streaming check settles once per window, so the wire
    volume and the collective latency both scale linearly with the window
    count while the local (per-element) checker work is invariant —
    windows buy verdict granularity (an error surfaces after its window,
    not after the whole job) at α·log p + β·table cost per window.
    """

    windows: int
    p: int
    wire_bits_total: int
    local_seconds: float
    settle_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.local_seconds + self.settle_seconds

    @property
    def wire_bits_per_window(self) -> int:
        return self.wire_bits_total // max(self.windows, 1)


def _run_reduction(
    ctx: Context, key_chunks, val_chunks, checker_cfg, seed, num_seeds=1
):
    """One weak-scaling run; returns max wall time over PEs."""

    def program(comm, keys, values):
        # Checker construction (hash tables, moduli) happens once per job in
        # Thrill too — keep it outside the timed pipeline.
        checker = None
        if checker_cfg is not None and num_seeds > 1:
            checker = MultiSeedSumChecker(
                checker_cfg,
                derive_seed_array(
                    seed, "scaling", np.arange(num_seeds, dtype=np.uint64)
                ),
            )
        elif checker_cfg is not None:
            checker = SumAggregationChecker(checker_cfg, seed)
        t0 = time.perf_counter()
        if checker is not None:
            t_in = checker.local_tables(keys, values)
        out_k, out_v = reduce_by_key(comm, keys, values)
        if checker is not None:
            t_out = checker.local_tables(out_k, out_v)
            diff = checker.difference(t_in, t_out)
            if num_seeds > 1:
                # All seed lanes settle in the multi-seed checker's single
                # packed collective.
                verdict = all(checker.per_seed_verdicts(diff, comm))
            else:

                def wire_op(a, b):
                    return checker.pack(
                        checker.combine(checker.unpack(a), checker.unpack(b))
                    )

                combined = comm.reduce(checker.pack(diff), wire_op, root=0)
                verdict = None
                if comm.rank == 0:
                    verdict = not np.any(checker.unpack(combined))
                verdict = comm.bcast(verdict, root=0)
            if not verdict:
                raise AssertionError("checker rejected a correct reduction")
        return time.perf_counter() - t0

    times = ctx.run(program, per_rank_args=list(zip(key_chunks, val_chunks)))
    return max(times)


def measured_weak_scaling(
    config: SumCheckConfig,
    items_per_pe: int = 20_000,
    pes: tuple[int, ...] = (1, 2, 4, 8),
    repeats: int = 3,
    num_keys: int = 10**6,
    seed: int = 0,
    num_seeds: int = 1,
) -> list[ScalingPoint]:
    """Threaded weak-scaling measurement (real local work, real messages).

    ``num_seeds > 1`` measures the multi-seed row: all ``T`` checkers run
    through the batched one-pass kernel and settle in one collective.
    """
    points = []
    for p in pes:
        ctx = Context(p)
        key_chunks, val_chunks = [], []
        for rank in range(p):
            k, v = sum_workload(
                items_per_pe, num_keys, seed=derive_seed(seed, "pe", p, rank)
            )
            key_chunks.append(k)
            val_chunks.append(v)
        best_without = float("inf")
        best_with = float("inf")
        for _ in range(repeats):
            best_without = min(
                best_without,
                _run_reduction(ctx, key_chunks, val_chunks, None, seed),
            )
            best_with = min(
                best_with,
                _run_reduction(
                    ctx, key_chunks, val_chunks, config, seed, num_seeds
                ),
            )
        points.append(ScalingPoint(p, best_without, best_with))
    return points


def modeled_weak_scaling(
    config: SumCheckConfig,
    items_per_pe: int = 125_000,
    pes: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096),
    cost_model: CostModel | None = None,
    num_keys: int = 10**6,
    check_local_ns: float | None = None,
    reduce_local_ns: float | None = None,
    measure_elements: int = 200_000,
    seed: int = 0,
    num_seeds: int = 1,
) -> list[ScalingPoint]:
    """Fig 4 for the paper's p range via the §2 α–β model.

    ``time_without(p) = reduce_local·n/p + T_all-to-all(w·k/p, p)`` and the
    checker adds ``check_local·(n/p + k/p) + T_coll(table_bits, p)`` — the
    terms of §2 "Reduction" and Theorem 1.  Local per-element costs default
    to values measured on this machine.

    ``num_seeds > 1`` models the δ^T multi-seed row: the local term uses
    the *batched* multi-seed cost per element·seed (measured through
    :class:`~repro.core.multiseed.MultiSeedSumChecker`, which shares one
    data pass across seeds) and the collective carries all ``T`` packed
    tables in one message.
    """
    cost = cost_model or CostModel()
    if check_local_ns is None:
        if num_seeds > 1:
            check_local_ns = num_seeds * multiseed_sum_overhead_ns(
                config,
                num_seeds,
                n_elements=measure_elements,
                seed=seed,
            ).ns_per_element
        else:
            check_local_ns = sum_checker_overhead_ns(
                config, n_elements=measure_elements, seed=seed
            ).ns_per_element
    if reduce_local_ns is None:
        reduce_local_ns = reduce_baseline_ns(
            n_elements=measure_elements, seed=seed
        ).ns_per_element

    points = []
    for p in pes:
        n = items_per_pe * p
        # Distinct keys under the Zipf law are ~min(num_keys, n) in order of
        # magnitude; the exchanged partial sums per PE are ~w·k/p bytes.
        k = min(num_keys, n)
        exchange_bytes = 16 * k // p  # (key, partial sum) = 2 words
        t_reduce = (
            reduce_local_ns * 1e-9 * items_per_pe
            + cost.t_all_to_all(exchange_bytes, p)
        )
        table_bytes = (num_seeds * config.table_bits + 7) // 8
        t_check = (
            check_local_ns * 1e-9 * (items_per_pe + k // p)
            + cost.t_coll(table_bytes, p)
        )
        points.append(ScalingPoint(p, t_reduce, t_reduce + t_check))
    return points


def modeled_streaming_windows(
    config: SumCheckConfig,
    items_per_pe: int = 125_000,
    p: int = 1024,
    windows: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    cost_model: CostModel | None = None,
    num_seeds: int = 1,
    check_local_ns: float | None = None,
    measure_elements: int = 200_000,
    seed: int = 0,
) -> list[StreamingWindowPoint]:
    """Window count vs wire volume for the streaming checked reduction.

    Each window settles its own packed minireduction table, so ``W``
    windows put ``W · T · table_bits`` on the wire and pay ``W`` packed
    collectives (``T_coll`` each), while the local condensed-checker work
    over the ``items_per_pe`` elements is window-invariant (the stream
    folds every chunk exactly once regardless of where the window
    boundaries fall).  The α–β terms are the same §2 formulas the Fig 4
    model uses; this is the dial a deployment turns to trade verdict
    granularity (errors surface per window) against checker traffic.
    """
    cost = cost_model or CostModel()
    if check_local_ns is None:
        check_local_ns = sum_checker_overhead_ns(
            config, n_elements=measure_elements, seed=seed
        ).ns_per_element
    table_bytes = (num_seeds * config.table_bits + 7) // 8
    local_seconds = check_local_ns * 1e-9 * items_per_pe
    points = []
    for w in windows:
        points.append(
            StreamingWindowPoint(
                windows=w,
                p=p,
                wire_bits_total=w * num_seeds * config.table_bits,
                local_seconds=local_seconds,
                settle_seconds=w * cost.t_coll(table_bytes, p),
            )
        )
    return points

"""Communication-volume measurements — Table 1's headline claims.

Table 1 states, per operation, the checker cost — crucially with a
communication term *independent of n* (sum/average/median: β·d·w bits;
permutation-family: β·w bits per iteration) and only O(log p) messages.
The simulated network meters every byte, so these claims are *measured*
here: the harness runs each checker on growing inputs and reports the
bottleneck per-PE communication volume and message count, which must stay
flat in n (asserted by tests, printed by the Table 1 bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm import ops
from repro.comm.context import Context
from repro.comm.cost import bottleneck_volume
from repro.core.median_checker import check_median_aggregation
from repro.core.params import SumCheckConfig
from repro.core.permutation_checker import check_permutation_hashsum
from repro.core.sort_checker import check_sort
from repro.core.sum_checker import check_sum_aggregation
from repro.core.zip_checker import check_zip
from repro.dataflow.ops.aggregates import median_by_key
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.util.rng import derive_seed
from repro.workloads.kv import sum_workload
from repro.workloads.uniform import uniform_integers


@dataclass
class VolumeRow:
    """Measured communication of one checker run."""

    checker: str
    n: int
    p: int
    bottleneck_bytes: int
    max_messages_per_pe: int


def _measure(ctx: Context, program, per_rank_args) -> tuple[int, int]:
    ctx.run(program, per_rank_args=per_rank_args)
    meters = ctx.meters
    return (
        bottleneck_volume(meters),
        max(max(m.messages_sent, m.messages_received) for m in meters),
    )


def _sum_volume(n: int, p: int, seed: int) -> VolumeRow:
    ctx = Context(p)
    keys, values = sum_workload(n, 10**5, seed=seed)
    config = SumCheckConfig.parse("8x16 m15")

    def program(comm, k, v):
        ok, ov = reduce_by_key(comm, k, v)
        comm.meter.mark("checker")
        check_sum_aggregation((k, v), (ok, ov), config, seed=seed, comm=comm)
        return comm.meter.since("checker")

    ctx_results = ctx.run(
        program,
        per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
    )
    bytes_max = max(
        max(r["bytes_sent"], r["bytes_received"]) for r in ctx_results
    )
    msgs_max = max(
        max(r["messages_sent"], r["messages_received"]) for r in ctx_results
    )
    return VolumeRow("sum-aggregation (8x16 m15)", n, p, bytes_max, msgs_max)


def _perm_volume(n: int, p: int, seed: int) -> VolumeRow:
    ctx = Context(p)
    data = uniform_integers(n, seed=seed)
    out = np.sort(data)

    def program(comm, e, o):
        comm.meter.mark("checker")
        check_permutation_hashsum(e, o, iterations=2, seed=seed, comm=comm)
        return comm.meter.since("checker")

    results = ctx.run(
        program, per_rank_args=list(zip(ctx.split(data), ctx.split(out)))
    )
    bytes_max = max(max(r["bytes_sent"], r["bytes_received"]) for r in results)
    msgs_max = max(
        max(r["messages_sent"], r["messages_received"]) for r in results
    )
    return VolumeRow("permutation (2 iterations)", n, p, bytes_max, msgs_max)


def _sort_volume(n: int, p: int, seed: int) -> VolumeRow:
    ctx = Context(p)
    data = uniform_integers(n, seed=seed)
    out = np.sort(data)

    def program(comm, e, o):
        comm.meter.mark("checker")
        check_sort(e, o, iterations=2, seed=seed, comm=comm)
        return comm.meter.since("checker")

    results = ctx.run(
        program, per_rank_args=list(zip(ctx.split(data), ctx.split(out)))
    )
    bytes_max = max(max(r["bytes_sent"], r["bytes_received"]) for r in results)
    msgs_max = max(
        max(r["messages_sent"], r["messages_received"]) for r in results
    )
    return VolumeRow("sort (2 iterations)", n, p, bytes_max, msgs_max)


def _zip_volume(n: int, p: int, seed: int) -> VolumeRow:
    ctx = Context(p)
    s1 = uniform_integers(n, seed=seed)
    s2 = uniform_integers(n, seed=seed + 1)

    def program(comm, a, b):
        comm.meter.mark("checker")
        check_zip(a, b, a, b, iterations=2, seed=seed, comm=comm)
        return comm.meter.since("checker")

    results = ctx.run(
        program, per_rank_args=list(zip(ctx.split(s1), ctx.split(s2)))
    )
    bytes_max = max(max(r["bytes_sent"], r["bytes_received"]) for r in results)
    msgs_max = max(
        max(r["messages_sent"], r["messages_received"]) for r in results
    )
    return VolumeRow("zip (2 iterations)", n, p, bytes_max, msgs_max)


def _median_volume(n: int, p: int, seed: int) -> VolumeRow:
    ctx = Context(p)
    keys, values = sum_workload(n, 100, seed=seed)
    config = SumCheckConfig.parse("8x16 m15")

    def program(comm, k, v):
        med = median_by_key(comm, k, v)
        offset = comm.exscan(int(k.size), op=ops.SUM, identity=0)
        uids = offset + np.arange(k.size, dtype=np.int64)
        comm.meter.mark("checker")
        check_median_aggregation(
            k,
            v,
            med.keys,
            med.numerators,
            med.denominators,
            certificate=med.certificate,
            input_uids=uids,
            config=config,
            seed=seed,
            comm=comm,
        )
        return comm.meter.since("checker")

    results = ctx.run(
        program, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
    )
    bytes_max = max(max(r["bytes_sent"], r["bytes_received"]) for r in results)
    msgs_max = max(
        max(r["messages_sent"], r["messages_received"]) for r in results
    )
    return VolumeRow("median-aggregation (8x16 m15)", n, p, bytes_max, msgs_max)


_MEASUREMENTS = {
    "sum": _sum_volume,
    "permutation": _perm_volume,
    "sort": _sort_volume,
    "zip": _zip_volume,
    "median": _median_volume,
}


def checker_volume_table(
    checkers: tuple[str, ...] = ("sum", "permutation", "sort", "zip", "median"),
    ns: tuple[int, ...] = (1_000, 10_000, 100_000),
    p: int = 4,
    seed: int = 0,
) -> list[VolumeRow]:
    """Measure checker-phase bottleneck communication across input sizes."""
    rows = []
    for name in checkers:
        fn = _MEASUREMENTS[name]
        for n in ns:
            rows.append(fn(n, p, derive_seed(seed, name, n)))
    return rows

"""Fault injection: the paper's manipulators (§7, Tables 4 and 6).

Manipulators "purposefully interfere with the computation and deliberately
introduce faults" — subtle, minimal changes, because large-scale corruption
is trivially detected.  Each manipulator reports the *exact sparse effect*
of its change (per-key aggregate deltas for the sum family; removed/added
elements for the permutation family), which the accuracy harness uses for
its exact fast path.
"""

from repro.faults.manipulators import (
    PERM_MANIPULATORS,
    SUM_MANIPULATORS,
    Bitflip,
    IncDec,
    IncKey,
    Increment,
    KVManipulation,
    KVManipulator,
    RandKey,
    Randomize,
    Reset,
    SeqBitflip,
    SeqManipulation,
    SeqManipulator,
    SetEqual,
    SwitchValues,
    get_kv_manipulator,
    get_seq_manipulator,
    kv_manipulator_names,
    seq_manipulator_names,
)

__all__ = [
    "PERM_MANIPULATORS",
    "SUM_MANIPULATORS",
    "Bitflip",
    "IncDec",
    "IncKey",
    "Increment",
    "KVManipulation",
    "KVManipulator",
    "RandKey",
    "Randomize",
    "Reset",
    "SeqBitflip",
    "SeqManipulation",
    "SeqManipulator",
    "SetEqual",
    "SwitchValues",
    "get_kv_manipulator",
    "get_seq_manipulator",
    "kv_manipulator_names",
    "seq_manipulator_names",
]

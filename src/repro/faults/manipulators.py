"""The paper's manipulators (Tables 4 and 6).

Two families:

* **Key-value manipulators** (Table 4) attack a sum aggregation: the fault
  is injected *inside* the (black-box) reduction, so the checker sees the
  original input but an output aggregated from manipulated data.  The
  effect on the checker is fully described by the per-key aggregate deltas.
* **Sequence manipulators** (Table 6) attack a sort/permutation: one
  element of the input sequence is altered before sorting ("in order to
  test the permutation checker and not the trivial sortedness check").
  The effect is described by the (removed, added) element multisets.

Every ``apply`` returns both the manipulated data and the sparse effect;
``sample_delta``/``sample_change`` produce only the effect (same
distribution) for the high-trial-count accuracy experiments.  Manipulators
re-draw when a draw happens to be a no-op (e.g. RandKey drawing the same
key): a manipulator's contract is that it *does* introduce a fault.

``sample_delta_batch``/``sample_change_batch`` draw *many* trials' faults
in a few numpy passes.  Each trial consumes its own
:class:`repro.util.rng.SplitMixStream` draws in exactly the order the
scalar methods would (redraws included), so the batched accuracy engine is
trial-for-trial identical to the per-trial reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SplitMixStreamBatch, default_generator

_MAX_REDRAWS = 64


def _resolve_rng(rng):
    """Coerce an ``rng=`` argument to a draw source.

    Integers are root seeds, resolved through the sanctioned
    :func:`repro.util.rng.default_generator` bridge so injection stays
    replayable (and the ``determinism`` lint rule keeps exactly one
    generator constructor to whitelist).  Generators and
    :class:`~repro.util.rng.SplitMixStream` objects pass through; ``None``
    stays ``None`` (meaning "use the manipulator's bound generator").
    """
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)):
        return default_generator(int(rng))
    return rng


@dataclass
class KVManipulation:
    """Effect of a key-value manipulator."""

    keys: np.ndarray  # manipulated keys (full copy) — None in delta-only mode
    values: np.ndarray | None
    delta_keys: np.ndarray  # sparse per-key aggregate deltas (output − correct)
    delta_values: np.ndarray


@dataclass
class SeqManipulation:
    """Effect of a sequence manipulator."""

    sequence: np.ndarray | None  # manipulated sequence — None in delta-only mode
    removed: np.ndarray  # multiset of elements removed from the sequence
    added: np.ndarray  # multiset of elements added


@dataclass
class KVManipulationBatch:
    """Sparse aggregate deltas of many independently drawn faults.

    Flat arrays: entry ``i`` contributes ``delta_values[i]`` to key
    ``delta_keys[i]`` of trial ``owner[i]``; entries are grouped by trial
    and every trial has at least one (non-zero) entry.
    """

    owner: np.ndarray  # (entries,) trial index per delta entry
    delta_keys: np.ndarray  # (entries,) uint64
    delta_values: np.ndarray  # (entries,) int64
    trials: int


@dataclass
class SeqManipulationBatch:
    """(removed, added) element of many single-element sequence faults."""

    removed: np.ndarray  # (trials,) uint64
    added: np.ndarray  # (trials,) uint64


_KEY_MASK = (1 << 64) - 1


def _consolidate(keys: list[int], values: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Merge duplicate delta keys and drop zero deltas.

    Keys wrap modulo 2^64 (stored-integer semantics: decrementing key 0
    yields key 2^64−1, exactly what the manipulated uint64 record holds).
    """
    agg: dict[int, int] = {}
    for k, v in zip(keys, values):
        k &= _KEY_MASK
        agg[k] = agg.get(k, 0) + v
    kept = [(k, v) for k, v in agg.items() if v != 0]
    if not kept:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
    ks, vs = zip(*kept)
    return np.array(ks, dtype=np.uint64), np.array(vs, dtype=np.int64)


def _consolidate_batch(
    owner: np.ndarray, keys: np.ndarray, values: np.ndarray, trials: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_consolidate` across trials.

    Merges duplicate (trial, key) entries, drops zero deltas, and returns
    ``(owner, keys, values, per-trial entry counts)`` sorted by trial.
    Entry *order within a trial* may differ from the scalar dict-insertion
    order; the minireduction table is order-invariant, so verdicts are
    unaffected.
    """
    owner = np.asarray(owner, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.uint64)
    values = np.asarray(values, dtype=np.int64)
    counts = np.zeros(trials, dtype=np.int64)
    if owner.size == 0:
        return owner.astype(np.intp), keys, values, counts
    order = np.lexsort((keys, owner))
    o, k, v = owner[order], keys[order], values[order]
    first = np.concatenate(([True], (o[1:] != o[:-1]) | (k[1:] != k[:-1])))
    starts = np.flatnonzero(first)
    sums = np.add.reduceat(v, starts)
    o, k = o[starts], k[starts]
    keep = sums != 0
    o, k, sums = o[keep], k[keep], sums[keep]
    counts = np.bincount(o, minlength=trials)
    return o.astype(np.intp), k, sums, counts


# ---------------------------------------------------------------------------
# Table 4: sum-aggregation manipulators
# ---------------------------------------------------------------------------


class KVManipulator:
    """Base class; subclasses draw a fault and describe its aggregate delta.

    ``rng=`` (an int root seed or a generator) binds a default draw source
    at construction; per-call ``rng`` arguments override it.
    """

    name: str = "?"

    def __init__(self, rng=None):
        self.rng = _resolve_rng(rng)

    def _resolve(self, rng):
        rng = _resolve_rng(rng)
        if rng is None:
            rng = self.rng
        if rng is None:
            raise ValueError(
                f"{self.name}: pass rng= here or bind one at construction"
            )
        return rng

    def _draw(self, rng: np.random.Generator, keys, values):
        """Return (delta_keys, delta_values, edits) for one fault.

        ``edits`` is a list of (index, new_key, new_value) element rewrites
        used by :meth:`apply` to materialise the manipulated input.
        """
        raise NotImplementedError

    def sample_delta(self, rng, keys, values) -> KVManipulation:
        """Draw a fault; report only its per-key aggregate deltas (fast path).

        ``rng`` may be a generator, an int root seed, or ``None`` to use
        the generator bound at construction.
        """
        rng = self._resolve(rng)
        for _ in range(_MAX_REDRAWS):
            dk, dv, _ = self._draw(rng, keys, values)
            if dk.size:
                return KVManipulation(None, None, dk, dv)
        raise RuntimeError(
            f"{self.name}: could not draw an effective fault in "
            f"{_MAX_REDRAWS} attempts (degenerate input?)"
        )

    def apply(self, rng, keys, values) -> KVManipulation:
        """Draw a fault; return the manipulated copy plus its deltas.

        ``rng`` resolves exactly as in :meth:`sample_delta`.
        """
        rng = self._resolve(rng)
        for _ in range(_MAX_REDRAWS):
            dk, dv, edits = self._draw(rng, keys, values)
            if dk.size:
                new_keys = np.array(keys, dtype=np.uint64, copy=True)
                new_values = np.array(values, dtype=np.int64, copy=True)
                for idx, nk, nv in edits:
                    new_keys[idx] = nk & _KEY_MASK
                    new_values[idx] = nv
                return KVManipulation(new_keys, new_values, dk, dv)
        raise RuntimeError(
            f"{self.name}: could not draw an effective fault in "
            f"{_MAX_REDRAWS} attempts (degenerate input?)"
        )

    def _draw_batch(
        self, rng: SplitMixStreamBatch, keys, values, idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One attempt for trials ``idx``: consolidated (owner, dk, dv).

        Consumes each listed trial's stream draws exactly as the scalar
        :meth:`_draw` would; trials whose attempt was a no-op simply have
        no entries in the result.
        """
        raise NotImplementedError

    def sample_delta_batch(
        self, rng: SplitMixStreamBatch, keys, values, trials: int | None = None
    ) -> KVManipulationBatch:
        """Batched :meth:`sample_delta`: one fault per stream in ``rng``.

        Trial ``t``'s fault (and stream consumption, redraws included)
        equals ``sample_delta(SplitMixStream(seed_t), ...)`` for the seed
        behind ``rng``'s stream ``t``.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.asarray(values, dtype=np.int64)
        total = rng.size
        if trials is not None and trials != total:
            raise ValueError(f"rng carries {total} streams, trials={trials}")
        owner_parts, key_parts, val_parts = [], [], []
        pending = np.arange(total, dtype=np.intp)
        for _ in range(_MAX_REDRAWS):
            if pending.size == 0:
                break
            o, dk, dv = self._draw_batch(rng, keys, values, pending)
            owner_parts.append(o)
            key_parts.append(dk)
            val_parts.append(dv)
            effective = np.zeros(total, dtype=bool)
            effective[o] = True
            pending = pending[~effective[pending]]
        if pending.size:
            raise RuntimeError(
                f"{self.name}: could not draw an effective fault in "
                f"{_MAX_REDRAWS} attempts (degenerate input?)"
            )
        owner = np.concatenate(owner_parts) if owner_parts else np.zeros(0, np.intp)
        dk = np.concatenate(key_parts) if key_parts else np.zeros(0, np.uint64)
        dv = np.concatenate(val_parts) if val_parts else np.zeros(0, np.int64)
        order = np.argsort(owner, kind="stable")
        return KVManipulationBatch(owner[order], dk[order], dv[order], total)


class Bitflip(KVManipulator):
    """Flip a random bit of a random input element (key or value part).

    The element is the stored (key, value) record: ``key_bits`` key bits
    followed by ``value_bits`` value bits (soft-error model: a single DRAM
    bitflip inside the reduction's working set).
    """

    name = "Bitflip"

    def __init__(self, key_bits: int = 20, value_bits: int = 21, rng=None):
        super().__init__(rng)
        self.key_bits = key_bits
        self.value_bits = value_bits

    def _draw(self, rng, keys, values):
        i = int(rng.integers(len(keys)))
        bit = int(rng.integers(self.key_bits + self.value_bits))
        k = int(keys[i])
        v = int(values[i])
        if bit < self.value_bits:
            nv = v ^ (1 << bit)
            dk, dv = _consolidate([k], [nv - v])
            return dk, dv, [(i, k, nv)]
        nk = k ^ (1 << (bit - self.value_bits))
        dk, dv = _consolidate([k, nk], [-v, v])
        return dk, dv, [(i, nk, v)]

    def _draw_batch(self, rng, keys, values, idx):
        i = rng.integers(keys.size, index=idx).astype(np.intp)
        bit = rng.integers(self.key_bits + self.value_bits, index=idx)
        k, v = keys[i], values[i]
        val_flip = bit < np.uint64(self.value_bits)
        dv_val = (v ^ (np.int64(1) << bit.astype(np.int64))) - v
        key_shift = (bit - np.uint64(self.value_bits)) & np.uint64(63)
        nk = k ^ (np.uint64(1) << key_shift)
        kf = ~val_flip
        owner = np.concatenate((idx[val_flip], idx[kf], idx[kf]))
        dkeys = np.concatenate((k[val_flip], k[kf], nk[kf]))
        dvals = np.concatenate((dv_val[val_flip], -v[kf], v[kf]))
        return _consolidate_batch(owner, dkeys, dvals, rng.size)[:3]


class RandKey(KVManipulator):
    """Randomize the key of a random element (within the key domain)."""

    name = "RandKey"

    def __init__(self, key_domain: int = 10**6, rng=None):
        super().__init__(rng)
        self.key_domain = key_domain

    def _draw(self, rng, keys, values):
        i = int(rng.integers(len(keys)))
        k = int(keys[i])
        v = int(values[i])
        nk = int(rng.integers(self.key_domain))
        dk, dv = _consolidate([k, nk], [-v, v])
        return dk, dv, [(i, nk, v)]

    def _draw_batch(self, rng, keys, values, idx):
        i = rng.integers(keys.size, index=idx).astype(np.intp)
        nk = rng.integers(self.key_domain, index=idx)
        k, v = keys[i], values[i]
        owner = np.concatenate((idx, idx))
        dkeys = np.concatenate((k, nk))
        dvals = np.concatenate((-v, v))
        return _consolidate_batch(owner, dkeys, dvals, rng.size)[:3]


class SwitchValues(KVManipulator):
    """Switch the values of two random elements."""

    name = "SwitchValues"

    def _draw(self, rng, keys, values):
        n = len(keys)
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        ki, kj = int(keys[i]), int(keys[j])
        vi, vj = int(values[i]), int(values[j])
        dk, dv = _consolidate([ki, kj], [vj - vi, vi - vj])
        return dk, dv, [(i, ki, vj), (j, kj, vi)]

    def _draw_batch(self, rng, keys, values, idx):
        i = rng.integers(keys.size, index=idx).astype(np.intp)
        j = rng.integers(keys.size, index=idx).astype(np.intp)
        ki, kj = keys[i], keys[j]
        vi, vj = values[i], values[j]
        owner = np.concatenate((idx, idx))
        dkeys = np.concatenate((ki, kj))
        dvals = np.concatenate((vj - vi, vi - vj))
        return _consolidate_batch(owner, dkeys, dvals, rng.size)[:3]


class IncKey(KVManipulator):
    """Increment the key of a random element."""

    name = "IncKey"

    def _draw(self, rng, keys, values):
        i = int(rng.integers(len(keys)))
        k = int(keys[i])
        v = int(values[i])
        nk = (k + 1) & _KEY_MASK
        dk, dv = _consolidate([k, nk], [-v, v])
        return dk, dv, [(i, nk, v)]

    def _draw_batch(self, rng, keys, values, idx):
        i = rng.integers(keys.size, index=idx).astype(np.intp)
        k, v = keys[i], values[i]
        with np.errstate(over="ignore"):
            nk = k + np.uint64(1)
        owner = np.concatenate((idx, idx))
        dkeys = np.concatenate((k, nk))
        dvals = np.concatenate((-v, v))
        return _consolidate_batch(owner, dkeys, dvals, rng.size)[:3]


class IncDec(KVManipulator):
    """Increment the keys of n elements, decrement those of n others.

    All 2n touched elements have pairwise distinct keys (Table 4); this is
    the adversarial case for the checker because the ±v deltas may cancel
    within a bucket.
    """

    def __init__(self, n: int = 1, rng=None):
        super().__init__(rng)
        if n < 1:
            raise ValueError(f"IncDec needs n >= 1, got {n}")
        self.n = n
        self.name = f"IncDec{n}"

    def _draw(self, rng, keys, values):
        needed = 2 * self.n
        # Sample until we hold 2n elements with pairwise distinct keys.
        seen: dict[int, int] = {}
        for _ in range(64 * needed):
            i = int(rng.integers(len(keys)))
            k = int(keys[i])
            if k not in seen:
                seen[k] = i
            if len(seen) == needed:
                break
        else:
            return (
                np.zeros(0, dtype=np.uint64),
                np.zeros(0, dtype=np.int64),
                [],
            )
        picks = list(seen.values())
        delta_keys: list[int] = []
        delta_vals: list[int] = []
        edits = []
        for rank, i in enumerate(picks):
            k = int(keys[i])
            v = int(values[i])
            nk = (k + 1 if rank < self.n else k - 1) & _KEY_MASK
            delta_keys += [k, nk]
            delta_vals += [-v, v]
            edits.append((i, nk, v))
        dk, dv = _consolidate(delta_keys, delta_vals)
        return dk, dv, edits

    def _draw_batch(self, rng, keys, values, idx):
        # Re-enact the scalar rejection loop in lock-step: every incomplete
        # trial draws one index per step (duplicates of an already-picked
        # key are discarded, consuming the draw), and stops the moment it
        # holds 2n distinct keys.  Per-trial stream counters diverge
        # naturally through rng's index bookkeeping.
        needed = 2 * self.n
        m = idx.size
        picked_key = np.zeros((m, needed), dtype=np.uint64)
        picked_idx = np.zeros((m, needed), dtype=np.intp)
        counts = np.zeros(m, dtype=np.int64)
        ranks = np.arange(needed, dtype=np.int64)
        for _ in range(64 * needed):
            open_rows = np.flatnonzero(counts < needed)
            if open_rows.size == 0:
                break
            draws = rng.integers(keys.size, index=idx[open_rows]).astype(np.intp)
            k = keys[draws]
            dup = (
                (picked_key[open_rows] == k[:, None])
                & (ranks[None, :] < counts[open_rows, None])
            ).any(axis=1)
            rows = open_rows[~dup]
            picked_key[rows, counts[rows]] = k[~dup]
            picked_idx[rows, counts[rows]] = draws[~dup]
            counts[rows] += 1
        done = np.flatnonzero(counts == needed)
        pk = picked_key[done]  # (c, needed)
        pv = values[picked_idx[done]]
        with np.errstate(over="ignore"):
            nk = pk + np.where(ranks[None, :] < self.n, 1, -1).astype(np.uint64)
        owner = np.repeat(idx[done], 2 * needed)
        dkeys = np.stack((pk, nk), axis=2).reshape(-1)
        dvals = np.stack((-pv, pv), axis=2).reshape(-1)
        return _consolidate_batch(owner, dkeys, dvals, rng.size)[:3]


# ---------------------------------------------------------------------------
# Table 6: permutation/sort manipulators
# ---------------------------------------------------------------------------


class SeqManipulator:
    """Base class for single-element sequence manipulators.

    ``rng=`` binds a default draw source exactly as for
    :class:`KVManipulator`.
    """

    name: str = "?"

    def __init__(self, rng=None):
        self.rng = _resolve_rng(rng)

    def _resolve(self, rng):
        rng = _resolve_rng(rng)
        if rng is None:
            rng = self.rng
        if rng is None:
            raise ValueError(
                f"{self.name}: pass rng= here or bind one at construction"
            )
        return rng

    def _draw(self, rng: np.random.Generator, seq):
        """Return (index, new_value) or None if the draw was a no-op."""
        raise NotImplementedError

    def sample_change(self, rng, seq) -> SeqManipulation:
        """Draw a fault; report only the removed/added elements.

        ``rng`` may be a generator, an int root seed, or ``None`` to use
        the generator bound at construction.
        """
        rng = self._resolve(rng)
        for _ in range(_MAX_REDRAWS):
            drawn = self._draw(rng, seq)
            if drawn is not None:
                i, nv = drawn
                return SeqManipulation(
                    None,
                    removed=np.array([seq[i]], dtype=np.uint64),
                    added=np.array([nv], dtype=np.uint64),
                )
        raise RuntimeError(f"{self.name}: no effective fault in {_MAX_REDRAWS} draws")

    def apply(self, rng, seq) -> SeqManipulation:
        """Draw a fault; return the manipulated sequence plus the change.

        ``rng`` resolves exactly as in :meth:`sample_change`.
        """
        rng = self._resolve(rng)
        for _ in range(_MAX_REDRAWS):
            drawn = self._draw(rng, seq)
            if drawn is not None:
                i, nv = drawn
                out = np.array(seq, dtype=np.uint64, copy=True)
                removed = np.array([out[i]], dtype=np.uint64)
                out[i] = nv
                return SeqManipulation(
                    out, removed=removed, added=np.array([nv], dtype=np.uint64)
                )
        raise RuntimeError(f"{self.name}: no effective fault in {_MAX_REDRAWS} draws")

    def _draw_batch(
        self, rng: SplitMixStreamBatch, seq: np.ndarray, idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One attempt for trials ``idx``: ``(element index, new value, ok)``.

        Consumes each trial's stream draws exactly as the scalar
        :meth:`_draw`; ``ok`` marks trials whose draw was effective.
        """
        raise NotImplementedError

    def sample_change_batch(
        self, rng: SplitMixStreamBatch, seq, trials: int | None = None
    ) -> SeqManipulationBatch:
        """Batched :meth:`sample_change`: one (removed, added) per stream."""
        seq = np.asarray(seq, dtype=np.uint64)
        total = rng.size
        if trials is not None and trials != total:
            raise ValueError(f"rng carries {total} streams, trials={trials}")
        removed = np.zeros(total, dtype=np.uint64)
        added = np.zeros(total, dtype=np.uint64)
        pending = np.arange(total, dtype=np.intp)
        for _ in range(_MAX_REDRAWS):
            if pending.size == 0:
                break
            i, nv, ok = self._draw_batch(rng, seq, pending)
            good = pending[ok]
            removed[good] = seq[i[ok]]
            added[good] = nv[ok]
            pending = pending[~ok]
        if pending.size:
            raise RuntimeError(
                f"{self.name}: no effective fault in {_MAX_REDRAWS} draws"
            )
        return SeqManipulationBatch(removed, added)


class SeqBitflip(SeqManipulator):
    """Flip a random bit of a random element (within ``bit_width`` bits)."""

    name = "Bitflip"

    def __init__(self, bit_width: int = 27, rng=None):
        super().__init__(rng)
        self.bit_width = bit_width

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        bit = int(rng.integers(self.bit_width))
        return i, int(seq[i]) ^ (1 << bit)

    def _draw_batch(self, rng, seq, idx):
        i = rng.integers(seq.size, index=idx).astype(np.intp)
        bit = rng.integers(self.bit_width, index=idx)
        nv = seq[i] ^ (np.uint64(1) << bit)
        return i, nv, np.ones(idx.size, dtype=bool)


class Increment(SeqManipulator):
    """Increment a random element's value by one (the CRC killer)."""

    name = "Increment"

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        return i, int(seq[i]) + 1

    def _draw_batch(self, rng, seq, idx):
        i = rng.integers(seq.size, index=idx).astype(np.intp)
        with np.errstate(over="ignore"):
            nv = seq[i] + np.uint64(1)
        return i, nv, np.ones(idx.size, dtype=bool)


class Randomize(SeqManipulator):
    """Set a random element to a random value in the universe."""

    name = "Randomize"

    def __init__(self, universe: int = 10**8, rng=None):
        super().__init__(rng)
        self.universe = universe

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        nv = int(rng.integers(self.universe))
        if nv == int(seq[i]):
            return None
        return i, nv

    def _draw_batch(self, rng, seq, idx):
        i = rng.integers(seq.size, index=idx).astype(np.intp)
        nv = rng.integers(self.universe, index=idx)
        return i, nv, nv != seq[i]


class Reset(SeqManipulator):
    """Reset a random element to the default value 0."""

    name = "Reset"

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        if int(seq[i]) == 0:
            return None
        return i, 0

    def _draw_batch(self, rng, seq, idx):
        i = rng.integers(seq.size, index=idx).astype(np.intp)
        return i, np.zeros(idx.size, dtype=np.uint64), seq[i] != 0


class SetEqual(SeqManipulator):
    """Set a random element equal to a *different* element.

    Produces a duplicated value — precisely the case where the mod-H
    hash-sum of Lemma 4 (without the wide-sum fix) loses soundness.
    """

    name = "SetEqual"

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        j = int(rng.integers(len(seq)))
        if int(seq[j]) == int(seq[i]):
            return None
        return i, int(seq[j])

    def _draw_batch(self, rng, seq, idx):
        i = rng.integers(seq.size, index=idx).astype(np.intp)
        j = rng.integers(seq.size, index=idx).astype(np.intp)
        return i, seq[j], seq[j] != seq[i]


# ---------------------------------------------------------------------------
# Registries (Table 4 and Table 6 rosters)
# ---------------------------------------------------------------------------

SUM_MANIPULATORS: dict[str, type | object] = {
    "Bitflip": Bitflip,
    "RandKey": RandKey,
    "SwitchValues": SwitchValues,
    "IncKey": IncKey,
    "IncDec1": lambda **kw: IncDec(1, **kw),
    "IncDec2": lambda **kw: IncDec(2, **kw),
}

PERM_MANIPULATORS: dict[str, type | object] = {
    "Bitflip": SeqBitflip,
    "Increment": Increment,
    "Randomize": Randomize,
    "Reset": Reset,
    "SetEqual": SetEqual,
}


def get_kv_manipulator(name: str, **kwargs) -> KVManipulator:
    """Instantiate a Table 4 manipulator by name."""
    try:
        factory = SUM_MANIPULATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown sum manipulator {name!r}; available: {sorted(SUM_MANIPULATORS)}"
        ) from None
    return factory(**kwargs)


def get_seq_manipulator(name: str, **kwargs) -> SeqManipulator:
    """Instantiate a Table 6 manipulator by name."""
    try:
        factory = PERM_MANIPULATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown sequence manipulator {name!r}; "
            f"available: {sorted(PERM_MANIPULATORS)}"
        ) from None
    return factory(**kwargs)


def kv_manipulator_names() -> tuple[str, ...]:
    """Sorted Table 4 manipulator names (the chaos harness's KV roster)."""
    return tuple(sorted(SUM_MANIPULATORS))


def seq_manipulator_names() -> tuple[str, ...]:
    """Sorted Table 6 manipulator names (the chaos harness's seq roster)."""
    return tuple(sorted(PERM_MANIPULATORS))

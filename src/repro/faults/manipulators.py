"""The paper's manipulators (Tables 4 and 6).

Two families:

* **Key-value manipulators** (Table 4) attack a sum aggregation: the fault
  is injected *inside* the (black-box) reduction, so the checker sees the
  original input but an output aggregated from manipulated data.  The
  effect on the checker is fully described by the per-key aggregate deltas.
* **Sequence manipulators** (Table 6) attack a sort/permutation: one
  element of the input sequence is altered before sorting ("in order to
  test the permutation checker and not the trivial sortedness check").
  The effect is described by the (removed, added) element multisets.

Every ``apply`` returns both the manipulated data and the sparse effect;
``sample_delta``/``sample_change`` produce only the effect (same
distribution) for the high-trial-count accuracy experiments.  Manipulators
re-draw when a draw happens to be a no-op (e.g. RandKey drawing the same
key): a manipulator's contract is that it *does* introduce a fault.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_MAX_REDRAWS = 64


@dataclass
class KVManipulation:
    """Effect of a key-value manipulator."""

    keys: np.ndarray  # manipulated keys (full copy) — None in delta-only mode
    values: np.ndarray | None
    delta_keys: np.ndarray  # sparse per-key aggregate deltas (output − correct)
    delta_values: np.ndarray


@dataclass
class SeqManipulation:
    """Effect of a sequence manipulator."""

    sequence: np.ndarray | None  # manipulated sequence — None in delta-only mode
    removed: np.ndarray  # multiset of elements removed from the sequence
    added: np.ndarray  # multiset of elements added


_KEY_MASK = (1 << 64) - 1


def _consolidate(keys: list[int], values: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Merge duplicate delta keys and drop zero deltas.

    Keys wrap modulo 2^64 (stored-integer semantics: decrementing key 0
    yields key 2^64−1, exactly what the manipulated uint64 record holds).
    """
    agg: dict[int, int] = {}
    for k, v in zip(keys, values):
        k &= _KEY_MASK
        agg[k] = agg.get(k, 0) + v
    kept = [(k, v) for k, v in agg.items() if v != 0]
    if not kept:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
    ks, vs = zip(*kept)
    return np.array(ks, dtype=np.uint64), np.array(vs, dtype=np.int64)


# ---------------------------------------------------------------------------
# Table 4: sum-aggregation manipulators
# ---------------------------------------------------------------------------


class KVManipulator:
    """Base class; subclasses draw a fault and describe its aggregate delta."""

    name: str = "?"

    def _draw(self, rng: np.random.Generator, keys, values):
        """Return (delta_keys, delta_values, edits) for one fault.

        ``edits`` is a list of (index, new_key, new_value) element rewrites
        used by :meth:`apply` to materialise the manipulated input.
        """
        raise NotImplementedError

    def sample_delta(self, rng: np.random.Generator, keys, values) -> KVManipulation:
        """Draw a fault; report only its per-key aggregate deltas (fast path)."""
        for _ in range(_MAX_REDRAWS):
            dk, dv, _ = self._draw(rng, keys, values)
            if dk.size:
                return KVManipulation(None, None, dk, dv)
        raise RuntimeError(
            f"{self.name}: could not draw an effective fault in "
            f"{_MAX_REDRAWS} attempts (degenerate input?)"
        )

    def apply(self, rng: np.random.Generator, keys, values) -> KVManipulation:
        """Draw a fault; return the manipulated copy plus its deltas."""
        for _ in range(_MAX_REDRAWS):
            dk, dv, edits = self._draw(rng, keys, values)
            if dk.size:
                new_keys = np.array(keys, dtype=np.uint64, copy=True)
                new_values = np.array(values, dtype=np.int64, copy=True)
                for idx, nk, nv in edits:
                    new_keys[idx] = nk & _KEY_MASK
                    new_values[idx] = nv
                return KVManipulation(new_keys, new_values, dk, dv)
        raise RuntimeError(
            f"{self.name}: could not draw an effective fault in "
            f"{_MAX_REDRAWS} attempts (degenerate input?)"
        )


class Bitflip(KVManipulator):
    """Flip a random bit of a random input element (key or value part).

    The element is the stored (key, value) record: ``key_bits`` key bits
    followed by ``value_bits`` value bits (soft-error model: a single DRAM
    bitflip inside the reduction's working set).
    """

    name = "Bitflip"

    def __init__(self, key_bits: int = 20, value_bits: int = 21):
        self.key_bits = key_bits
        self.value_bits = value_bits

    def _draw(self, rng, keys, values):
        i = int(rng.integers(len(keys)))
        bit = int(rng.integers(self.key_bits + self.value_bits))
        k = int(keys[i])
        v = int(values[i])
        if bit < self.value_bits:
            nv = v ^ (1 << bit)
            dk, dv = _consolidate([k], [nv - v])
            return dk, dv, [(i, k, nv)]
        nk = k ^ (1 << (bit - self.value_bits))
        dk, dv = _consolidate([k, nk], [-v, v])
        return dk, dv, [(i, nk, v)]


class RandKey(KVManipulator):
    """Randomize the key of a random element (within the key domain)."""

    name = "RandKey"

    def __init__(self, key_domain: int = 10**6):
        self.key_domain = key_domain

    def _draw(self, rng, keys, values):
        i = int(rng.integers(len(keys)))
        k = int(keys[i])
        v = int(values[i])
        nk = int(rng.integers(self.key_domain))
        dk, dv = _consolidate([k, nk], [-v, v])
        return dk, dv, [(i, nk, v)]


class SwitchValues(KVManipulator):
    """Switch the values of two random elements."""

    name = "SwitchValues"

    def _draw(self, rng, keys, values):
        n = len(keys)
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        ki, kj = int(keys[i]), int(keys[j])
        vi, vj = int(values[i]), int(values[j])
        dk, dv = _consolidate([ki, kj], [vj - vi, vi - vj])
        return dk, dv, [(i, ki, vj), (j, kj, vi)]


class IncKey(KVManipulator):
    """Increment the key of a random element."""

    name = "IncKey"

    def _draw(self, rng, keys, values):
        i = int(rng.integers(len(keys)))
        k = int(keys[i])
        v = int(values[i])
        nk = (k + 1) & _KEY_MASK
        dk, dv = _consolidate([k, nk], [-v, v])
        return dk, dv, [(i, nk, v)]


class IncDec(KVManipulator):
    """Increment the keys of n elements, decrement those of n others.

    All 2n touched elements have pairwise distinct keys (Table 4); this is
    the adversarial case for the checker because the ±v deltas may cancel
    within a bucket.
    """

    def __init__(self, n: int = 1):
        if n < 1:
            raise ValueError(f"IncDec needs n >= 1, got {n}")
        self.n = n
        self.name = f"IncDec{n}"

    def _draw(self, rng, keys, values):
        needed = 2 * self.n
        # Sample until we hold 2n elements with pairwise distinct keys.
        seen: dict[int, int] = {}
        for _ in range(64 * needed):
            i = int(rng.integers(len(keys)))
            k = int(keys[i])
            if k not in seen:
                seen[k] = i
            if len(seen) == needed:
                break
        else:
            return (
                np.zeros(0, dtype=np.uint64),
                np.zeros(0, dtype=np.int64),
                [],
            )
        picks = list(seen.values())
        delta_keys: list[int] = []
        delta_vals: list[int] = []
        edits = []
        for rank, i in enumerate(picks):
            k = int(keys[i])
            v = int(values[i])
            nk = (k + 1 if rank < self.n else k - 1) & _KEY_MASK
            delta_keys += [k, nk]
            delta_vals += [-v, v]
            edits.append((i, nk, v))
        dk, dv = _consolidate(delta_keys, delta_vals)
        return dk, dv, edits


# ---------------------------------------------------------------------------
# Table 6: permutation/sort manipulators
# ---------------------------------------------------------------------------


class SeqManipulator:
    """Base class for single-element sequence manipulators."""

    name: str = "?"

    def _draw(self, rng: np.random.Generator, seq):
        """Return (index, new_value) or None if the draw was a no-op."""
        raise NotImplementedError

    def sample_change(self, rng: np.random.Generator, seq) -> SeqManipulation:
        """Draw a fault; report only the removed/added elements."""
        for _ in range(_MAX_REDRAWS):
            drawn = self._draw(rng, seq)
            if drawn is not None:
                i, nv = drawn
                return SeqManipulation(
                    None,
                    removed=np.array([seq[i]], dtype=np.uint64),
                    added=np.array([nv], dtype=np.uint64),
                )
        raise RuntimeError(f"{self.name}: no effective fault in {_MAX_REDRAWS} draws")

    def apply(self, rng: np.random.Generator, seq) -> SeqManipulation:
        """Draw a fault; return the manipulated sequence plus the change."""
        for _ in range(_MAX_REDRAWS):
            drawn = self._draw(rng, seq)
            if drawn is not None:
                i, nv = drawn
                out = np.array(seq, dtype=np.uint64, copy=True)
                removed = np.array([out[i]], dtype=np.uint64)
                out[i] = nv
                return SeqManipulation(
                    out, removed=removed, added=np.array([nv], dtype=np.uint64)
                )
        raise RuntimeError(f"{self.name}: no effective fault in {_MAX_REDRAWS} draws")


class SeqBitflip(SeqManipulator):
    """Flip a random bit of a random element (within ``bit_width`` bits)."""

    name = "Bitflip"

    def __init__(self, bit_width: int = 27):
        self.bit_width = bit_width

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        bit = int(rng.integers(self.bit_width))
        return i, int(seq[i]) ^ (1 << bit)


class Increment(SeqManipulator):
    """Increment a random element's value by one (the CRC killer)."""

    name = "Increment"

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        return i, int(seq[i]) + 1


class Randomize(SeqManipulator):
    """Set a random element to a random value in the universe."""

    name = "Randomize"

    def __init__(self, universe: int = 10**8):
        self.universe = universe

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        nv = int(rng.integers(self.universe))
        if nv == int(seq[i]):
            return None
        return i, nv


class Reset(SeqManipulator):
    """Reset a random element to the default value 0."""

    name = "Reset"

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        if int(seq[i]) == 0:
            return None
        return i, 0


class SetEqual(SeqManipulator):
    """Set a random element equal to a *different* element.

    Produces a duplicated value — precisely the case where the mod-H
    hash-sum of Lemma 4 (without the wide-sum fix) loses soundness.
    """

    name = "SetEqual"

    def _draw(self, rng, seq):
        i = int(rng.integers(len(seq)))
        j = int(rng.integers(len(seq)))
        if int(seq[j]) == int(seq[i]):
            return None
        return i, int(seq[j])


# ---------------------------------------------------------------------------
# Registries (Table 4 and Table 6 rosters)
# ---------------------------------------------------------------------------

SUM_MANIPULATORS: dict[str, type | object] = {
    "Bitflip": Bitflip,
    "RandKey": RandKey,
    "SwitchValues": SwitchValues,
    "IncKey": IncKey,
    "IncDec1": lambda: IncDec(1),
    "IncDec2": lambda: IncDec(2),
}

PERM_MANIPULATORS: dict[str, type | object] = {
    "Bitflip": SeqBitflip,
    "Increment": Increment,
    "Randomize": Randomize,
    "Reset": Reset,
    "SetEqual": SetEqual,
}


def get_kv_manipulator(name: str, **kwargs) -> KVManipulator:
    """Instantiate a Table 4 manipulator by name."""
    try:
        factory = SUM_MANIPULATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown sum manipulator {name!r}; available: {sorted(SUM_MANIPULATORS)}"
        ) from None
    return factory(**kwargs) if kwargs else factory()


def get_seq_manipulator(name: str, **kwargs) -> SeqManipulator:
    """Instantiate a Table 6 manipulator by name."""
    try:
        factory = PERM_MANIPULATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown sequence manipulator {name!r}; "
            f"available: {sorted(PERM_MANIPULATORS)}"
        ) from None
    return factory(**kwargs) if kwargs else factory()

"""Hash-function substrate for the checkers.

The paper's checkers assume "random hash functions" for analysis (§2) and are
evaluated with two practical families (§7): hardware CRC-32C and tabulation
hashing.  This package provides:

* :mod:`repro.hashing.crc32c` — software CRC-32C (same Castagnoli polynomial
  as the SSE 4.2 instruction), scalar and numpy-vectorized;
* :mod:`repro.hashing.tabulation` — Zobrist/tabulation hashing (Wegman &
  Carter; Pǎtraşcu & Thorup), 4 or 8 tables of 256 entries;
* :mod:`repro.hashing.mixers` — SplitMix64 finalizer as the ideal-model
  stand-in and multiply-shift universal hashing;
* :mod:`repro.hashing.families` — a uniform, seedable family interface and a
  registry keyed by the paper's abbreviations ("CRC", "Tab", "Tab64", …);
* :mod:`repro.hashing.bitgroups` — bit-parallel splitting of one hash value
  into per-iteration bucket indices (§4 "Optimizations", §7.1);
* :mod:`repro.hashing.primes` — Miller–Rabin and Bertrand-interval prime
  search for the polynomial permutation checker (Lemma 5);
* :mod:`repro.hashing.gf2` — carry-less multiplication and GF(2^64)
  fingerprints (the paper's suggested Galois-field variant).
"""

from repro.hashing.crc32c import (
    CRC32C_POLY_REFLECTED,
    crc32c_bytes,
    crc32c_checksum,
    crc32c_u64,
    crc32c_u64_array,
)
from repro.hashing.tabulation import (
    StackedLaneHasher,
    TabulationHash,
    stacked_tabulation_tables,
    tabulation_lanes,
    tabulation_tables,
)
from repro.hashing.mixers import MultiplyShiftHash, SplitMixHash
from repro.hashing.families import (
    AffineLaneHasher,
    BroadcastLaneHasher,
    HashFamily,
    HashFunction,
    LaneHasher,
    get_family,
    hash_lanes,
    list_families,
)
from repro.hashing.bitgroups import BucketAssigner, split_bit_groups
from repro.hashing.primes import (
    bertrand_prime,
    is_prime,
    next_prime,
    random_prime_in_range,
)
from repro.hashing.gf2 import (
    GF64_MODULUS_TAIL,
    clmul,
    gf64_mul,
    gf64_mul_vec,
    gf64_pow,
    gf64_product,
)

__all__ = [
    "CRC32C_POLY_REFLECTED",
    "crc32c_bytes",
    "crc32c_checksum",
    "crc32c_u64",
    "crc32c_u64_array",
    "StackedLaneHasher",
    "TabulationHash",
    "stacked_tabulation_tables",
    "tabulation_lanes",
    "tabulation_tables",
    "MultiplyShiftHash",
    "SplitMixHash",
    "AffineLaneHasher",
    "BroadcastLaneHasher",
    "HashFamily",
    "HashFunction",
    "LaneHasher",
    "get_family",
    "hash_lanes",
    "list_families",
    "BucketAssigner",
    "split_bit_groups",
    "bertrand_prime",
    "is_prime",
    "next_prime",
    "random_prime_in_range",
    "GF64_MODULUS_TAIL",
    "clmul",
    "gf64_mul",
    "gf64_mul_vec",
    "gf64_pow",
    "gf64_product",
]

"""Bit-parallel hashing: one hash evaluation, many iteration-local values.

Paper §4 "Optimizations" / §7.1: *"instead of computing eight four-bit hash
values, we compute one 32-bit hash value and partition it into eight groups
of four bits, which we treat as the output of the hash functions.  This is
implemented in a generic manner to satisfy any partition of a hash value
into groups."*

:class:`BucketAssigner` produces, for every checker iteration, the bucket
index in ``0..d-1`` of every key.  When ``d`` is a power of two it packs as
many ⌈log2 d⌉-bit groups as fit into one hash value and evaluates additional
seeded instances only when more iterations are requested than fit — exactly
the paper's scheme.  For general ``d`` (the Table 2 optimizer frequently
yields non-powers of two, e.g. d = 37) it falls back to one evaluation per
iteration reduced ``mod d``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import AffineLaneHasher, HashFamily, hash_lanes
from repro.kernels import seeds_per_block
from repro.util.bits import ceil_log2, is_power_of_two
from repro.util.rng import derive_seed, derive_seed_array, splitmix64_array


def split_bit_groups(
    hashes: np.ndarray, group_bits: int, num_groups: int, total_bits: int
) -> list[np.ndarray]:
    """Split each hash value into ``num_groups`` groups of ``group_bits`` bits.

    Groups are taken from the least-significant end.  Raises if the requested
    groups do not fit into ``total_bits``.
    """
    if group_bits <= 0:
        raise ValueError(f"group_bits must be positive, got {group_bits}")
    if num_groups * group_bits > total_bits:
        raise ValueError(
            f"{num_groups} groups of {group_bits} bits do not fit in "
            f"{total_bits}-bit hash values"
        )
    hashes = np.asarray(hashes, dtype=np.uint64)
    group_mask = np.uint64((1 << group_bits) - 1)
    return [
        (hashes >> np.uint64(i * group_bits)) & group_mask
        for i in range(num_groups)
    ]


class BucketAssigner:
    """Maps keys to ``iterations`` independent bucket indices in ``0..d-1``.

    Parameters
    ----------
    family:
        Hash family to draw instances from.
    d:
        Number of buckets (paper's condensed key-space size).
    iterations:
        Number of independent checker iterations.
    seed:
        Root seed; instance ``j`` uses ``derive_seed(seed, "bucket", j)``.
    """

    def __init__(self, family: HashFamily, d: int, iterations: int, seed: int):
        if d < 2:
            raise ValueError(f"need at least 2 buckets, got d={d}")
        if iterations < 1:
            raise ValueError(f"need at least 1 iteration, got {iterations}")
        self.family = family
        self.d = d
        self.iterations = iterations
        self.seed = seed
        self.bit_parallel = is_power_of_two(d)
        self.group_bits = ceil_log2(d) if self.bit_parallel else 0
        if self.bit_parallel:
            self.groups_per_eval = max(1, family.bits // self.group_bits)
            num_evals = -(-iterations // self.groups_per_eval)  # ceil division
        else:
            self.groups_per_eval = 1
            num_evals = iterations
        self._functions = [
            family.instance(derive_seed(seed, "bucket", j)) for j in range(num_evals)
        ]

    @property
    def num_hash_evaluations(self) -> int:
        """How many hash-function passes one call to :meth:`assign` makes."""
        return len(self._functions)

    def assign(self, keys: np.ndarray) -> np.ndarray:
        """Bucket indices, shape ``(iterations, len(keys))``, dtype intp."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.empty((self.iterations, keys.size), dtype=np.intp)
        if self.bit_parallel:
            mask = np.uint64(self.d - 1)
            it = 0
            for fn in self._functions:
                h = fn.hash_array(keys)
                for g in range(self.groups_per_eval):
                    if it >= self.iterations:
                        break
                    out[it] = (
                        (h >> np.uint64(g * self.group_bits)) & mask
                    ).astype(np.intp)
                    it += 1
        else:
            for it, fn in enumerate(self._functions):
                h = fn.hash_array(keys)
                out[it] = (h % np.uint64(self.d)).astype(np.intp)
        return out

    def assign_one(self, key: int) -> list[int]:
        """Scalar version of :meth:`assign` for a single key."""
        return [int(b) for b in self.assign(np.array([key], dtype=np.uint64))[:, 0]]

    def assign_batch(
        self, seeds: np.ndarray, keys: np.ndarray, owner: np.ndarray
    ) -> np.ndarray:
        """Bucket indices under many assigner seeds at once.

        ``keys[i]`` is bucketed by the assigner seeded ``seeds[owner[i]]``
        (this assigner's own seed is not used); the result row ``j`` equals
        ``BucketAssigner(family, d, iterations, seeds[owner[i]]).assign``
        elementwise.  This powers the batched accuracy engine, where every
        trial carries its own fresh bucket hashes.
        """
        return assign_buckets_batch(
            self.family, self.d, self.iterations, seeds, keys, owner
        )


def iter_bucket_blocks(
    family: HashFamily,
    d: int,
    iterations: int,
    seeds: np.ndarray,
    keys: np.ndarray,
    chunk_elements: int = 1 << 20,
):
    """Bucket every key under every seed, yielded in bounded seed blocks.

    Unlike :func:`assign_buckets_batch` (one seed per key via ``owner``),
    this is the *multi-seed* access pattern: all ``len(seeds) × iterations``
    lanes over the same key array.  The full result would be a
    ``(len(seeds), iterations, len(keys))`` tensor — far too large to
    materialise for paper-scale inputs — so blocks of
    ``max(1, chunk_elements // len(keys))`` seeds are evaluated per batched
    hash pass and yielded as ``(start, count, buckets)`` with ``buckets``
    of shape ``(iterations, count · len(keys))``; column ``c·len(keys)+i``
    is seed ``seeds[start+c]`` over ``keys[i]``.

    Every registered family takes a shared-base fast path through its
    :class:`~repro.hashing.families.LaneHasher` (built once per call, via
    :meth:`~repro.hashing.families.HashFamily.multiseed_hasher`) — the
    fixed-keys base pass (CRC's seed-0 hash, tabulation's byte extraction)
    never repeats per seed — bit-identical to the per-seed kernels.
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    k = keys.size
    per_block = seeds_per_block(chunk_elements, k)
    # The base pass over the keys (CRC's seed-0 table-lookup sweep,
    # tabulation's byte-index extraction) happens exactly once, here; each
    # seed block below only evaluates lanes against it.  Affine (CRC)
    # hashers go further for power-of-two d: bit-group extraction commutes
    # with the seed XOR — ((h⊕c) >> g) & m == ((h >> g) & m) ⊕ ((c >> g) & m)
    # — so each lane is ONE vectorized XOR of a per-lane constant into the
    # base groups, never touching the hashes again.  Families without a
    # lane hasher (custom registrations) hash tiled key blocks per seed.
    hasher = family.multiseed_hasher(keys)
    affine = isinstance(hasher, AffineLaneHasher)
    # Stacked (tabulation) hashers expose a fused gather+extraction kernel:
    # bit groups (or the mod-d residue) come straight out of the
    # cache-resident gather accumulator, so the full uint64 lane matrix is
    # never materialized and never re-streamed once per group.
    fused = getattr(hasher, "bucket_lanes", None)
    prefix = derive_seed_array(seeds, "bucket")
    if is_power_of_two(d):
        group_bits = ceil_log2(d)
        groups_per_eval = max(1, family.bits // group_bits)
        num_evals = -(-iterations // groups_per_eval)
        mask = np.uint64(d - 1)
        base_groups = None
        if affine:
            base_groups = [
                ((hasher.base >> np.uint64(g * group_bits)) & mask).astype(
                    np.intp
                )
                for g in range(min(groups_per_eval, iterations))
            ]
    else:
        group_bits = 0
        groups_per_eval = 1
        num_evals = iterations
    for start in range(0, seeds.size, per_block):
        count = min(per_block, seeds.size - start)
        block_prefix = prefix[start : start + count]
        buckets = np.empty((iterations, count * k), dtype=np.intp)
        it = 0
        for e in range(num_evals):
            fn_seeds = splitmix64_array(block_prefix ^ np.uint64(e))
            if affine and group_bits:
                consts = hasher.constants(fn_seeds)  # (count,) uint64
                for g in range(groups_per_eval):
                    if it >= iterations:
                        break
                    lane_consts = (
                        (consts >> np.uint64(g * group_bits)) & mask
                    ).astype(np.intp)
                    np.bitwise_xor(
                        base_groups[g][None, :],
                        lane_consts[:, None],
                        out=buckets[it].reshape(count, k),
                    )
                    it += 1
                continue
            if fused is not None:
                groups = (
                    min(groups_per_eval, iterations - it) if group_bits else 1
                )
                fused(
                    fn_seeds,
                    d,
                    group_bits,
                    groups,
                    [
                        buckets[it + g].reshape(count, k)
                        for g in range(groups)
                    ],
                )
                it += groups
                continue
            if hasher is not None:
                h = hasher.lanes(fn_seeds).reshape(count * k)
            else:
                h = hash_lanes(family, fn_seeds, keys).reshape(count * k)
            if group_bits:
                for g in range(groups_per_eval):
                    if it >= iterations:
                        break
                    buckets[it] = (
                        (h >> np.uint64(g * group_bits)) & mask
                    ).astype(np.intp)
                    it += 1
            else:
                buckets[it] = (h % np.uint64(d)).astype(np.intp)
                it += 1
        yield start, count, buckets


#: Widest super-group (in bits) the condensed-table fast path combines
#: into one bincount: 2^16 bins × 8 B = 512 KB of float64 counts, still
#: cache-friendly, while collapsing up to ``16 // group_bits`` per-group
#: bincount passes over the keys into one.
_MAX_SUPER_BITS = 16


def iter_superbucket_blocks(
    family: HashFamily,
    d: int,
    iterations: int,
    seeds: np.ndarray,
    keys: np.ndarray,
    chunk_elements: int = 1 << 20,
    max_super_bits: int = _MAX_SUPER_BITS,
):
    """Bucket indices combined into *super-groups* of adjacent bit-groups.

    Power-of-two ``d`` only.  Where :func:`iter_bucket_blocks` yields one
    ``0..d-1`` row per iteration, this packs up to
    ``max_super_bits // log2(d)`` **adjacent** bit-groups of each hash
    evaluation into a single index in ``0..d**m - 1`` (group ``j0 + q``
    is bits ``q*log2(d)..`` of the packed index).  A consumer can then
    bucket-count *m* iterations with **one** pass over the keys and read
    each iteration's counts off as a marginal of the ``(d,)*m`` cube —
    the §7.1 bit-parallel idea applied to the accumulation itself, not
    just the hashing.

    Yields ``(start, count, supers)`` per seed block, where ``supers``
    is a list of ``(j0, m, idx)``: iterations ``j0..j0+m-1`` packed into
    ``idx`` of shape ``(count, len(keys))``, dtype intp.  Bit-identical
    to packing the corresponding :func:`iter_bucket_blocks` rows.
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    if not is_power_of_two(d):
        raise ValueError(f"super-group blocks need power-of-two d, got {d}")
    k = keys.size
    group_bits = ceil_log2(d)
    groups_per_eval = max(1, family.bits // group_bits)
    num_evals = -(-iterations // groups_per_eval)
    m_max = max(1, max_super_bits // group_bits)
    # Static plan: per evaluation, the (j0, g0, m) super-groups it carries.
    evals: list[list[tuple[int, int, int]]] = []
    it = 0
    for _ in range(num_evals):
        g = 0
        supers = []
        while g < groups_per_eval and it < iterations:
            m = min(m_max, groups_per_eval - g, iterations - it)
            supers.append((it, g, m))
            g += m
            it += m
        evals.append(supers)
    hasher = family.multiseed_hasher(keys)
    affine = isinstance(hasher, AffineLaneHasher)
    fused = None if affine else getattr(hasher, "bucket_lanes", None)
    prefix = derive_seed_array(seeds, "bucket")
    per_block = seeds_per_block(chunk_elements, k)
    base_cache: dict[tuple[int, int], np.ndarray] = {}
    if affine:
        # Affine structure survives the packing: the packed index of lane s
        # is base_super XOR (packed constant bits of c(s)) — extract the
        # base's super fields once, outside the seed-block loop.
        for supers in evals:
            for _, g0, m in supers:
                if (g0, m) not in base_cache:
                    smask = np.uint64((1 << (m * group_bits)) - 1)
                    base_cache[(g0, m)] = (
                        (hasher.base >> np.uint64(g0 * group_bits)) & smask
                    ).astype(np.intp)
    for start in range(0, seeds.size, per_block):
        count = min(per_block, seeds.size - start)
        block_prefix = prefix[start : start + count]
        out: list[tuple[int, int, np.ndarray]] = []
        for e, supers in enumerate(evals):
            fn_seeds = splitmix64_array(block_prefix ^ np.uint64(e))
            idxs = [np.empty((count, k), dtype=np.intp) for _ in supers]
            if affine:
                consts = hasher.constants(fn_seeds)
                for (_, g0, m), idx in zip(supers, idxs):
                    smask = np.uint64((1 << (m * group_bits)) - 1)
                    lane_c = (
                        (consts >> np.uint64(g0 * group_bits)) & smask
                    ).astype(np.intp)
                    np.bitwise_xor(
                        base_cache[(g0, m)][None, :], lane_c[:, None], out=idx
                    )
            elif fused is not None:
                # Group runs of equal-width supers so the expensive base
                # pass (tabulation gather / broadcast mix) runs once per
                # run, extracting every super of the run in that pass.
                i0 = 0
                while i0 < len(supers):
                    m0 = supers[i0][2]
                    i1 = i0
                    while i1 < len(supers) and supers[i1][2] == m0:
                        i1 += 1
                    sbits = m0 * group_bits
                    fused(
                        fn_seeds,
                        1 << sbits,
                        sbits,
                        i1 - i0,
                        idxs[i0:i1],
                        bit_offset=supers[i0][1] * group_bits,
                    )
                    i0 = i1
            else:
                h = (
                    hasher.lanes(fn_seeds)
                    if hasher is not None
                    else hash_lanes(family, fn_seeds, keys)
                )
                for (_, g0, m), idx in zip(supers, idxs):
                    smask = np.uint64((1 << (m * group_bits)) - 1)
                    idx[:] = (
                        (h >> np.uint64(g0 * group_bits)) & smask
                    ).astype(np.intp)
            for (j0, _, m), idx in zip(supers, idxs):
                out.append((j0, m, idx))
        yield start, count, out


def assign_buckets_batch(
    family: HashFamily,
    d: int,
    iterations: int,
    seeds: np.ndarray,
    keys: np.ndarray,
    owner: np.ndarray,
) -> np.ndarray:
    """Module-level form of :meth:`BucketAssigner.assign_batch`.

    Mirrors :meth:`BucketAssigner.assign` exactly — same bit-group packing
    for power-of-two ``d``, same ``mod d`` fallback otherwise — but draws
    the per-evaluation hash functions from ``seeds[owner[i]]`` via the
    family's batched kernel instead of constructing instances.
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64)
    owner = np.asarray(owner, dtype=np.intp)
    out = np.empty((iterations, keys.size), dtype=np.intp)
    # Fold the "bucket" label once; each evaluation only branches on its
    # counter (identical to derive_seed_array(seeds, "bucket", e)).
    prefix = derive_seed_array(seeds, "bucket")
    if is_power_of_two(d):
        group_bits = ceil_log2(d)
        groups_per_eval = max(1, family.bits // group_bits)
        num_evals = -(-iterations // groups_per_eval)
        mask = np.uint64(d - 1)
        it = 0
        for e in range(num_evals):
            h = family.hash_array_batch(
                splitmix64_array(prefix ^ np.uint64(e)), owner, keys
            )
            for g in range(groups_per_eval):
                if it >= iterations:
                    break
                out[it] = (
                    (h >> np.uint64(g * group_bits)) & mask
                ).astype(np.intp)
                it += 1
    else:
        for it in range(iterations):
            h = family.hash_array_batch(
                splitmix64_array(prefix ^ np.uint64(it)), owner, keys
            )
            out[it] = (h % np.uint64(d)).astype(np.intp)
    return out

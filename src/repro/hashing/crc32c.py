"""Software CRC-32C (Castagnoli), matching the x86 SSE 4.2 instruction.

The paper's implementation uses the hardware ``crc32`` instruction (Gopal et
al., Intel white paper) as a fast hash with limited randomness.  We reproduce
the *same function* in software (table-driven, reflected polynomial
``0x82F63B78``) so that the accuracy anomalies the paper observes — elevated
failure rates of CRC on the ``Increment``/``IncDec1`` manipulators caused by
the low-bit linearity of CRC — appear identically in our experiments.

Seeding: the hardware instruction folds data into a running CRC state, so a
"random hash function" is obtained by starting from a random initial state.
``crc32c_u64(x, seed)`` is the raw (no pre/post inversion) CRC of the 8
little-endian bytes of ``x`` starting from state ``seed``; this mirrors
``_mm_crc32_u64(seed, x)``.
"""

from __future__ import annotations

import numpy as np

#: Reflected CRC-32C (Castagnoli) polynomial, as used by SSE 4.2 ``crc32``.
CRC32C_POLY_REFLECTED = 0x82F63B78


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32C_POLY_REFLECTED
            else:
                crc >>= 1
        table[byte] = crc
    return table


#: The 256-entry byte-at-a-time lookup table (module-level, built once).
_TABLE = _build_table()
_TABLE_LIST = [int(x) for x in _TABLE]


def crc32c_bytes(data: bytes, init: int = 0) -> int:
    """Raw CRC-32C of ``data`` starting from state ``init`` (no inversion)."""
    crc = init & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE_LIST[(crc ^ byte) & 0xFF]
    return crc


def crc32c_checksum(data: bytes) -> int:
    """Standard CRC-32C checksum (init ``0xFFFFFFFF``, final inversion).

    Matches RFC 3720 / the ``crc32c`` of common libraries; used only to
    validate the table against published test vectors.
    """
    return crc32c_bytes(data, 0xFFFFFFFF) ^ 0xFFFFFFFF


def crc32c_u64(x: int, seed: int = 0) -> int:
    """CRC-32C of the 8 little-endian bytes of ``x``, from state ``seed``.

    Equivalent to the hardware sequence ``_mm_crc32_u64(seed, x)`` (modulo
    the instruction operating on 64-bit chunks at once — the result is the
    same because CRC is byte-serial).
    """
    return crc32c_bytes(int(x).to_bytes(8, "little", signed=False), seed)


def crc32c_u64_array(
    keys: np.ndarray, seed=0, nbytes: int = 8
) -> np.ndarray:
    """Vectorized CRC-32C over the low ``nbytes`` bytes of a uint64 array.

    Processes the bytes of every key in lock-step with fancy indexing into
    the lookup table; ``nbytes`` numpy passes regardless of array length.
    ``nbytes`` matters for detection behaviour: CRC of a 32-bit value is a
    different function than CRC of the same value stored in 64 bits, and
    the paper's workloads store 32-bit elements.

    ``seed`` may be a scalar (one hash function) or an integer array
    broadcastable to ``keys.shape`` (a per-element initial state — the
    batched accuracy engine hashes each trial's keys under that trial's
    seed in one call).
    """
    if not 1 <= nbytes <= 8:
        raise ValueError(f"nbytes must be in 1..8, got {nbytes}")
    keys = np.asarray(keys, dtype=np.uint64)
    if np.ndim(seed) == 0:
        crc = np.full(keys.shape, np.uint32(int(seed) & 0xFFFFFFFF), dtype=np.uint32)
    else:
        seed = np.asarray(seed)
        crc = np.broadcast_to(
            (seed.astype(np.uint64) & np.uint64(0xFFFFFFFF)).astype(np.uint32),
            keys.shape,
        )
    for byte_index in range(nbytes):
        byte = ((keys >> np.uint64(8 * byte_index)) & np.uint64(0xFF)).astype(
            np.uint32
        )
        crc = (crc >> np.uint32(8)) ^ _TABLE[(crc ^ byte) & np.uint32(0xFF)]
    return crc

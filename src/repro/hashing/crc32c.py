"""Software CRC-32C (Castagnoli), matching the x86 SSE 4.2 instruction.

The paper's implementation uses the hardware ``crc32`` instruction (Gopal et
al., Intel white paper) as a fast hash with limited randomness.  We reproduce
the *same function* in software (table-driven, reflected polynomial
``0x82F63B78``) so that the accuracy anomalies the paper observes — elevated
failure rates of CRC on the ``Increment``/``IncDec1`` manipulators caused by
the low-bit linearity of CRC — appear identically in our experiments.

Seeding: the hardware instruction folds data into a running CRC state, so a
"random hash function" is obtained by starting from a random initial state.
``crc32c_u64(x, seed)`` is the raw (no pre/post inversion) CRC of the 8
little-endian bytes of ``x`` starting from state ``seed``; this mirrors
``_mm_crc32_u64(seed, x)``.
"""

from __future__ import annotations

import numpy as np

#: Reflected CRC-32C (Castagnoli) polynomial, as used by SSE 4.2 ``crc32``.
CRC32C_POLY_REFLECTED = 0x82F63B78


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32C_POLY_REFLECTED
            else:
                crc >>= 1
        table[byte] = crc
    return table


#: The 256-entry byte-at-a-time lookup table (module-level, built once).
_TABLE = _build_table()
_TABLE_LIST = [int(x) for x in _TABLE]


def crc32c_bytes(data: bytes, init: int = 0) -> int:
    """Raw CRC-32C of ``data`` starting from state ``init`` (no inversion)."""
    crc = init & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE_LIST[(crc ^ byte) & 0xFF]
    return crc


def crc32c_checksum(data: bytes) -> int:
    """Standard CRC-32C checksum (init ``0xFFFFFFFF``, final inversion).

    Matches RFC 3720 / the ``crc32c`` of common libraries; used only to
    validate the table against published test vectors.
    """
    return crc32c_bytes(data, 0xFFFFFFFF) ^ 0xFFFFFFFF


def crc32c_u64(x: int, seed: int = 0) -> int:
    """CRC-32C of the 8 little-endian bytes of ``x``, from state ``seed``.

    Equivalent to the hardware sequence ``_mm_crc32_u64(seed, x)`` (modulo
    the instruction operating on 64-bit chunks at once — the result is the
    same because CRC is byte-serial).
    """
    return crc32c_bytes(int(x).to_bytes(8, "little", signed=False), seed)


def _zero_step_images() -> np.ndarray:
    """Images of the 32 basis states under one zero-byte CRC step.

    Folding a zero byte maps the state ``s ↦ (s >> 8) ^ T[s & 0xFF]`` — a
    GF(2)-linear map (the table itself is linear: ``T[a^b] = T[a]^T[b]``),
    so it is fully described by where it sends the 32 one-bit states.
    """
    basis = np.uint32(1) << np.arange(32, dtype=np.uint32)
    return (basis >> np.uint32(8)) ^ _TABLE[basis & np.uint32(0xFF)]


_ZERO_STEP_IMAGES = _zero_step_images()


def _apply_linear(images: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Apply the GF(2)-linear map given by basis ``images`` to ``states``."""
    out = np.zeros(states.shape, dtype=np.uint32)
    one = np.uint32(1)
    for bit in range(32):
        picked = ((states >> np.uint32(bit)) & one).astype(bool)
        out ^= np.where(picked, images[bit], np.uint32(0))
    return out


def crc32c_zero_advance(states, length: int) -> np.ndarray:
    """CRC state after folding ``length`` zero bytes, vectorized over states.

    This is the seed-dependent term of the affinity identity
    ``crc(m, s) = crc(m, 0) ⊕ crc(0^|m|, s)``: the state map of a zero-byte
    block is GF(2)-linear, so short blocks step byte-at-a-time and long
    blocks raise the one-byte step matrix to the ``length``-th power by
    squaring — O(log length) instead of O(length).
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    states = np.asarray(states, dtype=np.uint32)
    if length == 0:
        return states.copy()
    if length <= 64:
        crc = states.copy()
        for _ in range(length):
            crc = (crc >> np.uint32(8)) ^ _TABLE[crc & np.uint32(0xFF)]
        return crc
    step = _ZERO_STEP_IMAGES
    result = None  # identity map; powers of one matrix commute freely
    n = length
    while n:
        if n & 1:
            result = step.copy() if result is None else _apply_linear(step, result)
        n >>= 1
        if n:
            step = _apply_linear(step, step)
    return _apply_linear(result, states)


def crc32c_seed_constants(seeds, nbytes: int = 8) -> np.ndarray:
    """The seed term of the CRC affinity identity, as uint64.

    CRC-32C is GF(2)-linear in its initial state:
    ``crc(x, s) = crc(x, 0) ⊕ z(s)`` with ``z(s) = crc(0^nbytes, s)``
    depending only on the seed.  This computes ``z`` for an array of seeds
    (any shape; only the low 32 bits of each seed matter, mirroring
    :func:`crc32c_u64_array`) — the per-seed XOR constant that lets all
    ``T`` CRC seed lanes of the multi-seed checkers share one table-lookup
    pass over the keys.
    """
    seeds = np.asarray(seeds, dtype=np.uint64) & np.uint64(0xFFFFFFFF)
    return crc32c_zero_advance(seeds, nbytes).astype(np.uint64)


def crc32c_u64_array(
    keys: np.ndarray, seed=0, nbytes: int = 8
) -> np.ndarray:
    """Vectorized CRC-32C over the low ``nbytes`` bytes of a uint64 array.

    Processes the bytes of every key in lock-step with fancy indexing into
    the lookup table; ``nbytes`` numpy passes regardless of array length.
    ``nbytes`` matters for detection behaviour: CRC of a 32-bit value is a
    different function than CRC of the same value stored in 64 bits, and
    the paper's workloads store 32-bit elements.

    ``seed`` may be a scalar (one hash function) or an integer array
    broadcastable to ``keys.shape`` (a per-element initial state — the
    batched accuracy engine hashes each trial's keys under that trial's
    seed in one call).
    """
    if not 1 <= nbytes <= 8:
        raise ValueError(f"nbytes must be in 1..8, got {nbytes}")
    keys = np.asarray(keys, dtype=np.uint64)
    if np.ndim(seed) == 0:
        crc = np.full(keys.shape, np.uint32(int(seed) & 0xFFFFFFFF), dtype=np.uint32)
    else:
        seed = np.asarray(seed)
        crc = np.broadcast_to(
            (seed.astype(np.uint64) & np.uint64(0xFFFFFFFF)).astype(np.uint32),
            keys.shape,
        )
    for byte_index in range(nbytes):
        byte = ((keys >> np.uint64(8 * byte_index)) & np.uint64(0xFF)).astype(
            np.uint32
        )
        crc = (crc >> np.uint32(8)) ^ _TABLE[(crc ^ byte) & np.uint32(0xFF)]
    return crc

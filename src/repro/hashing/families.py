"""Uniform, seedable hash-family interface.

A *family* is a factory; a *function* is a seeded instance.  The registry is
keyed by the paper's abbreviations (§7 "Implementation Details"):

* ``"CRC"``   — CRC-32C seeded by initial state (32 output bits);
* ``"Tab"``   — tabulation hashing, 4 tables (32-bit keys);
* ``"Tab64"`` — tabulation hashing, 8 tables (64-bit keys);
* ``"Mix"``   — keyed SplitMix64 (the ideal-model stand-in);
* ``"MShift"``— 2-universal multiply-shift (ablation only).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.hashing.crc32c import crc32c_bytes, crc32c_u64_array
from repro.hashing.mixers import MultiplyShiftHash, SplitMixHash
from repro.hashing.tabulation import TabulationHash


@runtime_checkable
class HashFunction(Protocol):
    """A concrete (seeded) hash function over 64-bit integer keys."""

    bits: int

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation (uint64 in, unsigned out)."""
        ...

    def hash_one(self, key: int) -> int:
        """Scalar evaluation."""
        ...


class _CRCHash:
    """CRC-32C instance seeded via the initial CRC state.

    ``nbytes`` is the stored width of the hashed elements (8 for 64-bit
    records, 4 for 32-bit ones — the width the paper's workloads use).
    """

    bits = 32

    def __init__(self, seed: int, nbytes: int = 8):
        self.seed = seed & 0xFFFFFFFF
        self.nbytes = nbytes

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        return crc32c_u64_array(keys, self.seed, self.nbytes).astype(np.uint64)

    def hash_one(self, key: int) -> int:
        data = int(key).to_bytes(8, "little", signed=False)[: self.nbytes]
        return crc32c_bytes(data, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CRC32CHash(seed={self.seed:#x}, nbytes={self.nbytes})"


class HashFamily:
    """Named factory of seeded hash functions."""

    def __init__(self, name: str, factory, bits: int, description: str):
        self.name = name
        self._factory = factory
        self.bits = bits
        self.description = description

    def instance(self, seed: int) -> HashFunction:
        """Create the hash function determined by ``seed``."""
        return self._factory(seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashFamily({self.name!r}, bits={self.bits})"


_REGISTRY: dict[str, HashFamily] = {}


def _register(family: HashFamily) -> HashFamily:
    _REGISTRY[family.name.lower()] = family
    return family


CRC_FAMILY = _register(
    HashFamily(
        "CRC",
        _CRCHash,
        32,
        "CRC-32C (Castagnoli), seeded initial state; limited randomness",
    )
)
CRC4_FAMILY = _register(
    HashFamily(
        "CRC4",
        lambda seed: _CRCHash(seed, nbytes=4),
        32,
        "CRC-32C over 4-byte (32-bit) elements — the paper's stored width",
    )
)
TAB_FAMILY = _register(
    HashFamily(
        "Tab",
        lambda seed: TabulationHash(seed, key_bits=32, out_bits=32),
        32,
        "simple tabulation, 4 tables of 256 (32-bit keys)",
    )
)
TAB64_FAMILY = _register(
    HashFamily(
        "Tab64",
        lambda seed: TabulationHash(seed, key_bits=64, out_bits=64),
        64,
        "simple tabulation, 8 tables of 256 (64-bit keys)",
    )
)
MIX_FAMILY = _register(
    HashFamily(
        "Mix",
        lambda seed: SplitMixHash(seed, out_bits=64),
        64,
        "keyed SplitMix64 finalizer (ideal-model stand-in)",
    )
)
MSHIFT_FAMILY = _register(
    HashFamily(
        "MShift",
        lambda seed: MultiplyShiftHash(seed, out_bits=32),
        32,
        "2-universal multiply-shift (ablation)",
    )
)


def get_family(name: str) -> HashFamily:
    """Look up a registered family by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown hash family {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_families() -> list[str]:
    """Names of all registered families (canonical capitalisation)."""
    return [fam.name for fam in _REGISTRY.values()]

"""Uniform, seedable hash-family interface.

A *family* is a factory; a *function* is a seeded instance.  The registry is
keyed by the paper's abbreviations (§7 "Implementation Details"):

* ``"CRC"``   — CRC-32C seeded by initial state (32 output bits);
* ``"Tab"``   — tabulation hashing, 4 tables (32-bit keys);
* ``"Tab64"`` — tabulation hashing, 8 tables (64-bit keys);
* ``"Mix"``   — keyed SplitMix64 (the ideal-model stand-in);
* ``"MShift"``— 2-universal multiply-shift (ablation only).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Protocol, runtime_checkable

import numpy as np

from repro.hashing.crc32c import (
    crc32c_bytes,
    crc32c_seed_constants,
    crc32c_u64_array,
)
from repro.hashing.mixers import (
    MultiplyShiftHash,
    SplitMixHash,
    multiply_shift_hash_batch,
    multiply_shift_lanes,
    splitmix_hash_batch,
    splitmix_lanes,
)
from repro.hashing.tabulation import (
    StackedLaneHasher,
    TabulationHash,
    tabulation_hash_batch,
)


@runtime_checkable
class HashFunction(Protocol):
    """A concrete (seeded) hash function over 64-bit integer keys."""

    bits: int

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation (uint64 in, unsigned out)."""
        ...

    def hash_one(self, key: int) -> int:
        """Scalar evaluation."""
        ...


class _CRCHash:
    """CRC-32C instance seeded via the initial CRC state.

    ``nbytes`` is the stored width of the hashed elements (8 for 64-bit
    records, 4 for 32-bit ones — the width the paper's workloads use).
    """

    bits = 32

    def __init__(self, seed: int, nbytes: int = 8):
        self.seed = seed & 0xFFFFFFFF
        self.nbytes = nbytes

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        return crc32c_u64_array(keys, self.seed, self.nbytes).astype(np.uint64)

    def hash_one(self, key: int) -> int:
        data = int(key).to_bytes(8, "little", signed=False)[: self.nbytes]
        return crc32c_bytes(data, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CRC32CHash(seed={self.seed:#x}, nbytes={self.nbytes})"


#: Seeded instances kept per family; the heaviest (Tab64) carries 8 tables
#: of 256 × 8 B ≈ 16 KB, so a full cache tops out around 8 MB per family.
_INSTANCE_CACHE_SIZE = 512


class HashFamily:
    """Named factory of seeded hash functions.

    ``instance`` results are memoised per seed in a small LRU: hash
    functions are immutable once built, and checker construction repeats
    seeds constantly (e.g. re-checking under the same configuration), so
    regenerating tabulation tables for a seen seed would be pure waste.
    The cache is lock-guarded — checkers are constructed concurrently on
    the per-PE threads of :class:`repro.comm.context.Context`.
    """

    def __init__(
        self,
        name: str,
        factory,
        bits: int,
        description: str,
        batch_kernel=None,
        multiseed_kernel=None,
    ):
        self.name = name
        self._factory = factory
        self.bits = bits
        self.description = description
        self._batch_kernel = batch_kernel
        self._multiseed_kernel = multiseed_kernel
        self._cache: OrderedDict[int, HashFunction] = OrderedDict()
        self._cache_lock = threading.Lock()

    def instance(self, seed: int) -> HashFunction:
        """The hash function determined by ``seed`` (cached per seed)."""
        key = int(seed)
        with self._cache_lock:
            fn = self._cache.get(key)
            if fn is not None:
                self._cache.move_to_end(key)
                return fn
        fn = self._factory(key)
        with self._cache_lock:
            self._cache[key] = fn
            if len(self._cache) > _INSTANCE_CACHE_SIZE:
                self._cache.popitem(last=False)
        return fn

    def hash_array_batch(
        self, seeds: np.ndarray, owner: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Hash ``keys[i]`` with the instance seeded ``seeds[owner[i]]``.

        A handful of numpy passes for the whole batch when the family has a
        vector kernel; falls back to per-seed instances otherwise.  Output
        is elementwise equal to ``instance(seeds[owner[i]]).hash_array``.
        """
        seeds = np.asarray(seeds, dtype=np.uint64)
        owner = np.asarray(owner, dtype=np.intp)
        keys = np.asarray(keys, dtype=np.uint64)
        if self._batch_kernel is not None:
            return self._batch_kernel(seeds, owner, keys)
        out = np.empty(keys.shape, dtype=np.uint64)
        for t in np.unique(owner):
            pick = owner == t
            out[pick] = self.instance(int(seeds[t])).hash_array(keys[pick])
        return out

    def multiseed_hasher(self, keys: np.ndarray) -> "LaneHasher | None":
        """Shared-pass lane evaluator over fixed ``keys``, or None.

        The base pass over the keys (whatever the family can hoist out of
        per-seed work) runs once, here; the returned :class:`LaneHasher`
        then evaluates any number of seed lanes against it:

        * CRC/CRC4 — :class:`AffineLaneHasher`: the seed-0 hash of every
          key, each lane one XOR constant away (``h_s = h_0 ⊕ c(s)``);
        * Tab/Tab64 — :class:`~repro.hashing.tabulation.StackedLaneHasher`:
          byte indices extracted once, each lane block ``num_tables``
          gathers from the seed-stacked tables;
        * Mix/MShift — :class:`BroadcastLaneHasher`: one broadcast mix
          over ``seeds × keys``.

        Every registered family returns a hasher; only custom families
        registered without a ``multiseed_kernel`` return None, sending
        :func:`hash_lanes` down its (chunked) tiled fallback.
        """
        if self._multiseed_kernel is None:
            return None
        return self._multiseed_kernel(np.asarray(keys, dtype=np.uint64))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashFamily({self.name!r}, bits={self.bits})"


@runtime_checkable
class LaneHasher(Protocol):
    """Multi-seed lane evaluator over a fixed key array.

    Built by :meth:`HashFamily.multiseed_hasher`, which runs the fixed-keys
    base pass once; :meth:`lanes` evaluates seed lanes against it.  Every
    lane is bit-identical to the seeded instance's ``hash_array``.
    """

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        """Lane matrix ``out[t] = instance(seeds[t]).hash_array(keys)``."""
        ...


class AffineLaneHasher:
    """Seed-affine hash over a fixed key array: ``h_s(x) = base(x) ⊕ c(s)``.

    ``base`` is the (already computed) seed-0 hash of every key; ``c`` is
    the per-seed constant.  Consumers may exploit the affine structure
    beyond :meth:`lanes` — the bit-group bucket assigner extracts groups
    from ``base`` once and XORs each lane's constant group in, so a seed
    lane never touches the key array again.
    """

    def __init__(self, base: np.ndarray, constants_fn):
        self.base = base
        self._constants_fn = constants_fn

    def constants(self, seeds: np.ndarray) -> np.ndarray:
        """Per-seed XOR constants ``c(seeds)`` (same shape as ``seeds``)."""
        return self._constants_fn(seeds)

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        """Full lane tensor, shape ``seeds.shape + base.shape``."""
        return self.constants(seeds)[..., None] ^ self.base


#: Backwards-compatible name from before the LaneHasher generalization.
AffineHasher = AffineLaneHasher


class BroadcastLaneHasher:
    """Lane evaluator from a closed-form broadcast kernel.

    For families whose seeded evaluation is an elementwise formula of
    (seed, key) — Mix's keyed SplitMix, MShift's multiply-shift — the lane
    matrix is one broadcast kernel call over ``seeds[:, None]`` ×
    ``keys[None, :]``: no per-seed instance loop, no key tiling.
    """

    def __init__(self, keys: np.ndarray, lanes_kernel):
        self._keys = np.asarray(keys, dtype=np.uint64).ravel()
        self._lanes_kernel = lanes_kernel

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        return self._lanes_kernel(seeds, self._keys)


#: Seed-tiled elements per batched pass of the :func:`hash_lanes` fallback;
#: bounds its peak scratch (tiled keys + owner + output block) instead of
#: materializing all ``len(seeds) × len(keys)`` tiled keys at once.
_FALLBACK_CHUNK_ELEMENTS = 1 << 20


def hash_lanes(
    family: HashFamily,
    seeds: np.ndarray,
    keys: np.ndarray,
    hasher: "LaneHasher | None" = None,
    chunk_elements: int = _FALLBACK_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Lane matrix ``out[t] = instance(seeds[t]).hash_array(keys)``.

    The multi-seed access pattern (every seed over the same key array).
    Evaluation goes through the family's :class:`LaneHasher` — passed in
    by callers that amortize the base pass across calls, or built here —
    so no registered family pays a per-seed pass.  Only families without
    a multiseed kernel fall back to tiling the keys through the batched
    kernel, in bounded seed blocks of ``chunk_elements`` tiled keys
    (peak scratch O(chunk), not O(len(seeds) · len(keys))).
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    if hasher is None:
        hasher = family.multiseed_hasher(keys)
    if hasher is not None:
        return hasher.lanes(seeds)
    if chunk_elements < 1:
        raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
    out = np.empty((seeds.size, keys.size), dtype=np.uint64)
    per_block = max(1, chunk_elements // max(keys.size, 1))
    for start in range(0, seeds.size, per_block):
        count = min(per_block, seeds.size - start)
        owner = np.repeat(np.arange(count, dtype=np.intp), keys.size)
        out[start : start + count] = family.hash_array_batch(
            seeds[start : start + count], owner, np.tile(keys, count)
        ).reshape(count, keys.size)
    return out


_REGISTRY: dict[str, HashFamily] = {}


def _register(family: HashFamily) -> HashFamily:
    _REGISTRY[family.name.lower()] = family
    return family


def _crc_batch_kernel(nbytes: int):
    def kernel(seeds, owner, keys):
        return crc32c_u64_array(keys, seeds[owner], nbytes).astype(np.uint64)

    return kernel


def _crc_multiseed_kernel(nbytes: int):
    def kernel(keys):
        return AffineHasher(
            crc32c_u64_array(keys, 0, nbytes).astype(np.uint64),
            lambda seeds: crc32c_seed_constants(seeds, nbytes),
        )

    return kernel


def _tab_batch_kernel(key_bits: int, out_bits: int):
    def kernel(seeds, owner, keys):
        return tabulation_hash_batch(seeds, owner, keys, key_bits, out_bits)

    return kernel


def _tab_multiseed_kernel(key_bits: int, out_bits: int):
    def kernel(keys):
        return StackedLaneHasher(keys, key_bits, out_bits)

    return kernel


def _broadcast_multiseed_kernel(lanes_fn, out_bits: int):
    def kernel(keys):
        return BroadcastLaneHasher(
            keys, lambda seeds, fixed: lanes_fn(seeds, fixed, out_bits)
        )

    return kernel


CRC_FAMILY = _register(
    HashFamily(
        "CRC",
        _CRCHash,
        32,
        "CRC-32C (Castagnoli), seeded initial state; limited randomness",
        batch_kernel=_crc_batch_kernel(8),
        multiseed_kernel=_crc_multiseed_kernel(8),
    )
)
CRC4_FAMILY = _register(
    HashFamily(
        "CRC4",
        lambda seed: _CRCHash(seed, nbytes=4),
        32,
        "CRC-32C over 4-byte (32-bit) elements — the paper's stored width",
        batch_kernel=_crc_batch_kernel(4),
        multiseed_kernel=_crc_multiseed_kernel(4),
    )
)
TAB_FAMILY = _register(
    HashFamily(
        "Tab",
        lambda seed: TabulationHash(seed, key_bits=32, out_bits=32),
        32,
        "simple tabulation, 4 tables of 256 (32-bit keys)",
        batch_kernel=_tab_batch_kernel(32, 32),
        multiseed_kernel=_tab_multiseed_kernel(32, 32),
    )
)
TAB64_FAMILY = _register(
    HashFamily(
        "Tab64",
        lambda seed: TabulationHash(seed, key_bits=64, out_bits=64),
        64,
        "simple tabulation, 8 tables of 256 (64-bit keys)",
        batch_kernel=_tab_batch_kernel(64, 64),
        multiseed_kernel=_tab_multiseed_kernel(64, 64),
    )
)
MIX_FAMILY = _register(
    HashFamily(
        "Mix",
        lambda seed: SplitMixHash(seed, out_bits=64),
        64,
        "keyed SplitMix64 finalizer (ideal-model stand-in)",
        batch_kernel=lambda seeds, owner, keys: splitmix_hash_batch(
            seeds, owner, keys, 64
        ),
        multiseed_kernel=_broadcast_multiseed_kernel(splitmix_lanes, 64),
    )
)
MSHIFT_FAMILY = _register(
    HashFamily(
        "MShift",
        lambda seed: MultiplyShiftHash(seed, out_bits=32),
        32,
        "2-universal multiply-shift (ablation)",
        batch_kernel=lambda seeds, owner, keys: multiply_shift_hash_batch(
            seeds, owner, keys, 32
        ),
        multiseed_kernel=_broadcast_multiseed_kernel(multiply_shift_lanes, 32),
    )
)


def get_family(name: str) -> HashFamily:
    """Look up a registered family by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown hash family {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_families() -> list[str]:
    """Names of all registered families (canonical capitalisation)."""
    return [fam.name for fam in _REGISTRY.values()]

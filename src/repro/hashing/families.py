"""Uniform, seedable hash-family interface.

A *family* is a factory; a *function* is a seeded instance.  The registry is
keyed by the paper's abbreviations (§7 "Implementation Details"):

* ``"CRC"``   — CRC-32C seeded by initial state (32 output bits);
* ``"Tab"``   — tabulation hashing, 4 tables (32-bit keys);
* ``"Tab64"`` — tabulation hashing, 8 tables (64-bit keys);
* ``"Mix"``   — keyed SplitMix64 (the ideal-model stand-in);
* ``"MShift"``— 2-universal multiply-shift (ablation only).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Protocol, runtime_checkable

import numpy as np

from repro.hashing.crc32c import (
    crc32c_bytes,
    crc32c_seed_constants,
    crc32c_u64_array,
)
from repro.hashing.mixers import (
    _BROADCAST_BLOCK_ELEMENTS,
    MultiplyShiftHash,
    SplitMixHash,
    multiply_shift_hash_batch,
    splitmix_hash_batch,
)
from repro.hashing.tabulation import (
    _FUSED_BLOCK_ELEMENTS,
    StackedLaneHasher,
    TabulationHash,
    tabulation_hash_batch,
)
from repro.kernels import get_kernels, seeds_per_block
from repro.util.rng import derive_seed_array


@runtime_checkable
class HashFunction(Protocol):
    """A concrete (seeded) hash function over 64-bit integer keys."""

    bits: int

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation (uint64 in, unsigned out)."""
        ...

    def hash_one(self, key: int) -> int:
        """Scalar evaluation."""
        ...


class _CRCHash:
    """CRC-32C instance seeded via the initial CRC state.

    ``nbytes`` is the stored width of the hashed elements (8 for 64-bit
    records, 4 for 32-bit ones — the width the paper's workloads use).
    """

    bits = 32

    def __init__(self, seed: int, nbytes: int = 8):
        self.seed = seed & 0xFFFFFFFF
        self.nbytes = nbytes

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        return crc32c_u64_array(keys, self.seed, self.nbytes).astype(np.uint64)

    def hash_one(self, key: int) -> int:
        data = int(key).to_bytes(8, "little", signed=False)[: self.nbytes]
        return crc32c_bytes(data, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CRC32CHash(seed={self.seed:#x}, nbytes={self.nbytes})"


#: Seeded instances kept per family; the heaviest (Tab64) carries 8 tables
#: of 256 × 8 B ≈ 16 KB, so a full cache tops out around 8 MB per family.
_INSTANCE_CACHE_SIZE = 512


class HashFamily:
    """Named factory of seeded hash functions.

    ``instance`` results are memoised per seed in a small LRU: hash
    functions are immutable once built, and checker construction repeats
    seeds constantly (e.g. re-checking under the same configuration), so
    regenerating tabulation tables for a seen seed would be pure waste.
    The cache is lock-guarded — checkers are constructed concurrently on
    the per-PE threads of :class:`repro.comm.context.Context`.
    """

    def __init__(
        self,
        name: str,
        factory,
        bits: int,
        description: str,
        batch_kernel=None,
        multiseed_kernel=None,
    ):
        self.name = name
        self._factory = factory
        self.bits = bits
        self.description = description
        self._batch_kernel = batch_kernel
        self._multiseed_kernel = multiseed_kernel
        self._cache: OrderedDict[int, HashFunction] = OrderedDict()
        self._cache_lock = threading.Lock()

    def instance(self, seed: int) -> HashFunction:
        """The hash function determined by ``seed`` (cached per seed)."""
        key = int(seed)
        with self._cache_lock:
            fn = self._cache.get(key)
            if fn is not None:
                self._cache.move_to_end(key)
                return fn
        fn = self._factory(key)
        with self._cache_lock:
            self._cache[key] = fn
            if len(self._cache) > _INSTANCE_CACHE_SIZE:
                self._cache.popitem(last=False)
        return fn

    def hash_array_batch(
        self, seeds: np.ndarray, owner: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Hash ``keys[i]`` with the instance seeded ``seeds[owner[i]]``.

        A handful of numpy passes for the whole batch when the family has a
        vector kernel; falls back to per-seed instances otherwise.  Output
        is elementwise equal to ``instance(seeds[owner[i]]).hash_array``.
        """
        seeds = np.asarray(seeds, dtype=np.uint64)
        owner = np.asarray(owner, dtype=np.intp)
        keys = np.asarray(keys, dtype=np.uint64)
        if self._batch_kernel is not None:
            return self._batch_kernel(seeds, owner, keys)
        out = np.empty(keys.shape, dtype=np.uint64)
        for t in np.unique(owner):
            pick = owner == t
            out[pick] = self.instance(int(seeds[t])).hash_array(keys[pick])
        return out

    def multiseed_hasher(self, keys: np.ndarray) -> "LaneHasher | None":
        """Shared-pass lane evaluator over fixed ``keys``, or None.

        The base pass over the keys (whatever the family can hoist out of
        per-seed work) runs once, here; the returned :class:`LaneHasher`
        then evaluates any number of seed lanes against it:

        * CRC/CRC4 — :class:`AffineLaneHasher`: the seed-0 hash of every
          key, each lane one XOR constant away (``h_s = h_0 ⊕ c(s)``);
        * Tab/Tab64 — :class:`~repro.hashing.tabulation.StackedLaneHasher`:
          byte indices extracted once, each lane block ``num_tables``
          gathers from the seed-stacked tables;
        * Mix/MShift — :class:`BroadcastLaneHasher`: one broadcast mix
          over ``seeds × keys``.

        Every registered family returns a hasher; only custom families
        registered without a ``multiseed_kernel`` return None, sending
        :func:`hash_lanes` down its (chunked) tiled fallback.
        """
        if self._multiseed_kernel is None:
            return None
        return self._multiseed_kernel(np.asarray(keys, dtype=np.uint64))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashFamily({self.name!r}, bits={self.bits})"


@runtime_checkable
class LaneHasher(Protocol):
    """Multi-seed lane evaluator over a fixed key array.

    Built by :meth:`HashFamily.multiseed_hasher`, which runs the fixed-keys
    base pass once; :meth:`lanes` evaluates seed lanes against it.  Every
    lane is bit-identical to the seeded instance's ``hash_array``.
    """

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        """Lane matrix ``out[t] = instance(seeds[t]).hash_array(keys)``."""
        ...


class AffineLaneHasher:
    """Seed-affine hash over a fixed key array: ``h_s(x) = base(x) ⊕ c(s)``.

    ``base`` is the (already computed) seed-0 hash of every key; ``c`` is
    the per-seed constant.  Consumers may exploit the affine structure
    beyond :meth:`lanes` — the bit-group bucket assigner extracts groups
    from ``base`` once and XORs each lane's constant group in, so a seed
    lane never touches the key array again.
    """

    def __init__(self, base: np.ndarray, constants_fn):
        self.base = base
        self._constants_fn = constants_fn

    def constants(self, seeds: np.ndarray) -> np.ndarray:
        """Per-seed XOR constants ``c(seeds)`` (same shape as ``seeds``)."""
        return self._constants_fn(seeds)

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        """Full lane tensor, shape ``seeds.shape + base.shape``."""
        return self.constants(seeds)[..., None] ^ self.base


#: Backwards-compatible name from before the LaneHasher generalization.
AffineHasher = AffineLaneHasher


class BroadcastLaneHasher:
    """Lane evaluator from a closed-form broadcast formula.

    For families whose seeded evaluation is an elementwise formula of
    (seed, key) — Mix's keyed SplitMix (``kind="mix"``), MShift's
    multiply-shift (``kind="mshift"``) — all ``T`` lanes of a key block
    come out of **one** cache-blocked kernel pass over the fixed keys:
    no per-seed instance loop, no key tiling.  The per-seed constants
    the formula needs (MShift's odd multipliers; Mix uses the seeds
    directly) are derived once per seed block, outside the key loop.

    :meth:`bucket_lanes` additionally fuses the §4 bit-group extraction
    with the mixing pass — bucket indices are sliced out of each lane
    block while it is still cache-resident, so Mix/MShift checker rows
    never materialize (or re-stream) the full ``(T, n)`` lane matrix.
    """

    def __init__(self, keys: np.ndarray, kind: str, out_bits: int):
        if kind not in ("mix", "mshift"):
            raise ValueError(f"kind must be 'mix' or 'mshift', got {kind!r}")
        self._keys = np.asarray(keys, dtype=np.uint64).ravel()
        self._kind = kind
        self.out_bits = out_bits
        self._mask = (
            np.uint64((1 << out_bits) - 1)
            if out_bits < 64
            else np.uint64(0xFFFFFFFFFFFFFFFF)
        )
        self._shift = np.uint64(64 - out_bits)

    def _constants(self, seeds: np.ndarray) -> np.ndarray:
        """Per-seed broadcast constants (hoisted out of the key loop)."""
        if self._kind == "mix":
            return seeds
        return derive_seed_array(seeds, "multiply-shift") | np.uint64(1)

    def _eval_block(
        self, kernels, consts: np.ndarray, start: int, end: int,
        out: np.ndarray,
    ) -> None:
        """All lanes of keys ``start:end`` into ``out`` in one kernel call."""
        block = self._keys[start:end]
        if self._kind == "mix":
            kernels.mix_lanes(consts, block, self._mask, out)
        else:
            kernels.mshift_lanes(consts, block, self._shift, out)

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        seeds = np.asarray(seeds, dtype=np.uint64).ravel()
        consts = self._constants(seeds)
        lanes, n = seeds.size, self._keys.size
        out = np.empty((lanes, n), dtype=np.uint64)
        if n == 0:
            return out
        kernels = get_kernels()
        block = max(1, _BROADCAST_BLOCK_ELEMENTS // max(lanes, 1))
        for start in range(0, n, block):
            end = min(start + block, n)
            self._eval_block(kernels, consts, start, end, out[:, start:end])
        return out

    def bucket_lanes(
        self,
        seeds: np.ndarray,
        d: int,
        group_bits: int,
        num_groups: int,
        out: list,
        bit_offset: int = 0,
    ) -> None:
        """Fused mix + bucket extraction (same contract as
        :meth:`repro.hashing.tabulation.StackedLaneHasher.bucket_lanes`).

        Group ``g`` of lane ``t`` is the ``group_bits``-wide field at bit
        ``bit_offset + g * group_bits`` of the lane value;
        ``group_bits == 0`` means the general ``mod d`` path with one
        output row.  Bit-identical to extracting from :meth:`lanes`.
        """
        seeds = np.asarray(seeds, dtype=np.uint64).ravel()
        consts = self._constants(seeds)
        lanes, n = seeds.size, self._keys.size
        if n == 0:
            return
        kernels = get_kernels()
        block = max(1, _FUSED_BLOCK_ELEMENTS // max(lanes, 1))
        width = min(block, n)
        acc = np.empty((lanes, width), dtype=np.uint64)
        grp = np.empty((lanes, width), dtype=np.uint64)
        mask = np.uint64((1 << group_bits) - 1) if group_bits else np.uint64(0)
        for start in range(0, n, block):
            end = min(start + block, n)
            w = end - start
            a = acc[:, :w]
            self._eval_block(kernels, consts, start, end, a)
            if group_bits:
                for g in range(num_groups):
                    dst = out[g][:, start:end]
                    shift = bit_offset + g * group_bits
                    if shift:
                        gv = grp[:, :w]
                        np.right_shift(a, np.uint64(shift), out=gv)
                        np.bitwise_and(gv, mask, out=dst, casting="unsafe")
                    else:
                        np.bitwise_and(a, mask, out=dst, casting="unsafe")
            else:
                np.mod(a, np.uint64(d), out=out[0][:, start:end],
                       casting="unsafe")


#: Seed-tiled elements per batched pass of the :func:`hash_lanes` fallback;
#: bounds its peak scratch (tiled keys + owner + output block) instead of
#: materializing all ``len(seeds) × len(keys)`` tiled keys at once.
_FALLBACK_CHUNK_ELEMENTS = 1 << 20


def hash_lanes(
    family: HashFamily,
    seeds: np.ndarray,
    keys: np.ndarray,
    hasher: "LaneHasher | None" = None,
    chunk_elements: int = _FALLBACK_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Lane matrix ``out[t] = instance(seeds[t]).hash_array(keys)``.

    The multi-seed access pattern (every seed over the same key array).
    Evaluation goes through the family's :class:`LaneHasher` — passed in
    by callers that amortize the base pass across calls, or built here —
    so no registered family pays a per-seed pass.  Only families without
    a multiseed kernel fall back to tiling the keys through the batched
    kernel, in bounded seed blocks of ``chunk_elements`` tiled keys
    (peak scratch O(chunk), not O(len(seeds) · len(keys))).
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    if hasher is None:
        hasher = family.multiseed_hasher(keys)
    if hasher is not None:
        return hasher.lanes(seeds)
    out = np.empty((seeds.size, keys.size), dtype=np.uint64)
    # Shared chunking policy with every other seed-blocked path (raises
    # ValueError on chunk_elements < 1, preserving this fallback's
    # historical validation).
    per_block = seeds_per_block(chunk_elements, keys.size)
    for start in range(0, seeds.size, per_block):
        count = min(per_block, seeds.size - start)
        owner = np.repeat(np.arange(count, dtype=np.intp), keys.size)
        out[start : start + count] = family.hash_array_batch(
            seeds[start : start + count], owner, np.tile(keys, count)
        ).reshape(count, keys.size)
    return out


_REGISTRY: dict[str, HashFamily] = {}


def _register(family: HashFamily) -> HashFamily:
    _REGISTRY[family.name.lower()] = family
    return family


def _crc_batch_kernel(nbytes: int):
    def kernel(seeds, owner, keys):
        return crc32c_u64_array(keys, seeds[owner], nbytes).astype(np.uint64)

    return kernel


def _crc_multiseed_kernel(nbytes: int):
    def kernel(keys):
        return AffineHasher(
            crc32c_u64_array(keys, 0, nbytes).astype(np.uint64),
            lambda seeds: crc32c_seed_constants(seeds, nbytes),
        )

    return kernel


def _tab_batch_kernel(key_bits: int, out_bits: int):
    def kernel(seeds, owner, keys):
        return tabulation_hash_batch(seeds, owner, keys, key_bits, out_bits)

    return kernel


def _tab_multiseed_kernel(key_bits: int, out_bits: int):
    def kernel(keys):
        return StackedLaneHasher(keys, key_bits, out_bits)

    return kernel


def _broadcast_multiseed_kernel(kind: str, out_bits: int):
    def kernel(keys):
        return BroadcastLaneHasher(keys, kind, out_bits)

    return kernel


CRC_FAMILY = _register(
    HashFamily(
        "CRC",
        _CRCHash,
        32,
        "CRC-32C (Castagnoli), seeded initial state; limited randomness",
        batch_kernel=_crc_batch_kernel(8),
        multiseed_kernel=_crc_multiseed_kernel(8),
    )
)
CRC4_FAMILY = _register(
    HashFamily(
        "CRC4",
        lambda seed: _CRCHash(seed, nbytes=4),
        32,
        "CRC-32C over 4-byte (32-bit) elements — the paper's stored width",
        batch_kernel=_crc_batch_kernel(4),
        multiseed_kernel=_crc_multiseed_kernel(4),
    )
)
TAB_FAMILY = _register(
    HashFamily(
        "Tab",
        lambda seed: TabulationHash(seed, key_bits=32, out_bits=32),
        32,
        "simple tabulation, 4 tables of 256 (32-bit keys)",
        batch_kernel=_tab_batch_kernel(32, 32),
        multiseed_kernel=_tab_multiseed_kernel(32, 32),
    )
)
TAB64_FAMILY = _register(
    HashFamily(
        "Tab64",
        lambda seed: TabulationHash(seed, key_bits=64, out_bits=64),
        64,
        "simple tabulation, 8 tables of 256 (64-bit keys)",
        batch_kernel=_tab_batch_kernel(64, 64),
        multiseed_kernel=_tab_multiseed_kernel(64, 64),
    )
)
MIX_FAMILY = _register(
    HashFamily(
        "Mix",
        lambda seed: SplitMixHash(seed, out_bits=64),
        64,
        "keyed SplitMix64 finalizer (ideal-model stand-in)",
        batch_kernel=lambda seeds, owner, keys: splitmix_hash_batch(
            seeds, owner, keys, 64
        ),
        multiseed_kernel=_broadcast_multiseed_kernel("mix", 64),
    )
)
MSHIFT_FAMILY = _register(
    HashFamily(
        "MShift",
        lambda seed: MultiplyShiftHash(seed, out_bits=32),
        32,
        "2-universal multiply-shift (ablation)",
        batch_kernel=lambda seeds, owner, keys: multiply_shift_hash_batch(
            seeds, owner, keys, 32
        ),
        multiseed_kernel=_broadcast_multiseed_kernel("mshift", 32),
    )
)


def get_family(name: str) -> HashFamily:
    """Look up a registered family by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown hash family {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_families() -> list[str]:
    """Names of all registered families (canonical capitalisation)."""
    return [fam.name for fam in _REGISTRY.values()]

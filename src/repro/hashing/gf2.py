"""Carry-less multiplication and GF(2^64) arithmetic.

§5 of the paper suggests replacing the mod-p polynomial evaluation of
Lemma 5 with multiplication in a Galois field GF(2^l), which maps to the
``PCLMULQDQ`` instruction on x86 (Plank et al., FAST'13).  We implement the
field GF(2^64) with the standard irreducible polynomial

    x^64 + x^4 + x^3 + x + 1

both scalar (Python ints) and vectorized (two-lane uint64 numpy emulation of
the 128-bit carry-less product).
"""

from __future__ import annotations

import numpy as np

#: Low 64 bits of the irreducible polynomial x^64 + x^4 + x^3 + x + 1.
GF64_MODULUS_TAIL = 0x1B

_MASK64 = (1 << 64) - 1


def clmul(a: int, b: int) -> int:
    """Carry-less (XOR) product of two 64-bit ints; up to 127-bit result."""
    a &= _MASK64
    result = 0
    b &= _MASK64
    while b:
        low = b & -b
        result ^= a * low  # multiplying by a power of two is a shift
        b ^= low
    return result


def _gf64_reduce_int(x: int) -> int:
    """Reduce a (≤127-bit) carry-less product modulo x^64 + x^4 + x^3 + x + 1."""
    # Fold the high half twice: x^64 ≡ x^4 + x^3 + x + 1.
    for _ in range(2):
        hi = x >> 64
        if not hi:
            break
        x = (x & _MASK64) ^ (hi << 4) ^ (hi << 3) ^ (hi << 1) ^ hi
    return x & _MASK64 if x >> 64 == 0 else _gf64_reduce_int(x)


def gf64_mul(a: int, b: int) -> int:
    """Field product in GF(2^64)."""
    return _gf64_reduce_int(clmul(a, b))


def gf64_pow(a: int, e: int) -> int:
    """Field exponentiation by squaring."""
    if e < 0:
        raise ValueError("negative exponents are not supported")
    result = 1
    base = a & _MASK64
    while e:
        if e & 1:
            result = gf64_mul(result, base)
        base = gf64_mul(base, base)
        e >>= 1
    return result


def _clmul_vec(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized carry-less 64x64 -> 128-bit product as (hi, lo) lanes."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    lo = np.zeros(a.shape, dtype=np.uint64)
    hi = np.zeros(a.shape, dtype=np.uint64)
    one = np.uint64(1)
    with np.errstate(over="ignore"):
        for i in range(64):
            shift = np.uint64(i)
            bit = (b >> shift) & one
            sel = np.uint64(0) - bit  # all-ones mask where bit set
            lo ^= (a << shift) & sel
            if i:
                hi ^= (a >> np.uint64(64 - i)) & sel
    return hi, lo


def _gf64_reduce_vec(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Vectorized reduction of (hi, lo) modulo x^64 + x^4 + x^3 + x + 1."""
    with np.errstate(over="ignore"):
        # First fold: hi * x^64 ≡ hi * (x^4 + x^3 + x + 1).  The shifted
        # terms overflow 64 bits by at most 4 bits; collect the overflow.
        over = (
            (hi >> np.uint64(60)) ^ (hi >> np.uint64(61)) ^ (hi >> np.uint64(63))
        )
        lo = (
            lo
            ^ (hi << np.uint64(4))
            ^ (hi << np.uint64(3))
            ^ (hi << np.uint64(1))
            ^ hi
        )
        # Second fold: `over` < 2^4, its shifted terms cannot overflow.
        lo ^= (
            (over << np.uint64(4))
            ^ (over << np.uint64(3))
            ^ (over << np.uint64(1))
            ^ over
        )
    return lo


def gf64_mul_vec(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized field product in GF(2^64) over uint64 arrays."""
    hi, lo = _clmul_vec(a, b)
    return _gf64_reduce_vec(hi, lo)


def gf64_product(values: np.ndarray) -> int:
    """Field product of all array elements (pairwise tree reduction).

    Used by the GF(2^64) permutation fingerprint: the product of
    ``(z XOR e_i)`` over all elements.  The tree shape keeps the number of
    vectorized multiply passes at O(64 log n).
    """
    vals = np.asarray(values, dtype=np.uint64).ravel()
    if vals.size == 0:
        return 1
    while vals.size > 1:
        half = vals.size // 2
        merged = gf64_mul_vec(vals[:half], vals[half : 2 * half])
        if vals.size % 2:
            merged = np.concatenate([merged, vals[-1:]])
        vals = merged
    return int(vals[0])

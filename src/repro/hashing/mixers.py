"""Strong mixers and universal hashing.

:class:`SplitMixHash` is the repository's stand-in for the paper's analytical
"random hash function" model (§2 *Hashing*): a keyed SplitMix64 finalizer is
a high-quality pseudorandom permutation of 64-bit inputs, so its truncations
behave like uniform random values for the purposes of the checkers.

:class:`MultiplyShiftHash` is the classic 2-universal ``(a*x) >> (64-l)``
scheme of Dietzfelbinger et al.; it is the cheapest family and is used in
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_kernels
from repro.util.rng import derive_seed, derive_seed_array, splitmix64, splitmix64_array

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix_hash_batch(
    seeds: np.ndarray, owner: np.ndarray, keys: np.ndarray, out_bits: int = 64
) -> np.ndarray:
    """Hash ``keys[i]`` with the SplitMix function seeded ``seeds[owner[i]]``.

    Elementwise equal to ``SplitMixHash(seeds[owner[i]], out_bits)``; the
    whole batch is one vector mix regardless of how many seeds appear.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    seeds = np.asarray(seeds, dtype=np.uint64)
    owner = np.asarray(owner, dtype=np.intp)
    mixed = splitmix64_array(keys ^ seeds[owner])
    if out_bits < 64:
        mixed &= np.uint64((1 << out_bits) - 1)
    return mixed


#: Lane-matrix elements per broadcast block; bounds each block's
#: temporaries to ~2 MB so the mixing passes run cache-resident instead
#: of streaming full (T, n) intermediates through DRAM (measured ~1.7×
#: on Mix lanes at T=32, n=2·10^5 vs the unblocked broadcast).
_BROADCAST_BLOCK_ELEMENTS = 1 << 18


def _blocked_lanes(seeds: np.ndarray, keys: np.ndarray, block_eval) -> np.ndarray:
    """Fill a (T, n) lane matrix via ``block_eval(key_block, out_block)``,
    cache-blocked over the key axis."""
    out = np.empty((seeds.size, keys.size), dtype=np.uint64)
    block = max(1, _BROADCAST_BLOCK_ELEMENTS // max(seeds.size, 1))
    for start in range(0, keys.size, block):
        end = min(start + block, keys.size)
        block_eval(keys[start:end], out[:, start:end])
    return out


def splitmix_lanes(
    seeds: np.ndarray, keys: np.ndarray, out_bits: int = 64
) -> np.ndarray:
    """Lane matrix ``out[t] = SplitMixHash(seeds[t], out_bits).hash_array``.

    The multi-seed access pattern (every seed over the same keys) as a
    broadcast mix over ``seeds[:, None] ^ keys[None, :]`` — no per-seed
    loop and no key tiling.  Shape ``(len(seeds), len(keys))``.  The mix
    runs on the active kernel tier (:mod:`repro.kernels`).
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    mask = np.uint64((1 << out_bits) - 1) if out_bits < 64 else np.uint64(_MASK64)
    kernels = get_kernels()
    return _blocked_lanes(
        seeds, keys, lambda k, o: kernels.mix_lanes(seeds, k, mask, o)
    )


def multiply_shift_lanes(
    seeds: np.ndarray, keys: np.ndarray, out_bits: int = 32
) -> np.ndarray:
    """Lane matrix of :class:`MultiplyShiftHash` rows (broadcast product)."""
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    multipliers = derive_seed_array(seeds, "multiply-shift") | np.uint64(1)
    shift = np.uint64(64 - out_bits)
    kernels = get_kernels()
    return _blocked_lanes(
        seeds, keys, lambda k, o: kernels.mshift_lanes(multipliers, k, shift, o)
    )


def multiply_shift_hash_batch(
    seeds: np.ndarray, owner: np.ndarray, keys: np.ndarray, out_bits: int = 32
) -> np.ndarray:
    """Batched :class:`MultiplyShiftHash` under per-owner seeds."""
    keys = np.asarray(keys, dtype=np.uint64)
    owner = np.asarray(owner, dtype=np.intp)
    multipliers = derive_seed_array(seeds, "multiply-shift") | np.uint64(1)
    with np.errstate(over="ignore"):
        product = keys * multipliers[owner]
    return product >> np.uint64(64 - out_bits)


class SplitMixHash:
    """Keyed SplitMix64 finalizer truncated to ``out_bits``."""

    def __init__(self, seed: int, out_bits: int = 64):
        if not 1 <= out_bits <= 64:
            raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
        self.seed = seed & _MASK64
        self.bits = out_bits
        self._mask = (1 << out_bits) - 1

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        mixed = splitmix64_array(keys ^ np.uint64(self.seed))
        if self.bits < 64:
            mixed &= np.uint64(self._mask)
        return mixed

    def hash_one(self, key: int) -> int:
        return splitmix64((int(key) ^ self.seed) & _MASK64) & self._mask

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SplitMixHash(seed={self.seed:#x}, out_bits={self.bits})"


class MultiplyShiftHash:
    """2-universal multiply-shift hashing: ``h(x) = (a*x mod 2^64) >> (64-l)``.

    ``a`` is an odd 64-bit multiplier derived from the seed (Dietzfelbinger
    et al. 1997).  Only 2-universal, so *not* sufficient for all checkers —
    kept for the hash-family ablation.
    """

    def __init__(self, seed: int, out_bits: int = 32):
        if not 1 <= out_bits <= 64:
            raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
        self.seed = seed
        self.bits = out_bits
        self.multiplier = derive_seed(seed, "multiply-shift") | 1
        self._shift = 64 - out_bits

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        with np.errstate(over="ignore"):
            product = keys * np.uint64(self.multiplier)
        return product >> np.uint64(self._shift)

    def hash_one(self, key: int) -> int:
        return ((int(key) * self.multiplier) & _MASK64) >> self._shift

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MultiplyShiftHash(seed={self.seed:#x}, out_bits={self.bits})"

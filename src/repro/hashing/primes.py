"""Primality testing and prime search for the polynomial permutation checker.

Lemma 5 needs a prime ``r > max(n/δ, U-1)``; Theorem 6 instantiates
``δ = 2^(1-w) * n`` so that by Bertrand's postulate ``r`` can be chosen in
``[2^(w-1), 2^w]`` and residues fit one machine word.
"""

from __future__ import annotations

from repro.util.rng import derive_seed, uniform_below

# Deterministic Miller-Rabin witness set: correct for all n < 3.3 * 10^24
# (Sorenson & Webster 2015), far beyond anything used here.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin (exact for every n this library produces)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def bertrand_prime(w: int) -> int:
    """A prime in ``[2^(w-1), 2^w]`` (exists by Bertrand's postulate).

    Returns the smallest such prime so the value is deterministic.
    """
    if w < 2:
        raise ValueError(f"need w >= 2 to have a prime in [2^(w-1), 2^w], got {w}")
    p = next_prime(1 << (w - 1))
    if p > (1 << w):  # pragma: no cover - impossible by Bertrand's postulate
        raise RuntimeError(f"no prime in [2^{w - 1}, 2^{w}]")
    return p


def random_prime_in_range(lo: int, hi: int, seed: int) -> int:
    """A deterministic pseudorandom prime in ``[lo, hi]``.

    Samples candidates with the seeded SplitMix64 stream; falls back to a
    linear scan if the range is extremely sparse.  Raises if the range holds
    no prime.
    """
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    span = hi - lo + 1
    state = derive_seed(seed, "prime-search")
    for attempt in range(4 * max(1, span.bit_length()) + 64):
        candidate = lo + uniform_below(derive_seed(state, attempt), span)
        candidate |= 1
        if lo <= candidate <= hi and is_prime(candidate):
            return candidate
    p = next_prime(lo)
    if p <= hi:
        return p
    raise ValueError(f"no prime in [{lo}, {hi}]")

"""Tabulation hashing (Wegman–Carter; Pǎtraşcu–Thorup).

``h(x) = T_0[byte_0(x)] XOR T_1[byte_1(x)] XOR ...`` with independently
random tables ``T_i``.  Simple tabulation is 3-independent and behaves like a
fully random function for many algorithms (Pǎtraşcu & Thorup, JACM 2012) —
the paper observes it matches the ideal-model accuracy on *all* manipulators
(Figs 3 and 5), unlike CRC.

The paper uses 256 entries per table and four tables for 32-bit keys ("Tab")
or eight tables for 64-bit keys ("Tab64").  Table entries here are 64-bit;
callers truncate the output to the width they need (the checkers only ever
consume ``bits`` of it).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_kernels
from repro.util.rng import derive_seed, derive_seed_array, splitmix64_array


def tabulation_tables(seed: int, num_tables: int, out_bits: int = 64) -> np.ndarray:
    """Generate ``num_tables`` x 256 random table entries from ``seed``.

    Entries are derived with the SplitMix64 counter construction so that a
    fresh seed yields a fresh, independent hash function — this is how the
    accuracy experiments draw a new hash function per trial.
    """
    if not 1 <= num_tables <= 8:
        raise ValueError(f"num_tables must be in 1..8, got {num_tables}")
    if not 1 <= out_bits <= 64:
        raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
    base = derive_seed(seed, "tabulation-tables")
    counters = np.arange(num_tables * 256, dtype=np.uint64) + np.uint64(
        base & 0xFFFFFFFF
    )
    # Mix the (folded) base into the high bits so different seeds give
    # disjoint counter streams before mixing.
    counters ^= np.uint64(base) << np.uint64(1)
    entries = splitmix64_array(counters)
    if out_bits < 64:
        entries &= np.uint64((1 << out_bits) - 1)
    return entries.reshape(num_tables, 256)


def tabulation_tables_batch(
    seeds: np.ndarray, num_tables: int, out_bits: int = 64
) -> np.ndarray:
    """Stacked :func:`tabulation_tables` for many seeds at once.

    Returns a ``(len(seeds), num_tables, 256)`` array whose slice ``[t]``
    is byte-identical to ``tabulation_tables(seeds[t], ...)`` — the batched
    accuracy engine draws one fresh hash function per trial from this stack
    instead of regenerating kilobytes of tables in Python per trial.
    """
    if not 1 <= num_tables <= 8:
        raise ValueError(f"num_tables must be in 1..8, got {num_tables}")
    if not 1 <= out_bits <= 64:
        raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    bases = derive_seed_array(seeds, "tabulation-tables")
    counters = (
        np.arange(num_tables * 256, dtype=np.uint64)[None, :]
        + (bases & np.uint64(0xFFFFFFFF))[:, None]
    )
    counters ^= (bases << np.uint64(1))[:, None]
    entries = splitmix64_array(counters)
    if out_bits < 64:
        entries &= np.uint64((1 << out_bits) - 1)
    return entries.reshape(seeds.size, num_tables, 256)


#: Keys-per-seed threshold above which materializing the per-seed tables
#: (then owner-gathering entries) beats deriving the consulted entries
#: per key from the SplitMix64 counter construction.  Re-measured after
#: the stacked lane kernel landed (this machine, ``num_tables=8``, best
#: of 4, S = seed count): the per-key SplitMix derivation is cheaper than
#: the two-level ``tables[owner, i, byte]`` gather far beyond the old
#: threshold of 64 — at 64 keys/seed sparse wins 2.2× (S=16: 0.28 vs
#: 0.60 µs/key) to 9× (S=256: 0.054 vs 0.51 µs/key); the crossover sits
#: between ~1 000 and ~4 000 keys/seed (S=4: ~4 096, S=16/S=64: ~2 048,
#: S=256: ~1 024) and is shallow (≲10 % either side of it).  2 048 lands
#: inside that band for every measured seed count; batches below it now
#: take the formerly-undervalued sparse path.  The *multi-seed lane*
#: pattern (every seed over the same keys) does not go through here at
#: all any more — ``StackedLaneHasher`` gathers those without an owner
#: indirection.
_DENSE_KEYS_PER_SEED = 2048


def stacked_tabulation_tables(
    seeds: np.ndarray, num_tables: int, out_bits: int = 64
) -> np.ndarray:
    """Seed-stacked tables, shape ``(num_tables, 256, len(seeds))``.

    The canonical byte-major transpose of :func:`tabulation_tables_batch`:
    slice ``[..., t]`` is byte-identical to
    ``tabulation_tables(seeds[t], num_tables, out_bits)``, and
    ``stacked[i, b]`` is the vector of every seed's entry for byte value
    ``b`` of table ``i`` — one fancy-indexed gather per table serves all
    ``T`` seed lanes at once.  :class:`StackedLaneHasher` gathers from
    the seed-major transpose of the same stack (lane ``t`` then reads a
    contiguous 2 KB table slice, which measures faster); this byte-major
    form is the interop/reference layout.
    """
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    return np.ascontiguousarray(
        tabulation_tables_batch(seeds, num_tables, out_bits).transpose(1, 2, 0)
    )


#: Lane-matrix elements (seed lanes × block keys) per cache-blocked gather;
#: bounds the gather accumulator to ~2 MB so every block's working set
#: (tables + accumulator) stays cache-resident instead of streaming
#: ``num_tables`` full (T, n) temporaries through DRAM.
_LANE_BLOCK_ELEMENTS = 1 << 18

#: Block size of the fused gather+bucket-extraction kernel.  Smaller than
#: :data:`_LANE_BLOCK_ELEMENTS` because the fused loop re-reads the gather
#: accumulator once per bit group: at 2^16 lane-elements the accumulator
#: and scratch (~1.5 MB) stay L2-resident through all extractions, which
#: measures ~25% faster than the 2^18 gather-only block (this machine,
#: T=32, Tab64 8x16).
_FUSED_BLOCK_ELEMENTS = 1 << 16


def _key_byte_indices(keys: np.ndarray, num_tables: int) -> np.ndarray:
    """Per-table byte indices of every key, shape ``(num_tables, n)`` intp.

    One 2-D array (the gather addresses) so kernel tiers can take a
    contiguous-row slice per cache block without per-table list plumbing.
    """
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    out = np.empty((num_tables, keys.size), dtype=np.intp)
    for i in range(num_tables):
        out[i] = ((keys >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
    return out


class StackedLaneHasher:
    """Tabulation lane evaluator over a fixed key array.

    The :class:`~repro.hashing.families.LaneHasher` for Tab/Tab64: each
    key's byte indices are extracted **once**, at construction; every
    :meth:`lanes` call then XOR-accumulates ``num_tables`` fancy-indexed
    gathers from the seed-stacked tables — independent of how many seed
    lanes are evaluated, versus ``T × num_tables`` byte extractions and
    gathers on the per-seed kernel path.

    Gathers run seed-major (each lane reads its own 2 KB table slice) and
    cache-blocked over keys (:data:`_LANE_BLOCK_ELEMENTS`): ~4× over the
    per-seed kernel path at T=32 over a 10^6-element workload's unique
    keys (``BENCH_tab_lanes.json``).
    """

    def __init__(self, keys, key_bits: int = 64, out_bits: int = 64):
        if key_bits not in (32, 64):
            raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
        if not 1 <= out_bits <= 64:
            raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
        self.key_bits = key_bits
        self.out_bits = out_bits
        self.num_tables = key_bits // 8
        self._bytes = _key_byte_indices(keys, self.num_tables)
        self.num_keys = self._bytes.shape[1]

    def _seed_major_tables(self, seeds: np.ndarray) -> np.ndarray:
        """Seed-major table tensor: lane ``t`` reads a contiguous 2 KB slice."""
        return np.ascontiguousarray(
            tabulation_tables_batch(
                seeds, self.num_tables, self.out_bits
            ).transpose(1, 0, 2)
        )

    def _gather_block(
        self, kernels, tables: np.ndarray, start: int, end: int,
        acc: np.ndarray, tmp: np.ndarray,
    ) -> None:
        """XOR-accumulate all tables' gathers for keys ``start:end``."""
        kernels.tab_gather(tables, self._bytes[:, start:end], acc, tmp)

    def lanes(self, seeds: np.ndarray) -> np.ndarray:
        """Lane matrix ``out[t] = TabulationHash(seeds[t], ...).hash_array``.

        Shape ``(len(seeds), num_keys)``, C-contiguous, bit-identical per
        row to the seeded instance (entries are pre-masked to
        ``out_bits``, and XOR preserves the mask).
        """
        seeds = np.asarray(seeds, dtype=np.uint64).ravel()
        tables = self._seed_major_tables(seeds)
        lanes, n = seeds.size, self.num_keys
        out = np.empty((lanes, n), dtype=np.uint64)
        if n == 0:
            return out
        kernels = get_kernels()
        block = max(1, _LANE_BLOCK_ELEMENTS // max(lanes, 1))
        scratch = np.empty((lanes, min(block, n)), dtype=np.uint64)
        for start in range(0, n, block):
            end = min(start + block, n)
            self._gather_block(
                kernels, tables, start, end,
                out[:, start:end], scratch[:, : end - start],
            )
        return out

    def bucket_lanes(
        self,
        seeds: np.ndarray,
        d: int,
        group_bits: int,
        num_groups: int,
        out: list,
        bit_offset: int = 0,
    ) -> None:
        """Fused gather + bucket extraction for the §4 bit-group scheme.

        Writes bucket indices for ``num_groups`` bit-groups of every seed
        lane into ``out`` — a list of ``num_groups`` intp arrays of shape
        ``(len(seeds), num_keys)`` — extracting each group from the
        gather accumulator **while it is still cache-resident**, instead
        of materializing the full uint64 lane matrix and re-streaming it
        once per group (that second DRAM pass is what dominated Tab64
        lane consumption).  Group ``g`` is the ``group_bits``-wide field
        at bit ``bit_offset + g * group_bits`` (``bit_offset`` lets the
        super-group path extract wide fields starting mid-word).
        ``group_bits == 0`` means the general ``mod d`` path with a
        single output row.  Results are bit-identical to extracting from
        :meth:`lanes`.
        """
        seeds = np.asarray(seeds, dtype=np.uint64).ravel()
        tables = self._seed_major_tables(seeds)
        lanes, n = seeds.size, self.num_keys
        if n == 0:
            return
        kernels = get_kernels()
        block = max(1, _FUSED_BLOCK_ELEMENTS // max(lanes, 1))
        width = min(block, n)
        acc = np.empty((lanes, width), dtype=np.uint64)
        tmp = np.empty((lanes, width), dtype=np.uint64)
        grp = np.empty((lanes, width), dtype=np.uint64)
        mask = np.uint64((1 << group_bits) - 1) if group_bits else np.uint64(0)
        for start in range(0, n, block):
            end = min(start + block, n)
            w = end - start
            a = acc[:, :w]
            self._gather_block(kernels, tables, start, end, a, tmp[:, :w])
            if group_bits:
                for g in range(num_groups):
                    dst = out[g][:, start:end]
                    shift = bit_offset + g * group_bits
                    if shift:
                        gv = grp[:, :w]
                        np.right_shift(a, np.uint64(shift), out=gv)
                        # Mask and intp-cast in one pass straight into the
                        # caller's bucket row ("unsafe" = dtype change
                        # only; values are < 2**group_bits and cast
                        # exactly).
                        np.bitwise_and(gv, mask, out=dst, casting="unsafe")
                    else:
                        np.bitwise_and(a, mask, out=dst, casting="unsafe")
            else:
                np.mod(a, np.uint64(d), out=out[0][:, start:end],
                       casting="unsafe")


def tabulation_lanes(
    seeds: np.ndarray,
    keys: np.ndarray,
    key_bits: int = 64,
    out_bits: int = 64,
) -> np.ndarray:
    """One-shot stacked lane matrix, shape ``(len(seeds), len(keys))``.

    ``out[t]`` is bit-identical to
    ``TabulationHash(seeds[t], key_bits, out_bits).hash_array(keys)``;
    the key bytes are extracted once and each table costs one gather
    regardless of ``len(seeds)``.  Callers that evaluate several seed
    blocks over the same keys should hold a :class:`StackedLaneHasher`
    instead (it caches the byte extraction).
    """
    return StackedLaneHasher(keys, key_bits, out_bits).lanes(seeds)


def tabulation_hash_batch(
    seeds: np.ndarray,
    owner: np.ndarray,
    keys: np.ndarray,
    key_bits: int = 64,
    out_bits: int = 32,
) -> np.ndarray:
    """Hash ``keys[i]`` with the tabulation function seeded ``seeds[owner[i]]``.

    Two regimes, identical results: for dense batches (many keys per seed)
    one fancy-indexed gather per key byte over the stacked tables; for
    sparse batches — the accuracy engine hashes only a fault's few keys per
    trial — the consulted table entries are derived directly from the
    SplitMix64 counter construction, skipping the other ~99% of each
    trial's tables.
    """
    if key_bits not in (32, 64):
        raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
    num_tables = key_bits // 8
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64)
    owner = np.asarray(owner, dtype=np.intp)
    out = np.zeros(keys.shape, dtype=np.uint64)
    if keys.size >= seeds.size * _DENSE_KEYS_PER_SEED:
        tables = tabulation_tables_batch(seeds, num_tables, out_bits)
        for i in range(num_tables):
            byte = ((keys >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= tables[owner, i, byte]
        return out
    bases = derive_seed_array(seeds, "tabulation-tables")
    base_lo = (bases & np.uint64(0xFFFFFFFF))[owner]
    base_hi = (bases << np.uint64(1))[owner]
    for i in range(num_tables):
        byte = (keys >> np.uint64(8 * i)) & np.uint64(0xFF)
        counter = (byte + np.uint64(256 * i) + base_lo) ^ base_hi
        out ^= splitmix64_array(counter)
    if out_bits < 64:
        out &= np.uint64((1 << out_bits) - 1)
    return out


class TabulationHash:
    """A concrete tabulation hash function over integer keys.

    Parameters
    ----------
    seed:
        Determines the random tables (a new seed is a new hash function).
    key_bits:
        32 or 64; sets the number of byte tables (4 or 8), matching the
        paper's "Tab" / "Tab64" variants.
    out_bits:
        Width of the output in bits (1..64).
    """

    def __init__(self, seed: int, key_bits: int = 64, out_bits: int = 32):
        if key_bits not in (32, 64):
            raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
        self.seed = seed
        self.key_bits = key_bits
        self.bits = out_bits
        self.num_tables = key_bits // 8
        self.tables = tabulation_tables(seed, self.num_tables, out_bits)

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a uint64 key array."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape, dtype=np.uint64)
        for i in range(self.num_tables):
            byte = ((keys >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= self.tables[i][byte]
        return out

    def hash_one(self, key: int) -> int:
        """Scalar evaluation."""
        key = int(key)
        out = 0
        for i in range(self.num_tables):
            out ^= int(self.tables[i][(key >> (8 * i)) & 0xFF])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TabulationHash(seed={self.seed:#x}, key_bits={self.key_bits}, "
            f"out_bits={self.bits})"
        )

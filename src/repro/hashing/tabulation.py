"""Tabulation hashing (Wegman–Carter; Pǎtraşcu–Thorup).

``h(x) = T_0[byte_0(x)] XOR T_1[byte_1(x)] XOR ...`` with independently
random tables ``T_i``.  Simple tabulation is 3-independent and behaves like a
fully random function for many algorithms (Pǎtraşcu & Thorup, JACM 2012) —
the paper observes it matches the ideal-model accuracy on *all* manipulators
(Figs 3 and 5), unlike CRC.

The paper uses 256 entries per table and four tables for 32-bit keys ("Tab")
or eight tables for 64-bit keys ("Tab64").  Table entries here are 64-bit;
callers truncate the output to the width they need (the checkers only ever
consume ``bits`` of it).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import derive_seed, splitmix64_array


def tabulation_tables(seed: int, num_tables: int, out_bits: int = 64) -> np.ndarray:
    """Generate ``num_tables`` x 256 random table entries from ``seed``.

    Entries are derived with the SplitMix64 counter construction so that a
    fresh seed yields a fresh, independent hash function — this is how the
    accuracy experiments draw a new hash function per trial.
    """
    if not 1 <= num_tables <= 8:
        raise ValueError(f"num_tables must be in 1..8, got {num_tables}")
    if not 1 <= out_bits <= 64:
        raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
    base = derive_seed(seed, "tabulation-tables")
    counters = np.arange(num_tables * 256, dtype=np.uint64) + np.uint64(
        base & 0xFFFFFFFF
    )
    # Mix the (folded) base into the high bits so different seeds give
    # disjoint counter streams before mixing.
    counters ^= np.uint64(base) << np.uint64(1)
    entries = splitmix64_array(counters)
    if out_bits < 64:
        entries &= np.uint64((1 << out_bits) - 1)
    return entries.reshape(num_tables, 256)


class TabulationHash:
    """A concrete tabulation hash function over integer keys.

    Parameters
    ----------
    seed:
        Determines the random tables (a new seed is a new hash function).
    key_bits:
        32 or 64; sets the number of byte tables (4 or 8), matching the
        paper's "Tab" / "Tab64" variants.
    out_bits:
        Width of the output in bits (1..64).
    """

    def __init__(self, seed: int, key_bits: int = 64, out_bits: int = 32):
        if key_bits not in (32, 64):
            raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
        self.seed = seed
        self.key_bits = key_bits
        self.bits = out_bits
        self.num_tables = key_bits // 8
        self.tables = tabulation_tables(seed, self.num_tables, out_bits)

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a uint64 key array."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape, dtype=np.uint64)
        for i in range(self.num_tables):
            byte = ((keys >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= self.tables[i][byte]
        return out

    def hash_one(self, key: int) -> int:
        """Scalar evaluation."""
        key = int(key)
        out = 0
        for i in range(self.num_tables):
            out ^= int(self.tables[i][(key >> (8 * i)) & 0xFF])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TabulationHash(seed={self.seed:#x}, key_bits={self.key_bits}, "
            f"out_bits={self.bits})"
        )

"""Tabulation hashing (Wegman–Carter; Pǎtraşcu–Thorup).

``h(x) = T_0[byte_0(x)] XOR T_1[byte_1(x)] XOR ...`` with independently
random tables ``T_i``.  Simple tabulation is 3-independent and behaves like a
fully random function for many algorithms (Pǎtraşcu & Thorup, JACM 2012) —
the paper observes it matches the ideal-model accuracy on *all* manipulators
(Figs 3 and 5), unlike CRC.

The paper uses 256 entries per table and four tables for 32-bit keys ("Tab")
or eight tables for 64-bit keys ("Tab64").  Table entries here are 64-bit;
callers truncate the output to the width they need (the checkers only ever
consume ``bits`` of it).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import derive_seed, derive_seed_array, splitmix64_array


def tabulation_tables(seed: int, num_tables: int, out_bits: int = 64) -> np.ndarray:
    """Generate ``num_tables`` x 256 random table entries from ``seed``.

    Entries are derived with the SplitMix64 counter construction so that a
    fresh seed yields a fresh, independent hash function — this is how the
    accuracy experiments draw a new hash function per trial.
    """
    if not 1 <= num_tables <= 8:
        raise ValueError(f"num_tables must be in 1..8, got {num_tables}")
    if not 1 <= out_bits <= 64:
        raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
    base = derive_seed(seed, "tabulation-tables")
    counters = np.arange(num_tables * 256, dtype=np.uint64) + np.uint64(
        base & 0xFFFFFFFF
    )
    # Mix the (folded) base into the high bits so different seeds give
    # disjoint counter streams before mixing.
    counters ^= np.uint64(base) << np.uint64(1)
    entries = splitmix64_array(counters)
    if out_bits < 64:
        entries &= np.uint64((1 << out_bits) - 1)
    return entries.reshape(num_tables, 256)


def tabulation_tables_batch(
    seeds: np.ndarray, num_tables: int, out_bits: int = 64
) -> np.ndarray:
    """Stacked :func:`tabulation_tables` for many seeds at once.

    Returns a ``(len(seeds), num_tables, 256)`` array whose slice ``[t]``
    is byte-identical to ``tabulation_tables(seeds[t], ...)`` — the batched
    accuracy engine draws one fresh hash function per trial from this stack
    instead of regenerating kilobytes of tables in Python per trial.
    """
    if not 1 <= num_tables <= 8:
        raise ValueError(f"num_tables must be in 1..8, got {num_tables}")
    if not 1 <= out_bits <= 64:
        raise ValueError(f"out_bits must be in 1..64, got {out_bits}")
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    bases = derive_seed_array(seeds, "tabulation-tables")
    counters = (
        np.arange(num_tables * 256, dtype=np.uint64)[None, :]
        + (bases & np.uint64(0xFFFFFFFF))[:, None]
    )
    counters ^= (bases << np.uint64(1))[:, None]
    entries = splitmix64_array(counters)
    if out_bits < 64:
        entries &= np.uint64((1 << out_bits) - 1)
    return entries.reshape(seeds.size, num_tables, 256)


#: Keys-per-seed threshold above which materializing the stacked tables
#: beats deriving entries per key (table build costs 256 mixes per table).
_DENSE_KEYS_PER_SEED = 64


def tabulation_hash_batch(
    seeds: np.ndarray,
    owner: np.ndarray,
    keys: np.ndarray,
    key_bits: int = 64,
    out_bits: int = 32,
) -> np.ndarray:
    """Hash ``keys[i]`` with the tabulation function seeded ``seeds[owner[i]]``.

    Two regimes, identical results: for dense batches (many keys per seed)
    one fancy-indexed gather per key byte over the stacked tables; for
    sparse batches — the accuracy engine hashes only a fault's few keys per
    trial — the consulted table entries are derived directly from the
    SplitMix64 counter construction, skipping the other ~99% of each
    trial's tables.
    """
    if key_bits not in (32, 64):
        raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
    num_tables = key_bits // 8
    seeds = np.asarray(seeds, dtype=np.uint64).ravel()
    keys = np.asarray(keys, dtype=np.uint64)
    owner = np.asarray(owner, dtype=np.intp)
    out = np.zeros(keys.shape, dtype=np.uint64)
    if keys.size >= seeds.size * _DENSE_KEYS_PER_SEED:
        tables = tabulation_tables_batch(seeds, num_tables, out_bits)
        for i in range(num_tables):
            byte = ((keys >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= tables[owner, i, byte]
        return out
    bases = derive_seed_array(seeds, "tabulation-tables")
    base_lo = (bases & np.uint64(0xFFFFFFFF))[owner]
    base_hi = (bases << np.uint64(1))[owner]
    for i in range(num_tables):
        byte = (keys >> np.uint64(8 * i)) & np.uint64(0xFF)
        counter = (byte + np.uint64(256 * i) + base_lo) ^ base_hi
        out ^= splitmix64_array(counter)
    if out_bits < 64:
        out &= np.uint64((1 << out_bits) - 1)
    return out


class TabulationHash:
    """A concrete tabulation hash function over integer keys.

    Parameters
    ----------
    seed:
        Determines the random tables (a new seed is a new hash function).
    key_bits:
        32 or 64; sets the number of byte tables (4 or 8), matching the
        paper's "Tab" / "Tab64" variants.
    out_bits:
        Width of the output in bits (1..64).
    """

    def __init__(self, seed: int, key_bits: int = 64, out_bits: int = 32):
        if key_bits not in (32, 64):
            raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
        self.seed = seed
        self.key_bits = key_bits
        self.bits = out_bits
        self.num_tables = key_bits // 8
        self.tables = tabulation_tables(seed, self.num_tables, out_bits)

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a uint64 key array."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape, dtype=np.uint64)
        for i in range(self.num_tables):
            byte = ((keys >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= self.tables[i][byte]
        return out

    def hash_one(self, key: int) -> int:
        """Scalar evaluation."""
        key = int(key)
        out = 0
        for i in range(self.num_tables):
            out ^= int(self.tables[i][(key >> (8 * i)) & 0xFF])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TabulationHash(seed={self.seed:#x}, key_bits={self.key_bits}, "
            f"out_bits={self.bits})"
        )

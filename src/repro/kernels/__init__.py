"""Tiered hot-path kernels behind a single dispatch point.

The three dominant hot loops of the reproduction — stacked-table gathers
(:mod:`repro.hashing.tabulation`), bucket lane accumulation
(:mod:`repro.hashing.bitgroups` / :mod:`repro.core.multiseed`), and
streamed segment compaction (:class:`repro.core.streams.StreamedKV`) —
call through this package instead of open-coding their inner loops.  Two
backends implement one kernel signature set:

* :mod:`repro.kernels.numpy_backend` — the portable oracle, pure numpy,
  always available;
* :mod:`repro.kernels.numba_backend` — optional JIT-compiled loops,
  imported only on demand and **self-checked against the numpy oracle at
  load time** (a mismatching or miscompiling kernel disables the whole
  tier rather than risking a wrong verdict).

Selection is per call via the ``REPRO_KERNEL_TIER`` environment variable
(``numpy`` | ``numba`` | ``auto``; unset means ``auto``), so tests can
force either tier without re-importing anything and production imports
never hard-depend on numba.
"""

from repro.kernels.dispatch import (
    KERNEL_NAMES,
    VALID_TIERS,
    active_tier,
    get_kernels,
    numba_available,
    resolve_tier,
    seeds_per_block,
)

__all__ = [
    "KERNEL_NAMES",
    "VALID_TIERS",
    "active_tier",
    "get_kernels",
    "numba_available",
    "resolve_tier",
    "seeds_per_block",
]

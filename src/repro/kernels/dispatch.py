"""Kernel-tier resolution: ``REPRO_KERNEL_TIER`` → backend module.

Resolution happens **per call site invocation** (callers do
``get_kernels()`` right before the hot loop), so a test can flip the
environment variable between calls without re-importing the package and
an invalid value fails loudly at the first kernel call instead of being
silently ignored.  The numba backend is imported at most once per
process; a failed import *or a failed load-time self-check against the
numpy oracle* permanently disables the tier for the process (wrong
verdicts are never an acceptable trade for speed).
"""

from __future__ import annotations

import os
import threading
import warnings

#: Environment variable selecting the kernel tier.
ENV_VAR = "REPRO_KERNEL_TIER"

#: Accepted ``REPRO_KERNEL_TIER`` values (unset/empty means ``auto``).
VALID_TIERS = ("numpy", "numba", "auto")

#: The shared kernel signature set both backends implement.
KERNEL_NAMES = (
    "tab_gather",
    "scatter_add_mod",
    "weighted_bincount",
    "mix_lanes",
    "mshift_lanes",
    "merge_sorted_unique_sum",
    "merge_sorted_unique_xor",
)

_lock = threading.Lock()
_state: dict = {
    "numpy": None,  # loaded numpy backend module
    "numba": None,  # loaded-and-verified numba backend module
    "numba_failed": False,  # sticky: import or self-check failed
    "numba_error": None,
    "warned_fallback": False,
}


def seeds_per_block(chunk_elements: int, num_keys: int) -> int:
    """Seed-lanes per batched pass so one pass tiles ≤ ``chunk_elements``.

    The single chunk-size rule every multi-seed consumer shares — the
    :func:`repro.hashing.families.hash_lanes` tiled fallback,
    :func:`repro.hashing.bitgroups.iter_bucket_blocks`, and
    :meth:`repro.core.multiseed.MultiSeedHashSumChecker.\
fingerprints_condensed` — so peak scratch is O(chunk) on every tier.
    """
    if chunk_elements < 1:
        raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
    return max(1, int(chunk_elements) // max(int(num_keys), 1))


def _numpy_backend():
    if _state["numpy"] is None:
        from repro.kernels import numpy_backend

        _state["numpy"] = numpy_backend
    return _state["numpy"]


def _try_numba_backend():
    """The verified numba backend module, or None (result is sticky)."""
    if _state["numba"] is not None:
        return _state["numba"]
    if _state["numba_failed"]:
        return None
    with _lock:
        if _state["numba"] is not None or _state["numba_failed"]:
            return _state["numba"]
        try:
            from repro.kernels import numba_backend

            # Compile every kernel on tiny inputs and compare against the
            # numpy oracle before the tier is ever trusted with real data.
            numba_backend.self_check(_numpy_backend())
        except Exception as exc:  # pragma: no cover - depends on env
            _state["numba_failed"] = True
            _state["numba_error"] = f"{type(exc).__name__}: {exc}"
            return None
        _state["numba"] = numba_backend
        return numba_backend


def numba_available() -> bool:
    """Whether the verified numba tier can be used in this process."""
    return _try_numba_backend() is not None


def resolve_tier(requested: str | None = None) -> str:
    """Resolve a request (default: the env var) to ``"numpy"``/``"numba"``.

    ``auto`` (and unset/empty) prefers numba when importable and
    self-check-clean; an explicit ``numba`` request that cannot be
    honoured warns once per process and falls back to numpy; anything
    outside :data:`VALID_TIERS` raises ``ValueError``.
    """
    if requested is None:
        requested = os.environ.get(ENV_VAR, "")
    requested = requested.strip().lower() or "auto"
    if requested not in VALID_TIERS:
        raise ValueError(
            f"{ENV_VAR} must be one of {VALID_TIERS} (or unset), "
            f"got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    if numba_available():
        return "numba"
    if requested == "numba" and not _state["warned_fallback"]:
        _state["warned_fallback"] = True
        reason = _state["numba_error"] or "numba is not installed"
        warnings.warn(
            f"{ENV_VAR}=numba requested but the numba kernel tier is "
            f"unavailable ({reason}); falling back to the numpy kernels",
            RuntimeWarning,
            stacklevel=3,
        )
    return "numpy"


def get_kernels(tier: str | None = None):
    """The backend module for ``tier`` (default: the env var's choice)."""
    if resolve_tier(tier) == "numba":
        backend = _try_numba_backend()
        if backend is not None:
            return backend
    return _numpy_backend()


def active_tier(tier: str | None = None) -> str:
    """Name of the tier :func:`get_kernels` would hand out right now."""
    return resolve_tier(tier)


def _reset_for_tests() -> None:
    """Forget sticky numba state + the once-per-process fallback warning."""
    _state["numba"] = None
    _state["numba_failed"] = False
    _state["numba_error"] = None
    _state["warned_fallback"] = False

"""Numba-JIT kernel tier: serial, cache-friendly loops for the hot paths.

Importing this module requires numba (the dispatch layer only does so on
demand).  Kernels are deliberately simple single-threaded loops — the
call sites already block their inputs to cache-sized tiles, so the win
is fusing the per-element work (no large temporaries, one pass), not
threading.  Every kernel is bit-identical to its
:mod:`repro.kernels.numpy_backend` oracle; :func:`self_check` proves
that on small inputs at load time and the dispatch layer refuses the
tier wholesale if any kernel disagrees.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import default_generator
from numba import njit

name = "numba"

# SplitMix64 finalizer constants — must mirror repro.util.rng exactly.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


@njit(cache=False, nogil=True)
def tab_gather(tables, byte_idx, out, tmp):
    """XOR-accumulated stacked-table gather (``tmp`` unused; shared ABI)."""
    num_tables = tables.shape[0]
    num_lanes = tables.shape[1]
    width = byte_idx.shape[1]
    for t in range(num_lanes):
        for i in range(width):
            acc = tables[0, t, byte_idx[0, i]]
            for j in range(1, num_tables):
                acc ^= tables[j, t, byte_idx[j, i]]
            out[t, i] = acc


@njit(cache=False, nogil=True)
def scatter_add_mod(table, buckets, values, r):
    """Running-residue scatter add: one pass, one conditional subtract.

    ``table`` entries and ``values`` are both in ``[0, r)`` so each sum
    is below ``2r`` — the reduction never needs a division, and the
    result equals the numpy oracle's deferred-modulo chunks exactly.
    """
    for i in range(values.shape[0]):
        b = buckets[i]
        s = table[b] + values[i]
        if s >= r:
            s -= r
        table[b] = s


@njit(cache=False, nogil=True)
def weighted_bincount(buckets, weights, minlength):
    out = np.zeros(minlength, dtype=np.float64)
    for i in range(buckets.shape[0]):
        out[buckets[i]] += weights[i]
    return out


@njit(cache=False, nogil=True)
def mix_lanes(seeds, keys, mask, out):
    for t in range(seeds.shape[0]):
        s = seeds[t]
        for i in range(keys.shape[0]):
            x = keys[i] ^ s
            x = x + _GAMMA
            x ^= x >> _S30
            x = x * _M1
            x ^= x >> _S27
            x = x * _M2
            x ^= x >> _S31
            out[t, i] = x & mask


@njit(cache=False, nogil=True)
def mshift_lanes(multipliers, keys, shift, out):
    for t in range(multipliers.shape[0]):
        a = multipliers[t]
        for i in range(keys.shape[0]):
            out[t, i] = (keys[i] * a) >> shift


@njit(cache=False, nogil=True)
def merge_sorted_unique_sum(keys_a, vals_a, keys_b, vals_b):
    """Two-pointer merge of sorted-unique segments, summing collisions."""
    na = keys_a.shape[0]
    nb = keys_b.shape[0]
    out_k = np.empty(na + nb, dtype=np.uint64)
    out_v = np.empty(na + nb, dtype=np.int64)
    i = 0
    j = 0
    w = 0
    while i < na and j < nb:
        x = keys_a[i]
        y = keys_b[j]
        if x < y:
            out_k[w] = x
            out_v[w] = vals_a[i]
            i += 1
        elif y < x:
            out_k[w] = y
            out_v[w] = vals_b[j]
            j += 1
        else:
            out_k[w] = x
            out_v[w] = vals_a[i] + vals_b[j]
            i += 1
            j += 1
        w += 1
    while i < na:
        out_k[w] = keys_a[i]
        out_v[w] = vals_a[i]
        i += 1
        w += 1
    while j < nb:
        out_k[w] = keys_b[j]
        out_v[w] = vals_b[j]
        j += 1
        w += 1
    return out_k[:w].copy(), out_v[:w].copy()


@njit(cache=False, nogil=True)
def merge_sorted_unique_xor(keys_a, vals_a, keys_b, vals_b):
    """Two-pointer merge of sorted-unique segments, XOR-ing collisions."""
    na = keys_a.shape[0]
    nb = keys_b.shape[0]
    out_k = np.empty(na + nb, dtype=np.uint64)
    out_v = np.empty(na + nb, dtype=np.uint64)
    i = 0
    j = 0
    w = 0
    while i < na and j < nb:
        x = keys_a[i]
        y = keys_b[j]
        if x < y:
            out_k[w] = x
            out_v[w] = vals_a[i]
            i += 1
        elif y < x:
            out_k[w] = y
            out_v[w] = vals_b[j]
            j += 1
        else:
            out_k[w] = x
            out_v[w] = vals_a[i] ^ vals_b[j]
            i += 1
            j += 1
        w += 1
    while i < na:
        out_k[w] = keys_a[i]
        out_v[w] = vals_a[i]
        i += 1
        w += 1
    while j < nb:
        out_k[w] = keys_b[j]
        out_v[w] = vals_b[j]
        j += 1
        w += 1
    return out_k[:w].copy(), out_v[:w].copy()


def self_check(oracle) -> None:
    """Compile every kernel on small inputs and compare with ``oracle``.

    Raises on any mismatch, which makes the dispatch layer disable the
    whole tier — a silently wrong kernel could flip a checker verdict,
    which is the one failure mode this repository exists to prevent.
    """
    rng = default_generator(0xC0FFEE)
    keys = rng.integers(0, 2**64, 67, dtype=np.uint64)
    seeds = rng.integers(0, 2**64, 5, dtype=np.uint64)

    tables = rng.integers(0, 2**64, (4, 5, 256), dtype=np.uint64)
    byte_idx = rng.integers(0, 256, (4, 67)).astype(np.intp)
    got = np.empty((5, 67), dtype=np.uint64)
    want = np.empty((5, 67), dtype=np.uint64)
    tmp = np.empty((5, 67), dtype=np.uint64)
    tab_gather(tables, byte_idx, got, tmp)
    oracle.tab_gather(tables, byte_idx, want, tmp)
    if not np.array_equal(got, want):
        raise RuntimeError("numba tab_gather disagrees with numpy oracle")

    r = 101
    buckets = rng.integers(0, 16, 67).astype(np.intp)
    values = rng.integers(0, r, 67, dtype=np.int64)
    got_t = rng.integers(0, r, 16, dtype=np.int64)
    want_t = got_t.copy()
    scatter_add_mod(got_t, buckets, values, r)
    oracle.scatter_add_mod(want_t, buckets, values, r)
    if not np.array_equal(got_t, want_t):
        raise RuntimeError("numba scatter_add_mod disagrees with numpy oracle")

    weights = rng.integers(-1000, 1000, 67).astype(np.float64)
    if not np.array_equal(
        weighted_bincount(buckets, weights, 16),
        oracle.weighted_bincount(buckets, weights, 16),
    ):
        raise RuntimeError(
            "numba weighted_bincount disagrees with numpy oracle"
        )

    for mask in (np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64((1 << 17) - 1)):
        got = np.empty((5, 67), dtype=np.uint64)
        want = np.empty((5, 67), dtype=np.uint64)
        mix_lanes(seeds, keys, mask, got)
        oracle.mix_lanes(seeds, keys, mask, want)
        if not np.array_equal(got, want):
            raise RuntimeError("numba mix_lanes disagrees with numpy oracle")

    mult = seeds | np.uint64(1)
    got = np.empty((5, 67), dtype=np.uint64)
    want = np.empty((5, 67), dtype=np.uint64)
    mshift_lanes(mult, keys, np.uint64(32), got)
    oracle.mshift_lanes(mult, keys, np.uint64(32), want)
    if not np.array_equal(got, want):
        raise RuntimeError("numba mshift_lanes disagrees with numpy oracle")

    ka = np.unique(rng.integers(0, 50, 20, dtype=np.uint64))
    kb = np.unique(rng.integers(0, 50, 20, dtype=np.uint64))
    va = rng.integers(-(10**6), 10**6, ka.size, dtype=np.int64)
    vb = rng.integers(-(10**6), 10**6, kb.size, dtype=np.int64)
    gk, gv = merge_sorted_unique_sum(ka, va, kb, vb)
    wk, wv = oracle.merge_sorted_unique_sum(ka, va, kb, vb)
    if not (np.array_equal(gk, wk) and np.array_equal(gv, wv)):
        raise RuntimeError(
            "numba merge_sorted_unique_sum disagrees with numpy oracle"
        )
    gk, gv = merge_sorted_unique_xor(
        ka, va.view(np.uint64), kb, vb.view(np.uint64)
    )
    wk, wv = oracle.merge_sorted_unique_xor(
        ka, va.view(np.uint64), kb, vb.view(np.uint64)
    )
    if not (np.array_equal(gk, wk) and np.array_equal(gv, wv)):
        raise RuntimeError(
            "numba merge_sorted_unique_xor disagrees with numpy oracle"
        )

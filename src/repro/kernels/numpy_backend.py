"""Pure-numpy kernel tier: the portable oracle every other tier must match.

These are the exact vectorized loops the call sites used before the
kernel dispatch existed, factored behind the shared signature set (see
:data:`repro.kernels.dispatch.KERNEL_NAMES`).  The numba tier is
validated against this module at load time, and the parity test-suite
re-validates every kernel pair across dtypes and edge shapes.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import splitmix64_array

name = "numpy"


def tab_gather(
    tables: np.ndarray, byte_idx: np.ndarray, out: np.ndarray, tmp: np.ndarray
) -> None:
    """XOR-accumulate seed-major table gathers: ``out[t,i] = ⊕_j T_j[t, b_ji]``.

    ``tables`` is ``(num_tables, T, 256)`` uint64, ``byte_idx`` is
    ``(num_tables, w)`` intp with entries < 256, ``out``/``tmp`` are
    ``(T, w)`` uint64.  ``mode="clip"`` skips numpy's per-element bounds
    check without changing results (indices are bytes by construction).
    """
    np.take(tables[0], byte_idx[0], axis=1, out=tmp, mode="clip")
    out[:] = tmp
    for j in range(1, tables.shape[0]):
        np.take(tables[j], byte_idx[j], axis=1, out=tmp, mode="clip")
        out ^= tmp


def scatter_add_mod(
    table: np.ndarray, buckets: np.ndarray, values: np.ndarray, r: int
) -> None:
    """``table[buckets[i]] += values[i] (mod r)`` exactly, in place.

    Values are pre-reduced mod r (``0 <= v < r``); chunks are sized so a
    chunk's bucket sum stays below 2^52 and is therefore exact in the
    float64 arithmetic of ``np.bincount`` — the deferred-modulo scheme of
    §7.1 (one reduction mod r per chunk, not per element).
    """
    if values.size == 0:
        return
    chunk = max(1, (1 << 52) // max(int(r), 2))
    d = table.shape[0]
    for start in range(0, values.size, chunk):
        stop = start + chunk
        part = np.bincount(
            buckets[start:stop],
            weights=values[start:stop].astype(np.float64),
            minlength=d,
        ).astype(np.int64)
        table += part
        table %= r


def weighted_bincount(
    buckets: np.ndarray, weights: np.ndarray, minlength: int
) -> np.ndarray:
    """Float64 weighted bincount (exact while partial sums stay < 2^52)."""
    return np.bincount(buckets, weights=weights, minlength=minlength)


def mix_lanes(
    seeds: np.ndarray, keys: np.ndarray, mask: np.uint64, out: np.ndarray
) -> None:
    """Keyed-SplitMix lane block: ``out[t,i] = mix(keys[i] ^ seeds[t]) & mask``."""
    mixed = splitmix64_array(keys[None, :] ^ seeds[:, None])
    np.bitwise_and(mixed, mask, out=out)


def mshift_lanes(
    multipliers: np.ndarray,
    keys: np.ndarray,
    shift: np.uint64,
    out: np.ndarray,
) -> None:
    """Multiply-shift lane block: ``out[t,i] = (keys[i]·a_t mod 2^64) >> shift``."""
    with np.errstate(over="ignore"):
        product = keys[None, :] * multipliers[:, None]
    np.right_shift(product, shift, out=out)


def _merge_sorted_unique(keys_a, vals_a, keys_b, vals_b, xor: bool):
    # Both segments are sorted-unique by contract, so the union needs no
    # sort: rank each side's keys into the merged order with two
    # searchsorted passes and scatter (vs concat + np.unique, which
    # re-sorts elements the segments already ordered — the difference is
    # most of the streamed-compaction cost on duplicate-heavy feeds).
    if keys_a.size == 0:
        return keys_b, vals_b
    if keys_b.size == 0:
        return keys_a, vals_a
    pos = np.searchsorted(keys_a, keys_b)
    dup = (pos < keys_a.size) & (
        keys_a[np.minimum(pos, keys_a.size - 1)] == keys_b
    )
    merged_a_vals = vals_a.copy()
    if xor:
        merged_a_vals[pos[dup]] ^= vals_b[dup]
    else:
        merged_a_vals[pos[dup]] += vals_b[dup]
    fresh = ~dup
    keys_new = keys_b[fresh]
    total = keys_a.size + keys_new.size
    # Merged rank of a[i] is i + |{fresh b < a[i]}| (and symmetrically
    # for the fresh b keys; no ties remain between the two sides).
    rank_a = np.arange(keys_a.size, dtype=np.intp)
    rank_a += np.searchsorted(keys_new, keys_a)
    rank_b = np.arange(keys_new.size, dtype=np.intp) + pos[fresh]
    uk = np.empty(total, dtype=keys_a.dtype)
    out = np.empty(total, dtype=vals_a.dtype)
    uk[rank_a] = keys_a
    out[rank_a] = merged_a_vals
    uk[rank_b] = keys_new
    out[rank_b] = vals_b[fresh]
    return uk, out


def merge_sorted_unique_sum(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted-unique (uint64 keys, int64 sums) segments."""
    return _merge_sorted_unique(keys_a, vals_a, keys_b, vals_b, xor=False)


def merge_sorted_unique_xor(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted-unique (uint64 keys, uint64 xor-aggs) segments."""
    return _merge_sorted_unique(keys_a, vals_a, keys_b, vals_b, xor=True)

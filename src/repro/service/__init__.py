"""Always-on checked streaming service (daemon + chaos soak harness).

The paper's checkers verify one operation at a time; this package turns
them into an operable *service*: a long-lived daemon
(:class:`~repro.service.daemon.CheckedStreamService`) multiplexes many
concurrent tenant streams, each with its own windowed checker state,
bounded ingest queue with backpressure, settlement timeout/retry,
poison-chunk capture, and heal-in-place repair — plus a deterministic
chaos soak harness (:func:`~repro.service.chaos.run_soak`) that injects
the paper's Table 4/6 manipulators into live streams and audits every
window against analytic detection bounds and bit-identical repair.
"""

from repro.service.chaos import (
    KV_FAULTS,
    SEQ_FAULTS,
    ZIP_FAULTS,
    Op,
    OpChecker,
    SoakConfig,
    SoakReport,
    TenantChaos,
    TenantSoakReport,
    build_tenants,
    run_soak,
)
from repro.service.daemon import (
    BackpressureTimeout,
    CheckedStreamService,
    TenantCommGrid,
    TenantHandle,
    TenantResult,
)
from repro.service.tenant import (
    BACKPRESSURE_PAUSE,
    BACKPRESSURE_SHED,
    PoisonRecord,
    TenantConfig,
    TenantStats,
    TenantStatsView,
)
from repro.service.windows import (
    ENGINES,
    PoisonChunkError,
    default_config,
)

__all__ = [
    "BACKPRESSURE_PAUSE",
    "BACKPRESSURE_SHED",
    "BackpressureTimeout",
    "CheckedStreamService",
    "ENGINES",
    "KV_FAULTS",
    "Op",
    "OpChecker",
    "PoisonChunkError",
    "PoisonRecord",
    "SEQ_FAULTS",
    "SoakConfig",
    "SoakReport",
    "TenantChaos",
    "TenantCommGrid",
    "TenantConfig",
    "TenantHandle",
    "TenantResult",
    "TenantSoakReport",
    "TenantStats",
    "TenantStatsView",
    "ZIP_FAULTS",
    "build_tenants",
    "default_config",
    "run_soak",
]

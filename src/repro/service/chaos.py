"""Chaos soak harness for the checked streaming service.

Drives a :class:`~repro.service.daemon.CheckedStreamService` with many
concurrent tenants while injecting the paper's fault manipulators
(Table 4 for sum-aggregation ops, Table 6 for the zip fingerprint) into
live windows at random, then audits every settled window against
independently computed clean ground truth:

* a **transient** fault corrupts only the window's *first* execution —
  PR 8's heal-in-place repair must re-execute, re-settle, and restore a
  bit-identical output;
* a **persistent** fault corrupts *every* execution (the repair loop's
  ``recompute`` runs through the same faulty operation) — the window
  must exhaust its repair budget and land in quarantine;
* an **undetected corruption** is a window whose final verdict accepted
  but whose output differs from the clean expectation — per the paper's
  Fig. 3 / Fig. 5 analysis these must stay within the analytic failure
  bound (:func:`~repro.experiments.accuracy.detection_allowance`);
* a fault whose output still equals the clean expectation (e.g. an
  IncDec pair landing on one key) is a **benign no-op**, counted
  separately — it is not a checker miss.

Everything — chunk data, fault placement, manipulator draws — derives
from one root seed via :func:`~repro.util.rng.derive_seed`, so a soak
run is exactly replayable.

Per-op accounting follows the chaos-test idiom of service soak
frameworks: an :class:`OpChecker` per tenant accumulates success/failure
counts and response times, reported as success rate and latency figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.core.params import SumCheckConfig
from repro.core.zip_checker import MERSENNE31
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.repair import RepairPolicy
from repro.experiments.accuracy import detection_allowance
from repro.faults.manipulators import get_kv_manipulator, get_seq_manipulator
from repro.service.daemon import CheckedStreamService
from repro.service.tenant import TenantConfig
from repro.util.rng import default_generator, derive_seed

__all__ = [
    "KV_FAULTS",
    "Op",
    "OpChecker",
    "SEQ_FAULTS",
    "SoakConfig",
    "SoakReport",
    "TenantChaos",
    "TenantSoakReport",
    "ZIP_FAULTS",
    "run_soak",
]


class Op(str, Enum):
    """Checked operations the soak harness can exercise."""

    REDUCE_BY_KEY = "reduce_by_key"
    COUNT_BY_KEY = "count_by_key"
    SUM = "sum"
    ZIP = "zip"


#: Table 4 manipulators thrown at the sum-aggregation ops.
KV_FAULTS = ("Bitflip", "RandKey", "SwitchValues", "IncKey", "IncDec1", "IncDec2")
#: Table 6 manipulators thrown at the windowed sum (total-changing subset:
#: the scalar total cannot see sum-preserving permutation faults).
SEQ_FAULTS = ("Bitflip", "Increment", "Randomize")
#: Table 6 manipulators thrown at the zip fingerprint.
ZIP_FAULTS = ("Bitflip", "Increment", "Randomize", "Reset", "SetEqual")

_VALUE_BITS = 20  # clean values live in [0, 2^20)


class OpChecker:
    """Success/latency accounting for one tenant's op under chaos."""

    def __init__(self, op: Op):
        self.op = op
        self._succ = 0
        self._fail = 0
        self.rsp_times: list[float] = []

    def check_result(self, success: bool, rsp_time: float) -> None:
        if success:
            self._succ += 1
        else:
            self._fail += 1
        self.rsp_times.append(float(rsp_time))

    def total(self) -> int:
        return self._succ + self._fail

    def succ_rate(self) -> float:
        total = self.total()
        return 1.0 if total == 0 else self._succ / total

    def avg_rsp(self) -> float:
        return float(np.mean(self.rsp_times)) if self.rsp_times else 0.0

    def max_rsp(self) -> float:
        return max(self.rsp_times) if self.rsp_times else 0.0


@dataclass(frozen=True)
class FaultPlan:
    """One planned injection: which window, which manipulator, how sticky."""

    window: int
    manipulator: str
    persistent: bool


@dataclass
class SoakConfig:
    """Shape and chaos intensity of one soak run.

    ``extra_chaos_tenants`` appends always-faulting (rate 1.0, fully
    persistent) tenants *after* the first ``tenants`` — their seeds do
    not disturb the base tenants', so a run with extras is chunk-for-
    chunk identical on the base tenants to a run without (that is how
    the isolation benchmark compares latencies).
    """

    tenants: int = 8
    windows_per_tenant: int = 4
    chunks_per_window: int = 4
    chunk_size: int = 256
    key_domain: int = 64
    fault_rate: float = 0.3
    persistent_share: float = 0.25
    seed: int = 0
    check_iterations: int = 4
    ops: tuple[Op, ...] = (Op.REDUCE_BY_KEY, Op.SUM, Op.ZIP, Op.COUNT_BY_KEY)
    queue_capacity: int = 8
    extra_chaos_tenants: int = 0

    def check_config(self) -> SumCheckConfig:
        return SumCheckConfig(
            iterations=self.check_iterations, d=16, rhat=1 << 15
        )


class TenantChaos:
    """One tenant's deterministic chaos script plus its ground truth.

    Owns the clean chunk data (the producer side), the fault plan, the
    ``fault``/``reexecute`` hooks wired into the tenant's window engine,
    and the post-run audit.  The fault hook runs only in the tenant's
    worker thread; the execution counter that distinguishes a window's
    first execution from its repair re-executions needs no lock.
    """

    def __init__(
        self,
        name: str,
        op: Op,
        seed: int,
        soak: SoakConfig,
        fault_rate: float,
        persistent_share: float,
    ):
        self.name = name
        self.op = op
        self.seed = seed
        self.soak = soak
        self.checker = OpChecker(op)
        self._exec_count: dict[int, int] = {}
        self._chunks = [
            [self._make_chunk(w, c) for c in range(soak.chunks_per_window)]
            for w in range(soak.windows_per_tenant)
        ]
        self.plans: dict[int, FaultPlan] = {}
        roster = self._roster()
        for w in range(soak.windows_per_tenant):
            rng = default_generator(derive_seed(seed, "fault-plan", w))
            if float(rng.random()) >= fault_rate:
                continue
            manip = roster[int(rng.integers(len(roster)))]
            persistent = float(rng.random()) < persistent_share
            self.plans[w] = FaultPlan(w, manip, persistent)
        self._manips = {name: self._instantiate(name) for name in roster}

    # -- construction ------------------------------------------------------
    def _roster(self) -> tuple[str, ...]:
        if self.op in (Op.REDUCE_BY_KEY, Op.COUNT_BY_KEY):
            return KV_FAULTS
        if self.op is Op.SUM:
            return SEQ_FAULTS
        return ZIP_FAULTS

    def _instantiate(self, name: str):
        if self.op in (Op.REDUCE_BY_KEY, Op.COUNT_BY_KEY):
            if name == "RandKey":
                return get_kv_manipulator(name, key_domain=self.soak.key_domain)
            return get_kv_manipulator(name)
        if name == "Randomize":
            return get_seq_manipulator(name, universe=1 << _VALUE_BITS)
        return get_seq_manipulator(name)

    def _make_chunk(self, w: int, c: int):
        rng = default_generator(derive_seed(self.seed, "data", w, c))
        n = self.soak.chunk_size
        if self.op is Op.REDUCE_BY_KEY:
            return (
                rng.integers(0, self.soak.key_domain, n).astype(np.uint64),
                rng.integers(0, 1 << _VALUE_BITS, n).astype(np.int64),
            )
        if self.op is Op.COUNT_BY_KEY:
            return rng.integers(0, self.soak.key_domain, n).astype(np.uint64)
        if self.op is Op.SUM:
            return rng.integers(0, 1 << _VALUE_BITS, n).astype(np.int64)
        return (
            rng.integers(0, 1 << _VALUE_BITS, n).astype(np.int64),
            rng.integers(0, 1 << _VALUE_BITS, n).astype(np.int64),
        )

    def window_chunks(self, w: int) -> list:
        """The chunks the producer submits for window ``w``."""
        return list(self._chunks[w])

    # -- service wiring ----------------------------------------------------
    def tenant_config(self) -> TenantConfig:
        return TenantConfig(
            op=self.op.value,
            config=self.soak.check_config(),
            seed=self.seed,
            chunks_per_window=self.soak.chunks_per_window,
            queue_capacity=self.soak.queue_capacity,
            reexecute=self._reexecute,
            repair=RepairPolicy(),
            fault=self._fault_hook(),
        )

    def _corruption(self, window: int):
        """The manipulation to apply now, or None (advances the counter)."""
        plan = self.plans.get(window)
        if plan is None:
            return None
        count = self._exec_count.get(window, 0)
        self._exec_count[window] = count + 1
        if not plan.persistent and count >= 1:
            return None
        return plan, derive_seed(self.seed, "manip", window, count)

    def _fault_hook(self):
        if self.op in (Op.REDUCE_BY_KEY, Op.COUNT_BY_KEY):

            def fault(window, keys, values):
                hit = self._corruption(window)
                if hit is None or keys.size == 0:
                    return keys, values
                plan, rng_seed = hit
                m = self._manips[plan.manipulator].apply(rng_seed, keys, values)
                return m.keys, m.values

            return fault
        if self.op is Op.SUM:

            def fault(window, values):
                hit = self._corruption(window)
                if hit is None or values.size == 0:
                    return values
                plan, rng_seed = hit
                m = self._manips[plan.manipulator].apply(
                    rng_seed, values.astype(np.uint64)
                )
                return m.sequence.astype(np.int64)

            return fault

        def fault(window, first, second):
            hit = self._corruption(window)
            if hit is None or first.size == 0:
                return first, second
            plan, rng_seed = hit
            m = self._manips[plan.manipulator].apply(
                rng_seed, first.astype(np.uint64)
            )
            return m.sequence.astype(np.int64), second

        return fault

    def _reexecute(self, window: int, key_ranges):
        """Clean chunks for the repair loop (shape depends on the op)."""
        chunks = self._chunks[window]
        if self.op is Op.REDUCE_BY_KEY:
            return list(chunks)
        if self.op is Op.COUNT_BY_KEY:
            return [
                (k, np.ones(k.shape, dtype=np.int64)) for k in chunks
            ]
        if self.op is Op.SUM:
            return list(chunks)
        return [c[0] for c in chunks], [c[1] for c in chunks]

    # -- ground truth ------------------------------------------------------
    def expected(self, w: int):
        chunks = self._chunks[w]
        if self.op is Op.REDUCE_BY_KEY:
            keys = np.concatenate([c[0] for c in chunks])
            values = np.concatenate([c[1] for c in chunks])
            return reduce_by_key(None, keys, values, None)
        if self.op is Op.COUNT_BY_KEY:
            keys = np.concatenate(list(chunks))
            return reduce_by_key(
                None, keys, np.ones(keys.shape, dtype=np.int64), None
            )
        if self.op is Op.SUM:
            return int(sum(int(np.sum(c, dtype=np.int64)) for c in chunks))
        return (
            np.concatenate([c[0] for c in chunks]),
            np.concatenate([c[1] for c in chunks]),
        )

    @staticmethod
    def _equal(output, expected) -> bool:
        if output is None:
            return False
        if isinstance(expected, tuple):
            return all(
                np.array_equal(np.asarray(o), np.asarray(e))
                for o, e in zip(output, expected)
            )
        return int(output) == int(expected)

    def delta(self) -> float:
        """Analytic per-window miss probability for this tenant's checker."""
        if self.op is Op.ZIP:
            elements = self.soak.chunks_per_window * self.soak.chunk_size
            return float(
                (elements / MERSENNE31) ** 2
            )
        return float(self.soak.check_config().failure_bound)

    # -- audit -------------------------------------------------------------
    def evaluate(self, result) -> "TenantSoakReport":
        """Audit one tenant's settled windows against ground truth."""
        injected = detected = repaired = quarantined = 0
        undetected = benign = 0
        repairs_identical = True
        mismatched: list[int] = []
        latencies = result.stats.settle_latencies
        for w, record in enumerate(result.window_history):
            plan = self.plans.get(w)
            output = result.outputs[w] if w < len(result.outputs) else None
            matches = self._equal(output, self.expected(w))
            was_detected = (
                record.repair_attempts > 0
                or record.quarantined
                or not record.accepted
            )
            rsp = latencies[w] if w < len(latencies) else 0.0
            self.checker.check_result(record.accepted and matches, rsp)
            if plan is not None:
                injected += 1
                if was_detected:
                    detected += 1
                elif matches:
                    benign += 1
            if record.repaired:
                repaired += 1
                if not matches:
                    repairs_identical = False
            if record.quarantined:
                quarantined += 1
            if record.accepted and not matches:
                undetected += 1
                mismatched.append(w)
        return TenantSoakReport(
            name=self.name,
            op=self.op,
            windows=len(result.window_history),
            injected=injected,
            detected=detected,
            repaired=repaired,
            quarantined=quarantined,
            undetected=undetected,
            benign_no_ops=benign,
            delta=self.delta(),
            allowance=detection_allowance(injected, self.delta()),
            succ_rate=self.checker.succ_rate(),
            rsp_avg=self.checker.avg_rsp(),
            rsp_max=self.checker.max_rsp(),
            repairs_bit_identical=repairs_identical,
            mismatched_windows=mismatched,
            degraded=result.stats.degraded,
            error=result.error,
        )


@dataclass
class TenantSoakReport:
    """One tenant's audited soak outcome."""

    name: str
    op: Op
    windows: int
    injected: int
    detected: int
    repaired: int
    quarantined: int
    undetected: int
    benign_no_ops: int
    delta: float
    allowance: int
    succ_rate: float
    rsp_avg: float
    rsp_max: float
    repairs_bit_identical: bool
    mismatched_windows: list[int] = field(default_factory=list)
    degraded: bool = False
    error: str | None = None

    @property
    def within_allowance(self) -> bool:
        """Undetected corruptions stay inside the analytic failure bound."""
        return self.undetected <= self.allowance

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "op": self.op.value,
            "windows": self.windows,
            "injected": self.injected,
            "detected": self.detected,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "undetected": self.undetected,
            "benign_no_ops": self.benign_no_ops,
            "delta": self.delta,
            "allowance": self.allowance,
            "succ_rate": self.succ_rate,
            "rsp_avg": self.rsp_avg,
            "rsp_max": self.rsp_max,
            "repairs_bit_identical": self.repairs_bit_identical,
            "within_allowance": self.within_allowance,
            "degraded": self.degraded,
            "error": self.error,
        }


@dataclass
class SoakReport:
    """Whole-run audit: per-tenant reports plus run-level verdicts."""

    tenants: list[TenantSoakReport]
    elapsed_seconds: float
    service_report: dict

    @property
    def windows(self) -> int:
        return sum(t.windows for t in self.tenants)

    @property
    def injected(self) -> int:
        return sum(t.injected for t in self.tenants)

    @property
    def detected(self) -> int:
        return sum(t.detected for t in self.tenants)

    @property
    def repaired(self) -> int:
        return sum(t.repaired for t in self.tenants)

    @property
    def quarantined(self) -> int:
        return sum(t.quarantined for t in self.tenants)

    @property
    def undetected(self) -> int:
        return sum(t.undetected for t in self.tenants)

    @property
    def within_allowance(self) -> bool:
        return all(t.within_allowance for t in self.tenants)

    @property
    def repairs_bit_identical(self) -> bool:
        return all(t.repairs_bit_identical for t in self.tenants)

    def table(self) -> str:
        """Per-tenant report table (the demo's final output)."""
        header = (
            f"{'tenant':<14} {'op':<14} {'win':>4} {'inj':>4} {'det':>4} "
            f"{'rep':>4} {'quar':>4} {'miss':>4} {'succ%':>7} "
            f"{'rsp avg':>8} {'rsp max':>8} {'degr':>5}"
        )
        lines = [header, "-" * len(header)]
        for t in self.tenants:
            lines.append(
                f"{t.name:<14} {t.op.value:<14} {t.windows:>4} {t.injected:>4} "
                f"{t.detected:>4} {t.repaired:>4} {t.quarantined:>4} "
                f"{t.undetected:>4} {100.0 * t.succ_rate:>6.1f}% "
                f"{t.rsp_avg:>7.3f}s {t.rsp_max:>7.3f}s "
                f"{'yes' if t.degraded else 'no':>5}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"totals: {self.windows} windows, {self.injected} injected, "
            f"{self.detected} detected, {self.repaired} repaired, "
            f"{self.quarantined} quarantined, {self.undetected} undetected "
            f"(allowance ok: {self.within_allowance}; repairs bit-identical: "
            f"{self.repairs_bit_identical}) in {self.elapsed_seconds:.2f}s"
        )
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "tenants": [t.to_payload() for t in self.tenants],
            "windows": self.windows,
            "injected": self.injected,
            "detected": self.detected,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "undetected": self.undetected,
            "within_allowance": self.within_allowance,
            "repairs_bit_identical": self.repairs_bit_identical,
            "elapsed_seconds": self.elapsed_seconds,
            "service": self.service_report,
        }


def build_tenants(cfg: SoakConfig) -> list[TenantChaos]:
    """The run's tenant scripts; extras (always-faulting) come last."""
    tenants = []
    for t in range(cfg.tenants + cfg.extra_chaos_tenants):
        extra = t >= cfg.tenants
        op = cfg.ops[t % len(cfg.ops)]
        tenants.append(
            TenantChaos(
                name=(f"chaos-{t}" if extra else f"tenant-{t}"),
                op=op,
                seed=derive_seed(cfg.seed, "tenant", t),
                soak=cfg,
                fault_rate=1.0 if extra else cfg.fault_rate,
                persistent_share=1.0 if extra else cfg.persistent_share,
            )
        )
    return tenants


def run_soak(cfg: SoakConfig) -> SoakReport:
    """Run one deterministic chaos soak and audit every window."""
    tenants = build_tenants(cfg)
    service = CheckedStreamService()
    handles = {}
    for tc in tenants:
        handles[tc.name] = service.register(tc.name, tc.tenant_config())
    start = time.perf_counter()
    # Window-major round-robin feed: every tenant's stream is live at
    # once, which is the point of the multiplexing soak.
    for w in range(cfg.windows_per_tenant):
        for tc in tenants:
            for chunk in tc.window_chunks(w):
                handles[tc.name].submit(chunk)
    for tc in tenants:
        handles[tc.name].close()
    service.drain()
    elapsed = time.perf_counter() - start
    reports = [tc.evaluate(service.result(tc.name)) for tc in tenants]
    return SoakReport(
        tenants=reports,
        elapsed_seconds=elapsed,
        service_report=service.report(),
    )

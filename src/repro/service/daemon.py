"""Always-on checked streaming service: multi-tenant daemon.

:class:`CheckedStreamService` multiplexes many concurrent tenant streams.
Each registered tenant gets a bounded ingest queue, a dedicated worker
thread, and its own windowed checker state; the worker replays the
pull-based streaming loop (fill a window, settle it collectively, repeat)
on top of the shared ``settle_*_window`` engines, so service tenants get
the paper's checkers — plus adaptive escalation, heal-in-place repair,
and quarantine — with *zero* divergence from the batch/streaming paths.

Robustness properties, each load-bearing for the soak harness:

* **Bounded ingest + backpressure** — ``submit`` on a full queue either
  blocks the producer (``"pause"``; optional timeout raises
  :class:`BackpressureTimeout`) or sheds the chunk with a record
  (``"shed"``), per tenant.
* **Settlement timeout and bounded retry** — an attempt that raises or
  overruns ``settle_timeout`` is retried under a fresh derived seed
  after exponential backoff; exhaustion quarantines the window and marks
  the tenant degraded.  The daemon keeps running.  For distributed
  tenants every attempt ends in a *retry-consensus* allreduce, so all
  ranks retry (or give up) together under the same derived seed.
* **Poison-chunk capture** — a malformed chunk becomes a
  :class:`~repro.service.tenant.PoisonRecord` and degrades only its own
  tenant; it never reaches a checker and never crashes a worker.
* **Hard tenant isolation** — no shared mutable state between tenants
  except the service-wide :class:`~repro.dataflow.pipeline.StatsAccumulator`
  (lock-guarded by construction).  Distributed tenants get *private*
  networks via :class:`TenantCommGrid`, so one tenant's collectives can
  never interleave with another's.
* **Fatal-error containment** — an unexpected worker error records the
  tenant as failed, then drains its queue (so paused producers unblock)
  until close; other tenants are unaffected.

Distributed use: build one :class:`TenantCommGrid` for the PE count,
then one service per rank with ``comm_factory=grid.factory(rank)`` and
register each tenant on every rank (same name, same config) — the per-
tenant workers then run the settle collectives in lockstep on the
tenant's private fabric.  The settlement *retry* loop reaches consensus
after every attempt (one extra ``allreduce`` per window — O(α log p) in
the cost model), so multi-PE tenants may set a finite ``settle_timeout``:
a timeout on any rank makes *all* ranks retry in lockstep under the same
derived seed, and retry exhaustion is likewise uniform.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

from repro.comm import Comm, Network, ops, resolve_backend
from repro.core.base import CheckResult
from repro.dataflow.pipeline import CheckedRunStats, StatsAccumulator
from repro.dataflow.repair import QuarantinedWindow
from repro.dataflow.streaming import WindowRecord, window_seed
from repro.service.tenant import (
    BACKPRESSURE_SHED,
    PoisonRecord,
    TenantConfig,
    TenantStats,
    TenantStatsView,
)
from repro.service.windows import ENGINES, PoisonChunkError
from repro.util.rng import derive_seed

__all__ = [
    "BackpressureTimeout",
    "CheckedStreamService",
    "TenantCommGrid",
    "TenantHandle",
    "TenantResult",
]

#: Ingest-queue sentinel: the tenant's stream is closed.
_CLOSE = object()


class BackpressureTimeout(RuntimeError):
    """A paused producer's ``submit`` timed out on a full ingest queue."""


class _SettleTimeout(RuntimeError):
    """A settlement attempt overran the tenant's ``settle_timeout``."""


class TenantCommGrid:
    """Private per-tenant communication fabrics for distributed tenants.

    One fabric per tenant name, created lazily and shared by all ranks —
    so every tenant's collectives run on their own channel and tenants can
    never corrupt each other's messages (the fabrics are untagged; sharing
    one across concurrent tenant workers would interleave payloads).

    The transport is pluggable like :class:`~repro.comm.Context`:
    ``backend="threads"`` (default) hands out mailbox
    :class:`~repro.comm.Network` comms; ``"processes"`` hands out
    shared-memory ring endpoints (:class:`~repro.comm.proc_backend.ShmFabric`
    per tenant — usable both by worker threads in one service process and
    by service processes forked around the grid); ``"mpi"`` duplicates a
    private MPI communicator per tenant (sticky fallback to threads when
    mpi4py is absent).  Call :meth:`close` when done with a non-thread
    grid to release the fabrics.
    """

    def __init__(self, size: int, backend: str | None = None):
        self.size = size
        self.backend = resolve_backend(backend)
        if self.backend == "mpi":
            from repro.comm import mpi_backend

            if not mpi_backend.mpi_available():
                mpi_backend.warn_fallback_once()
                self.backend = "threads"
        self._lock = threading.Lock()
        self._networks: dict[str, Network] = {}
        self._fabrics: dict[str, object] = {}
        self._endpoints: dict[tuple[str, int], object] = {}
        self._mpi_comms: dict[str, object] = {}

    def network(self, name: str) -> Network:
        """The tenant's mailbox network (thread backend only)."""
        if self.backend != "threads":
            raise RuntimeError(
                f"TenantCommGrid(backend={self.backend!r}) has no mailbox "
                f"networks; use comm()/factory()"
            )
        with self._lock:
            net = self._networks.get(name)
            if net is None:
                net = Network(self.size)
                self._networks[name] = net
            return net

    def comm(self, name: str, rank: int) -> Comm:
        if self.backend == "threads":
            return Comm(rank, self.network(name))
        if self.backend == "processes":
            from repro.comm.proc_backend import ShmEndpoint, ShmFabric

            with self._lock:
                endpoint = self._endpoints.get((name, rank))
                if endpoint is None:
                    fabric = self._fabrics.get(name)
                    if fabric is None:
                        fabric = ShmFabric.create(self.size)
                        self._fabrics[name] = fabric
                    endpoint = ShmEndpoint(rank, fabric)
                    self._endpoints[(name, rank)] = endpoint
            return Comm.from_endpoint(endpoint)
        from repro.comm.mpi_backend import MpiEndpoint, _try_mpi

        MPI = _try_mpi()
        with self._lock:
            # Dup() is collective: every rank's grid must request tenants
            # in the same order (registration order, as documented above).
            mpi_comm = self._mpi_comms.get(name)
            if mpi_comm is None:
                mpi_comm = MPI.COMM_WORLD.Dup()
                self._mpi_comms[name] = mpi_comm
        return Comm.from_endpoint(MpiEndpoint(mpi_comm))

    def factory(self, rank: int):
        """The ``comm_factory`` for one rank's service instance."""

        def _factory(name: str) -> Comm:
            return self.comm(name, rank)

        return _factory

    def close(self) -> None:
        """Release non-thread fabrics (shared-memory blocks, MPI comms)."""
        with self._lock:
            for fabric in self._fabrics.values():
                fabric.destroy()
            self._fabrics.clear()
            self._endpoints.clear()
            for mpi_comm in self._mpi_comms.values():
                mpi_comm.Free()
            self._mpi_comms.clear()


@dataclass
class TenantResult:
    """Snapshot of one tenant's settled output and verdict history."""

    name: str
    outputs: list
    verdicts: list[CheckResult]
    window_history: list[WindowRecord]
    quarantined: list[QuarantinedWindow]
    poisons: list[PoisonRecord]
    stats: TenantStatsView
    error: str | None = None

    @property
    def accepted(self) -> bool:
        """True iff every settled window's final verdict accepted."""
        return self.error is None and all(v.accepted for v in self.verdicts)


class _Tenant:
    """Internal per-tenant state; all list appends under ``lock``."""

    def __init__(self, name: str, cfg: TenantConfig):
        self.name = name
        self.cfg = cfg
        self.engine = ENGINES[cfg.op](cfg)
        self.queue: queue.Queue = queue.Queue(maxsize=cfg.queue_capacity)
        self.stats = TenantStats()
        self.lock = threading.Lock()
        self.outputs: list = []
        self.verdicts: list[CheckResult] = []
        self.history: list[WindowRecord] = []
        self.quarantined: list[QuarantinedWindow] = []
        self.poisons: list[PoisonRecord] = []
        self.error: str | None = None
        self.closed = False
        self.done = threading.Event()
        self.thread: threading.Thread | None = None


class TenantHandle:
    """Producer-side handle for one registered tenant."""

    def __init__(self, service: "CheckedStreamService", name: str):
        self._service = service
        self.name = name

    def submit(self, chunk, timeout: float | None = None) -> bool:
        return self._service.submit(self.name, chunk, timeout=timeout)

    def close(self) -> None:
        self._service.close_tenant(self.name)

    def drain(self, timeout: float | None = None) -> bool:
        return self._service.drain(self.name, timeout=timeout)

    def stats(self) -> TenantStatsView:
        return self._service.stats(self.name)

    def result(self) -> TenantResult:
        return self._service.result(self.name)


class CheckedStreamService:
    """Long-lived daemon multiplexing independently checked tenant streams.

    ``comm_factory(name)`` (optional) returns the per-tenant ``comm``
    endpoint for this service instance's rank; ``None`` runs every
    tenant sequentially (single PE).  Usable as a context manager —
    exiting closes and joins every tenant.
    """

    def __init__(self, comm_factory=None):
        self._comm_factory = comm_factory
        self._lock = threading.Lock()
        self._tenants: dict[str, _Tenant] = {}
        self._accum = StatsAccumulator()

    # -- lifecycle ---------------------------------------------------------
    def register(self, name: str, cfg: TenantConfig) -> TenantHandle:
        """Register a tenant and start its worker thread."""
        if cfg.op not in ENGINES:
            raise ValueError(
                f"unknown op {cfg.op!r}; available: {sorted(ENGINES)}"
            )
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            tenant = _Tenant(name, cfg)
            self._tenants[name] = tenant
        tenant.thread = threading.Thread(
            target=self._worker,
            args=(tenant,),
            name=f"tenant-{name}",
            daemon=True,
        )
        tenant.thread.start()
        return TenantHandle(self, name)

    def close_tenant(self, name: str) -> None:
        """Close a tenant's stream; its worker settles the final window."""
        tenant = self._get(name)
        with tenant.lock:
            if tenant.closed:
                return
            tenant.closed = True
        tenant.queue.put(_CLOSE)

    def drain(self, name: str | None = None, timeout: float | None = None) -> bool:
        """Wait until the named tenant (or all) finished settling."""
        if name is not None:
            return self._get(name).done.wait(timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        for tenant in list(self._tenants.values()):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not tenant.done.wait(timeout=remaining):
                return False
        return True

    def shutdown(self, timeout: float | None = None) -> bool:
        """Close every tenant, wait for the workers, report completion."""
        for name in list(self._tenants):
            self.close_tenant(name)
        ok = self.drain(timeout=timeout)
        for tenant in list(self._tenants.values()):
            if tenant.thread is not None:
                tenant.thread.join(timeout=1.0)
        return ok

    def __enter__(self) -> "CheckedStreamService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- ingest ------------------------------------------------------------
    def submit(self, name: str, chunk, timeout: float | None = None) -> bool:
        """Offer one chunk to a tenant's ingest queue.

        Returns True when the chunk was enqueued; under the ``"shed"``
        policy a full queue drops the chunk, records the shed, and
        returns False.  Under ``"pause"`` a full queue blocks (bounded by
        ``timeout`` when given; :class:`BackpressureTimeout` on expiry).
        """
        tenant = self._get(name)
        if tenant.closed:
            raise RuntimeError(f"tenant {name!r} is closed")
        tenant.stats.record_submitted()
        if tenant.cfg.backpressure == BACKPRESSURE_SHED:
            try:
                tenant.queue.put_nowait(chunk)
            except queue.Full:
                tenant.stats.record_shed(self._safe_elements(tenant, chunk))
                return False
            return True
        try:
            tenant.queue.put(chunk, timeout=timeout)
        except queue.Full:
            raise BackpressureTimeout(
                f"tenant {name!r}: ingest queue full for {timeout:.3f}s"
            ) from None
        return True

    @staticmethod
    def _safe_elements(tenant: _Tenant, chunk) -> int:
        try:
            return tenant.engine.elements(tenant.engine.validate(chunk))
        except Exception:  # noqa: BLE001 - shed accounting is best-effort
            return 0

    # -- introspection -----------------------------------------------------
    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def stats(self, name: str) -> TenantStatsView:
        return self._get(name).stats.snapshot()

    def result(self, name: str) -> TenantResult:
        tenant = self._get(name)
        with tenant.lock:
            return TenantResult(
                name=name,
                outputs=list(tenant.outputs),
                verdicts=list(tenant.verdicts),
                window_history=list(tenant.history),
                quarantined=list(tenant.quarantined),
                poisons=list(tenant.poisons),
                stats=tenant.stats.snapshot(),
                error=tenant.error,
            )

    def report(self) -> dict:
        """Per-tenant accounting (JSON-ready), keyed by tenant name."""
        out = {}
        for name in self.tenants():
            tenant = self._get(name)
            entry = tenant.stats.snapshot().as_dict()
            entry["op"] = tenant.cfg.op
            entry["error"] = tenant.error
            out[name] = entry
        return out

    def run_stats(self) -> CheckedRunStats:
        """Service-wide merged window stats across every tenant."""
        return self._accum.snapshot()

    def _get(self, name: str) -> _Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise ValueError(f"unknown tenant {name!r}")
        return tenant

    # -- worker ------------------------------------------------------------
    def _worker(self, tenant: _Tenant) -> None:
        comm = (
            self._comm_factory(tenant.name)
            if self._comm_factory is not None
            else None
        )
        try:
            w = 0
            closed = False
            chunk_index = 0
            while True:
                chunks = []
                while len(chunks) < tenant.cfg.chunks_per_window and not closed:
                    item = tenant.queue.get()
                    if item is _CLOSE:
                        closed = True
                        break
                    try:
                        chunk = tenant.engine.validate(item)
                    except PoisonChunkError as exc:
                        with tenant.lock:
                            tenant.poisons.append(
                                PoisonRecord(
                                    window=w,
                                    chunk=chunk_index,
                                    error=str(exc),
                                )
                            )
                        tenant.stats.record_poison()
                    else:
                        chunks.append(chunk)
                        tenant.stats.record_ingested(
                            1, tenant.engine.elements(chunk)
                        )
                    chunk_index += 1
                if comm is not None:
                    # Lockstep liveness: settle (possibly empty) windows
                    # while any PE still has data, exactly as the pull-
                    # based streaming loop does.
                    live = bool(
                        comm.allreduce(int(bool(chunks)), op=ops.BOR)
                    )
                else:
                    live = bool(chunks)
                if not live:
                    break
                self._settle_window(tenant, comm, w, chunks)
                w += 1
        except Exception as exc:  # noqa: BLE001 - fatal containment boundary
            with tenant.lock:
                tenant.error = f"{type(exc).__name__}: {exc}"
            tenant.stats.mark_degraded()
            self._drain_after_failure(tenant)
        finally:
            tenant.done.set()

    @staticmethod
    def _drain_after_failure(tenant: _Tenant) -> None:
        """Keep consuming (and shedding) after a fatal worker error.

        Paused producers must never deadlock on a dead tenant: the
        queue keeps draining, every chunk recorded as shed, until the
        close sentinel arrives.
        """
        while True:
            item = tenant.queue.get()
            if item is _CLOSE:
                break
            tenant.stats.record_shed()

    def _settle_window(self, tenant: _Tenant, comm, w: int, chunks) -> None:
        cfg = tenant.cfg
        base_seed = window_seed(cfg.seed, w)
        start = time.perf_counter()
        attempt = 0
        while True:
            seed_w = (
                base_seed
                if attempt == 0
                else derive_seed(base_seed, "settle-retry", attempt)
            )
            t0 = time.perf_counter()
            failure: Exception | None = None
            try:
                output, verdict, stats_w, record, quarantine = (
                    tenant.engine.settle_window(comm, w, seed_w, chunks)
                )
                elapsed = time.perf_counter() - t0
                if (
                    cfg.settle_timeout is not None
                    and elapsed > cfg.settle_timeout
                ):
                    raise _SettleTimeout(
                        f"window {w} settlement took {elapsed:.3f}s "
                        f"(budget {cfg.settle_timeout:.3f}s)"
                    )
            except Exception as exc:  # noqa: BLE001 - retry boundary
                failure = exc
            # Retry consensus (ROADMAP PR 9 follow-up (b)): one extra
            # allreduce per attempt so every rank of a distributed tenant
            # learns whether *any* rank wants a retry, and all of them
            # re-settle together under the same derived seed.  The
            # consensus point sits after the settle collectives complete,
            # so it covers post-settle failures — ``settle_timeout``
            # overruns above all — on every rank symmetrically; a rank
            # wedged *inside* a collective still ends in the transport
            # timeout and fatal containment, as before.
            if comm is not None:
                want_retry = comm.allreduce(int(failure is not None), op=ops.MAX)
            else:
                want_retry = int(failure is not None)
            if not want_retry:
                break
            if attempt >= cfg.settle_retries:
                if failure is not None:
                    error = f"{type(failure).__name__}: {failure}"
                else:
                    error = "peer rank exhausted settle retries"
                verdict = CheckResult(
                    accepted=False,
                    checker="service-settle-failure",
                    details={
                        "error": error,
                        "attempts": attempt + 1,
                    },
                )
                record = WindowRecord(
                    window=w,
                    verdict=verdict,
                    accepted=False,
                    seed=int(base_seed),
                    seeds_used=[int(base_seed)],
                    quarantined=True,
                )
                quarantine = QuarantinedWindow(
                    window=w,
                    attempts=attempt + 1,
                    report=None,
                    verdicts=[verdict],
                )
                stats_w = CheckedRunStats(
                    operation_seconds=0.0,
                    checker_seconds=0.0,
                    windows=1,
                    quarantined_windows=1,
                )
                output = None
                tenant.stats.record_settle_failure()
                break
            tenant.stats.record_settle_retry()
            time.sleep(cfg.retry_backoff * (2**attempt))
            attempt += 1
        latency = time.perf_counter() - start
        with tenant.lock:
            if cfg.keep_outputs:
                tenant.outputs.append(output)
            tenant.verdicts.append(verdict)
            tenant.history.append(record)
            if quarantine is not None:
                tenant.quarantined.append(quarantine)
        if quarantine is not None:
            tenant.stats.mark_degraded()
        tenant.stats.record_window(record, stats_w, latency)
        self._accum.add(stats_w)

"""Per-tenant configuration and accounting for the checked service.

A *tenant* is one logical stream of a multiplexed
:class:`~repro.service.daemon.CheckedStreamService`: it owns its checked
operation, its windowed checker state, its bounded ingest queue, and its
accounting.  Nothing here is shared between tenants — isolation is the
design, not an optimization.

Backpressure policies (``TenantConfig.backpressure``):

* ``"pause"`` — a full ingest queue blocks the producer's ``submit`` until
  the tenant's worker drains a slot (backpressure propagates upstream);
* ``"shed"`` — a full queue drops the chunk immediately and records the
  shed (``chunks_shed`` / ``elements_shed``), never blocking the producer.

:class:`TenantStats` is the mutable, lock-guarded accounting record the
worker thread writes and any thread may snapshot; a snapshot is an
immutable :class:`TenantStatsView` with the derived figures (success rate,
settle-latency percentiles, check-overhead ratio) the service reports.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.params import SumCheckConfig
from repro.dataflow.pipeline import AdaptiveCheckPolicy, CheckedRunStats
from repro.dataflow.repair import RepairPolicy

__all__ = [
    "BACKPRESSURE_PAUSE",
    "BACKPRESSURE_SHED",
    "PoisonRecord",
    "TenantConfig",
    "TenantStats",
    "TenantStatsView",
]

#: Block the producer while the tenant's ingest queue is full.
BACKPRESSURE_PAUSE = "pause"
#: Drop (and record) chunks while the tenant's ingest queue is full.
BACKPRESSURE_SHED = "shed"

_BACKPRESSURE_POLICIES = (BACKPRESSURE_PAUSE, BACKPRESSURE_SHED)


@dataclass
class TenantConfig:
    """One tenant's operation, window, queue, and robustness knobs.

    ``op`` selects the checked operation (``"reduce_by_key"``,
    ``"count_by_key"``, ``"sum"``, or ``"zip"``); the chunk shape a
    tenant submits follows the op (see
    :mod:`repro.service.windows`).  ``reexecute``/``repair`` wire the
    window heal path exactly as on the streaming DIAs; ``fault`` is the
    chaos-injection seam forwarded to the window settle functions.

    ``settle_timeout`` (seconds of wall time for one settlement attempt,
    ``None`` = unbounded) and ``settle_retries``/``retry_backoff`` bound
    the settlement retry loop: an attempt that raises or overruns the
    budget is retried under a fresh derived seed after an exponential
    backoff, and a window that exhausts its retries is quarantined with
    the tenant marked degraded.  Distributed tenants may set a finite
    ``settle_timeout`` too: every attempt ends in a retry-consensus
    allreduce, so all ranks retry and exhaust in lockstep (see
    :mod:`repro.service.daemon`).
    """

    op: str
    config: SumCheckConfig | None = None
    seed: int = 0
    chunks_per_window: int = 8
    queue_capacity: int = 64
    backpressure: str = BACKPRESSURE_PAUSE
    policy: AdaptiveCheckPolicy | None = None
    partitioner: Callable | None = None
    keep_outputs: bool = True
    reexecute: Callable | None = None
    repair: RepairPolicy | None = None
    fault: Callable | None = None
    iterations: int = 2
    settle_timeout: float | None = None
    settle_retries: int = 2
    retry_backoff: float = 0.01

    def __post_init__(self):
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"available: {_BACKPRESSURE_POLICIES}"
            )
        if self.chunks_per_window < 1:
            raise ValueError(
                f"chunks_per_window must be >= 1, got {self.chunks_per_window}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.settle_retries < 0:
            raise ValueError(
                f"settle_retries must be >= 0, got {self.settle_retries}"
            )


@dataclass
class PoisonRecord:
    """One malformed chunk captured (not crashed on) by a tenant worker."""

    window: int
    chunk: int
    error: str


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


@dataclass(frozen=True)
class TenantStatsView:
    """Immutable snapshot of one tenant's accounting.

    ``success_rate`` counts windows whose *final* verdict accepted
    (healed windows count as successes — that is the point of repair);
    latency percentiles are over per-window settle latencies (first
    dequeue of the window to final verdict, repairs included);
    ``check_overhead_ratio`` is the merged
    :attr:`CheckedRunStats.overhead_ratio` over the tenant's windows.
    """

    chunks_submitted: int
    chunks_ingested: int
    chunks_shed: int
    elements_ingested: int
    elements_shed: int
    poison_chunks: int
    windows_settled: int
    windows_accepted: int
    windows_rejected: int
    windows_repaired: int
    windows_quarantined: int
    settle_retries: int
    settle_failures: int
    degraded: bool
    run: CheckedRunStats
    settle_latencies: tuple[float, ...] = field(repr=False, default=())

    @property
    def success_rate(self) -> float:
        if self.windows_settled == 0:
            return 1.0
        return self.windows_accepted / self.windows_settled

    @property
    def latency_p50(self) -> float:
        return _percentile(list(self.settle_latencies), 50.0)

    @property
    def latency_p95(self) -> float:
        return _percentile(list(self.settle_latencies), 95.0)

    @property
    def latency_p99(self) -> float:
        return _percentile(list(self.settle_latencies), 99.0)

    @property
    def latency_max(self) -> float:
        if not self.settle_latencies:
            return 0.0
        return max(self.settle_latencies)

    @property
    def check_overhead_ratio(self) -> float:
        return self.run.overhead_ratio

    def as_dict(self) -> dict:
        """The per-tenant stats schema the service reports (JSON-ready)."""
        return {
            "chunks_submitted": self.chunks_submitted,
            "chunks_ingested": self.chunks_ingested,
            "chunks_shed": self.chunks_shed,
            "elements_ingested": self.elements_ingested,
            "elements_shed": self.elements_shed,
            "poison_chunks": self.poison_chunks,
            "windows_settled": self.windows_settled,
            "windows_accepted": self.windows_accepted,
            "windows_rejected": self.windows_rejected,
            "windows_repaired": self.windows_repaired,
            "windows_quarantined": self.windows_quarantined,
            "settle_retries": self.settle_retries,
            "settle_failures": self.settle_failures,
            "degraded": self.degraded,
            "success_rate": self.success_rate,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "check_overhead_ratio": self.check_overhead_ratio,
        }


class TenantStats:
    """Mutable, lock-guarded accounting for one tenant.

    The tenant's worker thread is the only writer of window-level fields,
    but producers (``submit``) write the ingest counters and any thread
    may :meth:`snapshot`, so every access takes the tenant-local lock —
    never a cross-tenant one.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.chunks_submitted = 0
        self.chunks_ingested = 0
        self.chunks_shed = 0
        self.elements_ingested = 0
        self.elements_shed = 0
        self.poison_chunks = 0
        self.windows_settled = 0
        self.windows_accepted = 0
        self.windows_rejected = 0
        self.windows_repaired = 0
        self.windows_quarantined = 0
        self.settle_retries = 0
        self.settle_failures = 0
        self.degraded = False
        self.settle_latencies: list[float] = []
        self.run = CheckedRunStats(operation_seconds=0.0, checker_seconds=0.0)

    def record_submitted(self) -> None:
        with self._lock:
            self.chunks_submitted += 1

    def record_shed(self, elements: int = 0) -> None:
        with self._lock:
            self.chunks_shed += 1
            self.elements_shed += int(elements)

    def record_ingested(self, chunks: int, elements: int) -> None:
        with self._lock:
            self.chunks_ingested += int(chunks)
            self.elements_ingested += int(elements)

    def record_poison(self) -> None:
        with self._lock:
            self.poison_chunks += 1
            self.degraded = True

    def record_settle_retry(self) -> None:
        with self._lock:
            self.settle_retries += 1

    def record_settle_failure(self) -> None:
        with self._lock:
            self.settle_failures += 1
            self.degraded = True

    def mark_degraded(self) -> None:
        with self._lock:
            self.degraded = True

    def record_window(self, record, stats: CheckedRunStats, latency: float) -> None:
        """Fold one settled window's record/stats into the accounting."""
        with self._lock:
            self.windows_settled += 1
            if record.accepted:
                self.windows_accepted += 1
            else:
                self.windows_rejected += 1
            if record.repaired:
                self.windows_repaired += 1
            if record.quarantined:
                self.windows_quarantined += 1
            self.settle_latencies.append(float(latency))
            self.run = self.run.merge(stats)

    def snapshot(self) -> TenantStatsView:
        with self._lock:
            return TenantStatsView(
                chunks_submitted=self.chunks_submitted,
                chunks_ingested=self.chunks_ingested,
                chunks_shed=self.chunks_shed,
                elements_ingested=self.elements_ingested,
                elements_shed=self.elements_shed,
                poison_chunks=self.poison_chunks,
                windows_settled=self.windows_settled,
                windows_accepted=self.windows_accepted,
                windows_rejected=self.windows_rejected,
                windows_repaired=self.windows_repaired,
                windows_quarantined=self.windows_quarantined,
                settle_retries=self.settle_retries,
                settle_failures=self.settle_failures,
                degraded=self.degraded,
                run=self.run,
                settle_latencies=tuple(self.settle_latencies),
            )

"""Per-operation window engines for the checked service.

A window engine adapts one checked operation to the daemon's push-based
worker loop: it validates incoming chunks *before* they enter a window
(malformed chunks become :class:`~repro.service.tenant.PoisonRecord`
captures, never crashes), counts elements for the accounting, and runs
one window settlement by delegating to the shared
``repro.dataflow.streaming.settle_*_window`` engines — the exact code
path the pull-based streaming DIAs use, so a service tenant inherits
adaptive escalation, heal-in-place repair, and quarantine unchanged.

Chunk shapes by op:

=================  =====================================================
op                 one submitted chunk
=================  =====================================================
``reduce_by_key``  ``(keys, values)`` — equal-length 1-d integer arrays
``count_by_key``   ``keys`` — 1-d integer array (values are implied 1s)
``sum``            ``values`` — 1-d integer array
``zip``            ``(first, second)`` — equal-length 1-d integer arrays
=================  =====================================================
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SumCheckConfig
from repro.dataflow.streaming import (
    settle_reduce_window,
    settle_sum_window,
    settle_zip_window,
)

__all__ = [
    "ENGINES",
    "CountWindowEngine",
    "PoisonChunkError",
    "ReduceWindowEngine",
    "SumWindowEngine",
    "WindowEngine",
    "ZipWindowEngine",
    "default_config",
]


def default_config() -> SumCheckConfig:
    """The service's default checker configuration (8x16 m15)."""
    return SumCheckConfig(iterations=8, d=16, rhat=1 << 15)


class PoisonChunkError(ValueError):
    """A submitted chunk that cannot enter a checked window."""


def _as_int_array(part, what: str) -> np.ndarray:
    try:
        arr = np.asarray(part)
    except Exception as exc:  # noqa: BLE001 - poison capture boundary
        raise PoisonChunkError(f"{what}: not array-like ({exc})") from exc
    if arr.dtype == object or arr.dtype.kind not in "iuf":
        raise PoisonChunkError(f"{what}: non-numeric dtype {arr.dtype}")
    if arr.dtype.kind == "f":
        if not np.all(np.isfinite(arr)):
            raise PoisonChunkError(f"{what}: non-finite values")
        if not np.all(arr == np.trunc(arr)):
            raise PoisonChunkError(f"{what}: non-integral floats")
        arr = arr.astype(np.int64)
    if arr.ndim != 1:
        raise PoisonChunkError(f"{what}: expected 1-d array, got {arr.ndim}-d")
    return arr


def _as_pair(chunk, what: str):
    if not isinstance(chunk, (tuple, list)) or len(chunk) != 2:
        raise PoisonChunkError(f"{what}: expected a (first, second) pair")
    return chunk[0], chunk[1]


class WindowEngine:
    """Base: validation + settlement for one tenant's operation."""

    #: Whether the op consumes a SumCheckConfig (zip uses iterations).
    needs_config = True

    def __init__(self, cfg):
        self.cfg = cfg
        self.config = cfg.config or default_config()

    def validate(self, chunk):
        """Return the normalized chunk or raise :class:`PoisonChunkError`."""
        raise NotImplementedError

    def elements(self, chunk) -> int:
        """Element count of a *validated* chunk."""
        raise NotImplementedError

    def settle_window(self, comm, window: int, seed_w: int, chunks):
        """Run one window settlement; returns the settle_* 5-tuple."""
        raise NotImplementedError


class ReduceWindowEngine(WindowEngine):
    op = "reduce_by_key"

    def validate(self, chunk):
        keys, values = _as_pair(chunk, "reduce_by_key chunk")
        k = _as_int_array(keys, "reduce_by_key keys")
        v = _as_int_array(values, "reduce_by_key values")
        if k.shape != v.shape:
            raise PoisonChunkError(
                f"reduce_by_key chunk: keys/values length mismatch "
                f"({k.size} != {v.size})"
            )
        if k.size and int(k.min()) < 0:
            raise PoisonChunkError("reduce_by_key chunk: negative key")
        return (k.astype(np.uint64), v.astype(np.int64))

    def elements(self, chunk) -> int:
        return int(chunk[0].size)

    def settle_window(self, comm, window, seed_w, chunks):
        return settle_reduce_window(
            comm,
            chunks,
            config=self.config,
            seed_w=seed_w,
            window=window,
            partitioner=self.cfg.partitioner,
            policy=self.cfg.policy,
            reexecute=self.cfg.reexecute,
            repair=self.cfg.repair,
            fault=self.cfg.fault,
        )


class CountWindowEngine(ReduceWindowEngine):
    """Per-key counting: sum aggregation of implied ones (§4)."""

    op = "count_by_key"

    def validate(self, chunk):
        k = _as_int_array(chunk, "count_by_key keys")
        if k.size and int(k.min()) < 0:
            raise PoisonChunkError("count_by_key chunk: negative key")
        return (k.astype(np.uint64), np.ones(k.shape, dtype=np.int64))


class SumWindowEngine(WindowEngine):
    op = "sum"

    def validate(self, chunk):
        return _as_int_array(chunk, "sum chunk").astype(np.int64)

    def elements(self, chunk) -> int:
        return int(chunk.size)

    def settle_window(self, comm, window, seed_w, chunks):
        return settle_sum_window(
            comm,
            chunks,
            config=self.config,
            seed_w=seed_w,
            window=window,
            policy=self.cfg.policy,
            reexecute=self.cfg.reexecute,
            repair=self.cfg.repair,
            fault=self.cfg.fault,
        )


class ZipWindowEngine(WindowEngine):
    op = "zip"
    needs_config = False

    def validate(self, chunk):
        first, second = _as_pair(chunk, "zip chunk")
        a = _as_int_array(first, "zip first")
        b = _as_int_array(second, "zip second")
        return (a.astype(np.int64), b.astype(np.int64))

    def elements(self, chunk) -> int:
        return int(chunk[0].size) + int(chunk[1].size)

    def settle_window(self, comm, window, seed_w, chunks):
        window1 = [c[0] for c in chunks]
        window2 = [c[1] for c in chunks]
        return settle_zip_window(
            comm,
            window1,
            window2,
            seed_w=seed_w,
            window=window,
            iterations=self.cfg.iterations,
            policy=self.cfg.policy,
            reexecute=self.cfg.reexecute,
            repair=self.cfg.repair,
            fault=self.cfg.fault,
        )


ENGINES = {
    engine.op: engine
    for engine in (
        ReduceWindowEngine,
        CountWindowEngine,
        SumWindowEngine,
        ZipWindowEngine,
    )
}

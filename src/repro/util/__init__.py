"""Low-level utilities shared by every subsystem.

The paper's algorithms are all seeded-randomized: a checker instance draws a
random hash function and a random modulus per iteration.  To make every
experiment reproducible we route *all* randomness through a hierarchical
deterministic seeding scheme (:func:`derive_seed`) built on SplitMix64.
"""

from repro.util.rng import (
    SPLITMIX64_GAMMA,
    derive_seed,
    splitmix64,
    splitmix64_array,
    uniform_below,
)
from repro.util.bits import (
    bit_length,
    ceil_log2,
    is_power_of_two,
    mask,
    popcount64,
)
from repro.util.validation import (
    check_integer_array,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "SPLITMIX64_GAMMA",
    "derive_seed",
    "splitmix64",
    "splitmix64_array",
    "uniform_below",
    "bit_length",
    "ceil_log2",
    "is_power_of_two",
    "mask",
    "popcount64",
    "check_integer_array",
    "check_positive",
    "check_probability",
    "require",
]

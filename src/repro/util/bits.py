"""Small bit-manipulation helpers used by the hashing and checker layers."""

from __future__ import annotations

import numpy as np


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ceil_log2(x: int) -> int:
    """Smallest k with 2**k >= x (x must be positive).

    This is the paper's ⌈log x⌉ used to size bucket indices and modulus
    residues (e.g. a residue mod r with r ≤ 2r̂ needs ⌈log2(2r̂)⌉ bits).
    """
    if x <= 0:
        raise ValueError(f"ceil_log2 requires a positive argument, got {x}")
    return (x - 1).bit_length()


def bit_length(x: int) -> int:
    """Number of bits needed to represent ``x`` (0 -> 0)."""
    return int(x).bit_length()


def mask(bits: int) -> int:
    """Bit mask with the low ``bits`` bits set."""
    if bits < 0:
        raise ValueError(f"mask width must be non-negative, got {bits}")
    return (1 << bits) - 1


def popcount64(x: np.ndarray) -> np.ndarray:
    """Vectorized population count over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    with np.errstate(over="ignore"):
        x -= (x >> np.uint64(1)) & m1
        x = (x & m2) + ((x >> np.uint64(2)) & m2)
        x = (x + (x >> np.uint64(4))) & m4
        x = (x * h01) >> np.uint64(56)
    return x

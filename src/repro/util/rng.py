"""Deterministic, hierarchical randomness based on SplitMix64.

Why not ``random`` / ``numpy.random`` everywhere?  The checkers need *many*
independent hash functions and moduli — one per checker iteration per trial —
and the accuracy experiments run hundreds of thousands of trials.  A
counter-based construction lets us derive any stream member directly (and
vectorized) without carrying generator state around, and it makes every
experiment bit-for-bit reproducible from a single root seed.

SplitMix64 is the finalizer from Steele, Lea & Flood (OOPSLA'14); it is the
standard seeding mixer (used e.g. to seed xoshiro generators) and passes
BigCrush when used as a counter-based generator.
"""

from __future__ import annotations

import numpy as np

#: Golden-ratio increment used by SplitMix64.
SPLITMIX64_GAMMA = 0x9E3779B97F4A7C15

_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB
_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """Scalar SplitMix64 finalizer: a strong 64-bit mixing permutation."""
    x = (x + SPLITMIX64_GAMMA) & _MASK64
    x ^= x >> 30
    x = (x * _M1) & _MASK64
    x ^= x >> 27
    x = (x * _M2) & _MASK64
    x ^= x >> 31
    return x


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over a uint64 array (returns a new array)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(SPLITMIX64_GAMMA)
        x ^= x >> np.uint64(30)
        x *= np.uint64(_M1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_M2)
        x ^= x >> np.uint64(31)
    return x


def derive_seed(root: int, *path: int | str) -> int:
    """Derive a child seed from ``root`` and a path of labels.

    Labels may be ints or short strings; strings are folded bytewise.  The
    derivation is a chain of SplitMix64 steps, so distinct paths give
    (computationally) independent seeds.  Used throughout the repo:
    ``derive_seed(seed, "sum-checker", iteration, "modulus")`` etc.
    """
    state = splitmix64(root & _MASK64)
    for label in path:
        if isinstance(label, str):
            for byte in label.encode("utf-8"):
                state = splitmix64(state ^ byte)
        else:
            state = splitmix64(state ^ (int(label) & _MASK64))
    return state


def uniform_below(seed: int, bound: int) -> int:
    """Deterministic uniform integer in ``0..bound-1`` from a seed.

    Uses rejection sampling over SplitMix64 outputs so the result is exactly
    uniform (no modulo bias) for any ``bound`` up to 2**64.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    if bound == 1:
        return 0
    # Largest multiple of `bound` that fits in 64 bits; reject above it.
    limit = (1 << 64) - ((1 << 64) % bound)
    state = seed
    while True:
        state = splitmix64(state)
        if state < limit:
            return state % bound

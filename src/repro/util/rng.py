"""Deterministic, hierarchical randomness based on SplitMix64.

Why not ``random`` / ``numpy.random`` everywhere?  The checkers need *many*
independent hash functions and moduli — one per checker iteration per trial —
and the accuracy experiments run hundreds of thousands of trials.  A
counter-based construction lets us derive any stream member directly (and
vectorized) without carrying generator state around, and it makes every
experiment bit-for-bit reproducible from a single root seed.

SplitMix64 is the finalizer from Steele, Lea & Flood (OOPSLA'14); it is the
standard seeding mixer (used e.g. to seed xoshiro generators) and passes
BigCrush when used as a counter-based generator.
"""

from __future__ import annotations

import numpy as np

#: Golden-ratio increment used by SplitMix64.
SPLITMIX64_GAMMA = 0x9E3779B97F4A7C15

_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB
_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """Scalar SplitMix64 finalizer: a strong 64-bit mixing permutation."""
    x = (x + SPLITMIX64_GAMMA) & _MASK64
    x ^= x >> 30
    x = (x * _M1) & _MASK64
    x ^= x >> 27
    x = (x * _M2) & _MASK64
    x ^= x >> 31
    return x


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over a uint64 array (returns a new array)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(SPLITMIX64_GAMMA)
        x ^= x >> np.uint64(30)
        x *= np.uint64(_M1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_M2)
        x ^= x >> np.uint64(31)
    return x


def derive_seed(root: int, *path: int | str) -> int:
    """Derive a child seed from ``root`` and a path of labels.

    Labels may be ints or short strings; strings are folded bytewise.  The
    derivation is a chain of SplitMix64 steps, so distinct paths give
    (computationally) independent seeds.  Used throughout the repo:
    ``derive_seed(seed, "sum-checker", iteration, "modulus")`` etc.
    """
    state = splitmix64(root & _MASK64)
    for label in path:
        if isinstance(label, str):
            for byte in label.encode("utf-8"):
                state = splitmix64(state ^ byte)
        else:
            state = splitmix64(state ^ (int(label) & _MASK64))
    return state


def derive_seed_array(roots, *path) -> np.ndarray:
    """Vectorized :func:`derive_seed`: elementwise over an array of roots.

    ``roots`` may be an array or a scalar; ``path`` labels may be ints,
    strings, or uint64 arrays (arrays broadcast against the running state,
    so a scalar root plus one array label yields a whole seed stream).  For
    every element the result equals the scalar ``derive_seed`` on the same
    root/labels — this is what lets the batched trial engine reproduce the
    reference path's seed tree exactly.
    """
    if isinstance(roots, (int, np.integer)):
        roots = np.uint64(int(roots) & _MASK64)
    state = splitmix64_array(np.asarray(roots, dtype=np.uint64))
    for label in path:
        if isinstance(label, str):
            for byte in label.encode("utf-8"):
                state = splitmix64_array(state ^ np.uint64(byte))
        elif isinstance(label, (int, np.integer)):
            state = splitmix64_array(state ^ np.uint64(int(label) & _MASK64))
        else:
            state = splitmix64_array(state ^ np.asarray(label, dtype=np.uint64))
    return state


def uniform_below(seed: int, bound: int) -> int:
    """Deterministic uniform integer in ``0..bound-1`` from a seed.

    Uses rejection sampling over SplitMix64 outputs so the result is exactly
    uniform (no modulo bias) for any ``bound`` up to 2**64.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    if bound == 1:
        return 0
    # Largest multiple of `bound` that fits in 64 bits; reject above it.
    limit = (1 << 64) - ((1 << 64) % bound)
    state = seed
    while True:
        state = splitmix64(state)
        if state < limit:
            return state % bound


def uniform_below_array(seeds: np.ndarray, bound: int) -> np.ndarray:
    """Vectorized :func:`uniform_below`: one draw per seed, elementwise equal
    to the scalar rejection-sampling chain."""
    bound = int(bound)
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    seeds = np.asarray(seeds, dtype=np.uint64)
    if bound == 1:
        return np.zeros(seeds.shape, dtype=np.uint64)
    limit = (1 << 64) - ((1 << 64) % bound)
    states = splitmix64_array(seeds)
    # limit == 2^64 iff bound divides 2^64 evenly — only then is every
    # state acceptable and the rejection loop skippable.
    if limit < (1 << 64):
        lim = np.uint64(limit)
        while True:
            reject = states >= lim
            if not reject.any():
                break
            states[reject] = splitmix64_array(states[reject])
    return states % np.uint64(bound)


def default_generator(seed: int) -> np.random.Generator:
    """The one sanctioned bridge to :class:`numpy.random.Generator`.

    Workload synthesis and fault injection want numpy's distribution
    machinery (``zipf``, ``random``, shuffles) rather than raw SplitMix64
    draws; they get it here, always seeded, so every consumer stays
    replayable from an integer seed and the ``determinism`` lint rule has
    exactly one allowed constructor to whitelist (this module).
    """
    return np.random.default_rng(int(seed) & _MASK64)


class SplitMixStream:
    """Counter-based per-trial randomness with a ``Generator``-like surface.

    Draw ``k`` is ``uniform_below(splitmix64(seed) ^ k, bound)`` — every draw
    is addressed by its counter alone, so a batched engine can reproduce any
    trial's draw sequence without replaying generator state.  Only the
    ``integers(bound)`` subset of the :class:`numpy.random.Generator` API is
    provided; that is all the fault manipulators consume.
    """

    def __init__(self, seed: int):
        self._base = splitmix64(int(seed) & _MASK64)
        self._counter = 0

    def integers(self, bound) -> int:
        """Uniform draw in ``0..bound-1``; advances the counter by one."""
        value = uniform_below(self._base ^ self._counter, int(bound))
        self._counter += 1
        return value


class SplitMixStreamBatch:
    """One :class:`SplitMixStream` per trial, advanced in lock-step.

    ``integers(bound, index=trials)`` draws once for each listed trial and
    advances only those trials' counters, so trials that redraw (rejected
    faults) consume exactly the draws their scalar stream would.
    """

    def __init__(self, seeds: np.ndarray):
        seeds = np.asarray(seeds, dtype=np.uint64).ravel()
        self._base = splitmix64_array(seeds)
        self._counter = np.zeros(seeds.size, dtype=np.uint64)
        self.size = seeds.size

    def integers(self, bound, index=None) -> np.ndarray:
        """Per-trial uniform draws in ``0..bound-1`` (uint64 array).

        ``index`` selects the trials that draw (default: all); their
        counters advance by one while the rest stay put.
        """
        if index is None:
            seeds = self._base ^ self._counter
            self._counter += np.uint64(1)
        else:
            seeds = self._base[index] ^ self._counter[index]
            self._counter[index] += np.uint64(1)
        return uniform_below_array(seeds, bound)

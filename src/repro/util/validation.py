"""Argument validation helpers with informative error messages."""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 < value < 1`` (failure probabilities δ)."""
    if not (0.0 < value < 1.0):
        raise ValueError(f"{name} must be in the open interval (0, 1), got {value!r}")


def check_integer_array(name: str, arr: np.ndarray) -> np.ndarray:
    """Coerce to a numpy array and require an integer dtype."""
    arr = np.asarray(arr)
    if arr.dtype.kind not in ("i", "u"):
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return arr

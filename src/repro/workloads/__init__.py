"""Workload generators matching the paper's experiments.

* §7.1 sum aggregation: keys follow the bounded power law
  ``f(k; N) = 1 / (k · H_N)`` ("naturally models many workloads, e.g.
  wordcount over natural languages");
* §7.2 permutation/sorting: integers uniform over ``0 .. 10^8 − 1``;
* a synthetic wordcount corpus for the examples.
"""

from repro.workloads.zipf import ZipfGenerator, zipf_keys
from repro.workloads.uniform import uniform_integers
from repro.workloads.kv import (
    aggregate_reference,
    sum_workload,
)
from repro.workloads.wordcount import synthetic_corpus, word_to_key

__all__ = [
    "ZipfGenerator",
    "zipf_keys",
    "uniform_integers",
    "aggregate_reference",
    "sum_workload",
    "synthetic_corpus",
    "word_to_key",
]

"""Key-value pair workloads and exact reference aggregations."""

from __future__ import annotations

import numpy as np

from repro.util.rng import default_generator
from repro.workloads.zipf import ZipfGenerator


def sum_workload(
    count: int,
    num_keys: int = 10**6,
    value_range: int = 1 << 20,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """The §7.1 sum-aggregation workload: Zipf keys, uniform values.

    Returns ``(keys uint64, values int64)`` with values uniform over
    ``1 .. value_range`` (strictly positive so every element matters, as the
    paper's ⊕ requirement ``x ⊕ y ≠ x for y ≠ 0`` presumes).
    """
    keys = ZipfGenerator(num_keys, seed).sample(count)
    rng = default_generator(seed + 1)
    values = rng.integers(1, value_range + 1, count, dtype=np.int64)
    return keys, values


def aggregate_reference(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact sequential sum aggregation (the trusted oracle for tests).

    Returns per-key sums with keys in ascending order.
    """
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    if keys.size == 0:
        return keys.copy(), values.copy()
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    sv = values[order]
    boundaries = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
    sums = np.add.reduceat(sv, boundaries)
    return sk[boundaries], sums

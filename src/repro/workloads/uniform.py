"""Uniform integer workload of §7.2 (permutation/sorting experiments)."""

from __future__ import annotations

import numpy as np

from repro.util.rng import default_generator


def uniform_integers(
    count: int, universe: int = 10**8, seed: int = 0
) -> np.ndarray:
    """``count`` integers uniform over ``0 .. universe-1`` (uint64).

    The paper's sorting workload uses ``count = 10^6`` and
    ``universe = 10^8``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if universe < 1:
        raise ValueError(f"universe must be >= 1, got {universe}")
    rng = default_generator(seed)
    return rng.integers(0, universe, count, dtype=np.uint64)

"""Synthetic natural-language-like corpus for the wordcount example.

Word frequencies follow the same power law the paper motivates ("wordcount
over natural languages"); words are synthetic tokens so the corpus needs no
external data.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.crc32c import crc32c_bytes
from repro.workloads.zipf import ZipfGenerator

_SYLLABLES = (
    "ka", "ro", "mi", "ta", "lu", "se", "no", "vi", "da", "pe",
    "zu", "fa", "go", "he", "ri", "wa",
)


def _rank_to_word(rank: int) -> str:
    """Deterministic pronounceable token per frequency rank."""
    parts = []
    rank += 1
    while rank:
        parts.append(_SYLLABLES[rank % len(_SYLLABLES)])
        rank //= len(_SYLLABLES)
    return "".join(parts)


def synthetic_corpus(
    num_words: int, vocabulary: int = 10_000, seed: int = 0
) -> list[str]:
    """A list of ``num_words`` tokens with Zipf-distributed frequencies."""
    ranks = ZipfGenerator(vocabulary, seed).sample(num_words)
    vocab = [_rank_to_word(r) for r in range(vocabulary)]
    return [vocab[int(r)] for r in ranks]


def word_to_key(word: str) -> int:
    """Hash a token to a 64-bit key (CRC-32C over two seeds).

    Wordcount over strings needs integer keys for the checkers; two
    independent 32-bit CRCs give a 64-bit fingerprint whose collision
    probability is negligible at example scale.
    """
    data = word.encode("utf-8")
    lo = crc32c_bytes(data, 0)
    hi = crc32c_bytes(data, 0x9E3779B9)
    return (hi << 32) | lo

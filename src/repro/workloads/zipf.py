"""Bounded power-law (Zipf) key distribution of §7.1.

The element of rank k among N possible elements has frequency
``f(k; N) = 1 / (k · H_N)`` where ``H_N`` is the N-th harmonic number —
the classic Zipf law with exponent 1, truncated at N.  Sampling is by
inverse CDF over the precomputed harmonic prefix sums (exact, vectorized).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import default_generator


class ZipfGenerator:
    """Sampler for the rank-frequency law ``f(k; N) = 1/(k·H_N)``.

    Ranks are returned 0-based (0 = most frequent key) so they double as
    keys.  The CDF table costs O(N) memory once per generator.
    """

    def __init__(self, num_values: int, seed: int = 0):
        if num_values < 1:
            raise ValueError(f"num_values must be >= 1, got {num_values}")
        self.num_values = num_values
        self.seed = seed
        weights = 1.0 / np.arange(1, num_values + 1, dtype=np.float64)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._rng = default_generator(seed)

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks (uint64) following the power law."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return ranks.astype(np.uint64)

    def pmf(self, rank: int) -> float:
        """Probability of the 0-based ``rank``."""
        if not 0 <= rank < self.num_values:
            return 0.0
        h_n = float(np.sum(1.0 / np.arange(1, self.num_values + 1)))
        return 1.0 / ((rank + 1) * h_n)


def zipf_keys(count: int, num_values: int, seed: int = 0) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ZipfGenerator`."""
    return ZipfGenerator(num_values, seed).sample(count)

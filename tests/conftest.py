"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.context import Context
from repro.workloads.kv import sum_workload


@pytest.fixture(scope="session")
def kv_small():
    """A small key-value workload with a known reference aggregation."""
    return sum_workload(3_000, num_keys=300, seed=42)


@pytest.fixture(params=[1, 2, 4])
def ctx(request):
    """SPMD contexts over 1, 2 and 4 PEs (most tests run on all three)."""
    return Context(request.param)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)

"""Fixture tests for the static analyzer (`repro.analysis`).

Every rule gets minimal positive/negative snippets parsed from strings,
plus a mutation check: deleting the guard that makes the negative fixture
clean must flip the rule to a finding.  A final smoke test runs the whole
analyzer over the real ``src/`` tree and asserts zero unsuppressed
findings — the same bar the CI ``analysis`` job enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Project, default_rules, run_rules
from repro.analysis.__main__ import main as analysis_main

SRC = Path(__file__).resolve().parent.parent / "src"


def findings_for(sources: dict[str, str], rule: str):
    project = Project.from_sources(sources)
    return run_rules(project, default_rules(), only={rule})


def unsuppressed(sources: dict[str, str], rule: str):
    return [f for f in findings_for(sources, rule) if not f.suppressed]


# ---------------------------------------------------------------------------
# collective-lockstep
# ---------------------------------------------------------------------------


def test_lockstep_flags_collective_in_one_branch_arm():
    found = unsuppressed(
        {
            "src/repro/dataflow/branchy.py": (
                "def f(comm, values):\n"
                "    if values.size > 0:\n"
                "        total = comm.allreduce(int(values[0]))\n"
                "    else:\n"
                "        total = 0\n"
                "    return total\n"
            )
        },
        "collective-lockstep",
    )
    assert len(found) == 1
    assert found[0].line == 2
    assert "allreduce" in found[0].message


def test_lockstep_flags_early_return_before_collective():
    found = unsuppressed(
        {
            "src/repro/dataflow/early.py": (
                "def g(comm, values):\n"
                "    if values.size == 0:\n"
                "        return 0\n"
                "    return comm.allreduce(int(values[0]))\n"
            )
        },
        "collective-lockstep",
    )
    assert len(found) == 1
    assert "early return" in found[0].message


def test_lockstep_flags_data_dependent_loops():
    found = unsuppressed(
        {
            "src/repro/dataflow/loopy.py": (
                "def h(comm, values):\n"
                "    for i in range(values.size):\n"
                "        comm.barrier()\n"
                "    count = 0\n"
                "    while count < values.size:\n"
                "        comm.allreduce(count)\n"
                "        count = count + 1\n"
            )
        },
        "collective-lockstep",
    )
    messages = "\n".join(f.message for f in found)
    assert len(found) == 2
    assert "for-loop" in messages and "while-loop" in messages


def test_lockstep_flags_nonuniform_break_in_collective_loop():
    found = unsuppressed(
        {
            "src/repro/dataflow/windowed.py": (
                "def w(comm, values):\n"
                "    while True:\n"
                "        comm.allreduce(1)\n"
                "        if values.size > 2:\n"
                "            break\n"
            )
        },
        "collective-lockstep",
    )
    assert len(found) == 1
    assert "loop exit" in found[0].message


def test_lockstep_accepts_comm_guards_and_replicated_conditions():
    clean = {
        "src/repro/dataflow/guarded.py": (
            "def f(comm, values):\n"
            "    if comm is None or comm.size == 1:\n"
            "        return int(values[0])\n"
            "    return comm.allreduce(int(values[0]))\n"
            "\n"
            "def g(comm, values):\n"
            "    n = comm.allreduce(int(values.size))\n"
            "    if n == 0:\n"
            "        return 0\n"
            "    return comm.exscan(int(values.size))\n"
        )
    }
    assert unsuppressed(clean, "collective-lockstep") == []


def test_lockstep_mutation_deleting_allreduce_guard_flips_to_finding():
    # Same function as the clean `g` above, but the condition is now the
    # raw per-PE size instead of its allreduce: one PE can return early.
    mutated = {
        "src/repro/dataflow/guarded.py": (
            "def g(comm, values):\n"
            "    n = int(values.size)\n"
            "    if n == 0:\n"
            "        return 0\n"
            "    return comm.exscan(int(values.size))\n"
        )
    }
    found = unsuppressed(mutated, "collective-lockstep")
    assert len(found) == 1
    assert "early return" in found[0].message


def test_lockstep_branching_on_settled_verdict_is_replicated():
    # The adaptive-escalation idiom: the branch condition flows from a
    # function whose distributed return path ends in a broadcast, so it is
    # replicated no matter how non-uniform the arguments were.
    clean = {
        "src/repro/dataflow/adaptive.py": (
            "def verdict(comm, values):\n"
            "    if comm is None:\n"
            "        return bool(values.size)\n"
            "    ok = bool(values.size)\n"
            "    return comm.bcast(ok, root=0)\n"
            "\n"
            "def check(comm, values):\n"
            "    ok = verdict(comm, values)\n"
            "    if not ok:\n"
            "        return comm.allreduce(int(values.size))\n"
            "    return 0\n"
        )
    }
    assert unsuppressed(clean, "collective-lockstep") == []


# ---------------------------------------------------------------------------
# stream-protocol
# ---------------------------------------------------------------------------

_STREAM_BASE = (
    "class CheckerStream:\n"
    "    def __init__(self):\n"
    "        self._settled = False\n"
    "    def _ensure_open(self):\n"
    "        if self._settled:\n"
    "            raise RuntimeError('stream already settled')\n"
    "    def settle(self, comm=None):\n"
    "        self._ensure_open()\n"
    "        self._settled = True\n"
    "        return self._settle(comm)\n"
    "    def _settle(self, comm):\n"
    "        raise NotImplementedError\n"
    "    def feed_input(self, chunk):\n"
    "        raise NotImplementedError\n"
    "    def feed_output(self, chunk):\n"
    "        raise NotImplementedError\n"
)


def test_stream_protocol_flags_unguarded_feed_and_settle_override():
    found = unsuppressed(
        {
            "src/repro/core/badstream.py": _STREAM_BASE
            + (
                "class BadStream(CheckerStream):\n"
                "    def feed_input(self, chunk):\n"
                "        self._acc = chunk\n"
                "    def feed_output(self, chunk):\n"
                "        self._ensure_open()\n"
                "    def settle(self, comm=None):\n"
                "        return self._settle(comm)\n"
                "    def _settle(self, comm):\n"
                "        return None\n"
            )
        },
        "stream-protocol",
    )
    messages = "\n".join(f.message for f in found)
    assert len(found) == 2
    assert "without calling self._ensure_open()" in messages
    assert "overrides the base settle()" in messages


def test_stream_protocol_flags_missing_protocol_methods():
    found = unsuppressed(
        {
            "src/repro/core/incomplete.py": _STREAM_BASE
            + (
                "class IncompleteStream(CheckerStream):\n"
                "    def feed_input(self, chunk):\n"
                "        self._ensure_open()\n"
            )
        },
        "stream-protocol",
    )
    messages = "\n".join(f.message for f in found)
    assert "does not implement feed_output()" in messages
    assert "neither _settle() nor settle()" in messages


def test_stream_protocol_accepts_conforming_stream():
    clean = {
        "src/repro/core/goodstream.py": _STREAM_BASE
        + (
            "class GoodStream(CheckerStream):\n"
            "    def feed_input(self, chunk):\n"
            "        self._ensure_open()\n"
            "        self._acc = chunk\n"
            "    def feed_output(self, chunk):\n"
            "        self._ensure_open()\n"
            "        self._out = chunk\n"
            "    def _settle(self, comm):\n"
            "        return None\n"
        )
    }
    assert unsuppressed(clean, "stream-protocol") == []


def test_stream_protocol_mutation_deleting_guard_flips_to_finding():
    mutated = {
        "src/repro/core/goodstream.py": _STREAM_BASE
        + (
            "class GoodStream(CheckerStream):\n"
            "    def feed_input(self, chunk):\n"
            "        self._acc = chunk\n"  # _ensure_open() deleted
            "    def feed_output(self, chunk):\n"
            "        self._ensure_open()\n"
            "        self._out = chunk\n"
            "    def _settle(self, comm):\n"
            "        return None\n"
        )
    }
    found = unsuppressed(mutated, "stream-protocol")
    assert len(found) == 1
    assert "GoodStream.feed_input" in found[0].message


# ---------------------------------------------------------------------------
# kernel-parity
# ---------------------------------------------------------------------------


def _kernel_sources(numpy_src: str, numba_src: str, names: str = "'alpha', 'beta'"):
    return {
        "src/repro/kernels/dispatch.py": f"KERNEL_NAMES = ({names},)\n",
        "src/repro/kernels/numpy_backend.py": numpy_src,
        "src/repro/kernels/numba_backend.py": numba_src,
    }


_MATCHING = "def alpha(x, y):\n    return x\n\ndef beta(a):\n    return a\n"


def test_kernel_parity_accepts_matching_backends():
    assert (
        unsuppressed(_kernel_sources(_MATCHING, _MATCHING), "kernel-parity")
        == []
    )


def test_kernel_parity_flags_missing_kernel():
    numba = "def alpha(x, y):\n    return x\n"
    found = unsuppressed(_kernel_sources(_MATCHING, numba), "kernel-parity")
    assert len(found) == 1
    assert "'beta'" in found[0].message and "numba_backend" in found[0].message


def test_kernel_parity_flags_signature_mismatch():
    numba = "def alpha(x, z):\n    return x\n\ndef beta(a):\n    return a\n"
    found = unsuppressed(_kernel_sources(_MATCHING, numba), "kernel-parity")
    assert len(found) == 1
    assert "signature mismatch" in found[0].message


def test_kernel_parity_flags_undispatched_public_function():
    numpy_src = _MATCHING + "\ndef gamma(q):\n    return q\n"
    found = unsuppressed(_kernel_sources(numpy_src, _MATCHING), "kernel-parity")
    assert len(found) == 1
    assert "'gamma'" in found[0].message
    assert "missing from KERNEL_NAMES" in found[0].message


def test_kernel_parity_helpers_and_self_check_are_exempt():
    extra = "\ndef _helper(q):\n    return q\n\ndef self_check(oracle):\n    return None\n"
    sources = _kernel_sources(_MATCHING + extra, _MATCHING)
    assert unsuppressed(sources, "kernel-parity") == []


def test_kernel_parity_mutation_dropping_table_entry_flips_to_finding():
    # Same backends, but the dispatch table no longer lists beta.
    sources = _kernel_sources(_MATCHING, _MATCHING, names="'alpha'")
    found = unsuppressed(sources, "kernel-parity")
    assert len(found) == 2  # beta now undispatched in both backends
    assert all("'beta'" in f.message for f in found)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_determinism_flags_naked_numpy_and_stdlib_rng():
    found = unsuppressed(
        {
            "src/repro/faults/sloppy.py": (
                "import numpy as np\n"
                "import random\n"
                "from random import randrange\n"
                "def f(seed):\n"
                "    a = np.random.default_rng(seed)\n"
                "    b = random.random()\n"
                "    c = randrange(10)\n"
                "    return a, b, c\n"
            )
        },
        "determinism",
    )
    assert [f.line for f in found] == [5, 6, 7]


def test_determinism_sanctions_rng_module_and_generator_methods():
    clean = {
        # The sanctioned module itself may touch numpy.random.
        "src/repro/util/rng.py": (
            "import numpy as np\n"
            "def default_generator(seed):\n"
            "    return np.random.default_rng(int(seed))\n"
        ),
        # Consuming a generator someone passed in is fine.
        "src/repro/workloads/consumer.py": (
            "def sample(rng, n):\n"
            "    return rng.integers(0, 10, n)\n"
        ),
    }
    assert unsuppressed(clean, "determinism") == []


def test_determinism_mutation_inlining_default_rng_flips_to_finding():
    mutated = {
        "src/repro/workloads/consumer.py": (
            "import numpy as np\n"
            "def sample(seed, n):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(0, 10, n)\n"
        )
    }
    found = unsuppressed(mutated, "determinism")
    assert len(found) == 1
    assert found[0].line == 3


# ---------------------------------------------------------------------------
# overflow-discipline
# ---------------------------------------------------------------------------


def test_overflow_flags_unguarded_sum_in_core():
    found = unsuppressed(
        {
            "src/repro/core/acc.py": (
                "def fingerprint(values):\n"
                "    return values.sum()\n"
            )
        },
        "overflow-discipline",
    )
    assert len(found) == 1
    assert "unguarded .sum()" in found[0].message


def test_overflow_accepts_all_three_guard_disciplines():
    clean = {
        "src/repro/core/guarded.py": (
            "import numpy as np\n"
            "def with_magnitude_bound(values):\n"
            "    m = _max_magnitude(values)\n"
            "    return values.sum(dtype=np.float64), m\n"
            "def with_modular_reduction(values):\n"
            "    return int(values.sum()) % 2147483647\n"
            "def with_deferred_mod(values):\n"
            "    t = values.sum()\n"
            "    return t % 2147483647\n"
            "def with_32bit_split(values):\n"
            "    lo = values & 0xFFFFFFFF\n"
            "    hi = values >> 32\n"
            "    return int(lo.sum()) + (int(hi.sum()) << 32)\n"
            "def with_python_sum(chunks):\n"
            "    return sum(int(c) for c in chunks)\n"
        )
    }
    assert unsuppressed(clean, "overflow-discipline") == []


def test_overflow_ignores_modules_outside_core():
    sources = {
        "src/repro/dataflow/acc.py": (
            "def fingerprint(values):\n    return values.sum()\n"
        )
    }
    assert unsuppressed(sources, "overflow-discipline") == []


def test_overflow_mutation_deleting_magnitude_guard_flips_to_finding():
    mutated = {
        "src/repro/core/guarded.py": (
            "def with_magnitude_bound(values):\n"
            "    return values.sum()\n"  # bound + dtype promotion deleted
        )
    }
    found = unsuppressed(mutated, "overflow-discipline")
    assert len(found) == 1


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def test_inline_pragma_suppresses_with_justification():
    findings = findings_for(
        {
            "src/repro/core/acc.py": (
                "def fingerprint(values):\n"
                "    return values.sum()  # repro-lint: disable=overflow-discipline -- bounded by caller\n"
            )
        },
        "overflow-discipline",
    )
    assert len(findings) == 1
    assert findings[0].suppressed
    assert findings[0].justification == "bounded by caller"


def test_comment_line_pragma_covers_next_line():
    findings = findings_for(
        {
            "src/repro/core/acc.py": (
                "def fingerprint(values):\n"
                "    # repro-lint: disable=overflow-discipline -- bounded by caller\n"
                "    return values.sum()\n"
            )
        },
        "overflow-discipline",
    )
    assert [f.suppressed for f in findings] == [True]


def test_file_pragma_suppresses_whole_module():
    findings = findings_for(
        {
            "src/repro/core/acc.py": (
                "# repro-lint: disable-file=overflow-discipline -- scratch module\n"
                "def f(values):\n"
                "    return values.sum()\n"
                "def g(values):\n"
                "    return values.cumsum()\n"
            )
        },
        "overflow-discipline",
    )
    assert len(findings) == 2
    assert all(f.suppressed for f in findings)


def test_pragma_for_other_rule_does_not_suppress():
    findings = findings_for(
        {
            "src/repro/core/acc.py": (
                "def fingerprint(values):\n"
                "    return values.sum()  # repro-lint: disable=determinism -- wrong rule\n"
            )
        },
        "overflow-discipline",
    )
    assert [f.suppressed for f in findings] == [False]


# ---------------------------------------------------------------------------
# CLI + smoke over the real tree
# ---------------------------------------------------------------------------


def test_analyzer_smoke_real_src_tree_is_clean():
    project = Project.from_paths([SRC])
    findings = run_rules(project, default_rules())
    assert [f for f in findings if not f.suppressed] == []


def test_cli_strict_exit_codes(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "acc.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(values):\n    return values.sum()\n")
    assert analysis_main([str(tmp_path / "src")]) == 0  # informative mode
    assert analysis_main([str(tmp_path / "src"), "--strict"]) == 1
    capsys.readouterr()


def test_cli_json_output_and_artifact(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "acc.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(values):\n    return values.sum()\n")
    out = tmp_path / "findings.json"
    code = analysis_main(
        [str(tmp_path / "src"), "--format", "json", "--output", str(out)]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["unsuppressed"] == 1
    on_disk = json.loads(out.read_text())
    assert on_disk["findings"][0]["rule"] == "overflow-discipline"


def test_cli_rejects_unknown_rule(tmp_path):
    with pytest.raises(SystemExit):
        analysis_main([str(tmp_path), "--rules", "no-such-rule"])


def test_cli_rule_selection_runs_only_named_rules(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "acc.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n"
        "def f(values, seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return values.sum()\n"
    )
    assert (
        analysis_main([str(tmp_path / "src"), "--rules", "determinism", "--strict"])
        == 1
    )
    output = capsys.readouterr().out
    assert "determinism" in output
    assert "overflow" not in output

"""Cross-backend parity suite (``pytest -m backends``).

Re-runs the distributed checker / streaming / localization / service
scenarios on the shared-memory process backend and asserts the verdicts,
healed windows, localization reports, and settled outputs are
*bit-identical* to the thread-mailbox oracle.  Everything here must stay
deterministic per rank (no cross-rank shared closures), because process
workers do not share memory with each other.
"""

import threading

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.localize import localize_fault
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.dataflow.repair import RepairPolicy
from repro.dataflow.streaming import StreamingDIA, StreamingKeyValueDIA
from repro.service.daemon import CheckedStreamService, TenantCommGrid
from repro.service.tenant import TenantConfig
from repro.workloads.kv import sum_workload

pytestmark = pytest.mark.backends

BACKENDS = ("threads", "processes")
CONFIG = SumCheckConfig.parse("4x16 m15")
SEEDS = [3, 11, 27]


def kv_chunks(keys, values, size):
    return [
        (keys[i : i + size], values[i : i + size])
        for i in range(0, keys.size, size)
    ]


def _run_on(backend, p, job, per_rank_args):
    ctx = Context(p, backend=backend)
    return ctx.run(job, per_rank_args=per_rank_args)


def _record_tuple(rec):
    return (
        rec.window,
        rec.accepted,
        int(rec.seed),
        tuple(int(s) for s in rec.seeds_used),
        rec.quarantined,
        rec.verdict.accepted,
        rec.verdict.checker,
    )


def _report_tuple(r):
    return (
        r.localized,
        tuple((int(a), int(b)) for a, b in r.key_ranges),
        tuple(r.pes),
        int(r.suspect_keys),
        r.bisection_rounds,
        r.exhausted,
        tuple(
            tuple(tuple(j) for j in t) for t in r.guilty_buckets
        ),
    )


class TestDistributedCheckerParity:
    @pytest.mark.parametrize("p", [2, 4])
    def test_multiseed_verdicts_bit_identical(self, p):
        keys, values = sum_workload(2_000, num_keys=100, seed=7)
        out_k = np.unique(keys)
        out_v = np.array(
            [values[keys == k].sum() for k in out_k], dtype=np.int64
        )
        bad_v = out_v.copy()
        bad_v[0] += 3

        def job(comm, k, v, ok, ov):
            multi = MultiSeedSumChecker(CONFIG, SEEDS)
            res = multi.check_distributed_condensed(
                comm, condense_kv(k, v), condense_kv(ok, ov)
            )
            return res.accepted, res.details["per_seed_accepted"]

        ctx = Context(p)
        args = list(
            zip(
                ctx.split(keys),
                ctx.split(values),
                ctx.split(out_k),
                ctx.split(bad_v),
            )
        )
        runs = {b: _run_on(b, p, job, args) for b in BACKENDS}
        assert runs["processes"] == runs["threads"]
        assert not runs["threads"][0][0]  # the fault is detected

    @pytest.mark.parametrize("p", [2, 3])
    def test_localization_reports_bit_identical(self, p):
        keys, values = sum_workload(3_000, num_keys=150, seed=37)
        shares_k = np.array_split(keys, p)
        shares_v = np.array_split(values, p)

        def job(comm, k, v):
            out_k, out_v = reduce_by_key(comm, k, v)
            bad_v = out_v.copy()
            if comm.rank == 1 and bad_v.size:
                bad_v[0] += 4
            report = localize_fault(
                (k, v), (out_k, bad_v), CONFIG, seeds=2, comm=comm
            )
            return _report_tuple(report)

        args = list(zip(shares_k, shares_v))
        runs = {b: _run_on(b, p, job, args) for b in BACKENDS}
        assert runs["processes"] == runs["threads"]
        assert runs["threads"][0][0]  # localized


class TestStreamingParity:
    @pytest.mark.parametrize("p", [2, 4])
    def test_windowed_reduce_with_heal_bit_identical(self, p):
        keys, values = sum_workload(4_000, num_keys=120, seed=5)

        def job(comm, k, v):
            chunks = kv_chunks(k, v, 300)

            fired = {"done": False}

            def fault(window, fk, fv):
                # Deterministic *transient* fault: window 1's first
                # execution on rank 0 is corrupted, the repair path's
                # re-execution comes back clean and the window heals.
                # (Per-rank closure state is fork-safe: nothing here is
                # shared across ranks.)
                if window == 1 and comm.rank == 0 and fv.size and not fired["done"]:
                    fired["done"] = True
                    fv = fv.copy()
                    fv[0] += 7
                return fk, fv

            def reexecute(window, ranges):
                return chunks[2 * window : 2 * window + 2]

            run = StreamingKeyValueDIA.from_chunks(
                comm, chunks
            ).reduce_by_key_checked(
                CONFIG,
                seed=13,
                chunks_per_window=2,
                fault=fault,
                reexecute=reexecute,
                repair=RepairPolicy(max_attempts=2),
            )
            outputs = [
                (ok.tolist(), ov.tolist()) for ok, ov in run.outputs
            ]
            return (
                run.accepted,
                [_record_tuple(r) for r in run.window_history],
                outputs,
                len(run.quarantined),
            )

        ctx = Context(p)
        args = list(zip(ctx.split(keys), ctx.split(values)))
        runs = {b: _run_on(b, p, job, args) for b in BACKENDS}
        assert runs["processes"] == runs["threads"]
        accepted, records, _, quarantined = runs["threads"][0]
        assert accepted and quarantined == 0
        # Window 1 was actually faulted and healed (extra seeds used).
        assert len(records[1][3]) > 1

    @pytest.mark.parametrize("p", [2, 4])
    def test_windowed_sum_totals_bit_identical(self, p):
        rng = np.random.default_rng(31)
        data = rng.integers(0, 1 << 20, 4_096).astype(np.int64)

        def job(comm, share):
            chunks = [share[i : i + 256] for i in range(0, share.size, 256)]
            run = StreamingDIA.from_chunks(comm, chunks).sum_checked(
                CONFIG, seed=3, chunks_per_window=2
            )
            return run.accepted, [int(o) for o in run.outputs]

        ctx = Context(p)
        args = ctx.split(data)
        runs = {b: _run_on(b, p, job, args) for b in BACKENDS}
        assert runs["processes"] == runs["threads"]
        assert runs["threads"][0][0]


class TestServiceParity:
    def test_distributed_tenants_bit_identical_across_grid_backends(self):
        p = 2
        rng = np.random.default_rng(55)
        tenant_chunks = {
            r: [
                (
                    rng.integers(0, 40, 128).astype(np.uint64),
                    rng.integers(0, 1 << 20, 128).astype(np.int64),
                )
                for _ in range(4)
            ]
            for r in range(p)
        }

        def run_grid(backend):
            grid = TenantCommGrid(p, backend=backend)
            try:
                services = [
                    CheckedStreamService(comm_factory=grid.factory(r))
                    for r in range(p)
                ]
                handles = {
                    r: services[r].register(
                        "t",
                        TenantConfig(
                            op="reduce_by_key",
                            config=CONFIG,
                            seed=9,
                            chunks_per_window=2,
                        ),
                    )
                    for r in range(p)
                }
                for c in range(4):
                    for r in range(p):
                        handles[r].submit(tenant_chunks[r][c])
                for r in range(p):
                    handles[r].close()
                for svc in services:
                    assert svc.drain(timeout=120)
                out = {}
                for r in range(p):
                    res = handles[r].result()
                    out[r] = (
                        res.accepted,
                        [v.accepted for v in res.verdicts],
                        [
                            (ok.tolist(), ov.tolist())
                            for ok, ov in res.outputs
                        ],
                    )
                for svc in services:
                    svc.shutdown(timeout=10)
                return out
            finally:
                grid.close()

        runs = {b: run_grid(b) for b in BACKENDS}
        assert runs["processes"] == runs["threads"]
        assert runs["threads"][0][0]

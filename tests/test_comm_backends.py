"""Transport-level tests for the pluggable execution backends.

Ring mechanics, the shared wire format, backend resolution, and the
process backend's runner (fork fan-out, meters, failure propagation).
These are tier-1: they must pass regardless of ``REPRO_COMM_BACKEND``.
"""

import threading

import numpy as np
import pytest

from repro.comm import Comm, Context, SPMDError, ops, resolve_backend
from repro.comm.backend import (
    FRAME_HEADER,
    KIND_PICKLE,
    KIND_RAW,
    decode_frame,
    encode_frame,
)
from repro.comm.context import Context as _Context
from repro.comm.proc_backend import ShmEndpoint, ShmFabric
from repro.service.daemon import TenantCommGrid


def _decode(frame: bytes):
    kind, meta_len, payload_len = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
    meta_end = FRAME_HEADER.size + meta_len
    return kind, decode_frame(kind, frame[FRAME_HEADER.size : meta_end], frame[meta_end:])


class TestWireFormat:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(100, dtype=np.int64),
            np.arange(7, dtype=np.uint8),
            np.zeros(0, dtype=np.float32),
            np.arange(12, dtype=np.uint64).reshape(3, 4),
        ],
    )
    def test_contiguous_arrays_go_raw(self, arr):
        kind, back = _decode(encode_frame(arr))
        assert kind == KIND_RAW
        assert back.dtype == arr.dtype and back.shape == arr.shape
        np.testing.assert_array_equal(back, arr)

    def test_noncontiguous_array_falls_back_to_pickle(self):
        arr = np.arange(20, dtype=np.int64)[::2]
        kind, back = _decode(encode_frame(arr))
        assert kind == KIND_PICKLE
        np.testing.assert_array_equal(back, arr)

    @pytest.mark.parametrize(
        "obj",
        [None, 17, 3.5, True, "text", b"bytes", (1, np.arange(3)), {"k": [1, 2]}],
    )
    def test_python_payload_roundtrip(self, obj):
        kind, back = _decode(encode_frame(obj))
        assert kind == KIND_PICKLE
        if isinstance(obj, tuple):
            np.testing.assert_array_equal(back[1], obj[1])
        else:
            assert back == obj

    def test_corrupt_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            decode_frame(99, b"", b"")


class TestBackendResolution:
    def test_default_is_threads(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMM_BACKEND", raising=False)
        assert resolve_backend(None) == "threads"

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_BACKEND", "processes")
        assert resolve_backend(None) == "processes"
        assert _Context(2).backend == "processes"

    def test_explicit_arg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_BACKEND", "processes")
        assert resolve_backend("threads") == "threads"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown comm backend"):
            resolve_backend("osmosis")

    def test_mpi_falls_back_when_unavailable(self, monkeypatch):
        from repro.comm import mpi_backend

        monkeypatch.delenv("REPRO_COMM_BACKEND", raising=False)
        if mpi_backend.mpi_available():
            pytest.skip("mpi4py present: no fallback to exercise")
        monkeypatch.setitem(mpi_backend._state, "warned", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            ctx = Context(2, backend="mpi")
        assert ctx.backend == "threads"
        assert ctx.run(lambda comm: comm.allreduce(1, op=ops.SUM)) == [2, 2]


class TestShmRings:
    def test_ring_roundtrip_with_wraparound(self):
        fabric = ShmFabric.create(2, data_cap=64)
        try:
            a = ShmEndpoint(0, fabric)
            b = ShmEndpoint(1, fabric)
            # Repeated small messages cycle the write cursor past the
            # capacity boundary many times.
            for i in range(50):
                a.send(1, i)
                assert b.recv(0) == i
        finally:
            fabric.destroy()

    def test_message_larger_than_ring_is_chunked(self):
        fabric = ShmFabric.create(2, data_cap=1 << 10)
        try:
            big = np.arange(5_000, dtype=np.int64)  # 40 KB through a 1 KB ring

            def sender():
                ShmEndpoint(0, fabric).send(1, big)

            t = threading.Thread(target=sender, daemon=True)
            t.start()
            got = ShmEndpoint(1, fabric).recv(0)
            t.join()
            np.testing.assert_array_equal(got, big)
        finally:
            fabric.destroy()

    def test_exchange_is_nonblocking_for_oversized_frames(self):
        # Both directions exceed the ring: send-then-recv would deadlock,
        # the interleaved exchange must not.
        fabric = ShmFabric.create(2, data_cap=1 << 10)
        try:
            big = np.arange(4_000, dtype=np.int64)
            out = {}

            def run(rank):
                ep = ShmEndpoint(rank, fabric)
                out[rank] = ep.exchange(1 - rank, big + rank)

            threads = [
                threading.Thread(target=run, args=(r,), daemon=True)
                for r in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            np.testing.assert_array_equal(out[0], big + 1)
            np.testing.assert_array_equal(out[1], big)
        finally:
            fabric.destroy()

    def test_barrier_tokens_never_mix_with_data(self):
        fabric = ShmFabric.create(2, data_cap=256)
        try:
            results = {}

            def run(rank):
                ep = ShmEndpoint(rank, fabric)
                # Data in flight across a barrier: the token must not be
                # consumed as payload or vice versa.
                if rank == 0:
                    ep.send(1, 41)
                ep.barrier()
                if rank == 1:
                    results["got"] = ep.recv(0)
                ep.barrier()

            threads = [
                threading.Thread(target=run, args=(r,), daemon=True)
                for r in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results["got"] == 41
        finally:
            fabric.destroy()


class TestProcessContext:
    def test_matches_thread_backend(self):
        data = np.arange(2_000, dtype=np.int64)

        def program(comm, chunk):
            total = comm.allreduce(int(chunk.sum()), op=ops.SUM)
            offset = comm.exscan(len(chunk), op=ops.SUM, identity=0)
            swapped = comm.sendrecv(comm.rank ^ 1, chunk[:3])
            comm.barrier()
            return total, offset, swapped.tolist()

        runs = {}
        for backend in ("threads", "processes"):
            ctx = Context(4, backend=backend)
            runs[backend] = ctx.run(program, per_rank_args=ctx.split(data))
        assert runs["processes"] == runs["threads"]

    def test_modeled_meter_bytes_match_thread_oracle(self):
        def program(comm, chunk):
            comm.allgather(chunk)
            return None

        data = np.arange(512, dtype=np.int64)
        meters = {}
        for backend in ("threads", "processes"):
            ctx = Context(4, backend=backend)
            ctx.run(program, per_rank_args=ctx.split(data))
            meters[backend] = [(m.bytes_sent, m.bytes_received) for m in ctx.meters]
        assert meters["processes"] == meters["threads"]

    def test_wire_bytes_recorded_and_close_to_model(self):
        def program(comm, chunk):
            comm.allreduce(chunk, op=ops.SUM)
            return None

        ctx = Context(2, backend="processes")
        ctx.run(program, per_rank_args=ctx.split(np.arange(4_096, dtype=np.int64)))
        for m in ctx.meters:
            assert m.wire_bytes_sent >= m.bytes_sent
            # Frame + dtype-meta overhead stays small for array payloads.
            assert m.wire_bytes_sent <= m.bytes_sent * 1.10

    def test_exception_propagates_as_spmd_error(self):
        def failer(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            return comm.rank

        with pytest.raises(SPMDError, match="boom on rank 1"):
            Context(2, backend="processes").run(failer)

    def test_per_rank_tuple_args_and_common_args(self):
        def program(comm, a, b, c):
            return comm.allreduce(a * b + c, op=ops.SUM)

        ctx = Context(2, backend="processes")
        outs = ctx.run(
            program, per_rank_args=[(1, 2), (3, 4)], common_args=(10,)
        )
        assert outs == [34, 34]

    def test_single_pe_runs_inline(self):
        ctx = Context(1, backend="processes")
        assert ctx.run(lambda comm, x: x + comm.rank, per_rank_args=[5]) == [5]


class TestTenantCommGridBackends:
    def test_grid_process_backend_collectives(self):
        grid = TenantCommGrid(2, backend="processes")
        try:
            results = {}

            def run(rank):
                comm = grid.comm("tenant-a", rank)
                results[rank] = comm.allreduce(rank + 1, op=ops.SUM)
                comm.barrier()

            threads = [
                threading.Thread(target=run, args=(r,), daemon=True)
                for r in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == {0: 3, 1: 3}
        finally:
            grid.close()

    def test_grid_network_accessor_is_thread_only(self):
        grid = TenantCommGrid(2, backend="processes")
        try:
            with pytest.raises(RuntimeError, match="no mailbox"):
                grid.network("tenant-a")
        finally:
            grid.close()

    def test_grid_endpoints_are_cached_per_rank(self):
        grid = TenantCommGrid(2, backend="processes")
        try:
            c1 = grid.comm("t", 0)
            c2 = grid.comm("t", 0)
            assert c1.endpoint is c2.endpoint
        finally:
            grid.close()

"""Tests for the collective operations over the thread-backed network."""

import numpy as np
import pytest

from repro.comm.context import Context

_ADD = lambda a, b: a + b  # noqa: E731


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
class TestBroadcast:
    def test_from_root_zero(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.bcast("payload" if comm.rank == 0 else None))
        assert out == ["payload"] * p

    def test_from_other_root(self, p):
        root = p - 1
        ctx = Context(p)
        out = ctx.run(
            lambda comm: comm.bcast(
                comm.rank * 10 if comm.rank == root else None, root=root
            )
        )
        assert out == [root * 10] * p


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
class TestReduce:
    def test_sum_to_root(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.reduce(comm.rank + 1, _ADD))
        assert out[0] == p * (p + 1) // 2
        assert all(v is None for v in out[1:]) or p == 1

    def test_nonzero_root(self, p):
        root = p // 2
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.reduce(1, _ADD, root=root))
        assert out[root] == p

    def test_allreduce(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.allreduce(comm.rank + 1, _ADD))
        assert out == [p * (p + 1) // 2] * p

    def test_allreduce_numpy_arrays(self, p):
        ctx = Context(p)
        out = ctx.run(
            lambda comm: comm.allreduce(
                np.full(3, comm.rank, dtype=np.int64), lambda a, b: a + b
            )
        )
        expected = sum(range(p))
        for arr in out:
            assert np.array_equal(arr, np.full(3, expected))


@pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
class TestGatherScan:
    def test_gather(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.gather(comm.rank * 2))
        assert out[0] == [2 * r for r in range(p)]

    def test_allgather(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.allgather(chr(65 + comm.rank)))
        expected = [chr(65 + r) for r in range(p)]
        assert out == [expected] * p

    def test_inclusive_scan(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.scan(comm.rank + 1, _ADD))
        assert out == [r * (r + 1) // 2 + r + 1 for r in range(p)]

    def test_exclusive_scan(self, p):
        ctx = Context(p)
        out = ctx.run(lambda comm: comm.exscan(comm.rank + 1, _ADD, identity=0))
        assert out == [r * (r + 1) // 2 for r in range(p)]

    def test_exscan_max_with_none_identity(self, p):
        def _max(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return max(a, b)

        ctx = Context(p)
        out = ctx.run(lambda comm: comm.exscan(comm.rank, _max, identity=None))
        assert out[0] is None
        assert out[1:] == list(range(p - 1))


@pytest.mark.parametrize("p", [1, 2, 4, 8])
class TestAllToAll:
    def test_direct(self, p):
        ctx = Context(p)
        out = ctx.run(
            lambda comm: comm.alltoall(
                [comm.rank * 100 + dst for dst in range(comm.size)]
            )
        )
        for dst, received in enumerate(out):
            assert received == [src * 100 + dst for src in range(p)]

    def test_hypercube_matches_direct(self, p):
        ctx = Context(p)
        out = ctx.run(
            lambda comm: comm.alltoall_hypercube(
                [(comm.rank, dst) for dst in range(comm.size)]
            )
        )
        for dst, received in enumerate(out):
            assert received == [(src, dst) for src in range(p)]

    def test_wrong_payload_count_raises(self, p):
        from repro.comm.context import SPMDError

        ctx = Context(p)
        with pytest.raises(SPMDError):
            ctx.run(lambda comm: comm.alltoall([0] * (comm.size + 1)))


class TestHypercubeRequiresPowerOfTwo:
    def test_rejects_p3(self):
        from repro.comm.context import SPMDError

        ctx = Context(3)
        with pytest.raises(SPMDError):
            ctx.run(lambda comm: comm.alltoall_hypercube([0, 1, 2]))


class TestMessageComplexity:
    """The collectives must use the textbook message counts (§2)."""

    def test_broadcast_messages_logarithmic(self):
        p = 8
        ctx = Context(p)
        ctx.run(lambda comm: comm.bcast(1 if comm.rank == 0 else None))
        total_messages = sum(m.messages_sent for m in ctx.meters)
        assert total_messages == p - 1  # binomial tree: exactly p-1 sends
        per_pe = max(m.messages_sent for m in ctx.meters)
        assert per_pe <= 3  # root sends ⌈log2 p⌉

    def test_reduce_messages(self):
        p = 8
        ctx = Context(p)
        ctx.run(lambda comm: comm.reduce(1, _ADD))
        assert sum(m.messages_sent for m in ctx.meters) == p - 1

    def test_alltoall_direct_messages(self):
        p = 4
        ctx = Context(p)
        ctx.run(lambda comm: comm.alltoall([0] * comm.size))
        for m in ctx.meters:
            assert m.messages_sent == p - 1

    def test_allreduce_volume_independent_of_rank_count_payload(self):
        """All-reducing one word costs O(w) bytes per PE, not O(p·w)."""
        p = 8
        ctx = Context(p)
        ctx.run(lambda comm: comm.allreduce(1, _ADD))
        for m in ctx.meters:
            assert m.volume <= 8 * 4  # a few words, never O(p) words

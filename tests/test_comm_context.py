"""Tests for the SPMD context, network plumbing and error handling."""

import numpy as np
import pytest

from repro.comm.context import Context, SPMDError
from repro.comm.network import Network


class TestSplit:
    def test_numpy_round_trip(self):
        ctx = Context(4)
        data = np.arange(103)
        chunks = ctx.split(data)
        assert len(chunks) == 4
        assert np.array_equal(np.concatenate(chunks), data)

    def test_balanced(self):
        ctx = Context(4)
        sizes = [len(c) for c in ctx.split(np.arange(103))]
        assert max(sizes) - min(sizes) <= 1

    def test_list_split(self):
        ctx = Context(3)
        chunks = ctx.split(list(range(10)))
        assert sum(chunks, []) == list(range(10))

    def test_fewer_items_than_pes(self):
        ctx = Context(4)
        chunks = ctx.split(np.arange(2))
        assert sum(len(c) for c in chunks) == 2


class TestRun:
    def test_per_rank_args_tuple_splat(self):
        ctx = Context(2)
        out = ctx.run(lambda comm, a, b: a + b, per_rank_args=[(1, 2), (3, 4)])
        assert out == [3, 7]

    def test_common_args(self):
        ctx = Context(2)
        out = ctx.run(
            lambda comm, chunk, factor: chunk * factor,
            per_rank_args=[1, 2],
            common_args=(10,),
        )
        assert out == [10, 20]

    def test_exception_propagates_as_spmd_error(self):
        ctx = Context(2)

        def boom(comm):
            if comm.rank == 1:
                raise ValueError("deliberate")
            return comm.rank

        with pytest.raises(SPMDError) as exc_info:
            ctx.run(boom)
        assert 1 in exc_info.value.failures
        assert "deliberate" in str(exc_info.value)

    def test_single_pe_runs_inline(self):
        ctx = Context(1)
        assert ctx.run(lambda comm: comm.size) == [1]

    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError):
            Context(0)

    def test_traffic_summary_after_run(self):
        ctx = Context(4)
        ctx.run(lambda comm: comm.allgather(comm.rank))
        summary = ctx.traffic_summary()
        assert summary["total_messages"] > 0
        assert summary["bottleneck_bytes"] > 0
        assert summary["model_time"] > 0


class TestNetwork:
    def test_point_to_point(self):
        net = Network(2)
        net.send(0, 1, b"hello")
        assert net.recv(1, 0) == b"hello"
        assert net.meters[0].bytes_sent == 5
        assert net.meters[1].bytes_received == 5

    def test_fifo_order(self):
        net = Network(2)
        for i in range(5):
            net.send(0, 1, i)
        assert [net.recv(1, 0) for _ in range(5)] == list(range(5))

    def test_self_send_rejected(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 0, b"x")
        with pytest.raises(ValueError):
            net.recv(1, 1)

    def test_rank_bounds(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 2, b"x")
        with pytest.raises(ValueError):
            net.send(-1, 0, b"x")

    def test_pairwise_channels_are_independent(self):
        net = Network(3)
        net.send(0, 2, "a")
        net.send(1, 2, "b")
        # Receives select by source PE, not arrival order.
        assert net.recv(2, 1) == "b"
        assert net.recv(2, 0) == "a"

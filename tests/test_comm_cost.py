"""Tests for the α–β cost model and traffic accounting."""

import numpy as np
import pytest

from repro.comm.cost import (
    CostModel,
    TrafficMeter,
    bottleneck_volume,
    payload_nbytes,
)


class TestPayloadNbytes:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(42) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 1
        assert payload_nbytes(np.int64(1)) == 8

    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.uint8)) == 10

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes("abc") == 3

    def test_containers(self):
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes((np.zeros(2, dtype=np.int64), 5)) == 24
        assert payload_nbytes({1: 2}) == 16


class TestCostModel:
    def test_message_time(self):
        cm = CostModel(alpha=1e-5, beta_per_byte=1e-9)
        assert cm.message_time(0) == pytest.approx(1e-5)
        assert cm.message_time(1000) == pytest.approx(1e-5 + 1e-6)

    def test_t_coll_log_p(self):
        cm = CostModel(alpha=1.0, beta_per_byte=0.0)
        assert cm.t_coll(100, 1) == 0.0
        assert cm.t_coll(100, 2) == pytest.approx(1.0)
        assert cm.t_coll(100, 8) == pytest.approx(3.0)
        assert cm.t_coll(100, 1024) == pytest.approx(10.0)

    def test_t_all_to_all_direct_linear_in_p(self):
        cm = CostModel(alpha=1.0, beta_per_byte=0.0)
        assert cm.t_all_to_all(0, 16, direct=True) == pytest.approx(16.0)
        assert cm.t_all_to_all(0, 16, direct=False) == pytest.approx(4.0)


class TestTrafficMeter:
    def test_accounting(self):
        cm = CostModel()
        m = TrafficMeter(0)
        m.record_send(100, cm)
        m.record_send(50, cm)
        m.record_recv(10, cm)
        assert m.bytes_sent == 150
        assert m.bytes_received == 10
        assert m.messages_sent == 2
        assert m.messages_received == 1
        assert m.volume == 150

    def test_marks(self):
        cm = CostModel()
        m = TrafficMeter(0)
        m.record_send(100, cm)
        m.mark("phase")
        m.record_send(7, cm)
        m.record_recv(3, cm)
        since = m.since("phase")
        assert since == {
            "bytes_sent": 7,
            "bytes_received": 3,
            "messages_sent": 1,
            "messages_received": 1,
        }

    def test_unknown_mark_raises(self):
        with pytest.raises(KeyError):
            TrafficMeter(0).since("nope")

    def test_bottleneck_volume(self):
        cm = CostModel()
        meters = [TrafficMeter(i) for i in range(3)]
        meters[1].record_send(500, cm)
        meters[2].record_recv(700, cm)
        assert bottleneck_volume(meters) == 700
        assert bottleneck_volume([]) == 0

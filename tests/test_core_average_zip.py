"""Tests for the average checker (§6.1, Cor 8) and zip checker (§6.4, Thm 11)."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.average_checker import check_average_aggregation, reconstruct_sums
from repro.core.params import SumCheckConfig
from repro.core.zip_checker import check_zip, positional_fingerprint

STRONG = SumCheckConfig.parse("8x16 m15")


class TestReconstructSums:
    def test_exact_reconstruction(self):
        sums, valid = reconstruct_sums([5, 7], [1, 1], [2, 3])
        assert np.array_equal(sums, [10, 21])
        assert valid.all()

    def test_half_denominator(self):
        sums, valid = reconstruct_sums([7], [2], [4])  # avg 3.5 of 4 values
        assert sums[0] == 14 and valid[0]

    def test_non_dividing_denominator_invalid(self):
        _, valid = reconstruct_sums([7], [2], [3])
        assert not valid[0]

    def test_nonpositive_counts_invalid(self):
        _, valid = reconstruct_sums([1, 1], [1, 1], [0, -2])
        assert not valid.any()

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            reconstruct_sums([2**60], [1], [2**10])


class TestAverageChecker:
    def _io(self):
        keys = np.array([1, 1, 1, 2, 2], dtype=np.uint64)
        values = np.array([4, 5, 9, 10, 20], dtype=np.int64)
        return keys, values

    def test_accepts_correct(self):
        keys, values = self._io()
        assert check_average_aggregation(
            (keys, values),
            np.array([1, 2], dtype=np.uint64),
            np.array([6, 15], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
            np.array([3, 2], dtype=np.int64),
            config=STRONG,
            seed=1,
        ).accepted

    def test_accepts_unreduced_fraction(self):
        keys, values = self._io()
        assert check_average_aggregation(
            (keys, values),
            np.array([1, 2], dtype=np.uint64),
            np.array([18, 30], dtype=np.int64),
            np.array([3, 2], dtype=np.int64),
            np.array([3, 2], dtype=np.int64),
            config=STRONG,
            seed=1,
        ).accepted

    def test_rejects_wrong_average(self):
        keys, values = self._io()
        assert not check_average_aggregation(
            (keys, values),
            np.array([1, 2], dtype=np.uint64),
            np.array([7, 15], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
            np.array([3, 2], dtype=np.int64),
            config=STRONG,
            seed=1,
        ).accepted

    def test_rejects_scaled_cheat(self):
        """Doubled averages + halved counts reconstruct the same sums —
        the count check (the paper's warning) must catch it."""
        keys = np.array([1, 1, 1, 1], dtype=np.uint64)
        values = np.array([5, 5, 5, 5], dtype=np.int64)
        assert not check_average_aggregation(
            (keys, values),
            np.array([1], dtype=np.uint64),
            np.array([10], dtype=np.int64),  # claimed average 10 (true: 5)
            np.array([1], dtype=np.int64),
            np.array([2], dtype=np.int64),  # claimed count 2 (true: 4)
            config=STRONG,
            seed=1,
        ).accepted

    def test_rejects_invalid_denominator(self):
        keys, values = self._io()
        assert not check_average_aggregation(
            (keys, values),
            np.array([1, 2], dtype=np.uint64),
            np.array([6, 15], dtype=np.int64),
            np.array([2, 1], dtype=np.int64),  # den 2 does not divide 3
            np.array([3, 2], dtype=np.int64),
            config=STRONG,
            seed=1,
        ).accepted

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_round_trip(self, p):
        from repro.dataflow.ops.aggregates import average_by_key
        from repro.workloads.kv import sum_workload

        keys, values = sum_workload(1_200, num_keys=60, seed=4)
        ctx = Context(p)

        def run(comm, k, v):
            res = average_by_key(comm, k, v)
            return check_average_aggregation(
                (k, v), res.keys, res.numerators, res.denominators, res.counts,
                config=STRONG, seed=6, comm=comm,
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [True] * p

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_detects_fault(self, p):
        from repro.dataflow.ops.aggregates import average_by_key
        from repro.workloads.kv import sum_workload

        keys, values = sum_workload(1_200, num_keys=60, seed=4)
        ctx = Context(p)

        def run(comm, k, v):
            res = average_by_key(comm, k, v)
            nums = res.numerators.copy()
            if comm.rank == 0 and nums.size:
                nums[0] += 1
            return check_average_aggregation(
                (k, v), res.keys, nums, res.denominators, res.counts,
                config=STRONG, seed=6, comm=comm,
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [False] * p


class TestPositionalFingerprint:
    def test_deterministic(self):
        vals = np.arange(100, dtype=np.uint64)
        assert positional_fingerprint(vals, 0, 7) == positional_fingerprint(
            vals, 0, 7
        )

    def test_order_sensitive(self):
        vals = np.arange(100, dtype=np.uint64)
        swapped = vals.copy()
        swapped[[0, 1]] = swapped[[1, 0]]
        assert positional_fingerprint(vals, 0, 7) != positional_fingerprint(
            swapped, 0, 7
        )

    def test_split_invariance(self):
        """fp(whole) == fp(part1) + fp(part2 at offset) — the property that
        makes it evaluable on distributed data (§6.4)."""
        vals = np.arange(1000, dtype=np.uint64) * np.uint64(977)
        whole = positional_fingerprint(vals, 0, 3)
        p31 = (1 << 31) - 1
        split = (
            positional_fingerprint(vals[:400], 0, 3)
            + positional_fingerprint(vals[400:], 400, 3)
        ) % p31
        assert whole == split

    def test_empty(self):
        assert positional_fingerprint(np.zeros(0, dtype=np.uint64), 0, 1) == 0


class TestZipChecker:
    def _data(self):
        rng = np.random.default_rng(5)
        s1 = rng.integers(0, 2**32, 800).astype(np.uint64)
        s2 = rng.integers(0, 2**32, 800).astype(np.uint64)
        return s1, s2

    def test_accepts_correct_zip(self):
        s1, s2 = self._data()
        assert check_zip(s1, s2, s1, s2, seed=1).accepted

    def test_detects_swap_within_first(self):
        s1, s2 = self._data()
        z1 = s1.copy()
        z1[[10, 11]] = z1[[11, 10]]
        assert not check_zip(s1, s2, z1, s2, seed=1).accepted

    def test_detects_value_change_in_second(self):
        s1, s2 = self._data()
        z2 = s2.copy()
        z2[5] += 1
        assert not check_zip(s1, s2, s1, z2, seed=1).accepted

    def test_detects_truncation(self):
        s1, s2 = self._data()
        assert not check_zip(s1, s2, s1[:-1], s2[:-1], seed=1).accepted

    def test_component_length_mismatch_raises(self):
        s1, s2 = self._data()
        with pytest.raises(ValueError):
            check_zip(s1, s2, s1, s2[:-1], seed=1)

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_uneven_distributions(self, p):
        """Inputs distributed differently from the output (the hard case)."""
        from repro.dataflow.ops.zip_op import zip_arrays

        s1, s2 = self._data()
        ctx = Context(p)
        splits_1 = ctx.split(s1)
        # Skew S2's distribution heavily toward the last PE.
        bounds = [0] + [50 * (i + 1) for i in range(p - 1)] + [s2.size]
        splits_2 = [s2[bounds[i] : bounds[i + 1]] for i in range(p)]

        def run(comm, a, b):
            f, s = zip_arrays(comm, a, b)
            return check_zip(a, b, f, s, seed=2, comm=comm).accepted

        verdicts = ctx.run(run, per_rank_args=list(zip(splits_1, splits_2)))
        assert verdicts == [True] * p

    @pytest.mark.parametrize("p", [2, 4])
    def test_distributed_detects_reorder(self, p):
        from repro.dataflow.ops.zip_op import zip_arrays

        s1, s2 = self._data()
        ctx = Context(p)

        def run(comm, a, b):
            f, s = zip_arrays(comm, a, b)
            if comm.rank == 0 and f.size >= 2:
                f = f.copy()
                f[[0, 1]] = f[[1, 0]]
            return check_zip(a, b, f, s, seed=2, comm=comm).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(s1), ctx.split(s2)))
        )
        # The swap is detected unless the swapped elements were equal.
        assert verdicts == [False] * p or s1[0] == s1[1]

"""Tests for the invasive GroupBy/Join redistribution checkers (Cor 14/15)."""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.groupby_checker import (
    check_groupby_redistribution,
    default_partitioner,
    encode_records,
)
from repro.core.join_checker import check_join_redistribution
from repro.workloads.kv import sum_workload


class TestEncodeRecords:
    def test_deterministic(self):
        k = np.array([1, 2], dtype=np.uint64)
        v = np.array([3, 4], dtype=np.int64)
        assert np.array_equal(encode_records(k, v), encode_records(k, v))

    def test_key_and_value_sensitivity(self):
        k = np.array([1], dtype=np.uint64)
        assert encode_records(k, np.array([3]))[0] != encode_records(
            k, np.array([4])
        )[0]
        assert encode_records(np.array([1], dtype=np.uint64), np.array([3]))[
            0
        ] != encode_records(np.array([2], dtype=np.uint64), np.array([3]))[0]

    def test_no_collisions_on_small_domain(self):
        keys = np.repeat(np.arange(100, dtype=np.uint64), 100)
        values = np.tile(np.arange(100, dtype=np.int64), 100)
        assert len(np.unique(encode_records(keys, values))) == 10_000


class TestGroupByChecker:
    @pytest.mark.parametrize("p", [2, 4])
    def test_accepts_correct_exchange(self, p):
        from repro.dataflow.ops.group_by_key import group_by_key

        keys, values = sum_workload(2_000, num_keys=100, seed=1)
        ctx = Context(p)

        def run(comm, k, v):
            part = default_partitioner(comm.size)
            _, _, post = group_by_key(
                comm, k, v, partitioner=part, return_exchange=True
            )
            return check_groupby_redistribution(
                (k, v), post, part, comm=comm, seed=2
            ).accepted

        verdicts = ctx.run(
            run, per_rank_args=list(zip(ctx.split(keys), ctx.split(values)))
        )
        assert verdicts == [True] * p

    def test_detects_lost_record(self):
        keys, values = sum_workload(2_000, num_keys=100, seed=1)
        ctx = Context(2)

        def run(comm, k, v):
            from repro.dataflow.ops.group_by_key import group_by_key

            part = default_partitioner(comm.size)
            _, _, (pk, pv) = group_by_key(
                comm, k, v, partitioner=part, return_exchange=True
            )
            if comm.rank == 0 and pk.size:
                pk, pv = pk[1:], pv[1:]  # drop a record in transit
            return check_groupby_redistribution(
                (k, v), (pk, pv), part, comm=comm, seed=2
            ).accepted

        verdicts = ctx.run(
            run,
            per_rank_args=list(zip(ctx.split(keys), ctx.split(values))),
        )
        assert verdicts == [False] * 2

    def test_detects_misrouted_record(self):
        """A record at the wrong PE violates placement even if the global
        multiset is intact."""
        ctx = Context(2)
        part = default_partitioner(2)
        all_keys = np.arange(100, dtype=np.uint64)
        dests = part(all_keys)
        k0, k1 = all_keys[dests == 0], all_keys[dests == 1]

        def run(comm, mine, stolen):
            pre = (mine if comm.rank == 0 else stolen, np.ones_like(mine if comm.rank == 0 else stolen, dtype=np.int64))
            # Swap one record between the PEs' post-exchange slices.
            if comm.rank == 0:
                post_k = np.concatenate([mine[:-1], stolen[:1]])
            else:
                post_k = np.concatenate([stolen[1:], mine[-1:]])
            post = (post_k, np.ones_like(post_k, dtype=np.int64))
            return check_groupby_redistribution(
                pre, post, part, comm=comm, seed=3
            ).accepted

        verdicts = ctx.run(run, per_rank_args=[(k0, k1), (k0, k1)])
        assert verdicts == [False] * 2

    def test_sequential_trivial(self):
        part = default_partitioner(1)
        k = np.arange(10, dtype=np.uint64)
        v = np.ones(10, dtype=np.int64)
        assert check_groupby_redistribution((k, v), (k, v), part).accepted


class TestJoinChecker:
    def _relations(self):
        rk = np.array([1, 2, 3, 4, 5] * 40, dtype=np.uint64)
        rv = np.arange(200, dtype=np.int64)
        sk = np.array([2, 3, 4] * 30, dtype=np.uint64)
        sv = np.arange(90, dtype=np.int64)
        return (rk, rv), (sk, sv)

    @pytest.mark.parametrize("p", [2, 4])
    def test_hash_mode_accepts(self, p):
        from repro.dataflow.ops.join import hash_join

        (rk, rv), (sk, sv) = self._relations()
        ctx = Context(p)

        def run(comm, a, b, c, d):
            part = default_partitioner(comm.size)
            jx = hash_join(comm, (a, b), (c, d), partitioner=part)
            return check_join_redistribution(
                (a, b), (c, d), jx.r_post, jx.s_post,
                mode="hash", partitioner=part, comm=comm, seed=4,
            ).accepted

        verdicts = ctx.run(
            run,
            per_rank_args=list(
                zip(ctx.split(rk), ctx.split(rv), ctx.split(sk), ctx.split(sv))
            ),
        )
        assert verdicts == [True] * p

    def test_hash_mode_detects_corrupted_relation(self):
        from repro.dataflow.ops.join import hash_join

        (rk, rv), (sk, sv) = self._relations()
        ctx = Context(2)

        def run(comm, a, b, c, d):
            part = default_partitioner(comm.size)
            jx = hash_join(comm, (a, b), (c, d), partitioner=part)
            r_post = jx.r_post
            if comm.rank == 0 and r_post[1].size:
                vals = r_post[1].copy()
                vals[0] += 1  # silent corruption in transit
                r_post = (r_post[0], vals)
            return check_join_redistribution(
                (a, b), (c, d), r_post, jx.s_post,
                mode="hash", partitioner=part, comm=comm, seed=4,
            ).accepted

        verdicts = ctx.run(
            run,
            per_rank_args=list(
                zip(ctx.split(rk), ctx.split(rv), ctx.split(sk), ctx.split(sv))
            ),
        )
        assert verdicts == [False] * 2

    def test_range_mode_accepts_range_partition(self):
        ctx = Context(2)
        keys = np.arange(100, dtype=np.uint64)
        vals = np.ones(100, dtype=np.int64)
        # Range partition: PE0 gets keys < 50, PE1 the rest.
        pre = [
            ((keys[::2], vals[::2]), (keys[1::2], vals[1::2])),
            ((keys[::2], vals[::2]), (keys[1::2], vals[1::2])),
        ]

        def run(comm, r_pre, s_pre):
            lo, hi = (0, 50) if comm.rank == 0 else (50, 100)
            r_post_k = r_pre[0][(r_pre[0] >= lo) & (r_pre[0] < hi)]
            s_post_k = s_pre[0][(s_pre[0] >= lo) & (s_pre[0] < hi)]
            # Pre slices differ per PE in reality; for this test each PE
            # holds half of each relation.
            my_r_pre = (r_pre[0][comm.rank::2], r_pre[1][comm.rank::2])
            my_s_pre = (s_pre[0][comm.rank::2], s_pre[1][comm.rank::2])
            return check_join_redistribution(
                my_r_pre, my_s_pre,
                (r_post_k, np.ones_like(r_post_k, dtype=np.int64)),
                (s_post_k, np.ones_like(s_post_k, dtype=np.int64)),
                mode="range", comm=comm, seed=5,
            ).accepted

        # Build pre-splits so that the union of pre == union of post.
        verdicts = ctx.run(run, per_rank_args=pre)
        assert verdicts == [True] * 2

    def test_range_mode_detects_boundary_violation(self):
        ctx = Context(2)

        def run(comm):
            # PE0 holds key 60 (belongs right of PE1's key 50) — violation.
            post_k = (
                np.array([10, 60], dtype=np.uint64)
                if comm.rank == 0
                else np.array([50], dtype=np.uint64)
            )
            pre_k = post_k  # permutation holds; placement does not
            ones = np.ones_like(post_k, dtype=np.int64)
            return check_join_redistribution(
                (pre_k, ones), (pre_k[:0], ones[:0]),
                (post_k, ones), (post_k[:0], ones[:0]),
                mode="range", comm=comm, seed=6,
            ).accepted

        assert ctx.run(run) == [False] * 2

    def test_mode_validation(self):
        empty = (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            check_join_redistribution(empty, empty, empty, empty, mode="fuzzy")
        with pytest.raises(ValueError):
            check_join_redistribution(empty, empty, empty, empty, mode="hash")

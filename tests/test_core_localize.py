"""Tests for fault localization (``repro.core.localize``).

The contract under test: a REJECTed Theorem 1 verdict is narrowed to
inclusive key ranges that *cover every corrupted key* — across hash
families, seed counts, operators, sequential and (ragged) distributed
runs — with replicated reports and lockstep collectives, and graceful
coarsening when the round/range caps bite.
"""

import numpy as np
import pytest

from repro.comm.context import Context
from repro.core.localize import FaultReport, localize_fault
from repro.core.multiseed import MultiSeedSumChecker, condense_kv
from repro.core.params import SumCheckConfig
from repro.dataflow.ops.reduce_by_key import reduce_by_key
from repro.workloads.kv import aggregate_reference, sum_workload

CONFIG = SumCheckConfig.parse("4x16 m15")

FAMILIES = ["CRC", "Tab", "Tab64", "Mix", "MShift"]


def _workload(n=1500, num_keys=120, seed=7):
    keys, values = sum_workload(n, num_keys=num_keys, seed=seed)
    return keys, values, aggregate_reference(keys, values)


def _corrupt(out, at, delta=5):
    """Perturb the asserted aggregates at unique-key positions ``at``."""
    out_k, out_v = out
    bad_v = out_v.copy()
    for i in np.atleast_1d(at):
        bad_v[i] += delta
    return out_k, bad_v


def _covered(report: FaultReport, keys) -> bool:
    keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
    mask = np.zeros(keys.size, dtype=bool)
    for a, b in report.key_ranges:
        mask |= (keys >= np.uint64(a)) & (keys <= np.uint64(b))
    return bool(mask.all())


class TestSequentialLocalization:
    def test_clean_sides_not_localized(self):
        keys, values, out = _workload()
        report = localize_fault((keys, values), out, CONFIG, seeds=3)
        assert not report.localized
        assert report.key_ranges == []
        assert report.pes == []
        assert report.suspect_keys == 0
        assert report.bisection_rounds == 0
        # Every lane's combined difference table is all-zero.
        assert all(
            not any(row) for per_seed in report.guilty_buckets
            for row in per_seed
        )

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seeds", [0, np.array([11, 12, 13])])
    def test_single_key_fault_pinned(self, family, seeds):
        config = CONFIG.with_hash(family)
        keys, values, out = _workload(seed=3)
        bad = _corrupt(out, at=41)
        report = localize_fault(
            (keys, values), bad, config, seeds, window=5
        )
        assert report.localized
        assert not report.exhausted
        assert report.windows == [5]
        assert report.pes == [0]
        assert _covered(report, out[0][41])
        assert report.suspect_keys >= 1
        # Some lane must have named a guilty bucket.
        assert any(
            row for per_seed in report.guilty_buckets for row in per_seed
        )

    @pytest.mark.parametrize("family", FAMILIES)
    def test_multi_key_fault_covered(self, family):
        config = CONFIG.with_hash(family)
        keys, values, out = _workload(seed=9)
        at = [5, 60, 110]
        bad = _corrupt(out, at=at)
        report = localize_fault((keys, values), bad, config, seeds=2)
        assert report.localized
        assert _covered(report, out[0][at])

    def test_missing_and_extra_output_key(self):
        """Differing key sets on the two sides still localize."""
        keys, values, out = _workload(seed=21)
        out_k, out_v = out
        bogus = np.uint64(out_k.max() + 17)
        bad_k = np.concatenate([out_k[1:], [bogus]])
        bad_v = np.concatenate([out_v[1:], [np.int64(9)]])
        order = np.argsort(bad_k, kind="stable")
        report = localize_fault(
            (keys, values), (bad_k[order], bad_v[order]), CONFIG, seeds=2
        )
        assert report.localized
        assert _covered(report, [out_k[0], bogus])

    def test_xor_operator(self):
        keys, values, _ = _workload(seed=5)
        ck = condense_kv(keys, values, "xor")
        bad_v = ck.agg_xor.view(np.int64).copy()
        bad_v[17] ^= 0b1010
        report = localize_fault(
            (keys, values),
            (ck.unique_keys, bad_v),
            CONFIG,
            seeds=2,
            operator="xor",
        )
        assert report.localized
        assert report.details["operator"] == "xor"
        assert _covered(report, ck.unique_keys[17])

    def test_diff_reuse_matches_recompute(self):
        """Passing the retained difference tensor changes nothing."""
        keys, values, out = _workload(seed=13)
        bad = _corrupt(out, at=77)
        seeds = np.array([4, 5])
        checker = MultiSeedSumChecker(CONFIG, seeds)
        cin = condense_kv(keys, values)
        cbad = condense_kv(*bad)
        diff = checker.difference(
            checker.local_tables_condensed(cin),
            checker.local_tables_condensed(cbad),
        )
        fresh = localize_fault(cin, cbad, CONFIG, seeds)
        reused = localize_fault(cin, cbad, CONFIG, seeds, diff=diff)
        assert reused.key_ranges == fresh.key_ranges
        assert reused.bisection_rounds == fresh.bisection_rounds
        assert reused.suspect_keys == fresh.suspect_keys
        assert reused.guilty_buckets == fresh.guilty_buckets

    def test_accepts_condensed_or_raw_sides(self):
        keys, values, out = _workload(seed=17)
        bad = _corrupt(out, at=2)
        raw = localize_fault((keys, values), bad, CONFIG, seeds=1)
        cond = localize_fault(
            condense_kv(keys, values), condense_kv(*bad), CONFIG, seeds=1
        )
        assert raw.key_ranges == cond.key_ranges

    def test_max_rounds_exhaustion_keeps_coverage(self):
        keys, values, out = _workload(seed=19)
        at = [10, 50, 100]  # wide suspect span: bisection has work to do
        bad = _corrupt(out, at=at)
        report = localize_fault(
            (keys, values), bad, CONFIG, seeds=2, max_rounds=0
        )
        assert report.localized
        assert report.exhausted
        assert report.bisection_rounds == 0
        # Coarser ranges, but every corrupted key is still inside.
        assert _covered(report, out[0][at])

    def test_max_ranges_exhaustion_keeps_coverage(self):
        keys, values, out = _workload(seed=23)
        at = list(range(0, 120, 11))
        bad = _corrupt(out, at=at)
        report = localize_fault(
            (keys, values), bad, CONFIG, seeds=2, max_ranges=3
        )
        assert report.localized
        assert report.exhausted
        assert report.num_ranges <= 3
        assert _covered(report, out[0][at])

    def test_ranges_are_sorted_disjoint_inclusive(self):
        keys, values, out = _workload(seed=29)
        bad = _corrupt(out, at=[10, 90])
        report = localize_fault((keys, values), bad, CONFIG, seeds=2)
        for a, b in report.key_ranges:
            assert a <= b
        for (a0, b0), (a1, b1) in zip(
            report.key_ranges, report.key_ranges[1:]
        ):
            assert b0 + 1 < a1  # merged: no adjacent/overlapping ranges


class TestPrefilterFallbacks:
    """Multi-fault cancellation paths: the guilty-bucket prefilter may
    lose true suspects; the completeness self-check must widen rather
    than return ranges missing a corrupted key."""

    def _colliding_pair(self, checker, domain):
        """Two keys sharing ≥2 (but not all) of a 1-seed checker's lanes."""
        lanes = checker.config.iterations
        rows = np.stack(
            [
                b
                for _, _, b in checker.iter_lane_buckets(
                    np.arange(domain, dtype=np.uint64)
                )
            ]
        )
        for i in range(domain):
            shared = (rows[:, i + 1 :] == rows[:, i : i + 1]).sum(axis=0)
            hits = np.flatnonzero((shared >= 2) & (shared < lanes))
            if hits.size:
                return i, int(i + 1 + hits[0])
        pytest.skip("no partially-colliding key pair in this domain")

    def test_cancelling_pair_widens_to_full_population(self):
        config = SumCheckConfig.parse("4x8 m15")
        seeds = np.array([2])
        checker = MultiSeedSumChecker(config, seeds)
        k1, k2 = self._colliding_pair(checker, 200)
        keys, values = sum_workload(1200, num_keys=200, seed=31)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        # ±delta on a bucket-sharing pair cancels in the shared lanes,
        # knocking both keys past the prefilter slack; plus one plain
        # fault so the filter stays non-empty (incomplete, not starved).
        i1 = int(np.searchsorted(out_k, np.uint64(k1)))
        i2 = int(np.searchsorted(out_k, np.uint64(k2)))
        bad_v[i1] += 5
        bad_v[i2] -= 5
        bad_v[7] += 3
        report = localize_fault(
            (keys, values), (out_k, bad_v), config, seeds
        )
        assert report.localized
        assert report.details.get("prefilter_incomplete") or report.details[
            "prefilter_exhausted"
        ]
        assert _covered(report, [out_k[i1], out_k[i2], out_k[7]])

    def test_starved_prefilter_falls_back(self):
        config = SumCheckConfig.parse("4x8 m15")
        seeds = np.array([2])
        checker = MultiSeedSumChecker(config, seeds)
        k1, k2 = self._colliding_pair(checker, 200)
        keys, values = sum_workload(1200, num_keys=200, seed=31)
        out_k, out_v = aggregate_reference(keys, values)
        bad_v = out_v.copy()
        i1 = int(np.searchsorted(out_k, np.uint64(k1)))
        i2 = int(np.searchsorted(out_k, np.uint64(k2)))
        bad_v[i1] += 5
        bad_v[i2] -= 5
        report = localize_fault(
            (keys, values), (out_k, bad_v), config, seeds
        )
        # Either the pair survived the slack (normal path) or the filter
        # starved/lost them and the fallback widened; coverage holds
        # regardless — that is the property repair relies on.
        assert report.localized
        assert _covered(report, [out_k[i1], out_k[i2]])


def _report_tuple(r: FaultReport):
    return (
        r.localized,
        r.key_ranges,
        r.pes,
        r.suspect_keys,
        r.bisection_rounds,
        r.exhausted,
        r.guilty_buckets,
    )


class TestDistributedLocalization:
    @pytest.mark.parametrize("p", [2, 3])
    def test_replicated_report_and_pe_implication(self, p):
        keys, values, _ = _workload(n=3000, num_keys=150, seed=37)
        shares_k = np.array_split(keys, p)
        shares_v = np.array_split(values, p)

        def job(comm, k, v):
            out_k, out_v = reduce_by_key(comm, k, v)
            bad_v = out_v.copy()
            if comm.rank == 1 and bad_v.size:
                bad_v[0] += 4
            return (
                localize_fault(
                    (k, v), (out_k, bad_v), CONFIG, seeds=2, comm=comm
                ),
                out_k[0] if out_k.size else None,
            )

        results = Context(p).run(
            job, per_rank_args=list(zip(shares_k, shares_v))
        )
        reports = [r for r, _ in results]
        corrupted_key = results[1][1]
        first = reports[0]
        assert first.localized
        assert first.pes == [1]
        assert _covered(first, corrupted_key)
        for other in reports[1:]:
            assert _report_tuple(other) == _report_tuple(first)

    def test_ragged_pe_with_empty_share(self):
        """A PE holding zero elements stays in lockstep and agrees."""
        keys, values, _ = _workload(n=2000, num_keys=100, seed=41)
        shares = [
            (keys[:900], values[:900]),
            (np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)),
            (keys[900:], values[900:]),
        ]

        def job(comm, k, v):
            out_k, out_v = reduce_by_key(comm, k, v)
            bad_v = out_v.copy()
            if comm.rank == 2 and bad_v.size:
                bad_v[-1] -= 6
            return (
                localize_fault(
                    (k, v), (out_k, bad_v), CONFIG, seeds=2, comm=comm
                ),
                out_k[-1] if out_k.size else None,
            )

        results = Context(3).run(job, per_rank_args=shares)
        reports = [r for r, _ in results]
        corrupted_key = results[2][1]
        assert reports[0].localized
        assert reports[0].pes == [2]
        assert _covered(reports[0], corrupted_key)
        for other in reports[1:]:
            assert _report_tuple(other) == _report_tuple(reports[0])

    def test_distributed_clean_run_agrees_not_localized(self):
        keys, values, _ = _workload(n=1200, num_keys=80, seed=43)
        shares_k = np.array_split(keys, 3)
        shares_v = np.array_split(values, 3)

        def job(comm, k, v):
            out = reduce_by_key(comm, k, v)
            return localize_fault(
                (k, v), out, CONFIG, seeds=2, comm=comm
            )

        reports = Context(3).run(
            job, per_rank_args=list(zip(shares_k, shares_v))
        )
        assert all(not r.localized for r in reports)
        assert all(r.key_ranges == [] for r in reports)
